// E11 — range-efficient F0 (extension): accuracy and per-interval cost as
// interval width grows; the claim is polylog time per interval vs the
// naive expansion's linear cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/range_sampler.h"

namespace {
using namespace ustream;
using namespace ustream::bench;
}  // namespace

int main() {
  title("E11a: one sampler, disjoint intervals — time/interval vs width");
  note("claim: cost is polylog in width (naive expansion would be linear)");
  {
    Table t({"width", "intervals", "us/intvl", "rel err"}, 12);
    for (std::uint64_t width : {std::uint64_t{100}, std::uint64_t{10'000},
                                std::uint64_t{1'000'000}, std::uint64_t{100'000'000}}) {
      constexpr int kIntervals = 300;
      RangeSampler s(4096, 77);
      WallTimer timer;
      for (int i = 0; i < kIntervals; ++i) {
        const std::uint64_t base = static_cast<std::uint64_t>(i) * (width * 2 + 11);
        s.add_range(base, base + width - 1);
      }
      const double us = timer.seconds() * 1e6 / kIntervals;
      const double truth = static_cast<double>(width) * kIntervals;
      t.row({fmt("%llu", static_cast<unsigned long long>(width)), fmt("%d", kIntervals),
             fmt("%.1f", us), fmt("%.4f", relative_error(s.estimate_distinct(), truth))});
    }
  }

  title("E11b: median-boosted accuracy vs eps (Klee-measure-style workload)");
  note("overlapping random intervals; truth computed by sweep-line");
  {
    // Build a fixed workload and its exact union length.
    Xoshiro256 rng(5);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t lo = rng.below(1ull << 32);
      intervals.push_back({lo, lo + 1 + rng.below(1 << 22)});
    }
    auto sorted = intervals;
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t truth = 0, cur_lo = sorted[0].first, cur_hi = sorted[0].second;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].first > cur_hi + 1) {
        truth += cur_hi - cur_lo + 1;
        cur_lo = sorted[i].first;
        cur_hi = sorted[i].second;
      } else if (sorted[i].second > cur_hi) {
        cur_hi = sorted[i].second;
      }
    }
    truth += cur_hi - cur_lo + 1;

    Table t({"eps", "copies", "estimate", "rel err", "ms total"}, 12);
    for (double eps : {0.3, 0.1, 0.05}) {
      RangeF0Estimator est(eps, 0.05, 1000 + static_cast<std::uint64_t>(eps * 100));
      WallTimer timer;
      for (const auto& [lo, hi] : intervals) est.add_range(lo, hi);
      t.row({fmt("%.2f", eps), fmt("%zu", est.params().copies), fmt("%.3e", est.estimate()),
             fmt("%.4f", relative_error(est.estimate(), static_cast<double>(truth))),
             fmt("%.1f", timer.millis())});
    }
  }

  title("E11c: distributed union of interval streams (4 sites)");
  {
    const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 31337);
    std::vector<RangeF0Estimator> sites(4, RangeF0Estimator(params));
    // Sites cover overlapping halves of one big region: union = whole region.
    constexpr std::uint64_t kRegion = 1ull << 30;
    for (std::size_t s = 0; s < 4; ++s) {
      const std::uint64_t lo = s * (kRegion / 5);
      sites[s].add_range(lo, lo + 2 * (kRegion / 5));
    }
    RangeF0Estimator referee = sites[0];
    for (std::size_t s = 1; s < 4; ++s) referee.merge(sites[s]);
    const double truth = static_cast<double>(3 * (kRegion / 5) + 2 * (kRegion / 5) + 1);
    Table t({"sites", "estimate", "truth", "rel err"}, 14);
    t.row({"4", fmt("%.4e", referee.estimate()), fmt("%.4e", truth),
           fmt("%.4f", relative_error(referee.estimate(), truth))});
  }
  return 0;
}
