// E2 — Theorem T1/T2 space. In-memory footprint and serialized message
// size as functions of (epsilon, delta) and of the stream: the claim is
// O(eps^-2 log(1/delta) log n) BITS, independent of stream length and of
// F0 once the sketch saturates.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/f0_estimator.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

struct SpacePoint {
  std::size_t memory_bytes;
  std::size_t message_bytes;
};

SpacePoint measure(double eps, double delta, std::size_t distinct, std::uint64_t seed) {
  F0Estimator est(EstimatorParams::for_guarantee(eps, delta, seed));
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < distinct; ++i) est.add(rng.next());
  return {est.bytes_used(), est.serialize().size()};
}
}  // namespace

int main() {
  title("E2a: space vs epsilon (delta = 0.05, F0 = 200k)");
  note("claim: bytes ~ 1/eps^2 (x4 per halving of eps)");
  {
    Table t({"eps", "capacity", "memory B", "message B", "msg ratio"}, 13);
    std::size_t prev = 0;
    for (double eps : {0.4, 0.2, 0.1, 0.05}) {
      const auto p = measure(eps, 0.05, 200'000, 11);
      t.row({fmt("%.2f", eps),
             fmt("%zu", EstimatorParams::capacity_for_epsilon(eps)),
             fmt("%zu", p.memory_bytes), fmt("%zu", p.message_bytes),
             prev ? fmt("%.2f", double(p.message_bytes) / double(prev)) : "-"});
      prev = p.message_bytes;
    }
  }

  title("E2b: space vs delta (eps = 0.1, F0 = 200k)");
  note("claim: bytes ~ log(1/delta)");
  {
    Table t({"delta", "copies", "memory B", "message B"}, 13);
    for (double delta : {0.3, 0.1, 0.03, 0.01, 0.001}) {
      const auto p = measure(0.1, delta, 200'000, 12);
      t.row({fmt("%.3f", delta), fmt("%zu", EstimatorParams::copies_for_delta(delta)),
             fmt("%zu", p.memory_bytes), fmt("%zu", p.message_bytes)});
    }
  }

  title("E2c: space vs stream size (eps = 0.1, delta = 0.05)");
  note("claim: flat once saturated — the whole point of sketching");
  {
    Table t({"true F0", "memory B", "message B"}, 13);
    for (std::size_t distinct : {std::size_t{1000}, std::size_t{10'000}, std::size_t{100'000},
                                 std::size_t{1'000'000}, std::size_t{4'000'000}}) {
      const auto p = measure(0.1, 0.05, distinct, 13);
      t.row({fmt("%zu", distinct), fmt("%zu", p.memory_bytes), fmt("%zu", p.message_bytes)});
    }
  }

  title("E2d: exact-counter comparison (the linear-space alternative)");
  {
    Table t({"true F0", "sketch B", "exact B (8B/label lower bnd)"}, 22);
    for (std::size_t distinct : {std::size_t{10'000}, std::size_t{1'000'000},
                                 std::size_t{100'000'000}}) {
      const auto p = distinct <= 1'000'000
                         ? measure(0.1, 0.05, distinct, 14)
                         : measure(0.1, 0.05, 1'000'000, 14);  // saturated anyway
      t.row({fmt("%zu", distinct), fmt("%zu", p.message_bytes), fmt("%zu", distinct * 8)});
    }
  }
  return 0;
}
