// E5 — Theorem T3: SumDistinct and predicate aggregates over distinct
// labels, single-stream and over the distributed union.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "distributed/protocols.h"
#include "stream/generators.h"
#include "stream/partitioner.h"

namespace {
using namespace ustream;
using namespace ustream::bench;
}  // namespace

int main() {
  title("E5a: SumDistinct error vs eps (F0 = 100k, values in [1,2], 10x dups)");
  {
    Table t({"eps", "mean err", "p95 err", "naive x"}, 12);
    for (double eps : {0.3, 0.2, 0.1, 0.05}) {
      double naive_factor = 0.0;
      const auto errors = run_trials(20, [&](std::uint64_t seed) {
        SyntheticStream stream({.distinct = 100'000, .total_items = 1'000'000,
                                .zipf_alpha = 1.0, .seed = seed, .value_lo = 1.0,
                                .value_hi = 2.0});
        DistinctSumEstimator est(eps, 0.05, seed * 3 + 1);
        double naive = 0.0;
        while (!stream.done()) {
          const Item item = stream.next();
          est.add(item.label, item.value);
          naive += item.value;
        }
        naive_factor = naive / stream.true_sum_distinct();
        return relative_error(est.estimate_sum(), stream.true_sum_distinct());
      });
      t.row({fmt("%.2f", eps), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95)), fmt("%.1f", naive_factor)});
    }
  }

  title("E5b: value-skew sensitivity at eps = 0.1 (values in [1, hi])");
  note("claim: guarantee needs bounded value spread; error grows with v_max/v_mean");
  {
    Table t({"value hi", "mean err", "p95 err"}, 12);
    for (double hi : {1.0, 2.0, 10.0, 100.0, 1000.0}) {
      const auto errors = run_trials(20, [&](std::uint64_t seed) {
        DistinctSumEstimator est(0.1, 0.05, seed);
        Xoshiro256 rng(seed ^ 1);
        double truth = 0.0;
        for (int i = 0; i < 100'000; ++i) {
          const std::uint64_t label = rng.next();
          // Heavy-tailed values: most small, a few near hi.
          const double u = rng.uniform01();
          const double value = 1.0 + (hi - 1.0) * u * u * u * u;
          est.add(label, value);
          truth += value;
        }
        return relative_error(est.estimate_sum(), truth);
      });
      t.row({fmt("%.0f", hi), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E5c: predicate aggregates over distinct labels (F0 = 100k, eps = 0.1)");
  {
    Table t({"selectivity", "count err", "frac err"}, 14);
    for (double sel : {0.5, 0.25, 0.1, 0.01}) {
      const auto mod = static_cast<std::uint64_t>(1.0 / sel);
      const auto errors = run_trials(20, [&](std::uint64_t seed) {
        F0Estimator est(0.1, 0.05, seed);
        for (std::uint64_t x = 0; x < 100'000; ++x) est.add(x * 2654435761u + seed);
        // Predicate keyed off the label's low bits via a mix (stable).
        const auto pred = [mod](std::uint64_t label) {
          return SplitMix64::mix(label) % mod == 0;
        };
        const double truth_frac = 1.0 / static_cast<double>(mod);
        return relative_error(est.estimate_count_if(pred), 100'000.0 * truth_frac);
      });
      t.row({fmt("%.2f", sel), fmt("%.4f", errors.mean()), fmt("%.4f", errors.median())});
    }
  }

  title("E5d: SumDistinct over the distributed union (8 sites)");
  {
    Table t({"overlap", "rel err", "bytes/site"}, 12);
    const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 99);
    for (double overlap : {0.0, 0.5, 1.0}) {
      const auto w = make_distributed_workload({.sites = 8, .union_distinct = 100'000,
                                                .overlap = overlap, .duplication = 3.0,
                                                .zipf_alpha = 1.1, .seed = 7,
                                                .value_lo = 1.0, .value_hi = 2.0});
      const auto res = run_distinct_sum_union(w, params);
      t.row({fmt("%.2f", overlap), fmt("%.4f", res.relative_error),
             fmt("%.0f", res.channel.mean_message_bytes())});
    }
  }
  return 0;
}
