// E9 — hash substrate: raw throughput of each family (the sampler's hot
// path is one hash + one compare for most items), plus field arithmetic
// microcosts.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hash/field61.h"
#include "hash/hash_family.h"
#include "hash/kwise.h"
#include "hash/level.h"

namespace {
using namespace ustream;

template <typename Hash>
void BM_HashThroughput(benchmark::State& state) {
  Hash h(12345);
  std::uint64_t x = 0, sink = 0;
  for (auto _ : state) {
    sink ^= h(++x);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_HashThroughput, PairwiseHash);
BENCHMARK_TEMPLATE(BM_HashThroughput, TabulationHash);
BENCHMARK_TEMPLATE(BM_HashThroughput, MultiplyShiftHash);
BENCHMARK_TEMPLATE(BM_HashThroughput, MurmurMixHash);

void BM_FourWiseThroughput(benchmark::State& state) {
  KWiseHash h(12345, 4);
  std::uint64_t x = 0, sink = 0;
  for (auto _ : state) {
    sink ^= h(++x);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourWiseThroughput);

void BM_LevelExtraction(benchmark::State& state) {
  PairwiseHash h(7);
  std::uint64_t x = 0;
  int sink = 0;
  for (auto _ : state) {
    sink += hash_level(h(++x), PairwiseHash::kBits);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LevelExtraction);

void BM_Field61MulAdd(benchmark::State& state) {
  std::uint64_t a = 0x123456789abcdefULL % field61::kPrime;
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = field61::mul_add(a, x, 17);
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Field61MulAdd);

// Type-erased dispatch overhead (what the harness pays for runtime
// hash-kind selection; the sampler itself is templated and pays nothing).
void BM_AnyLabelHashDispatch(benchmark::State& state) {
  AnyLabelHash h(HashKind::kPairwise, 9);
  std::uint64_t x = 0, sink = 0;
  for (auto _ : state) {
    sink ^= h.value(++x);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnyLabelHashDispatch);

}  // namespace

BENCHMARK_MAIN();
