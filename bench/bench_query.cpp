// E19 — the query engine: what a set-expression answer costs. Rows gated
// against bench/BENCH_query.json by bench/run_query_bench.sh:
//
//   * BM_QueryParse/<ops> — tokenize + parse an <ops>-operand expression;
//     items == expressions, so items_per_second is parses per second.
//   * BM_QueryEval/<ops>  — the DLRT common-threshold evaluation over
//     <ops> coordinated sketches (parse hoisted out of the loop); the
//     dominant cost is walking each copy's retained entries at the common
//     level, so the row scales with operands x capacity x copies.
//   * BM_QueryEndToEnd    — a full `GET /query?e=...` admin round trip
//     (connect, percent-decode, resolve, evaluate, format, close) against
//     a LIVE RefereeServer with the query handler installed — the path
//     `ustream query --from` exercises.
//
// The runner's floor: parse must stay >= 10x faster than evaluation at 8
// operands — the grammar is off the hot path, and a parser rewrite that
// lands it there should trip a gate, not a profile.
#include <benchmark/benchmark.h>

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "net/referee_server.h"
#include "net/socket.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/service.h"
#include "stream/partitioner.h"

namespace {
using namespace ustream;

// "(site:0 | ... | site:n-2) \ site:n-1": n operands, mixed operators,
// bounded at the top level (a pure union chain would be, too, but the
// difference keeps the evaluator's mask machine honest).
std::string expr_with_operands(std::size_t n) {
  std::string s = "(";
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i > 0) s += " | ";
    s += "site:" + std::to_string(i);
  }
  s += ") \\ site:" + std::to_string(n - 1);
  return s;
}

// Coordinated per-site sketches over a shared overlapping workload — the
// operand pool every row draws from.
std::vector<F0Estimator> make_sketches(std::size_t sites) {
  DistributedConfig config;
  config.sites = sites;
  config.union_distinct = 60'000;
  config.overlap = 0.3;
  config.seed = 19;
  const DistributedWorkload data = make_distributed_workload(config);
  const EstimatorParams params = EstimatorParams::for_guarantee(0.1, 0.05, 19);
  std::vector<F0Estimator> out;
  for (std::size_t s = 0; s < sites; ++s) {
    F0Estimator est(params);
    for (const Item& item : data.site_streams[s]) est.add(item.label);
    out.push_back(std::move(est));
  }
  return out;
}

query::ResolveSketch resolver(const std::vector<F0Estimator>& sketches) {
  return [&sketches](const query::Expr& leaf) -> const F0Estimator* {
    if (leaf.operand != query::OperandKind::kSite) return nullptr;
    return leaf.id < sketches.size() ? &sketches[leaf.id] : nullptr;
  };
}

void BM_QueryParse(benchmark::State& state) {
  const std::string text = expr_with_operands(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::parse(text));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryParse)->Arg(2)->Arg(4)->Arg(8);

void BM_QueryEval(benchmark::State& state) {
  const auto ops = static_cast<std::size_t>(state.range(0));
  const std::vector<F0Estimator> sketches = make_sketches(ops);
  const query::ExprPtr expr = query::parse(expr_with_operands(ops));
  const query::ResolveSketch resolve = resolver(sketches);
  for (auto _ : state) {
    const query::QueryResult r = query::evaluate<F0Estimator>(*expr, resolve);
    benchmark::DoNotOptimize(r.estimate);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(sketches.front().num_copies()) + " copies");
}
BENCHMARK(BM_QueryEval)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// One admin round trip, same shape as `ustream query --from`: connect,
// one-line request, read to EOF (the admin protocol is response-then-close).
std::string admin_roundtrip(std::uint16_t port, const std::string& request) {
  net::Socket sock = net::connect_tcp("127.0.0.1", port, std::chrono::milliseconds{2000},
                                      std::chrono::milliseconds{2000});
  const std::string line = request + "\n";
  net::send_all(sock, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(line.data()), line.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

void BM_QueryEndToEnd(benchmark::State& state) {
  const std::vector<F0Estimator> sketches = make_sketches(4);
  net::RefereeServerConfig config;
  config.sites = 1;  // never reports: the loop runs until request_stop()
  config.dedup = DedupMode::kLatestWins;
  config.admin_port = 0;
  config.query_handler = [&sketches](const std::string& raw, bool as_json) {
    const std::string text = query::percent_decode(raw);
    const query::QueryResult r = query::run_query(text, resolver(sketches));
    return as_json ? query::format_query_json(text, r)
                   : query::format_query_text(text, r);
  };
  net::RefereeServer server(std::move(config));
  std::thread referee([&server] {
    server.run([](std::size_t, std::uint32_t, std::uint16_t, PayloadKind,
                  std::vector<std::uint8_t>&&) { return true; });
  });
  const std::string request =
      "GET /query?e=" + query::percent_encode("(site:0 | site:1) & !site:2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(admin_roundtrip(*server.admin_port(), request));
  }
  server.request_stop();
  referee.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
