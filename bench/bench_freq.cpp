// E20 — the frequency subsystem: batched ingest throughput vs the
// coordinated-sampler path on the SAME Zipf workload, and heavy-hitter
// recall over the union of 64 sites at heavy skew.
//
// Rows gated by bench/run_freq_bench.sh against bench/BENCH_freq.json:
//   * BM_FreqIngestBatch vs BM_SamplerHeavyKeyObserve — the freq bundle
//     (count-sketch + space-saver) must stay within 2x (>= 0.5x floor) of
//     the sampler path this subsystem replaces for heavy-key tracking:
//     the netmon superspreader's observe loop, whose per-item cost is a
//     table probe plus a per-source coordinated-sampler add. Measured the
//     freq bundle is ~1.7x FASTER — the floor guards against the batched
//     hash_block ingest rotting back to per-label hashing. (The raw
//     distinct sampler's SIMD threshold-reject batch path,
//     BM_SamplerIngestBatch below, is 20-50x faster than either: it
//     touches no per-label state once saturated. It is reported for
//     context and gated only by the baseline tolerance.)
//   * BM_FreqUnionRecall/64 — carries a `recall` counter (true top-k
//     found in the merged top-2k), gated at >= 0.95 by the --accuracy
//     spec. This is the ISSUE acceptance number: Zipf alpha = 1.5 over 64
//     sites.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "freq/freq_sketch.h"
#include "freq/universal_sketch.h"
#include "hash/pairwise.h"
#include "netmon/superspreader.h"
#include "stream/zipf.h"

namespace {
using namespace ustream;

constexpr std::size_t kStreamLen = 1 << 16;  // pre-generated, RNG out of loop
constexpr std::size_t kBatchSpan = 256;      // labels per add_batch call

// The shared workload: Zipf-skewed labels, the regime heavy-hitter
// tracking exists for (and a fair one for the sampler comparator — both
// structures see duplicates-heavy traffic).
std::vector<std::uint64_t> zipf_stream(double alpha, std::size_t distinct,
                                       std::uint64_t seed) {
  ZipfDistribution zipf(distinct, alpha);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> labels(kStreamLen);
  for (auto& l : labels) l = 0x9e3779b97f4a7c15ULL * zipf.sample(rng);
  return labels;
}

// --- batched ingest: freq bundle vs sampler, same stream -------------------

void BM_FreqIngestScalar(benchmark::State& state) {
  const auto labels = zipf_stream(1.5, 100'000, 11);
  FreqSketch sketch(FreqConfig{.depth = 4, .width_log2 = 12, .heavy_capacity = 64, .seed = 5});
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.add(labels[i++ & (kStreamLen - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqIngestScalar);

void BM_FreqIngestBatch(benchmark::State& state) {
  const auto labels = zipf_stream(1.5, 100'000, 11);
  FreqSketch sketch(FreqConfig{.depth = 4, .width_log2 = 12, .heavy_capacity = 64, .seed = 5});
  std::size_t offset = 0;
  for (auto _ : state) {
    sketch.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
}
BENCHMARK(BM_FreqIngestBatch);

// The gated comparator: the sampler-based heavy-key path (the netmon
// superspreader) on the SAME stream with an equivalent tracking budget.
// Each occurrence is a fresh destination, so heavy labels are exactly the
// superspreaders it hunts; per item it pays a source-table probe plus a
// per-source coordinated-sampler add — the apples-to-apples cost of
// tracking heavy keys with the sampler machinery.
void BM_SamplerHeavyKeyObserve(benchmark::State& state) {
  const auto labels = zipf_stream(1.5, 100'000, 11);
  SuperspreaderConfig config;
  config.table_capacity = 64;
  config.sampler_capacity = 32;
  config.admission_level = 0;
  config.seed = 5;
  SuperspreaderDetector detector(config);
  std::uint64_t destination = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    detector.observe(labels[i++ & (kStreamLen - 1)], ++destination);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerHeavyKeyObserve);

// The raw distinct sampler's batched path on the same stream: once
// saturated it SIMD-rejects duplicates without touching per-label state,
// so it is far faster than any per-label counter structure — context for
// the numbers above, gated only by the baseline tolerance.
void BM_SamplerIngestBatch(benchmark::State& state) {
  const auto labels = zipf_stream(1.5, 100'000, 11);
  CoordinatedSampler<PairwiseHash, Unit> sampler(1024, 5);
  std::size_t offset = 0;
  for (auto _ : state) {
    sampler.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
  state.counters["final_level"] = sampler.level();
}
BENCHMARK(BM_SamplerIngestBatch);

// The universal sketch's layered ingest (L freq layers behind one SIMD
// hash pass) — gated only by the baseline tolerance.
void BM_UniversalIngestBatch(benchmark::State& state) {
  const auto labels = zipf_stream(1.5, 100'000, 11);
  UniversalSketch us(UniversalConfig{.levels = 8, .depth = 4, .width_log2 = 10,
                                     .heavy_capacity = 32, .seed = 5});
  std::size_t offset = 0;
  for (auto _ : state) {
    us.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
}
BENCHMARK(BM_UniversalIngestBatch);

// --- union heavy hitters at scale ------------------------------------------
//
// Arg: site count. The measured loop is the referee-side fold of the
// per-site summaries; the `recall` counter (true top-20 found in the
// merged top-40) is the E20 acceptance number the runner gates at 0.95.
void BM_FreqUnionRecall(benchmark::State& state) {
  const auto sites_count = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kItemsPerSite = 1 << 14;
  constexpr std::size_t kTop = 20;
  const FreqConfig config{.depth = 4, .width_log2 = 12, .heavy_capacity = 64, .seed = 9};

  ZipfDistribution zipf(1'000'000, 1.5);
  Xoshiro256 rng(21);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  std::vector<FreqSketch> sites(sites_count, FreqSketch(config));
  std::vector<std::uint64_t> block(kBatchSpan);
  for (std::size_t s = 0; s < sites_count; ++s) {
    for (std::size_t i = 0; i < kItemsPerSite; i += kBatchSpan) {
      for (auto& l : block) {
        l = 0x9e3779b97f4a7c15ULL * zipf.sample(rng);
        ++truth[l];
      }
      sites[s].add_batch(block);
    }
  }

  FreqSketch merged(config);
  for (auto _ : state) {
    FreqSketch fold = sites[0];
    for (std::size_t s = 1; s < sites_count; ++s) fold.merge(sites[s]);
    benchmark::DoNotOptimize(fold.f2());
    merged = std::move(fold);
  }
  // No SetItemsProcessed: this row exists for the recall counter (gated by
  // the runner's --accuracy spec); its fold rate is a few dozen merges per
  // second and too noisy for the baseline tolerance to gate meaningfully.

  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(truth.begin(), truth.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const auto reported = merged.top(2 * kTop);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kTop && i < rows.size(); ++i) {
    for (const auto& hh : reported) {
      if (hh.label == rows[i].first) {
        ++hits;
        break;
      }
    }
  }
  state.counters["recall"] =
      static_cast<double>(hits) / static_cast<double>(std::min(kTop, rows.size()));
  state.counters["tracked"] = static_cast<double>(merged.heavy().size());
}
BENCHMARK(BM_FreqUnionRecall)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
