#!/usr/bin/env bash
# Runs the scalar-vs-batch ingestion rows of bench_throughput with JSON
# output and gates them against the checked-in baseline
# (bench/BENCH_throughput.json) via check_regression.py — including the
# >= 2x batched-vs-scalar floor in the saturated capacity-1024 regime.
#
# Usage:
#   bench/run_bench.sh [build-dir]            # measure + gate
#   bench/run_bench.sh --update [build-dir]   # also refresh the baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_throughput.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_throughput -j >/dev/null

# 0.2s per measurement keeps the full grid under a minute; the Ingest*
# filter selects exactly the rows the regression gate understands.
"$build/bench/bench_throughput" \
  --benchmark_filter='Ingest' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
