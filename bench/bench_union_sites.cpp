// E4 — Theorem T2: the union over t distributed streams. Sweeps the number
// of sites and the inter-site overlap; reports the union estimate's error,
// the error a naive sum-of-per-site-estimates would make, and the exact
// communication cost (bytes per party, one message each).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/f0_estimator.h"
#include "distributed/continuous.h"
#include "distributed/protocols.h"
#include "stream/partitioner.h"

namespace {
using namespace ustream;
using namespace ustream::bench;
}  // namespace

int main() {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 321);

  title("E4a: union error vs number of sites (union F0 = 100k, overlap 0.5)");
  note("claim: error independent of t; one sketch-sized message per site");
  {
    Table t({"sites", "rel err", "msgs", "bytes/site", "total B"}, 12);
    for (std::size_t sites : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32}, std::size_t{64}}) {
      const auto w = make_distributed_workload({.sites = sites, .union_distinct = 100'000,
                                                .overlap = 0.5, .duplication = 2.0,
                                                .zipf_alpha = 1.0, .seed = 77});
      const auto res = run_f0_union(w, params);
      t.row({fmt("%zu", sites), fmt("%.4f", res.relative_error),
             fmt("%llu", static_cast<unsigned long long>(res.channel.messages)),
             fmt("%.0f", res.channel.mean_message_bytes()),
             fmt("%llu", static_cast<unsigned long long>(res.channel.total_bytes))});
    }
  }

  title("E4b: union vs naive-sum as overlap grows (8 sites, union F0 = 100k)");
  note("claim shape: naive overcount -> (1 + 7*overlap)x; union estimate stays flat");
  {
    Table t({"overlap", "union err", "naive est", "naive x", "union est"}, 12);
    for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const auto w = make_distributed_workload({.sites = 8, .union_distinct = 100'000,
                                                .overlap = overlap, .duplication = 2.0,
                                                .zipf_alpha = 1.0, .seed = 78});
      // Per-site estimates for the naive answer.
      double naive = 0.0;
      DistributedRun<F0Estimator> run(8, [&] { return F0Estimator(params); });
      for (std::size_t s = 0; s < 8; ++s) {
        for (const Item& item : w.site_streams[s]) run.site(s).add(item.label);
        naive += run.site(s).estimate();
      }
      const double union_est = run.collect().estimate();
      t.row({fmt("%.2f", overlap),
             fmt("%.4f", relative_error(union_est, double(w.union_distinct))),
             fmt("%.0f", naive), fmt("%.2f", naive / double(w.union_distinct)),
             fmt("%.0f", union_est)});
    }
  }

  title("E4c: message bytes vs epsilon (4 sites; communication ~ 1/eps^2)");
  {
    Table t({"eps", "bytes/site", "union err"}, 12);
    const auto w = make_distributed_workload({.sites = 4, .union_distinct = 100'000,
                                              .overlap = 0.5, .duplication = 2.0,
                                              .seed = 79});
    for (double eps : {0.3, 0.2, 0.1, 0.05}) {
      const auto res = run_f0_union(w, EstimatorParams::for_guarantee(eps, 0.05, 500));
      t.row({fmt("%.2f", eps), fmt("%.0f", res.channel.mean_message_bytes()),
             fmt("%.4f", res.relative_error)});
    }
  }

  title("E4d: continuous-monitoring extension — staleness/communication tradeoff");
  note("(beyond the paper's one-shot model; periodic snapshot pushes)");
  {
    Table t({"interval", "snapshots", "total B", "final err"}, 12);
    const auto w = make_distributed_workload({.sites = 4, .union_distinct = 50'000,
                                              .overlap = 0.3, .duplication = 2.0,
                                              .seed = 80});
    for (std::uint64_t interval : {std::uint64_t{1000}, std::uint64_t{10'000},
                                   std::uint64_t{100'000}}) {
      ContinuousUnionMonitor mon(4, interval, params);
      for (std::size_t s = 0; s < 4; ++s) {
        for (const Item& item : w.site_streams[s]) mon.observe(s, item.label);
      }
      mon.flush();
      t.row({fmt("%llu", static_cast<unsigned long long>(interval)),
             fmt("%llu", static_cast<unsigned long long>(mon.snapshots_received())),
             fmt("%llu", static_cast<unsigned long long>(mon.channel_stats().total_bytes)),
             fmt("%.4f", relative_error(mon.estimate(), double(w.union_distinct)))});
    }
  }
  return 0;
}
