// E1 — Theorem T1 accuracy. For each epsilon, run many independent trials
// and report the error distribution and the empirical failure probability
// Pr[relative error > epsilon], which the theorem bounds by delta.
// Also ablates the capacity constant (DESIGN.md section 5).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/f0_estimator.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

double one_trial(double eps, double delta, std::size_t distinct, std::uint64_t seed,
                 double capacity_constant = EstimatorParams::kDefaultCapacityConstant) {
  F0Estimator est(EstimatorParams::for_guarantee(eps, delta, seed, capacity_constant));
  Xoshiro256 rng(seed ^ 0x5151);
  for (std::size_t i = 0; i < distinct; ++i) est.add(rng.next());
  return relative_error(est.estimate(), static_cast<double>(distinct));
}
}  // namespace

int main() {
  constexpr double kDelta = 0.05;

  title("E1a: error vs epsilon (F0 = 100k, delta = 0.05, 40 trials each)");
  note("claim: Pr[rel.err > eps] <= delta; observed failure fraction in last column");
  {
    Table t({"eps", "capacity", "copies", "mean err", "p50 err", "p95 err", "fail frac"});
    for (double eps : {0.30, 0.20, 0.10, 0.05, 0.03}) {
      const auto params = EstimatorParams::for_guarantee(eps, kDelta);
      const auto errors = run_trials(
          40, [&](std::uint64_t seed) { return one_trial(eps, kDelta, 100'000, seed); });
      t.row({fmt("%.2f", eps), fmt("%zu", params.capacity), fmt("%zu", params.copies),
             fmt("%.4f", errors.mean()), fmt("%.4f", errors.median()),
             fmt("%.4f", errors.quantile(0.95)), fmt("%.3f", errors.fraction_above(eps))});
    }
  }

  title("E1b: error vs true F0 at eps = 0.1 (space is CONSTANT in F0)");
  {
    Table t({"true F0", "mean err", "p95 err", "fail frac"});
    for (std::size_t distinct : {std::size_t{1000}, std::size_t{10'000}, std::size_t{100'000},
                                 std::size_t{1'000'000}}) {
      const auto errors = run_trials(
          25, [&](std::uint64_t seed) { return one_trial(0.1, kDelta, distinct, seed); },
          20'000);
      t.row({fmt("%zu", distinct), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95)), fmt("%.3f", errors.fraction_above(0.1))});
    }
  }

  title("E1c: capacity-constant ablation (eps = 0.1, F0 = 100k, 30 trials)");
  note("claim shape: error ~ 1/sqrt(constant); 36 is the paper-style safe choice");
  {
    Table t({"constant", "capacity", "mean err", "p95 err", "fail frac"});
    for (double constant : {6.0, 12.0, 24.0, 36.0, 48.0}) {
      const auto errors = run_trials(30, [&](std::uint64_t seed) {
        return one_trial(0.1, kDelta, 100'000, seed, constant);
      });
      t.row({fmt("%.0f", constant),
             fmt("%zu", EstimatorParams::capacity_for_epsilon(0.1, constant)),
             fmt("%.4f", errors.mean()), fmt("%.4f", errors.quantile(0.95)),
             fmt("%.3f", errors.fraction_above(0.1))});
    }
  }

  title("E1d: median-of-copies vs one big sampler at EQUAL space (F0 = 100k)");
  note("copies buy failure-probability, capacity buys per-copy accuracy");
  {
    Table t({"layout", "capacity", "copies", "mean err", "p95 err"});
    struct Layout {
      std::size_t capacity, copies;
      const char* name;
    };
    for (const Layout& l : {Layout{3600, 9, "9 x 3600"}, Layout{10'800, 3, "3 x 10800"},
                            Layout{32'400, 1, "1 x 32400"}}) {
      const auto errors = run_trials(30, [&](std::uint64_t seed) {
        F0Estimator est(EstimatorParams{.capacity = l.capacity, .copies = l.copies,
                                        .seed = seed});
        Xoshiro256 rng(seed ^ 0x77);
        for (std::size_t i = 0; i < 100'000; ++i) est.add(rng.next());
        return relative_error(est.estimate(), 100'000.0);
      });
      t.row({l.name, fmt("%zu", l.capacity), fmt("%zu", l.copies), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }
  return 0;
}
