// Shared helpers for the experiment harnesses: fixed-width table printing
// in the style of the paper's result rows, plus a trial runner that
// aggregates relative errors over independent seeds.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"

namespace ustream::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// Minimal fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : cols_(headers.size()), width_(col_width) {
    for (const auto& h : headers) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols_; ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  // Row cells are preformatted strings.
  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::size_t cols_;
  int width_;
};

inline std::string fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

// Runs `trial(seed)` -> relative error, over `trials` distinct seeds.
inline Sample run_trials(int trials, const std::function<double(std::uint64_t)>& trial,
                         std::uint64_t seed_base = 10'000) {
  Sample errors;
  for (int t = 0; t < trials; ++t) {
    errors.add(trial(seed_base + static_cast<std::uint64_t>(t) * 7919));
  }
  return errors;
}

}  // namespace ustream::bench
