// E17 — what durability costs. Two families, gated against
// bench/BENCH_wal.json by bench/run_wal_bench.sh:
//
//   * BM_WalAppend/<policy>/<payload> — the raw group-commit path:
//     append one framed record + commit (write() to the kernel, fsync per
//     policy) per iteration. The never/interval/always spread IS the
//     fsync-policy cost table quoted in EXPERIMENTS.md E17.
//   * BM_NetPushWalOff|On/<payload> — the end-to-end question: a full
//     push round trip against the production RefereeServer with the WAL
//     disabled vs enabled (fsync=interval, the default). The runner
//     enforces WalOn >= 0.5x WalOff: durability may cost, but if an
//     accepted push gets less than half its former throughput the WAL
//     append has landed somewhere hot it doesn't belong (per-byte work,
//     a sync in the event loop, an accidental always-fsync).
//
// Every harness gets a fresh mkdtemp'd WAL dir (DurableLog refuses dirty
// dirs by design) and removes it on teardown.
#include <benchmark/benchmark.h>

#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/frame.h"
#include "common/random.h"
#include "durability/wal.h"
#include "net/referee_server.h"
#include "net/tcp_transport.h"

namespace {
using namespace ustream;

std::string fresh_dir() {
  char tmpl[] = "/tmp/ustream_bench_wal_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) std::abort();
  return dir;
}

std::vector<std::uint8_t> random_frame(std::size_t payload_bytes, std::uint32_t epoch) {
  std::vector<std::uint8_t> payload(payload_bytes);
  Xoshiro256 rng(17);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  return frame_encode({PayloadKind::kF0Estimator, 0, epoch}, payload);
}

void wal_append_rows(benchmark::State& state, durability::FsyncPolicy policy) {
  const std::string dir = fresh_dir();
  {
    durability::WalConfig config;
    config.dir = dir;
    config.run_id = 1;
    config.shard = 0;
    config.fsync = policy;
    config.segment_bytes = 1ull << 30;  // measure appends, not rotations
    durability::WalWriter writer(config, /*start_seq=*/0, /*watermark=*/0);
    const auto frame = random_frame(static_cast<std::size_t>(state.range(0)), 1);
    for (auto _ : state) {
      writer.append(frame);
      writer.commit();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(frame.size()));
  }
  std::filesystem::remove_all(dir);
}

void BM_WalAppend_never(benchmark::State& state) {
  wal_append_rows(state, durability::FsyncPolicy::kNever);
}
void BM_WalAppend_interval(benchmark::State& state) {
  wal_append_rows(state, durability::FsyncPolicy::kInterval);
}
void BM_WalAppend_always(benchmark::State& state) {
  wal_append_rows(state, durability::FsyncPolicy::kAlways);
}
BENCHMARK(BM_WalAppend_never)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalAppend_interval)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalAppend_always)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);

// The same live-referee harness bench_net uses (one extra site that never
// reports keeps the loop running; kLatestWins lets one site push an
// unbounded run of fresh epochs — every one an arbitration WINNER, so with
// the WAL on every push takes the full append+commit path).
class RefereeHarness {
 public:
  explicit RefereeHarness(bool wal_on) : wal_dir_(wal_on ? fresh_dir() : "") {
    net::RefereeServerConfig config;
    config.sites = 2;
    config.dedup = DedupMode::kLatestWins;
    if (wal_on) {
      net::RefereeServerConfig::Durability wal;
      wal.dir = wal_dir_;
      wal.fsync = durability::FsyncPolicy::kInterval;
      config.wal = wal;
    }
    server_ = std::make_unique<net::RefereeServer>(std::move(config));
    referee_ = std::thread([this] {
      server_->run([](std::size_t, std::uint32_t, std::uint16_t, PayloadKind, std::vector<std::uint8_t>&&) {
        return true;
      });
    });
  }

  ~RefereeHarness() {
    server_->request_stop();
    referee_.join();
    if (!wal_dir_.empty()) std::filesystem::remove_all(wal_dir_);
  }

  std::uint16_t port() const noexcept { return server_->port(); }

 private:
  std::string wal_dir_;
  std::unique_ptr<net::RefereeServer> server_;
  std::thread referee_;
};

void net_push_rows(benchmark::State& state, bool wal_on) {
  RefereeHarness referee(wal_on);
  net::TcpTransportConfig tconfig;
  tconfig.port = referee.port();
  net::TcpTransport transport(1, tconfig);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(17);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    const auto frame = frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_NetPushWalOff(benchmark::State& state) { net_push_rows(state, false); }
void BM_NetPushWalOn(benchmark::State& state) { net_push_rows(state, true); }
BENCHMARK(BM_NetPushWalOff)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NetPushWalOn)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
