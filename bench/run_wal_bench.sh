#!/usr/bin/env bash
# Runs the durability rows of bench_wal with JSON output and gates them
# against the checked-in baseline (bench/BENCH_wal.json) via
# check_regression.py. One speedup floor is enforced:
#
#   * WAL TAX, always on: an accepted push against the WAL-enabled
#     referee (fsync=interval, the serve default) must keep >= 0.5x the
#     items/sec of the WAL-off referee at the 1 KiB payload. Measured
#     ~0.9x on the reference machine — the group commit is one buffered
#     write() per accepted frame, off the per-byte path — so the floor
#     only trips if the append lands somewhere hot (per-read work, a
#     stray fsync in the event loop).
#
# The BM_WalAppend_{never,interval,always} rows are gated only by the
# baseline tolerance: their absolute numbers are the fsync-policy cost
# table quoted in EXPERIMENTS.md E17, and `always` is storage-bound —
# a floor tied to loopback rows would just measure the disk.
#
# Usage:
#   bench/run_wal_bench.sh [build-dir]            # measure + gate
#   bench/run_wal_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_wal.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_wal -j >/dev/null

"$build/bench/bench_wal" \
  --benchmark_filter='BM_Wal|BM_NetPushWal' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

gates=(--speedup 'BM_NetPushWalOff/1024,BM_NetPushWalOn/1024,0.5')

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    "${gates[@]}"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
