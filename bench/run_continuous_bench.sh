#!/usr/bin/env bash
# Runs the continuous-protocol rows of bench_continuous (E18) and gates
# them. The binary is SELF-GATING on the acceptance criteria: at 64 sites
# x 2^20 items/site it exits nonzero if any of the 64 checkpoint estimates
# leaves the configured (eps, delta) envelope against the exact distinct
# count, or if delta mode spends more than 10% of the full-snapshot
# protocol's bytes-on-wire or messages. On top of that, check_regression.py
# enforces:
#
#   * the items/sec baseline tolerance against bench/BENCH_continuous.json
#     (wider than the micro-bench gates: each row is a single 67M-item
#     macro run, so the per-row noise is higher), and
#   * END-TO-END SPEEDUP: the delta-protocol row must process the stream
#     >= 2x faster than the snapshot row. Measured ~5x on the reference
#     machine — the snapshot protocol serializes a full sketch every 256
#     items while delta mode serializes ~500-byte deltas a few thousand
#     times total — so the floor only trips if threshold bookkeeping lands
#     on the per-item path.
#
# Usage:
#   bench/run_continuous_bench.sh [build-dir]            # measure + gate
#   bench/run_continuous_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_continuous.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_continuous -j >/dev/null

# Exits nonzero on any envelope or <=10% wire-cost violation (the
# acceptance gate lives in the binary so it also fires under plain
# `./build/bench/bench_continuous`).
"$build/bench/bench_continuous" \
  --benchmark_filter='BM_Continuous' \
  --benchmark_out="$current" \
  --benchmark_out_format=json

gates=(--speedup 'BM_ContinuousSnapshot/64/iterations:1,BM_ContinuousDelta/64/iterations:1,2.0')

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    --tolerance 0.5 \
    "${gates[@]}"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
