// E13 — the "sample of the union" itself (BottomKSampler): distinct-count
// accuracy vs k, fidelity of value statistics over distinct labels under
// heavy duplication, and the union-sample property across sites.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/distinct_sampler.h"
#include "stream/generators.h"
#include "stream/partitioner.h"

namespace {
using namespace ustream;
using namespace ustream::bench;
}  // namespace

int main() {
  title("E13a: KMV-form distinct estimate, error vs k (F0 = 500k, 15 trials)");
  note("claim shape: stderr ~ 1/sqrt(k)");
  {
    Table t({"k", "mean err", "p95 err", "pred 1/sqrt(k)"}, 15);
    for (std::size_t k : {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
                          std::size_t{16384}}) {
      const auto errors = run_trials(15, [&](std::uint64_t seed) {
        BottomKSampler s(k, seed);
        Xoshiro256 rng(seed ^ 0xf00d);
        for (int i = 0; i < 500'000; ++i) s.add(rng.next(), 0.0);
        return relative_error(s.estimate_distinct(), 500'000.0);
      });
      t.row({fmt("%zu", k), fmt("%.4f", errors.mean()), fmt("%.4f", errors.quantile(0.95)),
             fmt("%.4f", 1.0 / std::sqrt(static_cast<double>(k)))});
    }
  }

  title("E13b: value statistics over DISTINCT labels under zipf duplication");
  note("per-item averages would be multiplicity-weighted; the sample is not");
  {
    Table t({"alpha", "mean err", "p50 err", "p90 err"}, 12);
    for (double alpha : {0.0, 1.0, 1.8}) {
      Sample mean_err, p50_err, p90_err;
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        SyntheticStream stream({.distinct = 100'000, .total_items = 800'000,
                                .zipf_alpha = alpha, .seed = seed + 1, .value_lo = 0.0,
                                .value_hi = 10.0});
        BottomKSampler s(4096, seed + 50);
        while (!stream.done()) {
          const Item item = stream.next();
          s.add(item.label, item.value);
        }
        mean_err.add(relative_error(s.estimate_value_mean(), 5.0));
        p50_err.add(relative_error(s.estimate_value_quantile(0.5), 5.0));
        p90_err.add(relative_error(s.estimate_value_quantile(0.9), 9.0));
      }
      t.row({fmt("%.1f", alpha), fmt("%.4f", mean_err.mean()), fmt("%.4f", p50_err.mean()),
             fmt("%.4f", p90_err.mean())});
    }
  }

  title("E13c: sample of the UNION — per-site bottom-k merge, 8 sites");
  {
    const auto w = make_distributed_workload({.sites = 8, .union_distinct = 200'000,
                                              .overlap = 0.5, .duplication = 2.0,
                                              .seed = 9, .value_lo = 0.0, .value_hi = 1.0});
    BottomKSampler merged(4096, 31);
    std::size_t message_bytes = 0;
    for (const auto& stream : w.site_streams) {
      BottomKSampler site(4096, 31);
      for (const Item& item : stream) site.add(item.label, item.value);
      message_bytes += site.serialize().size();
      merged.merge(site);
    }
    Table t({"union F0", "estimate", "rel err", "bytes/site"}, 12);
    t.row({fmt("%zu", w.union_distinct), fmt("%.0f", merged.estimate_distinct()),
           fmt("%.4f", relative_error(merged.estimate_distinct(),
                                      static_cast<double>(w.union_distinct))),
           fmt("%zu", message_bytes / 8)});
  }
  return 0;
}
