#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Reads two google-benchmark JSON files (a checked-in baseline such as
bench/BENCH_throughput.json or bench/BENCH_merge.json, and a fresh run from
bench/run_bench.sh / bench/run_merge_bench.sh) and fails if:

  * any benchmark present in both regressed in items_per_second by more
    than --tolerance (fractional; generous by default because the CI
    machines are noisy single-core VMs), or
  * any required speedup pair dips below its floor. Pairs come from
    repeated --speedup SLOW,FAST,FLOOR arguments (measured on the CURRENT
    run: items/sec of FAST must be >= FLOOR * items/sec of SLOW); with no
    --speedup given, the legacy --scalar/--batch/--speedup-floor trio
    forms the single pair (the ingestion gate's >= 2x batch floor), or
  * any accuracy floor is missed. Floors come from repeated
    --accuracy NAME,FIELD,FLOOR arguments: benchmark NAME in the CURRENT
    run must carry a custom counter FIELD (google-benchmark counters
    appear as plain fields on the benchmark object) whose median is
    >= FLOOR. This is how the freq gate pins heavy-hitter recall.

Exit status 0 on pass, 1 on any failure.
"""

import argparse
import json
import statistics
import sys


def die(message):
    """A malformed input is a usage error, not a perf regression: name the
    file and row instead of letting a KeyError traceback bury the cause."""
    print(f"check_regression: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_items_per_second(path):
    """name -> items/sec; the MEDIAN when a name repeats (benchmark
    --benchmark_repetitions, or several runs merged into one file, as
    bench/run_obs_bench.sh does to wash out thermal drift)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as exc:
        die(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        die(f"{path} is not valid JSON ({exc}) — was the benchmark "
            f"interrupted mid-write?")
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        die(f"{path}: expected google-benchmark JSON with a top-level "
            f"'benchmarks' array (got {type(data).__name__})")
    samples = {}
    for index, bench in enumerate(data["benchmarks"]):
        if not isinstance(bench, dict):
            die(f"{path}: benchmarks[{index}] is not an object")
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            die(f"{path}: benchmarks[{index}] has no 'name' field")
        rate = bench.get("items_per_second")
        if rate is None:
            # Rows without a throughput counter (no SetItemsProcessed) are
            # legitimately ungated; note them rather than crashing or
            # silently pretending the row was measured.
            print(f"NO-RATE     {name}: no items_per_second in {path}; "
                  f"row not gated")
            continue
        try:
            samples.setdefault(name, []).append(float(rate))
        except (TypeError, ValueError):
            die(f"{path}: benchmarks[{index}] ({name}): items_per_second "
                f"{rate!r} is not a number")
    return {name: statistics.median(rates) for name, rates in samples.items()}


def load_counter(path, name, field):
    """Median of a custom counter across a named benchmark's non-aggregate
    rows, or None if the row or field is absent."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        die(f"cannot read {path}: {exc}")
    values = []
    for bench in data.get("benchmarks", []):
        if not isinstance(bench, dict) or bench.get("run_type") == "aggregate":
            continue
        if bench.get("name") != name:
            continue
        value = bench.get(field)
        if value is None:
            continue
        try:
            values.append(float(value))
        except (TypeError, ValueError):
            die(f"{path}: {name}: counter {field!r} value {value!r} "
                f"is not a number")
    return statistics.median(values) if values else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional items/sec slowdown vs baseline (default 0.30)")
    parser.add_argument(
        "--speedup-floor", type=float, default=2.0,
        help="required batch/scalar speedup in the saturated regime")
    parser.add_argument(
        "--scalar", default="BM_IngestScalar/1024/1",
        help="scalar side of the speedup pair")
    parser.add_argument(
        "--batch", default="BM_IngestBatch/1024/1",
        help="batched side of the speedup pair")
    parser.add_argument(
        "--speedup", action="append", metavar="SLOW,FAST,FLOOR",
        help="require items/sec(FAST) >= FLOOR * items/sec(SLOW) in the "
             "current run; repeatable, overrides --scalar/--batch")
    parser.add_argument(
        "--accuracy", action="append", metavar="NAME,FIELD,FLOOR",
        help="require the median of custom counter FIELD on benchmark NAME "
             "in the current run to be >= FLOOR; repeatable")
    args = parser.parse_args()

    accuracy_specs = []
    for spec in args.accuracy or []:
        parts = spec.rsplit(",", 2)
        if len(parts) != 3 or not parts[0] or not parts[1]:
            die(f"--accuracy {spec!r}: expected NAME,FIELD,FLOOR "
                f"(three comma-separated fields)")
        name, field, floor_text = parts
        try:
            floor = float(floor_text)
        except ValueError:
            die(f"--accuracy {spec!r}: floor {floor_text!r} is not a number")
        accuracy_specs.append((name, field, floor))

    if args.speedup:
        pairs = []
        for spec in args.speedup:
            parts = spec.rsplit(",", 2)
            if len(parts) != 3 or not parts[0] or not parts[1]:
                die(f"--speedup {spec!r}: expected SLOW,FAST,FLOOR "
                    f"(three comma-separated fields)")
            slow, fast, floor_text = parts
            try:
                floor = float(floor_text)
            except ValueError:
                die(f"--speedup {spec!r}: floor {floor_text!r} is not a number")
            pairs.append((slow, fast, floor))
    else:
        pairs = [(args.scalar, args.batch, args.speedup_floor)]

    baseline = load_items_per_second(args.baseline)
    current = load_items_per_second(args.current)
    failures = []

    for name in sorted(baseline):
        if name not in current:
            print(f"SKIP        {name}: not in current run")
            continue
        if baseline[name] <= 0.0:
            print(f"SKIP        {name}: baseline rate is {baseline[name]} "
                  f"(refresh the baseline with --update)")
            continue
        ratio = current[name] / baseline[name]
        ok = ratio >= 1.0 - args.tolerance
        print(f"{'OK' if ok else 'REGRESSION':11s} {name}: "
              f"{current[name] / 1e6:8.1f} M items/s "
              f"(baseline {baseline[name] / 1e6:8.1f}, {ratio:.2f}x)")
        if not ok:
            failures.append(
                f"{name}: {ratio:.2f}x of baseline "
                f"(threshold {1.0 - args.tolerance:.2f}x, "
                f"{current[name] / 1e6:.1f} vs {baseline[name] / 1e6:.1f} M items/s)")

    for slow, fast, floor in pairs:
        if slow in current and fast in current:
            speedup = current[fast] / current[slow]
            ok = speedup >= floor
            print(f"{'OK' if ok else 'TOO SLOW':11s} speedup "
                  f"({fast} / {slow}): {speedup:.2f}x (floor {floor:.2f}x)")
            if not ok:
                failures.append(
                    f"{fast} / {slow}: speedup {speedup:.2f}x below floor {floor:.2f}x")
        else:
            failures.append(f"{slow} / {fast}: speedup pair missing from current run")

    for name, field, floor in accuracy_specs:
        value = load_counter(args.current, name, field)
        if value is None:
            failures.append(f"{name}: counter {field!r} missing from current run")
            continue
        ok = value >= floor
        print(f"{'OK' if ok else 'TOO LOW':11s} accuracy "
              f"({name} {field}): {value:.4f} (floor {floor:.4f})")
        if not ok:
            failures.append(f"{name}: {field} {value:.4f} below floor {floor:.4f}")

    if failures:
        # One self-contained block per run: every failing row with its
        # measured ratio and the threshold it missed, so a red CI log
        # needs no scrolling back through the OK rows.
        print(f"\nFAIL: {len(failures)} of "
              f"{len(baseline) + len(pairs) + len(accuracy_specs)} "
              f"checks failed:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
