#!/usr/bin/env python3
"""Perf-regression gate for the batched ingestion path.

Reads two google-benchmark JSON files (the checked-in baseline
bench/BENCH_throughput.json and a fresh run from bench/run_bench.sh) and
fails if:

  * any benchmark present in both regressed in items_per_second by more
    than --tolerance (fractional; generous by default because the CI
    machines are noisy single-core VMs), or
  * the batched path is not at least --speedup-floor times faster than the
    scalar path in the saturated regime (BM_IngestBatch/1024/1 vs
    BM_IngestScalar/1024/1) — the ISSUE's >= 2x acceptance floor.

Exit status 0 on pass, 1 on any failure.
"""

import argparse
import json
import sys


def load_items_per_second(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate:
            rates[bench["name"]] = float(rate)
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional items/sec slowdown vs baseline (default 0.30)")
    parser.add_argument(
        "--speedup-floor", type=float, default=2.0,
        help="required batch/scalar speedup in the saturated regime")
    parser.add_argument(
        "--scalar", default="BM_IngestScalar/1024/1",
        help="scalar side of the speedup pair")
    parser.add_argument(
        "--batch", default="BM_IngestBatch/1024/1",
        help="batched side of the speedup pair")
    args = parser.parse_args()

    baseline = load_items_per_second(args.baseline)
    current = load_items_per_second(args.current)
    failures = []

    for name in sorted(baseline):
        if name not in current:
            print(f"SKIP        {name}: not in current run")
            continue
        ratio = current[name] / baseline[name]
        ok = ratio >= 1.0 - args.tolerance
        print(f"{'OK' if ok else 'REGRESSION':11s} {name}: "
              f"{current[name] / 1e6:8.1f} M items/s "
              f"(baseline {baseline[name] / 1e6:8.1f}, {ratio:.2f}x)")
        if not ok:
            failures.append(f"{name} regressed to {ratio:.2f}x of baseline")

    if args.scalar in current and args.batch in current:
        speedup = current[args.batch] / current[args.scalar]
        ok = speedup >= args.speedup_floor
        print(f"{'OK' if ok else 'TOO SLOW':11s} batch speedup "
              f"({args.batch} / {args.scalar}): {speedup:.2f}x "
              f"(floor {args.speedup_floor:.1f}x)")
        if not ok:
            failures.append(
                f"batch speedup {speedup:.2f}x below floor {args.speedup_floor:.1f}x")
    else:
        failures.append(
            f"speedup pair {args.scalar} / {args.batch} missing from current run")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
