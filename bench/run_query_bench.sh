#!/usr/bin/env bash
# Runs the query-engine rows of bench_query with JSON output and gates
# them against the checked-in baseline (bench/BENCH_query.json) via
# check_regression.py. One speedup floor is enforced:
#
#   * PARSE OFF THE HOT PATH: parsing an 8-operand expression must stay
#     >= 10x faster than evaluating it (BM_QueryParse/8 vs
#     BM_QueryEval/8). Evaluation walks operands x copies x retained
#     entries; the parser touches a few dozen tokens. Measured >= 100x on
#     the reference machine — the floor only trips if the grammar grows
#     something pathological (backtracking, per-token allocation storms).
#
# BM_QueryEndToEnd (a live `GET /query?e=...` admin round trip) is gated
# only by the baseline tolerance: its absolute number is RTT-bound and is
# the per-query cost quoted in EXPERIMENTS.md E19.
#
# Usage:
#   bench/run_query_bench.sh [build-dir]            # measure + gate
#   bench/run_query_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_query.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_query -j >/dev/null

"$build/bench/bench_query" \
  --benchmark_filter='BM_Query' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

gates=(--speedup 'BM_QueryEval/8,BM_QueryParse/8,10')

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    "${gates[@]}"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
