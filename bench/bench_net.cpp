// E9 — the wire: what the TCP referee costs over loopback. Three rows,
// gated against bench/BENCH_net.json by bench/run_net_bench.sh:
//
//   * BM_NetPushLatency/<payload>  — full push round trip (frame + length
//     prefix out, 1-byte ack back) on a PERSISTENT connection; items ==
//     pushes, so items_per_second reads as acked pushes per second.
//   * BM_NetThroughput/<payload>   — the same round trip at sketch-sized
//     payloads, with bytes_per_second reporting wire throughput.
//   * BM_NetPushReconnect/<payload>— one TcpTransport per push: dial (with
//     the backoff machinery engaged, though a live server answers on the
//     first attempt), push, tear down. The persistent/reconnect ratio is
//     the gate's speedup floor: keeping the connection must stay visibly
//     cheaper than redialing per frame.
//
// The referee runs exactly the production event loop (RefereeServer) on a
// second thread with a site that never reports, so the loop never reaches
// completion and request_stop() ends it; kLatestWins dedup lets one site
// push an unbounded run of fresh epochs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/frame.h"
#include "common/random.h"
#include "net/referee_server.h"
#include "net/tcp_transport.h"

namespace {
using namespace ustream;

// A live referee on an ephemeral loopback port that accepts pushes until
// torn down. The sink swallows payloads undecoded: these rows measure the
// wire and the event loop, not sketch deserialization (bench_merge's job).
class RefereeHarness {
 public:
  // `sites` always includes one extra site that never reports, so the loop
  // runs until request_stop(); `shards` spawns that many SO_REUSEPORT
  // worker event loops (1 == the sequential referee).
  explicit RefereeHarness(std::size_t sites = 2, std::size_t shards = 1)
      : server_(make_config(sites, shards)), referee_([this] {
          server_.run([](std::size_t, std::uint32_t, std::uint16_t, PayloadKind, std::vector<std::uint8_t>&&) {
            return true;
          });
        }) {}

  ~RefereeHarness() {
    server_.request_stop();
    referee_.join();
  }

  std::uint16_t port() const noexcept { return server_.port(); }

 private:
  static net::RefereeServerConfig make_config(std::size_t sites, std::size_t shards) {
    net::RefereeServerConfig config;
    config.sites = sites;  // the last site never reports
    config.shards = shards;
    config.dedup = DedupMode::kLatestWins;
    return config;
  }

  net::RefereeServer server_;
  std::thread referee_;
};

net::TcpTransportConfig client_config(std::uint16_t port) {
  net::TcpTransportConfig config;
  config.port = port;
  return config;
}

std::vector<std::uint8_t> random_payload(std::size_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  Xoshiro256 rng(17);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  return payload;
}

void BM_NetPushLatency(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  net::TcpTransport transport(1, client_config(referee.port()));
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPushLatency)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_NetThroughput(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  net::TcpTransport transport(1, client_config(referee.port()));
  std::uint32_t epoch = 0;
  std::int64_t wire_bytes = 0;
  for (auto _ : state) {
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
    wire_bytes += static_cast<std::int64_t>(frame.size()) + 4;  // + length prefix
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(wire_bytes);
}
BENCHMARK(BM_NetThroughput)->Arg(262144)->Arg(1048576)->Unit(benchmark::kMicrosecond);

void BM_NetPushReconnect(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    net::TcpTransport transport(1, client_config(referee.port()));
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPushReconnect)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Shard scaling at fixed offered load: 8 persistent pusher threads (one
// site each) drive a referee with Arg(0) = 1, 2 or 4 shard loops. The
// workload is identical across rows — only the number of worker event
// loops behind the SO_REUSEPORT group changes — so the 1-shard row is the
// sequential-referee capacity and the ratio to the 4-shard row is the
// multi-core collection-plane speedup bench/run_net_bench.sh gates on
// (machines with >= 4 cores only; a 1-core box cannot scale by fiat).
// UseRealTime: with threads, cpu-time-based rates sum the pusher threads'
// time and would hide the scaling this row exists to show.
constexpr int kScalingPushers = 8;

struct ShardScalingFixture {
  std::unique_ptr<RefereeHarness> referee;
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
};
ShardScalingFixture g_scaling;  // NOLINT: thread-0 setup/teardown (see below)

void BM_NetShardScaling(benchmark::State& state) {
  const auto payload = random_payload(4096);
  // google-benchmark barriers all threads between this setup block and the
  // first timed iteration, so thread 0 may publish the fixture plainly.
  if (state.thread_index() == 0) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    g_scaling.referee =
        std::make_unique<RefereeHarness>(kScalingPushers + 1, shards);
    g_scaling.transports.clear();
    for (int t = 0; t < state.threads(); ++t) {
      g_scaling.transports.push_back(std::make_unique<net::TcpTransport>(
          kScalingPushers, client_config(g_scaling.referee->port())));
    }
  }
  const auto site = static_cast<std::size_t>(state.thread_index());
  net::TcpTransport* transport = nullptr;
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    if (transport == nullptr) transport = g_scaling.transports[site].get();
    const auto frame = frame_encode(
        {PayloadKind::kF0Estimator, static_cast<std::uint32_t>(site), ++epoch},
        payload);
    benchmark::DoNotOptimize(transport->send_with_ack(site, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    g_scaling.transports.clear();
    g_scaling.referee.reset();
  }
}
BENCHMARK(BM_NetShardScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Threads(kScalingPushers)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
