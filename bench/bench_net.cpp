// E9 — the wire: what the TCP referee costs over loopback. Three rows,
// gated against bench/BENCH_net.json by bench/run_net_bench.sh:
//
//   * BM_NetPushLatency/<payload>  — full push round trip (frame + length
//     prefix out, 1-byte ack back) on a PERSISTENT connection; items ==
//     pushes, so items_per_second reads as acked pushes per second.
//   * BM_NetThroughput/<payload>   — the same round trip at sketch-sized
//     payloads, with bytes_per_second reporting wire throughput.
//   * BM_NetPushReconnect/<payload>— one TcpTransport per push: dial (with
//     the backoff machinery engaged, though a live server answers on the
//     first attempt), push, tear down. The persistent/reconnect ratio is
//     the gate's speedup floor: keeping the connection must stay visibly
//     cheaper than redialing per frame.
//
// The referee runs exactly the production event loop (RefereeServer) on a
// second thread with a site that never reports, so the loop never reaches
// completion and request_stop() ends it; kLatestWins dedup lets one site
// push an unbounded run of fresh epochs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/frame.h"
#include "common/random.h"
#include "net/referee_server.h"
#include "net/tcp_transport.h"

namespace {
using namespace ustream;

// A live referee on an ephemeral loopback port that accepts pushes until
// torn down. The sink swallows payloads undecoded: these rows measure the
// wire and the event loop, not sketch deserialization (bench_merge's job).
class RefereeHarness {
 public:
  RefereeHarness()
      : server_(make_config()), referee_([this] {
          server_.run([](std::size_t, std::uint32_t, std::vector<std::uint8_t>&&) {
            return true;
          });
        }) {}

  ~RefereeHarness() {
    server_.request_stop();
    referee_.join();
  }

  std::uint16_t port() const noexcept { return server_.port(); }

 private:
  static net::RefereeServerConfig make_config() {
    net::RefereeServerConfig config;
    config.sites = 2;  // site 1 never reports: the loop runs until stopped
    config.dedup = DedupMode::kLatestWins;
    return config;
  }

  net::RefereeServer server_;
  std::thread referee_;
};

net::TcpTransportConfig client_config(std::uint16_t port) {
  net::TcpTransportConfig config;
  config.port = port;
  return config;
}

std::vector<std::uint8_t> random_payload(std::size_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  Xoshiro256 rng(17);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  return payload;
}

void BM_NetPushLatency(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  net::TcpTransport transport(1, client_config(referee.port()));
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPushLatency)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_NetThroughput(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  net::TcpTransport transport(1, client_config(referee.port()));
  std::uint32_t epoch = 0;
  std::int64_t wire_bytes = 0;
  for (auto _ : state) {
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
    wire_bytes += static_cast<std::int64_t>(frame.size()) + 4;  // + length prefix
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(wire_bytes);
}
BENCHMARK(BM_NetThroughput)->Arg(262144)->Arg(1048576)->Unit(benchmark::kMicrosecond);

void BM_NetPushReconnect(benchmark::State& state) {
  const auto payload = random_payload(static_cast<std::size_t>(state.range(0)));
  RefereeHarness referee;
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    net::TcpTransport transport(1, client_config(referee.port()));
    const auto frame =
        frame_encode({PayloadKind::kF0Estimator, 0, ++epoch}, payload);
    benchmark::DoNotOptimize(transport.send_with_ack(0, frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPushReconnect)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
