// Instrumentation-overhead bench for the observability subsystem
// (DESIGN.md §9.4): the SAME source is compiled twice — bench_obs with
// metrics enabled, bench_obs_nometrics with -DUSTREAM_NO_METRICS — and
// each row's name carries a /metrics or /nometrics suffix so the two JSON
// outputs merge into one file. bench/run_obs_bench.sh then gates every
// metrics row at >= 0.98x its nometrics twin via check_regression.py
// --speedup pairs: enabled-but-idle instrumentation (counters ticking,
// spans observing, nobody scraping) must cost < 2% on the Ingest* and
// Merge* hot paths.
//
// The library's explicit instantiations (src/core/instantiations.cpp) are
// compiled with metrics ON, and template symbols have vague linkage — a
// nometrics TU that implicitly instantiated CoordinatedSampler<
// PairwiseHash, Unit> would let the linker silently substitute the
// metrics-on library copy and void the comparison. Every row therefore
// runs on bench-local ObsHash (a distinct type, same codegen as
// PairwiseHash), forcing a fresh instantiation of the sampler, the
// estimator, and MergeEngine::reduce in THIS translation unit under THIS
// build's USTREAM_NO_METRICS setting.
#include <benchmark/benchmark.h>

#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"
#include "core/merge_engine.h"
#include "hash/pairwise.h"
#include "obs/metrics.h"

#if USTREAM_METRICS_ENABLED
#define OBS_MODE "metrics"
#else
#define OBS_MODE "nometrics"
#endif

namespace {
using namespace ustream;

// Distinct-from-the-library hash type; identical codegen to PairwiseHash.
struct ObsHash : PairwiseHash {
  using PairwiseHash::PairwiseHash;
};

using ObsSampler = CoordinatedSampler<ObsHash, Unit>;
using ObsEstimator = BasicF0Estimator<ObsHash>;

constexpr std::size_t kStreamLen = 1 << 16;
constexpr std::size_t kBatchSpan = 256;
constexpr std::size_t kCapacity = 1024;

// Mirrors bench_throughput's saturated regime: sampler pre-filled with 1M
// distinct labels so nearly every add dies on the threshold compare — the
// regime where a per-batch counter would be the largest relative cost.
std::vector<std::uint64_t> distinct_stream(std::uint64_t seed) {
  std::vector<std::uint64_t> labels(kStreamLen);
  Xoshiro256 rng(seed);
  for (auto& l : labels) l = rng.next();
  return labels;
}

ObsSampler saturated_sampler() {
  ObsSampler sampler(kCapacity, 42);
  std::uint64_t x = 0;
  for (int i = 0; i < 1'000'000; ++i) sampler.add(SplitMix64::mix(++x));
  return sampler;
}

// Scalar add() carries no instrumentation at all — this row is the
// informational control: any metrics/nometrics delta here is pure
// benchmark noise (a ~2.4ns loop is frequency- and alignment-bound, and
// swings ~10% run to run on a shared VM), which is why run_obs_bench.sh
// does NOT include it in the gated speedup pairs.
void BM_ObsIngestScalar(benchmark::State& state) {
  auto sampler = saturated_sampler();
  const auto labels = distinct_stream(99);
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & (kStreamLen - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsIngestScalar)->Name("BM_ObsIngestScalar/" OBS_MODE);

// Sampler add_batch: one relaxed fetch_add per 256-label block.
void BM_ObsIngestBatch(benchmark::State& state) {
  auto sampler = saturated_sampler();
  const auto labels = distinct_stream(99);
  std::size_t offset = 0;
  for (auto _ : state) {
    sampler.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
}
BENCHMARK(BM_ObsIngestBatch)->Name("BM_ObsIngestBatch/" OBS_MODE);

// Estimator add_batch: the trace span's two clock reads on top of the
// per-copy counters, amortized over copies x 256 labels of work.
void BM_ObsEstimatorIngestBatch(benchmark::State& state) {
  EstimatorParams params;
  params.capacity = kCapacity;
  params.copies = 9;
  params.seed = 7;
  ObsEstimator est(params);
  const auto labels = distinct_stream(99);
  std::size_t offset = 0;
  for (auto _ : state) {
    est.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
}
BENCHMARK(BM_ObsEstimatorIngestBatch)->Name("BM_ObsEstimatorIngestBatch/" OBS_MODE);

// MergeEngine::reduce over 64 site sketches: one span + one counter per
// reduce. Both modes pay the same copy-the-inputs cost per iteration
// (reduce consumes its input), exactly as BM_MergeEngineSites does. The
// engine is pinned to 1 thread — the inline sequential fold — because a
// 2% floor cannot survive pool-scheduling noise on a contended VM, and
// the instrumentation under test fires before the schedule is chosen.
void BM_ObsMergeReduce(benchmark::State& state) {
  constexpr std::size_t kSites = 64;
  EstimatorParams params;
  params.capacity = kCapacity;
  params.copies = 5;
  params.seed = 9;
  std::vector<ObsEstimator> sketches;
  sketches.reserve(kSites);
  for (std::size_t s = 0; s < kSites; ++s) {
    ObsEstimator est(params);
    Xoshiro256 rng(s + 1);
    for (int i = 0; i < 20'000; ++i) est.add(rng.next());
    sketches.push_back(std::move(est));
  }
  MergeEngine engine(1);
  for (auto _ : state) {
    std::vector<ObsEstimator> parts = sketches;
    auto merged = engine.reduce(std::move(parts));
    benchmark::DoNotOptimize(merged->estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSites));
}
BENCHMARK(BM_ObsMergeReduce)->Name("BM_ObsMergeReduce/" OBS_MODE)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
