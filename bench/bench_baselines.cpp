// E6 — the paper's comparison claims (C1). Two shootouts:
//   (a) theory sizing: each sketch sized by its own analysis for
//       eps = 0.1 — observed error and the space it took;
//   (b) equal space: every sketch gets the same byte budget — observed
//       error. AMS's constant-factor floor and linear-counting's
//       saturation are the claimed qualitative shapes.
// Plus the capability matrix the numbers don't show.
#include <cstdio>

#include "bench/bench_util.h"
#include "baselines/factory.h"
#include "common/random.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

Sample errors_for(const std::function<std::unique_ptr<DistinctCounter>(std::uint64_t)>& make,
                  std::size_t distinct, int trials) {
  return run_trials(trials, [&](std::uint64_t seed) {
    auto counter = make(seed);
    Xoshiro256 rng(seed ^ 0xbeef);
    for (std::size_t i = 0; i < distinct; ++i) counter->add(rng.next());
    return relative_error(counter->estimate(), static_cast<double>(distinct));
  });
}
}  // namespace

int main() {
  constexpr std::size_t kDistinct = 200'000;
  constexpr int kTrials = 15;

  title("E6a: theory-sized for eps = 0.1 (F0 = 200k, 15 trials)");
  note("claim: GT achieves arbitrary eps with pairwise hashing; AMS cannot");
  {
    Table t({"sketch", "bytes", "mean err", "p95 err", "max err"}, 16);
    for (CounterKind kind : all_sketch_kinds()) {
      std::size_t bytes = 0;
      const auto errors = errors_for(
          [&](std::uint64_t seed) {
            auto c = make_counter_for_epsilon(kind, 0.1, seed, kDistinct * 2);
            bytes = c->bytes_used();
            return c;
          },
          kDistinct, kTrials);
      t.row({to_string(kind), fmt("%zu", bytes), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95)), fmt("%.4f", errors.max())});
    }
  }

  title("E6b: equal space, 64 KiB each (F0 = 200k, 15 trials)");
  {
    Table t({"sketch", "bytes", "mean err", "p95 err"}, 16);
    for (CounterKind kind : all_sketch_kinds()) {
      std::size_t bytes = 0;
      const auto errors = errors_for(
          [&](std::uint64_t seed) {
            auto c = make_counter_for_space(kind, 64 * 1024, seed);
            bytes = c->bytes_used();
            return c;
          },
          kDistinct, kTrials);
      t.row({to_string(kind), fmt("%zu", bytes), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E6c: equal space, 4 KiB each (tight-memory regime)");
  {
    Table t({"sketch", "bytes", "mean err", "p95 err"}, 16);
    for (CounterKind kind : all_sketch_kinds()) {
      std::size_t bytes = 0;
      const auto errors = errors_for(
          [&](std::uint64_t seed) {
            auto c = make_counter_for_space(kind, 4 * 1024, seed);
            bytes = c->bytes_used();
            return c;
          },
          kDistinct, kTrials);
      t.row({to_string(kind), fmt("%zu", bytes), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E6d: capability matrix (what the numbers above don't show)");
  note("sketch              tunable-eps  pairwise-only  mergeable  labels  sums/preds");
  note("gibbons-tirthapura       yes          yes          yes      yes      yes");
  note("fm-pcsa                  yes          NO (ideal)   yes      no       no");
  note("ams-f0                   NO           yes          yes      no       no");
  note("bjkst                    yes          yes          yes      no       no");
  note("kmv                      yes          NO (ideal)   yes      opt      opt");
  note("linear-counting          yes*         NO (ideal)   yes      no       no   *linear space");
  note("hyperloglog              yes          NO (ideal)   yes      no       no");
  return 0;
}
