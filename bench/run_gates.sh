#!/usr/bin/env bash
# The combined pre-merge gate: performance AND robustness in one command.
#
#   1. performance — bench/run_bench.sh measures the batched ingestion
#      rows and gates them against bench/BENCH_throughput.json via
#      check_regression.py (including the >= 2x batch-vs-scalar floor).
#      This gate runs first: benchmarks want a quiet machine, and the
#      soak suite below would leave the cores hot.
#   2. robustness — `ctest -L soak` runs the fault-injection matrix
#      (drop x duplicate x corrupt at p in {0.05, 0.2, 0.5}): collection
#      must converge via retries to a referee bit-identical to a
#      fault-free run, with honest CollectReport accounting.
#
# Usage:
#   bench/run_gates.sh [build-dir]            # both gates
#   bench/run_gates.sh --update [build-dir]   # also refresh the perf baseline
set -euo pipefail

update_flag=()
if [[ "${1:-}" == "--update" ]]; then
  update_flag=(--update)
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ ! -d "$build" ]]; then
  echo "build directory $build not found; run cmake -B build -S . first" >&2
  exit 2
fi

echo "== gate 1/2: ingestion perf regression (bench/run_bench.sh) =="
"$repo/bench/run_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 2/2: fault-injection soak (ctest -L soak) =="
cmake --build "$build" --target test_soak -j >/dev/null
ctest --test-dir "$build" -L soak --output-on-failure

echo "all gates passed"
