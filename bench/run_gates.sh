#!/usr/bin/env bash
# The combined pre-merge gate: performance AND robustness in one command.
#
#   1. performance — bench/run_bench.sh measures the batched ingestion
#      rows and gates them against bench/BENCH_throughput.json via
#      check_regression.py (including the >= 2x batch-vs-scalar floor).
#      This gate runs first: benchmarks want a quiet machine, and the
#      soak suite below would leave the cores hot.
#   2. merge performance — bench/run_merge_bench.sh measures the referee
#      merge-engine rows and gates them against bench/BENCH_merge.json
#      (>= 2x k-way-vs-fold at 256 sites, >= 10x incremental-vs-full
#      continuous query at 64 sites).
#   3. robustness — `ctest -L soak` runs the fault-injection matrix
#      (drop x duplicate x corrupt at p in {0.05, 0.2, 0.5}): collection
#      must converge via retries to a referee bit-identical to a
#      fault-free run — now including the tree-reduction referee vs the
#      sequential site-order merge — with honest CollectReport accounting.
#   4. wire performance — bench/run_net_bench.sh measures the loopback
#      TCP referee (push latency, throughput, reconnect cost) and gates
#      against bench/BENCH_net.json, including the >= 3x persistent-vs-
#      reconnect floor. After the soak because its rows are RTT-bound,
#      not CPU-frequency-bound, so the thermal wake barely moves them.
#   5. instrumentation overhead — bench/run_obs_bench.sh runs the
#      bench_obs / bench_obs_nometrics twins interleaved and enforces the
#      observability subsystem's overhead contract (DESIGN.md §9.4):
#      enabled-but-idle metrics must cost < 2% (>= 0.98x floor) on the
#      Ingest* and Merge* rows vs a -DUSTREAM_NO_METRICS build.
#   6. durability tax — bench/run_wal_bench.sh measures the WAL group
#      commit (BM_WalAppend across fsync policies) and the end-to-end
#      WAL-on vs WAL-off referee push, gating against bench/BENCH_wal.json
#      with the >= 0.5x WAL-on floor. After the obs twins because its
#      `always` rows are storage-bound, not CPU-bound.
#   7. continuous wire cost — bench/run_continuous_bench.sh runs the E18
#      delta-vs-snapshot macro rows (64 sites x 2^20 items/site). The
#      binary self-gates the acceptance criteria (every checkpoint
#      estimate inside the (eps, delta) envelope vs exact counts; delta
#      mode <= 10% of the snapshot protocol's bytes AND messages), and
#      the runner adds the BENCH_continuous.json regression check plus
#      the >= 2x end-to-end delta-vs-snapshot speedup floor.
#   8. query engine — bench/run_query_bench.sh measures the set-expression
#      rows (parse at 2/4/8 operands, DLRT evaluation, the end-to-end
#      `GET /query?e=...` admin round trip) against bench/BENCH_query.json,
#      with the >= 10x parse-vs-eval floor keeping the grammar off the
#      hot path.
#   9. frequency subsystem — bench/run_freq_bench.sh measures the freq
#      bundle's batched ingest against the sampler-based heavy-key path
#      (the netmon superspreader observe loop) with a >= 0.5x floor, and
#      gates union heavy-hitter recall (Zipf alpha = 1.5, 64 sites) at
#      >= 0.95 via BM_FreqUnionRecall/64's recall counter — the E20
#      acceptance number — against bench/BENCH_freq.json.
#
# Usage:
#   bench/run_gates.sh [build-dir]            # all gates
#   bench/run_gates.sh --update [build-dir]   # also refresh perf baselines
set -euo pipefail

update_flag=()
if [[ "${1:-}" == "--update" ]]; then
  update_flag=(--update)
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ ! -d "$build" ]]; then
  echo "build directory $build not found; run cmake -B build -S . first" >&2
  exit 2
fi

echo "== gate 1/9: ingestion perf regression (bench/run_bench.sh) =="
"$repo/bench/run_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 2/9: merge-engine perf regression (bench/run_merge_bench.sh) =="
"$repo/bench/run_merge_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 3/9: fault-injection soak (ctest -L soak) =="
cmake --build "$build" --target test_soak -j >/dev/null
ctest --test-dir "$build" -L soak --output-on-failure

echo "== gate 4/9: net wire perf regression (bench/run_net_bench.sh) =="
"$repo/bench/run_net_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 5/9: instrumentation overhead (bench/run_obs_bench.sh) =="
"$repo/bench/run_obs_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 6/9: durability tax (bench/run_wal_bench.sh) =="
"$repo/bench/run_wal_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 7/9: continuous wire cost (bench/run_continuous_bench.sh) =="
"$repo/bench/run_continuous_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 8/9: query engine perf regression (bench/run_query_bench.sh) =="
"$repo/bench/run_query_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "== gate 9/9: frequency subsystem (bench/run_freq_bench.sh) =="
"$repo/bench/run_freq_bench.sh" ${update_flag[@]+"${update_flag[@]}"} "$build"

echo "all gates passed"
