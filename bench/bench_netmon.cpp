// E10 — the motivating application end to end: per-link monitors over
// generated traffic, one report per link, union queries at headquarters.
// Reports accuracy per query kind, the naive-sum overcount, throughput,
// and the full communication bill.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "netmon/monitor.h"
#include "netmon/trace_gen.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

constexpr std::array<NetLabel, 4> kQueries = {NetLabel::kDstIp, NetLabel::kSrcIp,
                                              NetLabel::kFlow, NetLabel::kSrcDstPair};
}  // namespace

int main() {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 2001);

  title("E10a: union queries across links (8 links, overlap 0.5, 10% scan)");
  const auto w = make_network_workload({.links = 8, .flows_per_link = 15'000,
                                        .link_overlap = 0.5, .scan_fraction = 0.10,
                                        .seed = 8080});
  note(fmt("total packets: %zu", w.total_packets));
  std::vector<LinkMonitor> monitors(8, LinkMonitor(params));
  WallTimer timer;
  for (std::size_t link = 0; link < 8; ++link) {
    for (const Packet& p : w.link_traces[link]) monitors[link].observe(p);
  }
  const double observe_s = timer.seconds();
  MonitoringCenter hq(8, params);
  timer.reset();
  hq.collect(monitors);
  const double collect_s = timer.seconds();
  {
    Table t({"query", "truth", "estimate", "rel err", "naive x"}, 14);
    for (NetLabel kind : kQueries) {
      const auto q = static_cast<std::size_t>(kind);
      const auto ans = hq.query(kind);
      const auto truth = static_cast<double>(w.truth.union_distinct[q]);
      t.row({to_string(kind), fmt("%.0f", truth), fmt("%.0f", ans.union_estimate),
             fmt("%.4f", relative_error(ans.union_estimate, truth)),
             fmt("%.2f", ans.naive_sum / truth)});
    }
  }
  const auto comm = hq.channel_stats();
  note(fmt("observe: %.2f s (%.2f M packets/s through 4 sketches each)", observe_s,
           static_cast<double>(w.total_packets) / observe_s / 1e6));
  note(fmt("collect+merge: %.3f s; %llu bytes over %llu messages", collect_s,
           static_cast<unsigned long long>(comm.total_bytes),
           static_cast<unsigned long long>(comm.messages)));

  title("E10b: scan detection signal (distinct dst vs traffic volume)");
  note("claim: scans barely move volume but explode distinct-dst — the F0 use case");
  {
    Table t({"scan frac", "packets", "dst truth", "dst est"}, 12);
    for (double scan : {0.0, 0.05, 0.2}) {
      const auto ws = make_network_workload({.links = 1, .flows_per_link = 10'000,
                                             .link_overlap = 0.0, .scan_fraction = scan,
                                             .seed = 9090});
      LinkMonitor mon(params);
      for (const Packet& p : ws.link_traces[0]) mon.observe(p);
      const auto q = static_cast<std::size_t>(NetLabel::kDstIp);
      t.row({fmt("%.2f", scan), fmt("%zu", ws.total_packets),
             fmt("%llu", static_cast<unsigned long long>(ws.truth.union_distinct[q])),
             fmt("%.0f", mon.estimate(NetLabel::kDstIp))});
    }
  }
  return 0;
}
