#!/usr/bin/env bash
# Runs the loopback TCP referee rows of bench_net with JSON output and
# gates them against the checked-in baseline (bench/BENCH_net.json) via
# check_regression.py. Two speedup floors are enforced:
#
#   * ALGORITHMIC, always on: a push on a persistent connection must beat
#     a dial-push-teardown cycle by >= 3x at the 1 KiB payload (measured
#     ~11x on the reference machine — the floor only trips if the
#     transport starts redialing per frame or the ack path grows a stall).
#   * SHARD SCALING, >= 4 cores only: under 8 concurrent pushers, the
#     4-shard referee must accept >= 2x the frames/sec of the 1-shard
#     (sequential) referee. The rows still RUN on smaller machines — the
#     numbers land in the JSON for eyeballing — but a 1-core box cannot
#     scale by fiat, so the floor is only enforced where the hardware can
#     express it.
#
# Usage:
#   bench/run_net_bench.sh [build-dir]            # measure + gate
#   bench/run_net_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_net.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_net -j >/dev/null

"$build/bench/bench_net" \
  --benchmark_filter='BM_Net' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

cores="$(nproc 2>/dev/null || echo 1)"
gates=(--speedup 'BM_NetPushReconnect/1024,BM_NetPushLatency/1024,3.0')
if [[ "$cores" -ge 4 ]]; then
  gates+=(--speedup
    'BM_NetShardScaling/1/real_time/threads:8,BM_NetShardScaling/4/real_time/threads:8,2.0')
else
  echo "note: $cores core(s) < 4 — shard-scaling floor not enforced on this machine"
fi

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    "${gates[@]}"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
