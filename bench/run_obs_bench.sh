#!/usr/bin/env bash
# Instrumentation-overhead gate for the observability subsystem
# (DESIGN.md §9.4): runs the bench_obs / bench_obs_nometrics twins (same
# source, the latter built with -DUSTREAM_NO_METRICS), merges their JSON
# outputs — row names already carry the /metrics vs /nometrics suffix —
# and gates every pair via check_regression.py --speedup at a 0.98 floor:
# enabled-but-idle metrics (counters ticking, spans observing, nobody
# scraping) must cost < 2% on the Ingest* and Merge* rows. The merged run
# is also regression-checked against the checked-in bench/BENCH_obs.json.
#
# Usage:
#   bench/run_obs_bench.sh [build-dir]            # measure + gate
#   bench/run_obs_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_obs.json"
current="$(mktemp --suffix=.json)"
runs=()
trap 'rm -f "$current" ${runs[@]+"${runs[@]}"}' EXIT

cmake --build "$build" --target bench_obs bench_obs_nometrics -j >/dev/null

# A 2% floor is below back-to-back process noise on a shared VM, so the
# twins run interleaved (A B A B ...) with repetitions: thermal drift and
# co-tenant bursts hit both modes alike, and check_regression.py takes
# the per-row MEDIAN across everything that lands under one name in the
# merged file — 10 samples per row per mode, spread across the whole
# measurement window.
for pass_ in 1 2 3 4 5; do
  for bin in bench_obs bench_obs_nometrics; do
    out="$(mktemp --suffix=.json)"
    runs+=("$out")
    "$build/bench/$bin" \
      --benchmark_min_time=0.25 \
      --benchmark_repetitions=2 \
      --benchmark_out="$out" \
      --benchmark_out_format=json
  done
done

# One file with both suffix sets, so the speedup pairs see a single run.
python3 - "$current" "${runs[@]}" <<'EOF'
import json, sys
merged = None
for path in sys.argv[2:]:
    with open(path) as f:
        data = json.load(f)
    if merged is None:
        merged = data
    else:
        merged["benchmarks"].extend(data["benchmarks"])
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=1)
EOF

# BM_ObsIngestScalar is deliberately absent from the pairs: it carries no
# instrumentation (see bench_obs.cpp), so a floor on it would gate noise.
if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    --speedup 'BM_ObsIngestBatch/nometrics,BM_ObsIngestBatch/metrics,0.98' \
    --speedup 'BM_ObsEstimatorIngestBatch/nometrics,BM_ObsEstimatorIngestBatch/metrics,0.98' \
    --speedup 'BM_ObsMergeReduce/nometrics,BM_ObsMergeReduce/metrics,0.98'
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
