#!/usr/bin/env bash
# Runs the frequency-subsystem rows of bench_freq with JSON output and
# gates them against the checked-in baseline (bench/BENCH_freq.json) via
# check_regression.py. Two floors are enforced on the current run:
#
#   * INGEST WITHIN 2x OF THE SAMPLER PATH: the freq bundle's batched
#     ingest (one SIMD hash_block pass feeding count-sketch counters plus
#     the space-saver heap) must stay >= 0.5x of BM_SamplerHeavyKeyObserve
#     — the sampler-based heavy-key path this subsystem supersedes (the
#     netmon superspreader's observe loop: a source-table probe plus a
#     per-source coordinated-sampler add per item, same Zipf stream, same
#     tracking budget). Measured ~1.7x FASTER on the reference machine;
#     the floor trips if batched ingest rots back to per-label hashing.
#     (The raw distinct sampler's saturated batch path SIMD-rejects
#     duplicates without touching per-label state and is 20-50x faster
#     than ANY per-label counter structure — that row,
#     BM_SamplerIngestBatch, is context, gated only by the baseline
#     tolerance.)
#
#   * UNION RECALL AT SKEW: BM_FreqUnionRecall/64 folds 64 per-site
#     sketches (Zipf alpha = 1.5, 16k items/site) and its `recall`
#     counter — true top-20 found in the merged top-40 — must hold
#     >= 0.95. This is the E20 acceptance number; measured 1.0.
#
# Usage:
#   bench/run_freq_bench.sh [build-dir]            # measure + gate
#   bench/run_freq_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_freq.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_freq -j >/dev/null

"$build/bench/bench_freq" \
  --benchmark_filter='BM_Freq|BM_Sampler|BM_Universal' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

gates=(
  --speedup 'BM_SamplerHeavyKeyObserve,BM_FreqIngestBatch,0.5'
  --accuracy 'BM_FreqUnionRecall/64,recall,0.95'
)

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    "${gates[@]}"
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
