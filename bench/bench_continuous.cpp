// E18 — what the push protocol saves: the delta-mode continuous monitor
// (threshold-silent sites, kF0Delta frames) against the periodic
// full-snapshot protocol it replaces, on the ISSUE's reference workload of
// 64 sites x 2^20 items/site. Two rows, both running the identical
// disjoint-label stream end to end through the in-process Channel:
//
//   * BM_ContinuousSnapshot/64 — every site pushes a full serialized
//     sketch each 256 items (the report_interval protocol).
//   * BM_ContinuousDelta/64    — sites stay silent until a copy raises
//     its level or a sampled set grows by (1 + eps/2), then send a delta
//     against the referee's acked mirror.
//
// The row bodies are also the acceptance gate: at every one of the 64
// checkpoints the live referee estimate must sit inside the configured
// (eps, delta) envelope against the EXACT distinct count (the label
// stream is a bijective permutation of the item index, so the exact
// union cardinality is just the number of items fed), and after both
// rows ran, delta mode must have spent <= 10% of snapshot mode's
// bytes-on-wire AND messages. Any violation prints the offending numbers
// and exits nonzero — bench/run_continuous_bench.sh treats this binary
// as self-gating and layers the items/sec regression check on top.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "core/params.h"
#include "distributed/continuous.h"

namespace {
using namespace ustream;

constexpr std::size_t kSites = 64;
constexpr std::uint64_t kItemsPerSite = 1ULL << 20;  // >= 1e6 per the gate
constexpr std::uint64_t kCheckpoints = 64;
constexpr std::uint64_t kReportInterval = 256;  // snapshot-mode cadence
constexpr double kEps = 0.5;
constexpr double kGrowth = kEps / 2;  // the ISSUE's (1 + eps/2) trigger
// capacity 36/eps^2 at eps = 0.5, with a practical 5-copy median (the full
// 12*ln(1/delta) copy count from for_guarantee() is sized for the worst
// case; every added copy also adds its own level-raise notifications, so
// the copy count is part of the protocol's message bill — E18 quotes it).
constexpr EstimatorParams kParams{.capacity = 144, .copies = 5, .seed = 42};

// Bijective 64-bit mix (splitmix64 finalizer): feeding mix(i) for distinct
// i yields exactly-distinct labels, so the true union cardinality at any
// checkpoint equals the number of items fed so far — the exact reference
// the envelope is asserted against, with no exact-counter memory cost.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void gate_fail(const char* what, double got, double bound) {
  std::fprintf(stderr,
               "bench_continuous GATE FAILURE: %s (got %.4g, bound %.4g)\n",
               what, got, bound);
  std::exit(1);
}

struct WireCost {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};
std::optional<WireCost> g_snapshot_cost;  // filled by the snapshot row

// Runs the shared workload through `monitor`, asserting the estimate
// envelope [lo_factor * exact, hi_factor * exact] at every checkpoint.
// In snapshot mode the referee additionally lags by at most
// kReportInterval unreported items per site, so its lower bound is taken
// against (exact - kSites * kReportInterval).
void drive(ContinuousUnionMonitor& monitor, double lo_factor, double hi_factor,
           std::uint64_t lag_allowance) {
  const std::uint64_t chunk = kItemsPerSite / kCheckpoints;
  for (std::uint64_t block = 0; block < kCheckpoints; ++block) {
    for (std::size_t site = 0; site < kSites; ++site) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(site) * kItemsPerSite + block * chunk;
      for (std::uint64_t i = 0; i < chunk; ++i) {
        monitor.observe(site, mix(base + i));
      }
    }
    const double exact =
        static_cast<double>((block + 1) * chunk * kSites);
    const double covered =
        exact - static_cast<double>(lag_allowance);
    const double estimate = monitor.estimate();
    if (estimate > hi_factor * exact) {
      gate_fail("checkpoint estimate above (1+eps) envelope", estimate,
                hi_factor * exact);
    }
    if (covered > 0 && estimate < lo_factor * covered) {
      gate_fail("checkpoint estimate below envelope", estimate,
                lo_factor * covered);
    }
  }
  const CollectReport& report = monitor.flush();
  if (!report.complete()) {
    gate_fail("flush did not converge on the perfect channel",
              static_cast<double>(report.sites_reported), kSites);
  }
}

void BM_ContinuousSnapshot(benchmark::State& state) {
  for (auto _ : state) {
    ContinuousUnionMonitor monitor(kSites, kReportInterval, kParams);
    drive(monitor, 1.0 - kEps, 1.0 + kEps, kSites * kReportInterval);
    const ChannelStats wire = monitor.channel_stats();
    g_snapshot_cost = WireCost{wire.messages, wire.total_bytes};
    state.counters["messages"] = static_cast<double>(wire.messages);
    state.counters["wire_bytes"] = static_cast<double>(wire.total_bytes);
    state.counters["mean_frame_bytes"] = wire.mean_message_bytes();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kSites * kItemsPerSite));
}
BENCHMARK(BM_ContinuousSnapshot)
    ->Arg(static_cast<int>(kSites))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ContinuousDelta(benchmark::State& state) {
  const ContinuousMonitorOptions options{.delta_protocol = true,
                                         .growth = kGrowth};
  for (auto _ : state) {
    ContinuousUnionMonitor monitor(kSites, kReportInterval, kParams, options);
    // Live envelope: between threshold crossings the referee's mirror of a
    // site is within (1 + growth) of the live sketch, so the estimate
    // floor is (1 - eps) / (1 + growth) of exact (DESIGN.md §12.3).
    drive(monitor, (1.0 - kEps) / (1.0 + kGrowth), 1.0 + kEps, 0);
    const ChannelStats wire = monitor.channel_stats();
    state.counters["messages"] = static_cast<double>(wire.messages);
    state.counters["wire_bytes"] = static_cast<double>(wire.total_bytes);
    state.counters["mean_frame_bytes"] = wire.mean_message_bytes();
    state.counters["deltas"] = static_cast<double>(monitor.deltas_sent());
    state.counters["fulls"] = static_cast<double>(monitor.fulls_sent());
    state.counters["suppressed"] =
        static_cast<double>(monitor.suppressed_updates());
    if (g_snapshot_cost.has_value()) {
      // The headline acceptance gate: <= 10% of the full-frame protocol's
      // messages AND bytes for the same stream.
      const double msg_ratio = static_cast<double>(wire.messages) /
                               static_cast<double>(g_snapshot_cost->messages);
      const double byte_ratio = static_cast<double>(wire.total_bytes) /
                                static_cast<double>(g_snapshot_cost->bytes);
      state.counters["msg_ratio"] = msg_ratio;
      state.counters["byte_ratio"] = byte_ratio;
      if (msg_ratio > 0.10) {
        gate_fail("delta messages above 10% of snapshot protocol", msg_ratio,
                  0.10);
      }
      if (byte_ratio > 0.10) {
        gate_fail("delta bytes above 10% of snapshot protocol", byte_ratio,
                  0.10);
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kSites * kItemsPerSite));
}
BENCHMARK(BM_ContinuousDelta)
    ->Arg(static_cast<int>(kSites))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
