// E14 — superspreader detection: precision/recall of the bounded-memory
// detector against exact per-source distinct counts, single link and
// merged across links.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/dense_map.h"
#include "common/random.h"
#include "netmon/superspreader.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

struct Workload {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> contacts;  // (src, dst)
  std::map<std::uint64_t, std::size_t> truth;                     // src -> distinct dsts
};

Workload make_workload(std::uint64_t seed, std::size_t heavy, std::size_t heavy_width,
                       std::size_t light) {
  Workload w;
  Xoshiro256 rng(seed);
  std::map<std::uint64_t, DenseSet> sets;
  for (std::size_t s = 0; s < heavy; ++s) {
    const std::uint64_t src = 0xbad000 + s;
    for (std::size_t d = 0; d < heavy_width; ++d) {
      const std::uint64_t dst = rng.next();
      w.contacts.push_back({src, dst});
      sets[src].insert(dst);
    }
  }
  for (std::size_t s = 0; s < light; ++s) {
    const std::uint64_t src = 0x900d00000 + s;
    const std::size_t dsts = 1 + rng.below(8);
    for (std::size_t d = 0; d < dsts; ++d) {
      const std::uint64_t dst = rng.next();
      for (int rep = 0; rep < 3; ++rep) w.contacts.push_back({src, dst});
      sets[src].insert(dst);
    }
  }
  for (auto& [src, set] : sets) w.truth[src] = set.size();
  for (std::size_t i = w.contacts.size(); i > 1; --i) {
    std::swap(w.contacts[i - 1], w.contacts[rng.below(i)]);
  }
  return w;
}
}  // namespace

int main() {
  title("E14a: precision/recall vs report threshold (20 scanners @1000 dsts,");
  note("      20k light sources, table 1024 of 25k+ sources)");
  {
    const Workload w = make_workload(1, 20, 1000, 20'000);
    SuperspreaderConfig config;
    config.table_capacity = 1024;
    config.sampler_capacity = 128;
    config.admission_level = 4;
    config.seed = 77;
    SuperspreaderDetector det(config);
    for (const auto& [src, dst] : w.contacts) det.observe(src, dst);
    Table t({"threshold", "reported", "true pos", "precision", "recall"}, 12);
    for (double threshold : {200.0, 500.0, 800.0}) {
      const auto reports = det.report(threshold);
      std::size_t tp = 0;
      for (const auto& r : reports) {
        const auto it = w.truth.find(r.source);
        if (it != w.truth.end() && static_cast<double>(it->second) >= threshold) ++tp;
      }
      std::size_t positives = 0;
      for (const auto& [src, distinct] : w.truth) {
        if (static_cast<double>(distinct) >= threshold) ++positives;
      }
      t.row({fmt("%.0f", threshold), fmt("%zu", reports.size()), fmt("%zu", tp),
             fmt("%.3f", reports.empty() ? 1.0 : double(tp) / double(reports.size())),
             fmt("%.3f", positives == 0 ? 1.0 : double(tp) / double(positives))});
    }
    note(fmt("tracked %zu sources, %zu bytes (exact per-source sets would need ~%zu keys)",
             det.tracked_sources(), det.bytes_used(), w.truth.size()));
  }

  title("E14b: estimate fidelity for the heavy tail (truth vs estimate)");
  {
    const Workload w = make_workload(2, 6, 2000, 5000);
    SuperspreaderConfig config;
    config.table_capacity = 512;
    config.sampler_capacity = 256;
    config.admission_level = 4;
    config.seed = 78;
    SuperspreaderDetector det(config);
    for (const auto& [src, dst] : w.contacts) det.observe(src, dst);
    Table t({"source", "truth", "estimate", "rel err"}, 12);
    for (std::size_t s = 0; s < 6; ++s) {
      const std::uint64_t src = 0xbad000 + s;
      const double truth = static_cast<double>(w.truth.at(src));
      const double est = det.estimate(src);
      t.row({fmt("%llx", static_cast<unsigned long long>(src)), fmt("%.0f", truth),
             fmt("%.0f", est), fmt("%.4f", relative_error(est, truth))});
    }
  }

  title("E14c: merged across 4 links vs a single central detector");
  {
    const Workload w = make_workload(3, 8, 1500, 8000);
    SuperspreaderConfig config;
    config.table_capacity = 1024;
    config.sampler_capacity = 128;
    config.admission_level = 4;
    config.seed = 79;
    SuperspreaderDetector central(config);
    std::vector<SuperspreaderDetector> links(4, SuperspreaderDetector(config));
    for (std::size_t i = 0; i < w.contacts.size(); ++i) {
      central.observe(w.contacts[i].first, w.contacts[i].second);
      links[i % 4].observe(w.contacts[i].first, w.contacts[i].second);
    }
    SuperspreaderDetector merged = links[0];
    for (std::size_t l = 1; l < 4; ++l) merged.merge(links[l]);
    Sample diff;
    for (std::size_t s = 0; s < 8; ++s) {
      const std::uint64_t src = 0xbad000 + s;
      diff.add(relative_error(merged.estimate(src), central.estimate(src)));
    }
    Table t({"scanners", "mean |merged-central|/central", "max"}, 24);
    t.row({"8", fmt("%.4f", diff.mean()), fmt("%.4f", diff.max())});
  }
  return 0;
}
