#!/usr/bin/env bash
# Runs the merge-engine scaling rows of bench_merge with JSON output and
# gates them against the checked-in baseline (bench/BENCH_merge.json) via
# check_regression.py. Two speedup floors are enforced, both ALGORITHMIC
# (they hold on a single core, so the gate never depends on how many CPUs
# the CI machine happens to have):
#
#   * the single-pass k-way BottomK merge must beat the pairwise fold by
#     >= 2x at 256 sites (heap merge vs rebuilding the accumulator t-1
#     times);
#   * the incremental continuous-query cache must beat the copy-everything
#     remerge by >= 10x at 64 sites (the ISSUE's acceptance floor; in
#     practice it is orders of magnitude).
#
# Usage:
#   bench/run_merge_bench.sh [build-dir]            # measure + gate
#   bench/run_merge_bench.sh --update [build-dir]   # also refresh baseline
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
baseline="$repo/bench/BENCH_merge.json"
current="$(mktemp --suffix=.json)"
trap 'rm -f "$current"' EXIT

cmake --build "$build" --target bench_merge -j >/dev/null

# The Merge/ContinuousQuery filter selects exactly the gated rows (the
# classic E8 rows — capacity sweep, serialize round-trip — have no
# items_per_second and are measured separately).
"$build/bench/bench_merge" \
  --benchmark_filter='BM_Merge(Fold|Engine|BottomK)|BM_ContinuousQuery' \
  --benchmark_min_time=0.5 \
  --benchmark_out="$current" \
  --benchmark_out_format=json

if [[ -f "$baseline" ]]; then
  python3 "$repo/bench/check_regression.py" \
    --baseline "$baseline" --current "$current" \
    --speedup 'BM_MergeBottomKFold/256,BM_MergeBottomKKway/256,2.0' \
    --speedup 'BM_ContinuousQueryFull/64,BM_ContinuousQueryIncremental/64,10.0'
else
  echo "no baseline at $baseline yet; skipping regression gate"
fi

if [[ "$update" == 1 || ! -f "$baseline" ]]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $baseline"
fi
