// E7 — robustness: F0 estimation is a function of the label SET only, so
// the error must be flat across duplication factors, zipf skew, label-space
// structure, and arrival order. Any slope in these tables is a bug (or a
// hash-quality failure — see the multiply-shift negative control).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/f0_estimator.h"
#include "hash/hash_family.h"
#include "stream/generators.h"
#include "stream/transforms.h"

namespace {
using namespace ustream;
using namespace ustream::bench;

template <typename Hash>
double shape_trial(std::size_t distinct, std::size_t total, double alpha, LabelKind kind,
                   std::uint64_t seed) {
  SyntheticStream stream({.distinct = distinct, .total_items = total, .zipf_alpha = alpha,
                          .label_kind = kind, .seed = seed});
  BasicF0Estimator<Hash> est(0.1, 0.05, seed * 5 + 1);
  while (!stream.done()) est.add(stream.next().label);
  return relative_error(est.estimate(), static_cast<double>(distinct));
}
}  // namespace

int main() {
  constexpr std::size_t kDistinct = 50'000;
  constexpr int kTrials = 15;

  title("E7a: error vs duplication factor (F0 = 50k, eps = 0.1)");
  {
    Table t({"dup", "items", "mean err", "p95 err"}, 12);
    for (std::size_t dup : {std::size_t{1}, std::size_t{10}, std::size_t{50}}) {
      const auto errors = run_trials(kTrials, [&](std::uint64_t seed) {
        return shape_trial<PairwiseHash>(kDistinct, kDistinct * dup, 0.0,
                                         LabelKind::kRandom64, seed);
      });
      t.row({fmt("%zux", dup), fmt("%zu", kDistinct * dup), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E7b: error vs zipf skew (F0 = 50k, 10x duplication)");
  {
    Table t({"alpha", "mean err", "p95 err"}, 12);
    for (double alpha : {0.0, 0.5, 1.0, 1.5, 2.0}) {
      const auto errors = run_trials(kTrials, [&](std::uint64_t seed) {
        return shape_trial<PairwiseHash>(kDistinct, kDistinct * 10, alpha,
                                         LabelKind::kRandom64, seed);
      });
      t.row({fmt("%.1f", alpha), fmt("%.4f", errors.mean()),
             fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E7c: error vs label-space structure (pairwise hash)");
  {
    Table t({"labels", "mean err", "p95 err"}, 12);
    struct KindCase {
      LabelKind kind;
      const char* name;
    };
    for (auto [kind, name] : {KindCase{LabelKind::kRandom64, "random"},
                              KindCase{LabelKind::kSequential, "sequential"},
                              KindCase{LabelKind::kClustered, "clustered"}}) {
      const auto errors = run_trials(kTrials, [&, kind = kind](std::uint64_t seed) {
        return shape_trial<PairwiseHash>(kDistinct, kDistinct * 4, 1.0, kind, seed);
      });
      t.row({name, fmt("%.4f", errors.mean()), fmt("%.4f", errors.quantile(0.95))});
    }
  }

  title("E7d: negative control — multiply-shift hash on STRIDED labels");
  note("labels k*2^s: an odd multiplier forces s zero low bits, so the");
  note("trailing-zero level law collapses; the pairwise field hash is immune");
  {
    Table t({"hash", "stride", "mean err", "max err"}, 14);
    for (int stride_bits : {0, 4, 8}) {
      const auto make_trial = [&](auto hash_tag, std::uint64_t seed) {
        using Hash = decltype(hash_tag);
        BasicF0Estimator<Hash> est(0.1, 0.05, seed * 5 + 1);
        for (std::uint64_t x = 0; x < kDistinct; ++x) {
          est.add(x << stride_bits);
        }
        return relative_error(est.estimate(), static_cast<double>(kDistinct));
      };
      const auto pw = run_trials(
          8, [&](std::uint64_t seed) { return make_trial(PairwiseHash(0), seed); });
      const auto ms = run_trials(
          8, [&](std::uint64_t seed) { return make_trial(MultiplyShiftHash(0), seed); });
      t.row({"pairwise", fmt("2^%d", stride_bits), fmt("%.4f", pw.mean()),
             fmt("%.4f", pw.max())});
      t.row({"mult-shift", fmt("2^%d", stride_bits), fmt("%.4f", ms.mean()),
             fmt("%.4f", ms.max())});
    }
  }

  title("E7e: arrival order (same items: shuffled / ascending / descending)");
  {
    SyntheticStream stream({.distinct = kDistinct, .total_items = kDistinct * 5,
                            .zipf_alpha = 1.0, .seed = 31});
    const auto items = stream.to_vector();
    Table t({"order", "estimate", "rel err"}, 12);
    struct OrderCase {
      std::vector<Item> items;
      const char* name;
    };
    for (const auto& [ordered, name] :
         {OrderCase{shuffle_stream(items, 1), "shuffled"},
          OrderCase{sort_stream(items, true), "ascending"},
          OrderCase{sort_stream(items, false), "descending"}}) {
      F0Estimator est(0.1, 0.05, 404);
      for (const Item& item : ordered) est.add(item.label);
      t.row({name, fmt("%.0f", est.estimate()),
             fmt("%.4f", relative_error(est.estimate(), double(kDistinct)))});
    }
  }
  return 0;
}
