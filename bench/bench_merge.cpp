// E8 — merge: the referee-side cost. Merge time vs capacity and vs the
// number of sketches folded, plus serialization round-trip cost (the other
// half of what the referee does per message).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"

namespace {
using namespace ustream;

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

Sampler loaded_sampler(std::size_t capacity, std::uint64_t seed, std::uint64_t items) {
  Sampler s(capacity, 42);  // shared seed: mergeable
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < items; ++i) s.add(rng.next());
  return s;
}

void BM_SamplerMerge_Capacity(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const Sampler a = loaded_sampler(capacity, 1, capacity * 8);
  const Sampler b = loaded_sampler(capacity, 2, capacity * 8);
  for (auto _ : state) {
    Sampler merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SamplerMerge_Capacity)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Complexity();

void BM_EstimatorMergeChain(benchmark::State& state) {
  // Fold `t` site sketches into one, as the referee does.
  const auto sites = static_cast<std::size_t>(state.range(0));
  const EstimatorParams params{.capacity = 3600, .copies = 5, .seed = 9};
  std::vector<F0Estimator> sketches;
  for (std::size_t s = 0; s < sites; ++s) {
    F0Estimator est(params);
    Xoshiro256 rng(s + 1);
    for (int i = 0; i < 30'000; ++i) est.add(rng.next());
    sketches.push_back(std::move(est));
  }
  for (auto _ : state) {
    F0Estimator referee = sketches[0];
    for (std::size_t s = 1; s < sites; ++s) referee.merge(sketches[s]);
    benchmark::DoNotOptimize(referee.estimate());
  }
}
BENCHMARK(BM_EstimatorMergeChain)->Arg(2)->Arg(8)->Arg(32);

void BM_SamplerSerialize(benchmark::State& state) {
  const Sampler s = loaded_sampler(4096, 3, 100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.serialize());
  }
}
BENCHMARK(BM_SamplerSerialize);

void BM_SamplerDeserialize(benchmark::State& state) {
  const Sampler s = loaded_sampler(4096, 4, 100'000);
  const auto bytes = s.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sampler::deserialize(bytes));
  }
}
BENCHMARK(BM_SamplerDeserialize);

}  // namespace

BENCHMARK_MAIN();
