// E8 — merge: the referee-side cost. Merge time vs capacity and vs the
// number of sketches folded, plus serialization round-trip cost (the other
// half of what the referee does per message).
//
// The BM_Merge*Sites / BM_MergeBottomK* / BM_ContinuousQuery* rows are the
// merge-engine scaling grid (EXPERIMENTS.md E8, ISSUE-3's "E5" table) and
// are gated against bench/BENCH_merge.json by bench/run_merge_bench.sh.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/distinct_sampler.h"
#include "core/f0_estimator.h"
#include "core/merge_engine.h"
#include "distributed/continuous.h"

namespace {
using namespace ustream;

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

Sampler loaded_sampler(std::size_t capacity, std::uint64_t seed, std::uint64_t items) {
  Sampler s(capacity, 42);  // shared seed: mergeable
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < items; ++i) s.add(rng.next());
  return s;
}

void BM_SamplerMerge_Capacity(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const Sampler a = loaded_sampler(capacity, 1, capacity * 8);
  const Sampler b = loaded_sampler(capacity, 2, capacity * 8);
  for (auto _ : state) {
    Sampler merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SamplerMerge_Capacity)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Complexity();

void BM_EstimatorMergeChain(benchmark::State& state) {
  // Fold `t` site sketches into one, as the referee does.
  const auto sites = static_cast<std::size_t>(state.range(0));
  const EstimatorParams params{.capacity = 3600, .copies = 5, .seed = 9};
  std::vector<F0Estimator> sketches;
  for (std::size_t s = 0; s < sites; ++s) {
    F0Estimator est(params);
    Xoshiro256 rng(s + 1);
    for (int i = 0; i < 30'000; ++i) est.add(rng.next());
    sketches.push_back(std::move(est));
  }
  for (auto _ : state) {
    F0Estimator referee = sketches[0];
    for (std::size_t s = 1; s < sites; ++s) referee.merge(sketches[s]);
    benchmark::DoNotOptimize(referee.estimate());
  }
}
BENCHMARK(BM_EstimatorMergeChain)->Arg(2)->Arg(8)->Arg(32);

void BM_SamplerSerialize(benchmark::State& state) {
  const Sampler s = loaded_sampler(4096, 3, 100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.serialize());
  }
}
BENCHMARK(BM_SamplerSerialize);

void BM_SamplerDeserialize(benchmark::State& state) {
  const Sampler s = loaded_sampler(4096, 4, 100'000);
  const auto bytes = s.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sampler::deserialize(bytes));
  }
}
BENCHMARK(BM_SamplerDeserialize);

// ---------------------------------------------------------------------------
// Merge-engine scaling grid: sequential site-order fold vs tree reduction
// on the pool, over the referee's site counts. Both sides pay the same
// copy-the-inputs cost per iteration (reduce consumes its input), so the
// delta is purely the merge schedule. items == sites merged, so
// items_per_second reads as "site merges per second".

std::vector<F0Estimator> site_estimators(std::size_t sites) {
  const EstimatorParams params{.capacity = 3600, .copies = 5, .seed = 9};
  std::vector<F0Estimator> sketches;
  sketches.reserve(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    F0Estimator est(params);
    Xoshiro256 rng(s + 1);
    for (int i = 0; i < 20'000; ++i) est.add(rng.next());
    sketches.push_back(std::move(est));
  }
  return sketches;
}

void BM_MergeFoldSites(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto sketches = site_estimators(sites);
  for (auto _ : state) {
    std::vector<F0Estimator> parts = sketches;
    F0Estimator referee = std::move(parts[0]);
    for (std::size_t s = 1; s < sites; ++s) referee.merge(parts[s]);
    benchmark::DoNotOptimize(referee.estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}
BENCHMARK(BM_MergeFoldSites)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_MergeEngineSites(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto sketches = site_estimators(sites);
  MergeEngine engine;  // auto-sized to the machine, as collect() uses it
  for (auto _ : state) {
    std::vector<F0Estimator> parts = sketches;
    auto merged = engine.reduce(std::move(parts));
    benchmark::DoNotOptimize(merged->estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}
BENCHMARK(BM_MergeEngineSites)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// BottomK union sampling: pairwise fold (t-1 two-way merges, each
// rebuilding the k-entry accumulator) vs the single-pass k-way heap merge.
std::vector<BottomKSampler> bottomk_sites(std::size_t sites, std::size_t k) {
  std::vector<BottomKSampler> parts;
  parts.reserve(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    BottomKSampler b(k, 42);
    Xoshiro256 rng(s + 7);
    for (std::size_t i = 0; i < 4 * k; ++i) b.add(rng.next(), 0.0);
    parts.push_back(std::move(b));
  }
  return parts;
}

void BM_MergeBottomKFold(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto parts = bottomk_sites(sites, 4096);
  for (auto _ : state) {
    BottomKSampler acc = parts[0];
    for (std::size_t s = 1; s < sites; ++s) acc.merge(parts[s]);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}
BENCHMARK(BM_MergeBottomKFold)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_MergeBottomKKway(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto parts = bottomk_sites(sites, 4096);
  std::vector<const BottomKSampler*> rest;
  for (std::size_t s = 1; s < sites; ++s) rest.push_back(&parts[s]);
  for (auto _ : state) {
    BottomKSampler acc = parts[0];
    acc.merge_many(std::span<const BottomKSampler* const>(rest));
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}
BENCHMARK(BM_MergeBottomKKway)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Continuous-query cost at the referee: the full copy-and-remerge reference
// path vs the incremental epoch-tagged cache — warm (no new snapshots, the
// steady state of a dashboard polling faster than sites push) and dirty
// (exactly one site pushed between queries). items == queries.

ContinuousUnionMonitor loaded_monitor(std::size_t sites, std::uint64_t interval) {
  auto mon = ContinuousUnionMonitor(sites, interval,
                                    EstimatorParams::for_guarantee(0.1, 0.05, 29));
  Xoshiro256 rng(30);
  for (std::uint64_t i = 0; i < 2 * sites * interval; ++i) {
    mon.observe(rng.below(sites), rng.next());
  }
  return mon;
}

void BM_ContinuousQueryFull(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto mon = loaded_monitor(sites, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mon.estimate_full_remerge());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContinuousQueryFull)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ContinuousQueryIncremental(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto mon = loaded_monitor(sites, 256);
  benchmark::DoNotOptimize(mon.estimate());  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(mon.estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContinuousQueryIncremental)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ContinuousQueryIncrementalDirty(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kInterval = 256;
  auto mon = loaded_monitor(sites, kInterval);
  benchmark::DoNotOptimize(mon.estimate());
  Xoshiro256 rng(31);
  std::size_t site = 0;
  for (auto _ : state) {
    state.PauseTiming();  // one site pushes a fresh snapshot between queries
    for (std::uint64_t j = 0; j < kInterval; ++j) mon.observe(site, rng.next());
    site = (site + 1) % sites;
    state.ResumeTiming();
    benchmark::DoNotOptimize(mon.estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContinuousQueryIncrementalDirty)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
