// E12 — sliding-window distinct counting (extension): query-time-chosen
// windows from one pass. Error vs window size (level fallback), update
// cost, and memory vs the O(capacity * levels) bound.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/dense_map.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/windowed_sampler.h"

namespace {
using namespace ustream;
using namespace ustream::bench;
}  // namespace

int main() {
  constexpr std::uint64_t kItems = 400'000;
  constexpr std::uint64_t kLabelSpace = 150'000;

  title("E12a: one pass, any window — error vs window size (eps = 0.15)");
  {
    WindowedF0Estimator est(EstimatorParams{.capacity = 1600, .copies = 9, .seed = 21});
    std::vector<std::pair<std::uint64_t, std::uint64_t>> log;
    Xoshiro256 rng(1);
    WallTimer timer;
    for (std::uint64_t t = 0; t < kItems; ++t) {
      const std::uint64_t label = rng.below(kLabelSpace);
      est.add(label, t);
      log.push_back({label, t});
    }
    const double build_s = timer.seconds();
    Table t({"window", "truth", "estimate", "rel err", "level"}, 12);
    for (std::uint64_t window : {1'000ull, 10'000ull, 50'000ull, 200'000ull, 400'000ull}) {
      const std::uint64_t start = kItems - window;
      DenseSet exact;
      for (const auto& [label, ts] : log) {
        if (ts >= start) exact.insert(label);
      }
      const double truth = static_cast<double>(exact.size());
      const double estimate = est.estimate_distinct(start);
      t.row({fmt("%llu", static_cast<unsigned long long>(window)), fmt("%.0f", truth),
             fmt("%.0f", estimate), fmt("%.4f", relative_error(estimate, truth)),
             fmt("%d", est.copy(0).level_for_window(start))});
    }
    note(fmt("build: %.2f s for %llu items (%.2f M items/s, %zu copies)", build_s,
             static_cast<unsigned long long>(kItems),
             static_cast<double>(kItems) / build_s / 1e6, est.num_copies()));
    note(fmt("memory: %zu bytes", est.bytes_used()));
  }

  title("E12b: update cost vs capacity (single sampler)");
  {
    Table t({"capacity", "ns/item", "bytes"}, 12);
    for (std::size_t capacity : {std::size_t{256}, std::size_t{1024}, std::size_t{4096}}) {
      WindowedF0Sampler s(capacity, 22);
      Xoshiro256 rng(2);
      WallTimer timer;
      constexpr std::uint64_t kN = 300'000;
      for (std::uint64_t t2 = 0; t2 < kN; ++t2) s.add(rng.next(), t2);
      t.row({fmt("%zu", capacity), fmt("%.0f", timer.seconds() * 1e9 / kN),
             fmt("%zu", s.bytes_used())});
    }
  }
  return 0;
}
