// E3 — Theorem T1 time: O(1) expected amortized processing per item.
// google-benchmark microbenchmarks of the update path: vs capacity (flat),
// vs copies (linear — each copy is an independent sampler), vs hash family,
// and the level-raise amortization (fresh stream of all-distinct labels,
// the worst case for eviction work).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"
#include "hash/hash_family.h"

namespace {
using namespace ustream;

// Single-sampler update throughput vs capacity. Labels are pre-generated
// so the RNG is out of the measured loop.
void BM_SamplerAdd_Capacity(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  CoordinatedSampler<PairwiseHash, Unit> sampler(capacity, 42);
  std::vector<std::uint64_t> labels(1 << 16);
  Xoshiro256 rng(1);
  for (auto& l : labels) l = rng.next();
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & (labels.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_level"] = sampler.level();
}
BENCHMARK(BM_SamplerAdd_Capacity)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

// All-distinct stream (maximum insert/evict pressure).
void BM_SamplerAdd_AllDistinct(benchmark::State& state) {
  CoordinatedSampler<PairwiseHash, Unit> sampler(3600, 42);
  std::uint64_t x = 0;
  for (auto _ : state) {
    sampler.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["level_raises"] = static_cast<double>(sampler.level_raises());
}
BENCHMARK(BM_SamplerAdd_AllDistinct);

// Heavy-duplicate stream (the fast path: most adds are below-level skips
// or duplicate lookups).
void BM_SamplerAdd_HeavyDuplicates(benchmark::State& state) {
  CoordinatedSampler<PairwiseHash, Unit> sampler(3600, 42);
  std::vector<std::uint64_t> labels(1024);
  Xoshiro256 rng(2);
  for (auto& l : labels) l = rng.next();
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & 1023]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerAdd_HeavyDuplicates);

// Estimator update vs number of copies (the delta knob's time cost).
void BM_EstimatorAdd_Copies(benchmark::State& state) {
  EstimatorParams params;
  params.capacity = 3600;
  params.copies = static_cast<std::size_t>(state.range(0));
  params.seed = 7;
  F0Estimator est(params);
  std::uint64_t x = 0;
  for (auto _ : state) {
    est.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EstimatorAdd_Copies)->Arg(1)->Arg(5)->Arg(9)->Arg(37);

// Hash-family ablation on the sampler hot path.
template <typename Hash>
void BM_SamplerAdd_Hash(benchmark::State& state) {
  CoordinatedSampler<Hash, Unit> sampler(3600, 42);
  std::uint64_t x = 0;
  for (auto _ : state) {
    sampler.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, PairwiseHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, TabulationHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, MurmurMixHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, MultiplyShiftHash);

// Query cost: estimate() is O(copies) medians over O(1) state.
void BM_EstimatorQuery(benchmark::State& state) {
  F0Estimator est(0.1, 0.05, 9);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200'000; ++i) est.add(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_EstimatorQuery);

}  // namespace

BENCHMARK_MAIN();
