// E3 — Theorem T1 time: O(1) expected amortized processing per item.
// google-benchmark microbenchmarks of the update path: vs capacity (flat),
// vs copies (linear — each copy is an independent sampler), vs hash family,
// and the level-raise amortization (fresh stream of all-distinct labels,
// the worst case for eviction work).
//
// The Ingest* pairs compare the scalar add() path against the batched
// threshold-form add_batch() path across capacity and level regimes; they
// are the rows bench/run_bench.sh records in BENCH_throughput.json and
// bench/check_regression.py gates on (including the >= 2x batch-speedup
// floor in the saturated regime).
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"
#include "hash/hash_family.h"

namespace {
using namespace ustream;

// --- scalar vs batch ingestion ---------------------------------------------
//
// Args: {capacity, saturated}.
//   saturated == 0: the stream draws from a pool of capacity/2 distinct
//     labels, so the level stays 0 and every add survives to a map probe
//     (the insert/lookup-bound regime).
//   saturated == 1: the sampler is pre-filled with 1M distinct labels so
//     the level sits around log2(1M/capacity) >= 1; nearly every add dies
//     on the threshold compare (the reject-bound regime the paper's O(1)
//     amortized claim lives in).
constexpr std::size_t kStreamLen = 1 << 16;  // pre-generated, RNG out of loop
constexpr std::size_t kBatchSpan = 256;      // labels per add_batch call

std::vector<std::uint64_t> ingest_stream(std::size_t capacity, bool saturated) {
  std::vector<std::uint64_t> labels(kStreamLen);
  Xoshiro256 rng(99);
  if (saturated) {
    for (auto& l : labels) l = rng.next();
  } else {
    const std::size_t pool = capacity < 4 ? 2 : capacity / 2;
    std::vector<std::uint64_t> distinct(pool);
    for (auto& l : distinct) l = rng.next();
    for (auto& l : labels) l = distinct[rng.next() % pool];
  }
  return labels;
}

CoordinatedSampler<PairwiseHash, Unit> ingest_sampler(std::size_t capacity, bool saturated) {
  CoordinatedSampler<PairwiseHash, Unit> sampler(capacity, 42);
  if (saturated) {
    std::uint64_t x = 0;
    for (int i = 0; i < 1'000'000; ++i) sampler.add(SplitMix64::mix(++x));
  }
  return sampler;
}

void BM_IngestScalar(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const bool saturated = state.range(1) != 0;
  auto sampler = ingest_sampler(capacity, saturated);
  const auto labels = ingest_stream(capacity, saturated);
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & (kStreamLen - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_level"] = sampler.level();
}
BENCHMARK(BM_IngestScalar)
    ->Args({64, 0})->Args({1024, 0})->Args({16384, 0})
    ->Args({64, 1})->Args({1024, 1})->Args({16384, 1});

void BM_IngestBatch(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const bool saturated = state.range(1) != 0;
  auto sampler = ingest_sampler(capacity, saturated);
  const auto labels = ingest_stream(capacity, saturated);
  std::size_t offset = 0;
  for (auto _ : state) {
    sampler.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
  state.counters["final_level"] = sampler.level();
}
BENCHMARK(BM_IngestBatch)
    ->Args({64, 0})->Args({1024, 0})->Args({16384, 0})
    ->Args({64, 1})->Args({1024, 1})->Args({16384, 1});

// Same pair at the estimator layer (9 copies): the batch path loops
// copies-outer so each copy's hash constants stay in registers.
void BM_EstimatorIngestScalar(benchmark::State& state) {
  EstimatorParams params;
  params.capacity = 1024;
  params.copies = 9;
  params.seed = 7;
  F0Estimator est(params);
  const auto labels = ingest_stream(1024, true);
  std::size_t i = 0;
  for (auto _ : state) {
    est.add(labels[i++ & (kStreamLen - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EstimatorIngestScalar);

void BM_EstimatorIngestBatch(benchmark::State& state) {
  EstimatorParams params;
  params.capacity = 1024;
  params.copies = 9;
  params.seed = 7;
  F0Estimator est(params);
  const auto labels = ingest_stream(1024, true);
  std::size_t offset = 0;
  for (auto _ : state) {
    est.add_batch(std::span<const std::uint64_t>(labels.data() + offset, kBatchSpan));
    offset = (offset + kBatchSpan) & (kStreamLen - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatchSpan));
}
BENCHMARK(BM_EstimatorIngestBatch);

// Single-sampler update throughput vs capacity. Labels are pre-generated
// so the RNG is out of the measured loop.
void BM_SamplerAdd_Capacity(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  CoordinatedSampler<PairwiseHash, Unit> sampler(capacity, 42);
  std::vector<std::uint64_t> labels(1 << 16);
  Xoshiro256 rng(1);
  for (auto& l : labels) l = rng.next();
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & (labels.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_level"] = sampler.level();
}
BENCHMARK(BM_SamplerAdd_Capacity)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

// All-distinct stream (maximum insert/evict pressure).
void BM_SamplerAdd_AllDistinct(benchmark::State& state) {
  CoordinatedSampler<PairwiseHash, Unit> sampler(3600, 42);
  std::uint64_t x = 0;
  for (auto _ : state) {
    sampler.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["level_raises"] = static_cast<double>(sampler.level_raises());
}
BENCHMARK(BM_SamplerAdd_AllDistinct);

// Heavy-duplicate stream (the fast path: most adds are below-level skips
// or duplicate lookups).
void BM_SamplerAdd_HeavyDuplicates(benchmark::State& state) {
  CoordinatedSampler<PairwiseHash, Unit> sampler(3600, 42);
  std::vector<std::uint64_t> labels(1024);
  Xoshiro256 rng(2);
  for (auto& l : labels) l = rng.next();
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.add(labels[i++ & 1023]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerAdd_HeavyDuplicates);

// Estimator update vs number of copies (the delta knob's time cost).
void BM_EstimatorAdd_Copies(benchmark::State& state) {
  EstimatorParams params;
  params.capacity = 3600;
  params.copies = static_cast<std::size_t>(state.range(0));
  params.seed = 7;
  F0Estimator est(params);
  std::uint64_t x = 0;
  for (auto _ : state) {
    est.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EstimatorAdd_Copies)->Arg(1)->Arg(5)->Arg(9)->Arg(37);

// Hash-family ablation on the sampler hot path.
template <typename Hash>
void BM_SamplerAdd_Hash(benchmark::State& state) {
  CoordinatedSampler<Hash, Unit> sampler(3600, 42);
  std::uint64_t x = 0;
  for (auto _ : state) {
    sampler.add(SplitMix64::mix(++x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, PairwiseHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, TabulationHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, MurmurMixHash);
BENCHMARK_TEMPLATE(BM_SamplerAdd_Hash, MultiplyShiftHash);

// Query cost: estimate() is O(copies) medians over O(1) state.
void BM_EstimatorQuery(benchmark::State& state) {
  F0Estimator est(0.1, 0.05, 9);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200'000; ++i) est.add(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_EstimatorQuery);

}  // namespace

BENCHMARK_MAIN();
