// Sharded-referee soak: ten thousand simulated sites pushed over loopback
// into a 4-shard referee must produce the SAME union sketch bytes and the
// SAME folded ledger as the sequential single-loop referee on the same
// frames. This is the tentpole's byte-identity contract at scale — the
// kernel's SO_REUSEPORT routing is nondeterministic, the output is not.
//
// Connection hygiene: every pusher RST-closes (SO_LINGER{1,0}) so 20k
// short-lived loopback connections never pile up in TIME_WAIT and exhaust
// the ephemeral port range mid-test.
#include "net/referee_server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/frame.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace ustream::net {
namespace {

constexpr std::size_t kSites = 10'000;
constexpr std::size_t kVariants = 64;
constexpr std::size_t kPusherThreads = 8;

// 64 distinct small sketches, all merge-compatible (same seed/capacity):
// site i pushes variant i % 64, so the 10k-site union is deterministic and
// cheap to build.
std::vector<std::vector<std::uint8_t>> make_variants() {
  const auto params = EstimatorParams::for_guarantee(0.5, 0.5, 20250808);
  std::vector<std::vector<std::uint8_t>> variants;
  variants.reserve(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    F0Estimator est(params);
    for (std::uint64_t item = 0; item < 40; ++item) {
      est.add(v * 1'000 + item);
    }
    variants.push_back(est.serialize());
  }
  return variants;
}

// [u32 LE length][frame] for one site, ready for send_all.
std::vector<std::uint8_t> wire_frame(std::size_t site,
                                     const std::vector<std::uint8_t>& payload) {
  const auto frame = frame_encode(
      {PayloadKind::kF0Estimator, static_cast<std::uint32_t>(site), 0}, payload);
  std::vector<std::uint8_t> wire(4 + frame.size());
  const auto len = static_cast<std::uint32_t>(frame.size());
  wire[0] = static_cast<std::uint8_t>(len);
  wire[1] = static_cast<std::uint8_t>(len >> 8);
  wire[2] = static_cast<std::uint8_t>(len >> 16);
  wire[3] = static_cast<std::uint8_t>(len >> 24);
  std::copy(frame.begin(), frame.end(), wire.begin() + 4);
  return wire;
}

// One push over a fresh connection: send, wait for the 1-byte ack,
// RST-close. Returns the ack byte.
std::uint8_t push_once(std::uint16_t port, const std::vector<std::uint8_t>& wire) {
  Socket sock = connect_tcp("127.0.0.1", port, std::chrono::milliseconds{10'000},
                            std::chrono::milliseconds{30'000});
  send_all(sock, wire);
  std::uint8_t ack = 0;
  recv_exact(sock, std::span<std::uint8_t>(&ack, 1));
  const struct linger rst = {1, 0};
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &rst, sizeof(rst));
  return ack;
}

struct SoakRun {
  CollectReport report;
  ChannelStats wire;
  std::vector<std::uint8_t> union_bytes;
  std::vector<RefereeServer::ShardObservation> shards;
};

SoakRun run_soak(std::size_t shards,
                 const std::vector<std::vector<std::uint8_t>>& variants) {
  RefereeServerConfig config;
  config.sites = kSites;
  config.shards = shards;
  config.timeout = std::chrono::milliseconds{180'000};
  RefereeServer server(std::move(config));
  const std::uint16_t port = server.port();

  NetCollectResult<F0Estimator> collected;
  std::thread referee([&server, &collected] {
    collected = collect_and_merge<F0Estimator>(server);
  });

  // A few connections that open early, send nothing, and stay open across
  // the whole storm: idle conns must neither block completion nor confuse
  // shard teardown.
  std::vector<Socket> idle;
  for (int i = 0; i < 8; ++i) {
    idle.push_back(connect_tcp("127.0.0.1", port, std::chrono::milliseconds{10'000},
                               std::chrono::milliseconds{30'000}));
  }

  std::atomic<std::size_t> acks_ok{0};
  std::vector<std::thread> pushers;
  pushers.reserve(kPusherThreads);
  for (std::size_t t = 0; t < kPusherThreads; ++t) {
    pushers.emplace_back([t, port, &variants, &acks_ok] {
      for (std::size_t site = t; site < kSites; site += kPusherThreads) {
        const auto wire = wire_frame(site, variants[site % kVariants]);
        if (push_once(port, wire) == static_cast<std::uint8_t>(PushAck::kAccepted)) {
          acks_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pushers) t.join();
  referee.join();
  idle.clear();

  EXPECT_EQ(acks_ok.load(), kSites);
  EXPECT_TRUE(collected.report.complete()) << collected.report.summary();
  EXPECT_FALSE(collected.timed_out);

  SoakRun run;
  run.report = std::move(collected.report);
  run.wire = std::move(collected.wire);
  EXPECT_TRUE(collected.union_sketch.has_value()) << "degraded union";
  if (collected.union_sketch.has_value()) {
    run.union_bytes = collected.union_sketch->serialize();
  }
  run.shards = std::move(collected.shards);
  return run;
}

TEST(NetSoak, TenThousandSitesShardedIsByteIdenticalToSequential) {
  const auto variants = make_variants();

  const SoakRun sequential = run_soak(1, variants);
  const SoakRun sharded = run_soak(4, variants);

  // The headline contract: bytes out of the 4-shard collection plane are
  // the bytes out of the single-loop referee.
  ASSERT_FALSE(sequential.union_bytes.empty());
  EXPECT_EQ(sharded.union_bytes, sequential.union_bytes);

  // Folded ledger matches field for field.
  EXPECT_EQ(sharded.report.sites_reported, kSites);
  EXPECT_EQ(sharded.report.sites_reported, sequential.report.sites_reported);
  EXPECT_EQ(sharded.report.total_attempts(), sequential.report.total_attempts());
  EXPECT_EQ(sharded.report.retries, sequential.report.retries);
  EXPECT_EQ(sharded.report.duplicates_dropped, sequential.report.duplicates_dropped);
  EXPECT_EQ(sharded.report.stale_dropped, sequential.report.stale_dropped);
  EXPECT_EQ(sharded.report.frames_quarantined, sequential.report.frames_quarantined);

  // Wire totals: same frames, same bytes, however they were spread.
  EXPECT_EQ(sharded.wire.messages, sequential.wire.messages);
  EXPECT_EQ(sharded.wire.total_bytes, sequential.wire.total_bytes);

  // The shard breakdown accounts for every site exactly once.
  ASSERT_EQ(sequential.shards.size(), 1u);
  ASSERT_EQ(sharded.shards.size(), 4u);
  std::size_t shard_sites = 0;
  std::uint64_t shard_bytes = 0;
  for (const auto& shard : sharded.shards) {
    shard_sites += shard.report.sites_reported;
    shard_bytes += shard.wire.total_bytes;
  }
  EXPECT_EQ(shard_sites, kSites);
  EXPECT_EQ(shard_bytes, sharded.wire.total_bytes);
}

}  // namespace
}  // namespace ustream::net
