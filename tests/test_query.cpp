// The query subsystem (DESIGN.md §13): grammar round trips and precise
// error offsets, a parser fuzzer (token soup + mutations of valid
// expressions — the `fuzz` label the sanitizer presets run), the DLRT
// common-threshold evaluator against exact ground truth across workload
// shapes and every hash family, and the grouped-collection ledger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/frame.h"
#include "common/random.h"
#include "core/f0_estimator.h"
#include "distributed/collect.h"
#include "hash/hash_family.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/service.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

using query::Expr;
using query::ExprKind;
using query::ExprPtr;
using query::OperandKind;
using query::QueryError;

// ---------------------------------------------------------------- parser

TEST(QueryParser, PrecedenceBindsIntersectOverDiffOverUnion) {
  const ExprPtr e = query::parse("a | b & c \\ d");
  // Precedence low->high is | then \ then &, so this reads as
  // Union(a, Difference(Intersect(b, c), d)).
  ASSERT_EQ(e->kind, ExprKind::kUnion);
  ASSERT_EQ(e->right->kind, ExprKind::kDifference);
  ASSERT_EQ(e->right->left->kind, ExprKind::kIntersect);
  EXPECT_EQ(query::to_string(*e), "a | b & c \\ d");
}

TEST(QueryParser, BinariesAreLeftAssociative) {
  for (const char* text : {"a | b | c", "a \\ b \\ c", "a & b & c"}) {
    const ExprPtr e = query::parse(text);
    // ((a OP b) OP c): the left child is the nested application.
    ASSERT_EQ(e->left->kind, e->kind) << text;
    EXPECT_EQ(e->left->left->name, "a") << text;
    EXPECT_EQ(e->right->name, "c") << text;
    EXPECT_EQ(query::to_string(*e), text);
  }
}

TEST(QueryParser, MinusIsDifferenceAndBangIsPrefix) {
  const ExprPtr e = query::parse("a - b & !c");
  ASSERT_EQ(e->kind, ExprKind::kDifference);
  ASSERT_EQ(e->right->kind, ExprKind::kIntersect);
  ASSERT_EQ(e->right->right->kind, ExprKind::kComplement);
  EXPECT_EQ(e->right->right->left->name, "c");
  // The canonical spelling uses '\': print -> parse is still an identity.
  EXPECT_EQ(query::to_string(*e), "a \\ b & !c");
}

TEST(QueryParser, OperandFormsAndIdLimits) {
  const ExprPtr site = query::parse("site:4294967295");
  EXPECT_EQ(site->operand, OperandKind::kSite);
  EXPECT_EQ(site->id, 4294967295u);
  const ExprPtr group = query::parse("group:65535");
  EXPECT_EQ(group->operand, OperandKind::kGroup);
  EXPECT_EQ(group->id, 65535u);
  const ExprPtr name = query::parse("backbone_7");
  EXPECT_EQ(name->operand, OperandKind::kName);
  EXPECT_EQ(name->name, "backbone_7");
  EXPECT_THROW((void)query::parse("site:4294967296"), QueryError);
  EXPECT_THROW((void)query::parse("group:65536"), QueryError);
  EXPECT_THROW((void)query::parse("foo:3"), QueryError);  // unknown namespace
}

TEST(QueryParser, ErrorsCarryExactByteOffsets) {
  const struct {
    const char* text;
    std::size_t pos;
  } cases[] = {
      {"site:0 &", 8},    // operand missing at end of input
      {"(site:0", 7},     // unclosed paren, reported at EOF
      {"site:0)", 6},     // trailing token after a complete expression
      {"foo:3", 0},       // unknown namespace, reported at the identifier
      {"site:0 | $", 9},  // character outside the grammar
  };
  for (const auto& c : cases) {
    try {
      (void)query::parse(c.text);
      FAIL() << "parse accepted '" << c.text << "'";
    } catch (const QueryError& e) {
      EXPECT_EQ(e.pos(), c.pos) << c.text << " -> " << e.what();
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
  }
}

TEST(QueryParser, PrinterUsesMinimalParens) {
  // Redundant parens are dropped; structure-bearing ones survive.
  EXPECT_EQ(query::to_string(*query::parse("((a) | (b & c))")), "a | b & c");
  EXPECT_EQ(query::to_string(*query::parse("(a | b) & c")), "(a | b) & c");
  EXPECT_EQ(query::to_string(*query::parse("a | (b | c)")), "a | (b | c)");
  EXPECT_EQ(query::to_string(*query::parse("!(a | b)")), "!(a | b)");
  EXPECT_EQ(query::to_string(*query::parse("!!a")), "!!a");
}

TEST(QueryParser, CollectOperandsDedupsInFirstAppearanceOrder) {
  const ExprPtr e = query::parse("site:1 & (group:2 | site:1) \\ other");
  const auto ops = query::collect_operands(*e);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(query::operand_key(*ops[0]), "site:1");
  EXPECT_EQ(query::operand_key(*ops[1]), "group:2");
  EXPECT_EQ(query::operand_key(*ops[2]), "other");
}

TEST(QueryParser, BoundednessRules) {
  EXPECT_TRUE(query::is_bounded(*query::parse("a")));
  EXPECT_FALSE(query::is_bounded(*query::parse("!a")));
  EXPECT_TRUE(query::is_bounded(*query::parse("a & !b")));
  EXPECT_TRUE(query::is_bounded(*query::parse("!b & a")));
  EXPECT_FALSE(query::is_bounded(*query::parse("a | !b")));
  EXPECT_TRUE(query::is_bounded(*query::parse("a \\ !b")));   // left-bounded
  EXPECT_FALSE(query::is_bounded(*query::parse("!a \\ b")));  // support of !a
  EXPECT_FALSE(query::is_bounded(*query::parse("!(a & !b)")));
  EXPECT_TRUE(query::is_bounded(*query::parse("(a | b) & !(c | d)")));
}

// ----------------------------------------------------------------- fuzz

ExprPtr random_leaf(Xoshiro256& rng) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOperand;
  switch (rng.below(3)) {
    case 0:
      e->operand = OperandKind::kSite;
      e->id = static_cast<std::uint32_t>(rng.below(9));
      break;
    case 1:
      e->operand = OperandKind::kGroup;
      e->id = static_cast<std::uint32_t>(rng.below(9));
      break;
    default:
      e->operand = OperandKind::kName;
      e->name = std::string(1, static_cast<char>('a' + rng.below(4)));
      break;
  }
  return e;
}

ExprPtr random_expr(Xoshiro256& rng, int depth) {
  if (depth <= 0 || rng.below(3) == 0) return random_leaf(rng);
  auto e = std::make_unique<Expr>();
  switch (rng.below(4)) {
    case 0: e->kind = ExprKind::kUnion; break;
    case 1: e->kind = ExprKind::kIntersect; break;
    case 2: e->kind = ExprKind::kDifference; break;
    default: e->kind = ExprKind::kComplement; break;
  }
  e->left = random_expr(rng, depth - 1);
  if (e->kind != ExprKind::kComplement) e->right = random_expr(rng, depth - 1);
  return e;
}

TEST(QueryFuzz, RandomAstsRoundTripThroughPrintAndParse) {
  Xoshiro256 rng(101);
  for (int i = 0; i < 500; ++i) {
    const ExprPtr e = random_expr(rng, 5);
    const std::string text = query::to_string(*e);
    const ExprPtr reparsed = query::parse(text);
    ASSERT_TRUE(query::structurally_equal(*e, *reparsed)) << text;
    // And the printer is a fixed point: print(parse(print(e))) == print(e).
    ASSERT_EQ(query::to_string(*reparsed), text);
  }
}

TEST(QueryFuzz, TokenSoupNeverCrashesAndErrorsStayInBounds) {
  static const char kAlphabet[] = "()|&\\!-:_ \tabgrsiteoup0123456789$%#";
  Xoshiro256 rng(102);
  for (int i = 0; i < 4000; ++i) {
    std::string s;
    const std::size_t len = rng.below(41);
    for (std::size_t k = 0; k < len; ++k) {
      s += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
    }
    try {
      const ExprPtr e = query::parse(s);
      // Anything the parser accepts must round-trip.
      ASSERT_TRUE(query::structurally_equal(*e, *query::parse(query::to_string(*e)))) << s;
    } catch (const QueryError& err) {
      ASSERT_LE(err.pos(), s.size()) << s;
    }
  }
}

TEST(QueryFuzz, MutationsOfValidExpressionsNeverCrash) {
  static const char kAlphabet[] = "()|&\\!-: site:group:0123456789abz";
  Xoshiro256 rng(103);
  for (int i = 0; i < 500; ++i) {
    std::string s = query::to_string(*random_expr(rng, 4));
    // A few stacked byte-level mutations: insert, delete, or replace.
    const std::size_t edits = 1 + rng.below(3);
    for (std::size_t k = 0; k < edits && !s.empty(); ++k) {
      const std::size_t at = rng.below(s.size());
      switch (rng.below(3)) {
        case 0: s.insert(at, 1, kAlphabet[rng.below(sizeof(kAlphabet) - 1)]); break;
        case 1: s.erase(at, 1); break;
        default: s[at] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)]; break;
      }
    }
    try {
      const ExprPtr e = query::parse(s);
      ASSERT_TRUE(query::structurally_equal(*e, *query::parse(query::to_string(*e)))) << s;
    } catch (const QueryError& err) {
      ASSERT_LE(err.pos(), s.size()) << s;
    }
  }
}

// ------------------------------------------------------------- evaluator

// Exact reference sets + coordinated sketches for the same streams, so the
// two evaluators can be compared expression by expression.
template <typename Est>
struct Fixture {
  std::vector<Est> sketches;
  std::vector<std::vector<std::uint64_t>> sets;

  void add_site(const std::vector<std::uint64_t>& labels, const EstimatorParams& p) {
    Est est(p);
    std::set<std::uint64_t> distinct;
    for (const std::uint64_t x : labels) {
      est.add(x);
      distinct.insert(x);
    }
    sketches.push_back(std::move(est));
    sets.emplace_back(distinct.begin(), distinct.end());
  }

  query::QueryResult evaluate(const std::string& text) const {
    const ExprPtr e = query::parse(text);
    std::function<const Est*(const Expr&)> resolve = [this](const Expr& leaf) -> const Est* {
      if (leaf.operand != OperandKind::kSite || leaf.id >= sketches.size()) return nullptr;
      return &sketches[leaf.id];
    };
    return query::evaluate<Est>(*e, resolve);
  }

  double exact(const std::string& text) const {
    const ExprPtr e = query::parse(text);
    std::function<const std::vector<std::uint64_t>*(const Expr&)> resolve =
        [this](const Expr& leaf) -> const std::vector<std::uint64_t>* {
      if (leaf.operand != OperandKind::kSite || leaf.id >= sets.size()) return nullptr;
      return &sets[leaf.id];
    };
    return query::exact_evaluate(*e, resolve);
  }
};

// The DLRT envelope: count ~ Binomial(|E|, 2^-L), so a 5-sigma band around
// truth (floored for near-empty results, since copies are medianed the
// band is generous) must contain the estimate.
void expect_within_envelope(const query::QueryResult& r, double exact,
                            const std::string& what) {
  const double scale = std::ldexp(1.0, r.level) - 1.0;
  const double sigma = std::sqrt(std::max(exact, 1.0) * scale);
  const double tol = 5.0 * sigma + 4.0 * (scale + 1.0);
  EXPECT_NEAR(r.estimate, exact, tol) << what << " (level " << r.level << ")";
  // The reported plug-in SE must agree with the formula on its own output.
  EXPECT_DOUBLE_EQ(r.std_error, std::sqrt(r.estimate * scale)) << what;
}

TEST(QueryEvaluator, ExactReferenceOnHandComputedSets) {
  Fixture<F0Estimator> fx;  // sketches unused here; sets drive exact_evaluate
  const EstimatorParams p{.capacity = 64, .copies = 3, .seed = 1};
  fx.add_site({1, 2, 3}, p);
  fx.add_site({2, 3, 4}, p);
  EXPECT_DOUBLE_EQ(fx.exact("site:0 | site:1"), 4.0);
  EXPECT_DOUBLE_EQ(fx.exact("site:0 & site:1"), 2.0);
  EXPECT_DOUBLE_EQ(fx.exact("site:0 \\ site:1"), 1.0);
  EXPECT_DOUBLE_EQ(fx.exact("site:0 & !site:1"), 1.0);
  EXPECT_DOUBLE_EQ(fx.exact("(site:0 | site:1) \\ (site:0 & site:1)"), 2.0);
  EXPECT_DOUBLE_EQ(fx.exact("site:0 \\ site:0"), 0.0);
}

// Workload matrix: disjoint sites, nested subsets, and Zipf-skewed streams
// with pairwise overlap — the three shapes E19 sweeps.
TEST(QueryEvaluator, EnvelopeOnDisjointSites) {
  const EstimatorParams p{.capacity = 8192, .copies = 5, .seed = 31};
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 40'000, .overlap = 0.0, .duplication = 1.5, .seed = 41});
  Fixture<F0Estimator> fx;
  for (const auto& stream : w.site_streams) {
    std::vector<std::uint64_t> labels;
    labels.reserve(stream.size());
    for (const Item& item : stream) labels.push_back(item.label);
    fx.add_site(labels, p);
  }
  for (const char* text :
       {"site:0 | site:1 | site:2 | site:3", "site:0 & site:1",
        "(site:0 | site:1) \\ site:2", "(site:0 | site:1) & !site:2"}) {
    expect_within_envelope(fx.evaluate(text), fx.exact(text), text);
  }
  // Disjoint sites share no labels, so the coordinated intersection is not
  // merely small — it is empty at every level.
  EXPECT_DOUBLE_EQ(fx.evaluate("site:0 & site:1").estimate, 0.0);
}

TEST(QueryEvaluator, EnvelopeOnNestedSites) {
  const EstimatorParams p{.capacity = 8192, .copies = 5, .seed = 32};
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> big(30'000);
  for (auto& x : big) x = rng.next();
  const std::vector<std::uint64_t> mid(big.begin(), big.begin() + 10'000);
  const std::vector<std::uint64_t> small(big.begin(), big.begin() + 3'000);
  Fixture<F0Estimator> fx;
  fx.add_site(big, p);
  fx.add_site(mid, p);
  fx.add_site(small, p);
  for (const char* text :
       {"site:0 \\ site:1", "site:0 & site:1", "site:1 & !site:2",
        "(site:0 \\ site:1) | site:2", "site:0 & site:1 & site:2"}) {
    expect_within_envelope(fx.evaluate(text), fx.exact(text), text);
  }
  // Nesting gives sharp exact answers to compare against.
  EXPECT_DOUBLE_EQ(fx.exact("site:0 \\ site:1"), 20'000.0);
  EXPECT_DOUBLE_EQ(fx.exact("site:1 & site:2"), 3'000.0);
}

TEST(QueryEvaluator, EnvelopeOnZipfOverlappingSites) {
  const EstimatorParams p{.capacity = 8192, .copies = 5, .seed = 33};
  const auto w = make_distributed_workload({.sites = 3, .union_distinct = 30'000,
                                            .overlap = 0.5, .duplication = 2.0,
                                            .zipf_alpha = 1.0, .seed = 43});
  Fixture<F0Estimator> fx;
  for (const auto& stream : w.site_streams) {
    std::vector<std::uint64_t> labels;
    labels.reserve(stream.size());
    for (const Item& item : stream) labels.push_back(item.label);
    fx.add_site(labels, p);
  }
  for (const char* text :
       {"site:0 | site:1 | site:2", "site:0 & site:1", "site:0 \\ site:1",
        "(site:0 | site:1) & !site:2", "(site:0 & site:1) | (site:1 & site:2)"}) {
    expect_within_envelope(fx.evaluate(text), fx.exact(text), text);
  }
}

TEST(QueryEvaluator, AssociativityAndCommutativityAreExact) {
  const EstimatorParams p{.capacity = 2048, .copies = 5, .seed = 34};
  const auto w = make_distributed_workload(
      {.sites = 3, .union_distinct = 20'000, .overlap = 0.4, .duplication = 1.5, .seed = 44});
  Fixture<F0Estimator> fx;
  for (const auto& stream : w.site_streams) {
    std::vector<std::uint64_t> labels;
    for (const Item& item : stream) labels.push_back(item.label);
    fx.add_site(labels, p);
  }
  // Same operand set, same common level, same candidate set: reassociating
  // or commuting | and & must not move the estimate by even one ULP.
  const struct {
    const char* a;
    const char* b;
  } laws[] = {
      {"site:0 | site:1", "site:1 | site:0"},
      {"site:0 & site:1", "site:1 & site:0"},
      {"(site:0 | site:1) | site:2", "site:0 | (site:1 | site:2)"},
      {"(site:0 & site:1) & site:2", "site:0 & (site:1 & site:2)"},
      {"site:0 \\ site:1", "site:0 & !site:1"},  // difference as intersection
  };
  for (const auto& law : laws) {
    EXPECT_DOUBLE_EQ(fx.evaluate(law.a).estimate, fx.evaluate(law.b).estimate)
        << law.a << " vs " << law.b;
  }
  // Duplicated operands collapse onto one bitmask bit.
  EXPECT_DOUBLE_EQ(fx.evaluate("site:0 & site:0").estimate,
                   fx.evaluate("site:0").estimate);
  EXPECT_DOUBLE_EQ(fx.evaluate("site:0 \\ site:0").estimate, 0.0);
}

TEST(QueryEvaluator, UnboundedExpressionsRejected) {
  const EstimatorParams p{.capacity = 64, .copies = 3, .seed = 35};
  Fixture<F0Estimator> fx;
  fx.add_site({1, 2, 3}, p);
  fx.add_site({3, 4}, p);
  EXPECT_THROW((void)fx.evaluate("!site:0"), QueryError);
  EXPECT_THROW((void)fx.evaluate("site:0 | !site:1"), QueryError);
  EXPECT_NO_THROW((void)fx.evaluate("site:0 & !site:1"));
  try {
    (void)fx.evaluate("!site:0");
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("unbounded"), std::string::npos);
  }
}

TEST(QueryEvaluator, UnknownAndUncoordinatedOperandsRejectedWithPositions) {
  const EstimatorParams p{.capacity = 64, .copies = 3, .seed = 36};
  Fixture<F0Estimator> fx;
  fx.add_site({1, 2, 3}, p);
  try {
    (void)fx.evaluate("site:0 | site:9");
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_EQ(e.pos(), 9u);  // the offending leaf, not the whole expression
    EXPECT_NE(std::string(e.what()).find("unknown operand 'site:9'"),
              std::string::npos);
  }
  // A sketch built under a different seed is not coordinated: its sample
  // decisions used different coins, so set algebra on the samples is
  // meaningless and must be refused.
  const EstimatorParams other{.capacity = 64, .copies = 3, .seed = 99};
  fx.add_site({1, 2, 3}, other);
  try {
    (void)fx.evaluate("site:0 & site:1");
    FAIL();
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("not coordinated"), std::string::npos);
  }
}

// Every hash family in the wire matrix drives the same evaluator through
// the same envelope check — the common-threshold argument only needs the
// operands to share ONE hash, whichever family it is.
template <typename H>
class QueryHashMatrix : public ::testing::Test {};
using HashFamilies =
    ::testing::Types<PairwiseHash, TabulationHash, MurmurMixHash, MultiplyShiftHash>;
TYPED_TEST_SUITE(QueryHashMatrix, HashFamilies, );

TYPED_TEST(QueryHashMatrix, EvaluatorMatchesExactAcrossFamilies) {
  using Est = BasicF0Estimator<TypeParam>;
  const EstimatorParams p{.capacity = 4096, .copies = 5, .seed = 71};
  Xoshiro256 rng(72);
  std::vector<std::uint64_t> shared(6'000), only0(8'000), only1(5'000), only2(4'000);
  for (auto& x : shared) x = rng.next();
  for (auto& x : only0) x = rng.next();
  for (auto& x : only1) x = rng.next();
  for (auto& x : only2) x = rng.next();
  Fixture<Est> fx;
  auto with_shared = [&](const std::vector<std::uint64_t>& own) {
    std::vector<std::uint64_t> labels = shared;
    labels.insert(labels.end(), own.begin(), own.end());
    return labels;
  };
  fx.add_site(with_shared(only0), p);
  fx.add_site(with_shared(only1), p);
  fx.add_site(only2, p);
  for (const char* text : {"site:0 | site:1 | site:2", "site:0 & site:1",
                           "(site:0 | site:1) & !site:2", "site:0 \\ site:1"}) {
    expect_within_envelope(fx.evaluate(text), fx.exact(text), text);
  }
  EXPECT_DOUBLE_EQ(fx.exact("site:0 & site:1"), 6'000.0);
}

// -------------------------------------------------------------- service

TEST(QueryService, RunQueryFormatsTextAndJson) {
  const EstimatorParams p{.capacity = 1024, .copies = 3, .seed = 81};
  Fixture<F0Estimator> fx;
  Xoshiro256 rng(82);
  std::vector<std::uint64_t> labels(5'000);
  for (auto& x : labels) x = rng.next();
  fx.add_site(labels, p);
  query::ResolveSketch resolve = [&fx](const Expr& leaf) -> const F0Estimator* {
    return leaf.operand == OperandKind::kSite && leaf.id == 0 ? &fx.sketches[0]
                                                              : nullptr;
  };
  const query::QueryResult r = query::run_query("site:0", resolve);
  EXPECT_GT(r.estimate, 0.0);
  const std::string text = query::format_query_text("site:0", r);
  EXPECT_NE(text.find("query: site:0"), std::string::npos);
  EXPECT_NE(text.find("estimate: "), std::string::npos);
  const std::string json = query::format_query_json("site:0", r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  for (const char* key : {"\"query\"", "\"estimate\"", "\"std_error\"", "\"level\"",
                          "\"operands\"", "\"candidates\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_THROW((void)query::run_query("site:0 &", resolve), QueryError);
}

TEST(QueryService, PercentEncodingRoundTripsAndRejectsMalformed) {
  const std::string exotic = "(site:0 | site:1) & !group:2 \\ a_b %\t\n";
  EXPECT_EQ(query::percent_decode(query::percent_encode(exotic)), exotic);
  // '+' is a space on the way in (admin clients may form-encode).
  EXPECT_EQ(query::percent_decode("a+%26+b"), "a & b");
  EXPECT_THROW((void)query::percent_decode("abc%2"), QueryError);   // truncated
  EXPECT_THROW((void)query::percent_decode("abc%zz"), QueryError);  // bad hex
  // Encoded text survives the one-line admin request format.
  const std::string encoded = query::percent_encode(exotic);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(encoded.find('\n'), std::string::npos);
}

// ------------------------------------------------------ grouped ledgers

std::vector<std::uint8_t> grouped_frame(std::uint32_t site, std::uint32_t epoch,
                                        std::uint16_t group,
                                        PayloadKind kind = PayloadKind::kF0Estimator) {
  static const std::vector<std::uint8_t> payload{1, 2, 3};
  return frame_encode({kind, site, epoch, group}, payload);
}

TEST(GroupedCollect, ExactlyOnceKeepsFirstGroupTag) {
  CollectState state(2, PayloadKind::kF0Estimator, DedupMode::kExactlyOnce);
  const auto acc = state.ingest(grouped_frame(0, 0, 5));
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->group, 5u);
  EXPECT_EQ(state.report().per_site[0].group, 5u);
  // A duplicate (same site+epoch) is dropped even if it claims another
  // group: the ledger keeps the accepted tag.
  EXPECT_FALSE(state.ingest(grouped_frame(0, 0, 7)).has_value());
  EXPECT_EQ(state.report().duplicates_dropped, 1u);
  EXPECT_EQ(state.report().per_site[0].group, 5u);
  // Ungrouped legacy frames land in group 0.
  const auto legacy = state.ingest(grouped_frame(1, 0, 0));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->group, 0u);
  EXPECT_EQ(state.report().per_site[1].group, 0u);
}

TEST(GroupedCollect, LatestWinsRetagsOnNewerEpochOnly) {
  CollectState state(1, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  ASSERT_TRUE(state.ingest(grouped_frame(0, 1, 1)).has_value());
  EXPECT_EQ(state.report().per_site[0].group, 1u);
  // Newer epoch re-tags the site (a site moved between tenants).
  ASSERT_TRUE(state.ingest(grouped_frame(0, 2, 2)).has_value());
  EXPECT_EQ(state.report().per_site[0].group, 2u);
  // Stale frames do not roll the tag back.
  EXPECT_FALSE(state.ingest(grouped_frame(0, 1, 1)).has_value());
  EXPECT_EQ(state.report().stale_dropped, 1u);
  EXPECT_EQ(state.report().per_site[0].group, 2u);
}

TEST(GroupedCollect, DemoteAndRestoreCarryGroups) {
  CollectState state(1, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  ASSERT_TRUE(state.ingest(grouped_frame(0, 1, 3)).has_value());
  ASSERT_TRUE(state.ingest(grouped_frame(0, 2, 4)).has_value());
  // Cross-shard arbitration says the epoch-2 acceptance lost: the ledger
  // must roll back to the prior (epoch, group) pair, not just the epoch.
  state.demote_accepted(0, /*previous_epoch=*/1, /*previously_reported=*/true,
                        /*count_stale=*/true, /*previous_group=*/3);
  EXPECT_EQ(state.report().per_site[0].accepted_epoch, 1u);
  EXPECT_EQ(state.report().per_site[0].group, 3u);
  // Crash recovery transplants (site, epoch, group) in one call.
  CollectState resumed(2, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  resumed.restore_accepted(1, 9, 6);
  EXPECT_TRUE(resumed.report().per_site[1].reported);
  EXPECT_EQ(resumed.report().per_site[1].accepted_epoch, 9u);
  EXPECT_EQ(resumed.report().per_site[1].group, 6u);
}

TEST(GroupedCollect, DeltaWithChangedGroupForcesResync) {
  CollectState state(1, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  state.enable_deltas(PayloadKind::kF0Delta);
  ASSERT_TRUE(state.ingest(grouped_frame(0, 1, 2)).has_value());
  // A delta that extends the chain but claims a different group is a stale
  // mirror of a re-tagged site: drop it and demand a full re-base.
  EXPECT_FALSE(state.ingest(grouped_frame(0, 2, 3, PayloadKind::kF0Delta)).has_value());
  EXPECT_EQ(state.report().resyncs, 1u);
  EXPECT_EQ(state.report().per_site[0].group, 2u);
  // The same delta under the chain's own group extends it.
  const auto acc = state.ingest(grouped_frame(0, 2, 2, PayloadKind::kF0Delta));
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->kind, PayloadKind::kF0Delta);
  EXPECT_EQ(state.report().per_site[0].accepted_epoch, 2u);
}

TEST(GroupedCollect, MergeReportsTakesWinningShardsGroup) {
  CollectState a(2, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  CollectState b(2, PayloadKind::kF0Estimator, DedupMode::kLatestWins);
  ASSERT_TRUE(a.ingest(grouped_frame(0, 1, 1)).has_value());
  ASSERT_TRUE(b.ingest(grouped_frame(0, 3, 2)).has_value());
  const CollectReport merged = merge_reports({a.report(), b.report()});
  EXPECT_EQ(merged.per_site[0].accepted_epoch, 3u);
  EXPECT_EQ(merged.per_site[0].group, 2u);  // the newest epoch's tag
  const CollectReport swapped = merge_reports({b.report(), a.report()});
  EXPECT_EQ(swapped.per_site[0].group, 2u);  // shard order must not matter
}

TEST(GroupedCollect, ReduceGroupsBucketsDeterministically) {
  const EstimatorParams p{.capacity = 512, .copies = 3, .seed = 91};
  Xoshiro256 rng(92);
  auto sketch = [&](int items) {
    F0Estimator est(p);
    for (int i = 0; i < items; ++i) est.add(rng.next());
    return est;
  };
  // Sites 0..4 tagged {2, 1, 2, 0, 1}; site 5 never reported.
  const std::uint16_t tags[] = {2, 1, 2, 0, 1};
  CollectReport report;
  report.sites_total = 6;
  report.per_site.resize(6);
  std::vector<std::optional<F0Estimator>> accepted(6);
  std::vector<F0Estimator> originals;
  for (std::size_t s = 0; s < 5; ++s) {
    report.per_site[s].reported = true;
    report.per_site[s].group = tags[s];
    originals.push_back(sketch(2'000 + static_cast<int>(s) * 100));
    accepted[s] = originals.back();
  }
  const auto groups = reduce_groups<F0Estimator>(report, std::move(accepted));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].group, 0u);
  EXPECT_EQ(groups[1].group, 1u);
  EXPECT_EQ(groups[2].group, 2u);
  EXPECT_EQ(groups[0].sites, (std::vector<std::size_t>{3}));
  EXPECT_EQ(groups[1].sites, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[2].sites, (std::vector<std::size_t>{0, 2}));
  // Byte identity against a sequential site-order fold per bucket — the
  // single-group-per-collection equivalence the sharded tests build on.
  for (const auto& g : groups) {
    F0Estimator manual = originals[g.sites[0]];
    for (std::size_t i = 1; i < g.sites.size(); ++i) manual.merge(originals[g.sites[i]]);
    EXPECT_EQ(g.sketch.serialize(), manual.serialize()) << "group " << g.group;
  }
}

}  // namespace
}  // namespace ustream
