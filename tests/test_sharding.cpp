// Parallel sharding: merge == concat makes thread-parallel sketching exact.
#include "distributed/sharding.h"

#include <gtest/gtest.h>

#include "core/distinct_sum.h"
#include "stream/generators.h"

namespace ustream {
namespace {

std::vector<Item> workload() {
  SyntheticStream stream({.distinct = 40'000, .total_items = 200'000, .zipf_alpha = 1.1,
                          .seed = 77});
  return stream.to_vector();
}

TEST(Sharding, ParallelEqualsSequential) {
  const auto items = workload();
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 5);
  F0Estimator sequential(params);
  for (const Item& item : items) sequential.add(item.label);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{7}}) {
    const F0Estimator parallel = sketch_in_parallel(items, params, threads);
    EXPECT_DOUBLE_EQ(parallel.estimate(), sequential.estimate()) << threads;
  }
}

TEST(Sharding, GenericShardAndMergeWithDistinctSum) {
  const auto items = workload();
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 6);
  DistinctSumEstimator sequential(params);
  for (const Item& item : items) sequential.add(item.label, item.value);
  const auto parallel = shard_and_merge<DistinctSumEstimator>(
      items, 4, [&params] { return DistinctSumEstimator(params); },
      [](DistinctSumEstimator& sketch, std::span<const Item> chunk) {
        for (const Item& item : chunk) sketch.add(item.label, item.value);
      });
  EXPECT_DOUBLE_EQ(parallel.estimate_distinct(), sequential.estimate_distinct());
  EXPECT_NEAR(parallel.estimate_sum(), sequential.estimate_sum(),
              1e-9 * sequential.estimate_sum());
}

TEST(Sharding, MoreThreadsThanItems) {
  std::vector<Item> tiny = {{1, 0}, {2, 0}, {3, 0}};
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  const F0Estimator est = sketch_in_parallel(tiny, params, 16);
  EXPECT_DOUBLE_EQ(est.estimate(), 3.0);
}

TEST(Sharding, EmptyInput) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 8);
  const F0Estimator est = sketch_in_parallel({}, params, 4);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(Sharding, RejectsZeroThreads) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 9);
  EXPECT_THROW(sketch_in_parallel({}, params, 0), InvalidArgument);
}

}  // namespace
}  // namespace ustream
