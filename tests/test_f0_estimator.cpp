// F0Estimator (Theorem T1): accuracy of the median-of-copies estimate,
// the predicate estimators, merge and serialization at the estimator level.
#include "core/f0_estimator.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "hash/hash_family.h"
#include "stream/generators.h"

namespace ustream {
namespace {

TEST(F0Estimator, ExactWhileSmall) {
  F0Estimator est(0.1, 0.05);
  for (std::uint64_t x = 0; x < 500; ++x) est.add(x * 131);
  EXPECT_DOUBLE_EQ(est.estimate(), 500.0);
}

TEST(F0Estimator, AccuracyAtEpsilon10) {
  // One large stream, F0 = 200k >> capacity: estimate within 10%.
  F0Estimator est(0.10, 0.05, 1234);
  Xoshiro256 rng(1);
  constexpr std::size_t kDistinct = 200'000;
  for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next());
  EXPECT_LT(relative_error(est.estimate(), static_cast<double>(kDistinct)), 0.10);
}

TEST(F0Estimator, EmpiricalFailureProbability) {
  // 60 independent trials at (eps=0.15, delta=0.05): the fraction of trials
  // with relative error > eps must be well under a conservative bound.
  constexpr double kEps = 0.15, kDelta = 0.05;
  constexpr int kTrials = 60;
  constexpr std::size_t kDistinct = 50'000;
  int failures = 0;
  for (int t = 0; t < kTrials; ++t) {
    F0Estimator est(kEps, kDelta, 1000 + static_cast<std::uint64_t>(t));
    Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 3);
    for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next());
    if (relative_error(est.estimate(), static_cast<double>(kDistinct)) > kEps) ++failures;
  }
  // Binomial(60, 0.05) exceeds 9 with probability < 2e-4.
  EXPECT_LE(failures, 9);
}

TEST(F0Estimator, DuplicatesDoNotMoveEstimate) {
  SyntheticStream stream({.distinct = 30'000, .total_items = 300'000, .zipf_alpha = 1.2,
                          .label_kind = LabelKind::kRandom64, .seed = 5});
  F0Estimator est(0.1, 0.05, 99);
  F0Estimator est_once(0.1, 0.05, 99);
  while (!stream.done()) est.add(stream.next().label);
  for (std::uint64_t label : stream.labels()) est_once.add(label);
  EXPECT_DOUBLE_EQ(est.estimate(), est_once.estimate());
}

TEST(F0Estimator, MergeEqualsConcatEstimate) {
  const EstimatorParams params = EstimatorParams::for_guarantee(0.1, 0.05, 7);
  F0Estimator whole(params), a(params), b(params);
  Xoshiro256 rng(8);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t x = rng.next();
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), whole.estimate());
}

TEST(F0Estimator, SerializeRoundtrip) {
  F0Estimator est(0.2, 0.1, 31);
  Xoshiro256 rng(9);
  for (int i = 0; i < 50'000; ++i) est.add(rng.next());
  auto restored = F0Estimator::deserialize(est.serialize());
  EXPECT_DOUBLE_EQ(restored.estimate(), est.estimate());
  EXPECT_EQ(restored.num_copies(), est.num_copies());
  // Restored estimator stays mergeable with the original lineage.
  F0Estimator more(est.params());
  more.add(12345);
  restored.merge(more);
}

TEST(F0Estimator, CountIfPredicate) {
  // 40k labels, half even: the count-if estimate lands near 20k.
  F0Estimator est(0.1, 0.05, 17);
  for (std::uint64_t x = 0; x < 40'000; ++x) est.add(x);
  const double even = est.estimate_count_if([](std::uint64_t x) { return x % 2 == 0; });
  EXPECT_LT(relative_error(even, 20'000.0), 0.15);
}

TEST(F0Estimator, FractionIfPredicate) {
  F0Estimator est(0.1, 0.05, 19);
  for (std::uint64_t x = 0; x < 40'000; ++x) est.add(x);
  const double frac = est.estimate_fraction_if([](std::uint64_t x) { return x % 4 == 0; });
  EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(F0Estimator, FractionOnEmptyIsZero) {
  F0Estimator est(0.2, 0.1);
  EXPECT_DOUBLE_EQ(est.estimate_fraction_if([](std::uint64_t) { return true; }), 0.0);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(F0Estimator, CopiesUseDistinctSeeds) {
  F0Estimator est(EstimatorParams{.capacity = 16, .copies = 5, .seed = 3});
  for (std::uint64_t x = 0; x < 10'000; ++x) est.add(x);
  // With independent seeds, copies end at (generally) different sizes/levels;
  // at minimum their sample contents must differ.
  bool any_difference = false;
  auto first = est.copy(0).sample_labels();
  std::sort(first.begin(), first.end());
  for (std::size_t i = 1; i < est.num_copies(); ++i) {
    auto other = est.copy(i).sample_labels();
    std::sort(other.begin(), other.end());
    if (other != first) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(F0Estimator, MismatchedMergeRejected) {
  F0Estimator a(EstimatorParams{.capacity = 16, .copies = 3, .seed = 1});
  F0Estimator b(EstimatorParams{.capacity = 16, .copies = 5, .seed = 1});
  F0Estimator c(EstimatorParams{.capacity = 16, .copies = 3, .seed = 2});
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_FALSE(a.can_merge_with(c));
  EXPECT_THROW(a.merge(c), InvalidArgument);
}

TEST(F0Estimator, AlternativeHashInstantiations) {
  BasicF0Estimator<TabulationHash> tab(0.1, 0.05, 5);
  BasicF0Estimator<MurmurMixHash> mm(0.1, 0.05, 5);
  Xoshiro256 rng(10);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t x = rng.next();
    tab.add(x);
    mm.add(x);
  }
  EXPECT_LT(relative_error(tab.estimate(), 100'000.0), 0.10);
  EXPECT_LT(relative_error(mm.estimate(), 100'000.0), 0.10);
}

}  // namespace
}  // namespace ustream
