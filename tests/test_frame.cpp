// The frame layer: CRC32C known-answer vectors, frame roundtrip, and the
// guarantee the referee leans on — EVERY single-bit corruption and every
// truncation of a framed message is detected before payload parsing.
#include "common/frame.h"

#include <gtest/gtest.h>

#include <string>

#include "common/crc32c.h"
#include "common/error.h"
#include "common/random.h"

namespace ustream {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 / standard CRC32C test vectors.
  EXPECT_EQ(crc32c({}), 0x00000000u);
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, ChainingComposes) {
  const auto all = bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{13}, all.size()}) {
    const std::span<const std::uint8_t> span(all);
    EXPECT_EQ(crc32c(span.subspan(cut), crc32c(span.subspan(0, cut))), crc32c(all));
  }
}

TEST(Frame, RoundtripPreservesHeaderAndPayload) {
  Xoshiro256 rng(1);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{100},
                        std::size_t{4096}}) {
    std::vector<std::uint8_t> payload(n);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
    const FrameHeader header{PayloadKind::kDistinctSum, 42, 7};
    const auto framed = frame_encode(header, payload);
    ASSERT_EQ(framed.size(), kFrameHeaderBytes + n);
    const Frame decoded = frame_decode(framed);
    EXPECT_EQ(decoded.header.kind, PayloadKind::kDistinctSum);
    EXPECT_EQ(decoded.header.site, 42u);
    EXPECT_EQ(decoded.header.epoch, 7u);
    EXPECT_EQ(decoded.payload, payload);
  }
}

TEST(Frame, EverySingleBitFlipIsDetected) {
  // Exhaustive, not sampled: flip each bit of a framed message and demand
  // a SerializationError. This is the "zero undetected corruptions" pillar
  // of the soak acceptance criterion, proven at the smallest scale.
  Xoshiro256 rng(2);
  std::vector<std::uint8_t> payload(96);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
  const auto framed = frame_encode({PayloadKind::kF0Estimator, 3, 9}, payload);
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = framed;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)frame_decode(copy), SerializationError)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Frame, EveryTruncationIsDetected) {
  const auto framed = frame_encode({PayloadKind::kBottomK, 1, 1},
                                   std::vector<std::uint8_t>(257, 0xAB));
  for (std::size_t len = 0; len < framed.size(); ++len) {
    auto copy = framed;
    copy.resize(len);
    EXPECT_THROW((void)frame_decode(copy), SerializationError) << "length " << len;
  }
  // Trailing garbage is a length mismatch, not a parse of extra payload.
  auto extended = framed;
  extended.push_back(0);
  EXPECT_THROW((void)frame_decode(extended), SerializationError);
}

TEST(Frame, VersionGateRejectsFutureAndAncientVersions) {
  auto framed = frame_encode({PayloadKind::kF0Estimator, 0, 0}, bytes_of("payload"));
  for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{kFrameVersionGroup + 1},
                         std::uint8_t{255}}) {
    auto copy = framed;
    copy[4] = v;  // even with a recomputed CRC the version gate must hold
    std::uint32_t crc = crc32c(std::span<const std::uint8_t>(copy).subspan(0, 20));
    crc = crc32c(std::span<const std::uint8_t>(copy).subspan(kFrameHeaderBytes), crc);
    copy[20] = static_cast<std::uint8_t>(crc);
    copy[21] = static_cast<std::uint8_t>(crc >> 8);
    copy[22] = static_cast<std::uint8_t>(crc >> 16);
    copy[23] = static_cast<std::uint8_t>(crc >> 24);
    EXPECT_THROW((void)frame_decode(copy), SerializationError) << "version " << int(v);
  }
}

TEST(Frame, UnknownKindAndReservedBitsRejected) {
  const auto payload = bytes_of("x");
  const auto reframe = [&](std::size_t offset, std::uint8_t value) {
    auto copy = frame_encode({PayloadKind::kOpaque, 0, 0}, payload);
    copy[offset] = value;
    std::uint32_t crc = crc32c(std::span<const std::uint8_t>(copy).subspan(0, 20));
    crc = crc32c(std::span<const std::uint8_t>(copy).subspan(kFrameHeaderBytes), crc);
    copy[20] = static_cast<std::uint8_t>(crc);
    copy[21] = static_cast<std::uint8_t>(crc >> 8);
    copy[22] = static_cast<std::uint8_t>(crc >> 16);
    copy[23] = static_cast<std::uint8_t>(crc >> 24);
    return copy;
  };
  EXPECT_THROW((void)frame_decode(reframe(5, 0)), SerializationError);     // kind 0
  EXPECT_THROW((void)frame_decode(reframe(5, 200)), SerializationError);   // kind 200
  EXPECT_THROW((void)frame_decode(reframe(6, 1)), SerializationError);     // reserved
  EXPECT_THROW((void)frame_decode(reframe(7, 0x80)), SerializationError);  // reserved
}

TEST(Frame, GroupTagRoundTripsAsVersion2) {
  const auto payload = bytes_of("grouped");
  const auto framed = frame_encode({PayloadKind::kF0Estimator, 3, 9, 0x1234}, payload);
  EXPECT_EQ(framed[4], kFrameVersionGroup);  // group != 0 selects v2
  const Frame decoded = frame_decode(framed);
  EXPECT_EQ(decoded.header.group, 0x1234u);
  EXPECT_EQ(decoded.header.site, 3u);
  EXPECT_EQ(decoded.header.epoch, 9u);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(Frame, GroupZeroEncodesAsLegacyV1) {
  // One wire encoding per logical header: group 0 must produce bytes
  // indistinguishable from a pre-group encoder, so byte-identity tests and
  // WAL artifacts from older runs stay valid.
  const auto payload = bytes_of("plain");
  const auto tagged = frame_encode({PayloadKind::kF0Estimator, 3, 9, 0}, payload);
  const auto legacy = frame_encode({PayloadKind::kF0Estimator, 3, 9}, payload);
  EXPECT_EQ(tagged, legacy);
  EXPECT_EQ(tagged[4], kFrameVersion);
  EXPECT_EQ(tagged[6], 0);
  EXPECT_EQ(tagged[7], 0);
  EXPECT_EQ(frame_decode(tagged).header.group, 0u);
}

TEST(Frame, NonCanonicalGroupEncodingsRejected) {
  const auto payload = bytes_of("x");
  const auto reframe = [&](const FrameHeader& header, std::size_t offset,
                           std::uint8_t value) {
    auto copy = frame_encode(header, payload);
    copy[offset] = value;
    std::uint32_t crc = crc32c(std::span<const std::uint8_t>(copy).subspan(0, 20));
    crc = crc32c(std::span<const std::uint8_t>(copy).subspan(kFrameHeaderBytes), crc);
    copy[20] = static_cast<std::uint8_t>(crc);
    copy[21] = static_cast<std::uint8_t>(crc >> 8);
    copy[22] = static_cast<std::uint8_t>(crc >> 16);
    copy[23] = static_cast<std::uint8_t>(crc >> 24);
    return copy;
  };
  // A v2 frame whose group bytes are zero should have been encoded as v1.
  EXPECT_THROW(
      (void)frame_decode(reframe({PayloadKind::kF0Estimator, 1, 1, 7}, 6, 0)),
      SerializationError);
  // A v1 frame with nonzero group bytes is a reserved-bits violation.
  EXPECT_THROW(
      (void)frame_decode(reframe({PayloadKind::kF0Estimator, 1, 1, 0}, 6, 1)),
      SerializationError);
  EXPECT_THROW(
      (void)frame_decode(reframe({PayloadKind::kF0Estimator, 1, 1, 0}, 7, 0x80)),
      SerializationError);
}

TEST(Frame, LooksLikeFrameIsAProbeNotAValidator) {
  const auto framed = frame_encode({PayloadKind::kOpaque, 0, 0}, bytes_of("p"));
  EXPECT_TRUE(looks_like_frame(framed));
  EXPECT_FALSE(looks_like_frame(bytes_of("USKE....")));
  EXPECT_FALSE(looks_like_frame({}));
  auto corrupt = framed;
  corrupt.back() ^= 0xFF;
  EXPECT_TRUE(looks_like_frame(corrupt));  // magic intact; decode still throws
  EXPECT_THROW((void)frame_decode(corrupt), SerializationError);
}

}  // namespace
}  // namespace ustream
