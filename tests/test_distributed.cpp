// The distributed-streams model (Theorem T2): per-site observation, one
// message per site, referee answers on the union.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "common/stats.h"
#include "distributed/channel.h"
#include "distributed/protocols.h"
#include "distributed/runtime.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

TEST(Channel, AccountsMessagesAndBytes) {
  Channel ch(3);
  ch.send(0, std::vector<std::uint8_t>(10));
  ch.send(1, std::vector<std::uint8_t>(20));
  ch.send(1, std::vector<std::uint8_t>(5));
  const auto stats = ch.stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.total_bytes, 35u);
  EXPECT_EQ(stats.max_message_bytes, 20u);
  EXPECT_EQ(stats.bytes_per_site[0], 10u);
  EXPECT_EQ(stats.bytes_per_site[1], 25u);
  EXPECT_EQ(stats.bytes_per_site[2], 0u);
  EXPECT_DOUBLE_EQ(stats.mean_message_bytes(), 35.0 / 3.0);
}

TEST(Channel, DrainEmptiesMailbox) {
  Channel ch(1);
  ch.send(0, {1, 2, 3});
  EXPECT_EQ(ch.drain().size(), 1u);
  EXPECT_TRUE(ch.drain().empty());
  // Stats survive the drain.
  EXPECT_EQ(ch.stats().messages, 1u);
}

TEST(Channel, SendFromUnregisteredSiteIsAProtocolError) {
  // Regression: this used to be silently accepted — the message was
  // counted but its bytes were attributed to no site, skewing E4's
  // per-party cost. Now it is rejected outright.
  Channel ch(2);
  EXPECT_THROW(ch.send(2, {1, 2, 3}), ProtocolError);
  EXPECT_THROW(ch.send(999, {}), ProtocolError);
  const auto stats = ch.stats();
  EXPECT_EQ(stats.messages, 0u);  // the rejected sends left no trace
  EXPECT_EQ(stats.total_bytes, 0u);
  EXPECT_TRUE(ch.drain().empty());
}

TEST(DistributedRun, RefereeEqualsCentralObserver) {
  // The fundamental soundness property: the referee's merged sketch equals
  // (in estimate, deterministically) a single estimator that saw all items.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 5);
  const auto w = make_distributed_workload(
      {.sites = 6, .union_distinct = 40'000, .overlap = 0.3, .duplication = 2.0, .seed = 1});
  DistributedRun<F0Estimator> run(6, [&params] { return F0Estimator(params); });
  F0Estimator central(params);
  for (std::size_t s = 0; s < 6; ++s) {
    for (const Item& item : w.site_streams[s]) {
      run.site(s).add(item.label);
      central.add(item.label);
    }
  }
  EXPECT_DOUBLE_EQ(run.collect().estimate(), central.estimate());
}

TEST(DistributedRun, OneMessagePerSite) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 6);
  DistributedRun<F0Estimator> run(5, [&params] { return F0Estimator(params); });
  for (std::size_t s = 0; s < 5; ++s) run.site(s).add(s);
  run.collect();
  const auto stats = run.channel_stats();
  EXPECT_EQ(stats.messages, 5u);
  for (auto b : stats.bytes_per_site) EXPECT_GT(b, 0u);
}

TEST(DistributedRun, CollectIsIdempotentAndLatching) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  DistributedRun<F0Estimator> run(2, [&params] { return F0Estimator(params); });
  run.site(0).add(1);
  run.site(1).add(2);
  const double first = run.collect().estimate();
  EXPECT_DOUBLE_EQ(run.collect().estimate(), first);
  EXPECT_EQ(run.channel_stats().messages, 2u);  // no re-send
  EXPECT_THROW(run.site(0), ProtocolError);     // observation phase over
}

TEST(DistributedRun, ProtocolMisuseThrowsProtocolError) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  DistributedRun<F0Estimator> run(2, [&params] { return F0Estimator(params); });
  run.site(0).add(1);
  // Querying the referee (or its report) before collection is the misuse
  // error.h promises ProtocolError for.
  EXPECT_THROW(run.referee(), ProtocolError);
  EXPECT_THROW(run.collect_report(), ProtocolError);
  run.collect();
  EXPECT_NO_THROW(run.referee());
  EXPECT_NO_THROW(run.collect_report());
  EXPECT_THROW(run.site(0), ProtocolError);  // double-phase misuse
}

TEST(DistributedRun, CollectReportOnCleanTransport) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  DistributedRun<F0Estimator> run(3, [&params] { return F0Estimator(params); });
  for (std::size_t s = 0; s < 3; ++s) run.site(s).add(s);
  run.collect();
  const CollectReport& report = run.collect_report();
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.degraded());
  EXPECT_EQ(report.sites_reported, 3u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.frames_quarantined, 0u);
  EXPECT_EQ(report.duplicates_dropped, 0u);
  EXPECT_TRUE(report.missing_sites().empty());
  for (const auto& site : report.per_site) EXPECT_EQ(site.attempts, 1u);
}

TEST(DistributedRun, ParallelFeedMatchesSequential) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 8);
  const auto w = make_distributed_workload(
      {.sites = 8, .union_distinct = 20'000, .overlap = 0.5, .duplication = 1.5, .seed = 2});
  const auto seq = run_f0_union(w, params, /*parallel_sites=*/false);
  const auto par = run_f0_union(w, params, /*parallel_sites=*/true);
  EXPECT_DOUBLE_EQ(seq.estimate, par.estimate);
  EXPECT_EQ(seq.channel.messages, par.channel.messages);
}

TEST(F0UnionProtocol, AccurateAcrossOverlaps) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 9);
  for (double overlap : {0.0, 0.5, 1.0}) {
    const auto w = make_distributed_workload({.sites = 4, .union_distinct = 50'000,
                                              .overlap = overlap, .duplication = 2.0,
                                              .seed = 3});
    const auto res = run_f0_union(w, params);
    EXPECT_LT(res.relative_error, 0.1) << "overlap " << overlap;
  }
}

TEST(F0UnionProtocol, NaiveSumOvercountsButUnionDoesNot) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 10);
  const auto w = make_distributed_workload(
      {.sites = 5, .union_distinct = 30'000, .overlap = 1.0, .duplication = 1.0, .seed = 4});
  // Naive: sum of per-site estimates ~ 5x the union truth.
  double naive = 0.0;
  DistributedRun<F0Estimator> run(5, [&params] { return F0Estimator(params); });
  for (std::size_t s = 0; s < 5; ++s) {
    for (const Item& item : w.site_streams[s]) run.site(s).add(item.label);
  }
  // Per-site estimates before collection.
  DistributedRun<F0Estimator> run2(5, [&params] { return F0Estimator(params); });
  for (std::size_t s = 0; s < 5; ++s) {
    for (const Item& item : w.site_streams[s]) run2.site(s).add(item.label);
    naive += run2.site(s).estimate();
  }
  const double union_est = run.collect().estimate();
  EXPECT_GT(naive, 4.0 * static_cast<double>(w.union_distinct));
  EXPECT_LT(relative_error(union_est, static_cast<double>(w.union_distinct)), 0.1);
}

TEST(F0UnionProtocol, MessageSizeIndependentOfStreamLength) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 11);
  ChannelStats small_stats, big_stats;
  for (bool big : {false, true}) {
    const auto w = make_distributed_workload(
        {.sites = 3, .union_distinct = big ? std::size_t{200'000} : std::size_t{50'000},
         .overlap = 0.0, .duplication = big ? 4.0 : 1.0, .seed = 5});
    const auto res = run_f0_union(w, params);
    (big ? big_stats : small_stats) = res.channel;
  }
  // 4x the distinct labels and 16x the items: messages stay within 2x
  // (both sketches saturated at capacity; only varint widths drift).
  EXPECT_LT(static_cast<double>(big_stats.total_bytes),
            2.0 * static_cast<double>(small_stats.total_bytes));
}

TEST(DistinctSumUnionProtocol, AccurateOnUnion) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 12);
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 40'000, .overlap = 0.4, .duplication = 2.5,
       .zipf_alpha = 1.0, .seed = 6, .value_lo = 1.0, .value_hi = 2.0});
  const auto res = run_distinct_sum_union(w, params);
  EXPECT_LT(res.relative_error, 0.1);
}

TEST(DistributedRun, SingleSiteDegeneratesToLocal) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 13);
  DistributedRun<F0Estimator> run(1, [&params] { return F0Estimator(params); });
  F0Estimator local(params);
  Xoshiro256 rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t x = rng.next();
    run.site(0).add(x);
    local.add(x);
  }
  EXPECT_DOUBLE_EQ(run.collect().estimate(), local.estimate());
}

}  // namespace
}  // namespace ustream
