#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ustream {
namespace {

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(20);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(Log2Histogram, Buckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // [1,2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2,4)
  EXPECT_EQ(h.bucket(3), 1u);  // [4,8)
  EXPECT_EQ(h.bucket(10), 1u);  // [512,1024)
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.max_bucket(), 10);
}

TEST(Log2Histogram, EmptyHasNoBuckets) {
  Log2Histogram h;
  EXPECT_EQ(h.max_bucket(), -1);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
}  // namespace ustream
