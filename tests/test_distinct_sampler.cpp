// BottomKSampler: the "sample of the union" capability.
#include "core/distinct_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "stream/generators.h"

namespace ustream {
namespace {

TEST(BottomK, ExactBelowK) {
  BottomKSampler s(100, 1);
  for (std::uint64_t x = 0; x < 50; ++x) s.add(x * 3, 1.0);
  EXPECT_EQ(s.size(), 50u);
  EXPECT_FALSE(s.saturated());
  EXPECT_DOUBLE_EQ(s.estimate_distinct(), 50.0);
}

TEST(BottomK, DuplicateInsensitive) {
  BottomKSampler once(64, 2), thrice(64, 2);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> labels;
  for (int i = 0; i < 10'000; ++i) labels.push_back(rng.next());
  for (auto x : labels) once.add(x, 1.0);
  for (int rep = 0; rep < 3; ++rep) {
    for (auto x : labels) thrice.add(x, 1.0);
  }
  ASSERT_EQ(once.size(), thrice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once.entries()[i].label, thrice.entries()[i].label);
  }
}

TEST(BottomK, FirstValueWins) {
  BottomKSampler s(16, 3);
  s.add(7, 1.5);
  s.add(7, 99.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 1.5);
}

TEST(BottomK, DistinctEstimateAccuracy) {
  constexpr std::size_t kDistinct = 200'000;
  Sample errors;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BottomKSampler s(1024, seed + 100);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < kDistinct; ++i) s.add(rng.next(), 0.0);
    errors.add(relative_error(s.estimate_distinct(), kDistinct));
  }
  // KMV stderr ~ 1/sqrt(k) ~ 3.1%; mean over 10 trials well under 3 sigma.
  EXPECT_LT(errors.mean(), 0.06);
}

TEST(BottomK, MergeEqualsConcat) {
  BottomKSampler whole(256, 5), a(256, 5), b(256, 5);
  Xoshiro256 rng(2);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t x = rng.next();
    const double v = rng.uniform01();
    whole.add(x, v);
    (i % 2 ? a : b).add(x, v);
  }
  a.merge(b);
  ASSERT_EQ(a.size(), whole.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].label, whole.entries()[i].label);
    EXPECT_DOUBLE_EQ(a.entries()[i].value, whole.entries()[i].value);
  }
}

TEST(BottomK, MergeMismatchRejected) {
  BottomKSampler a(16, 1), b(16, 2), c(32, 1);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(a.merge(c), InvalidArgument);
}

TEST(BottomK, ValueStatisticsOverDistinctLabels) {
  // Values uniform in [0, 10] per label; 20x duplication must not bias the
  // plug-in mean/median (a per-ITEM average would be skew-weighted).
  SyntheticStream stream({.distinct = 100'000, .total_items = 2'000'000, .zipf_alpha = 1.5,
                          .seed = 4, .value_lo = 0.0, .value_hi = 10.0});
  BottomKSampler s(4096, 7);
  while (!stream.done()) {
    const Item item = stream.next();
    s.add(item.label, item.value);
  }
  EXPECT_NEAR(s.estimate_value_mean(), 5.0, 0.3);
  EXPECT_NEAR(s.estimate_value_quantile(0.5), 5.0, 0.4);
  EXPECT_NEAR(s.estimate_value_quantile(0.9), 9.0, 0.4);
  EXPECT_NEAR(s.estimate_fraction_if([](std::uint64_t, double v) { return v < 2.5; }), 0.25,
              0.04);
}

TEST(BottomK, EntriesSortedByHash) {
  BottomKSampler s(128, 8);
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) s.add(rng.next(), 0.0);
  EXPECT_TRUE(std::is_sorted(s.entries().begin(), s.entries().end(),
                             [](const auto& a, const auto& b) { return a.hash < b.hash; }));
  EXPECT_EQ(s.size(), 128u);
}

TEST(BottomK, SerializeRoundtrip) {
  BottomKSampler s(64, 9);
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) s.add(rng.next(), rng.uniform01());
  auto restored = BottomKSampler::deserialize(s.serialize());
  ASSERT_EQ(restored.size(), s.size());
  EXPECT_DOUBLE_EQ(restored.estimate_distinct(), s.estimate_distinct());
  EXPECT_DOUBLE_EQ(restored.estimate_value_mean(), s.estimate_value_mean());
  // Restored sampler remains mergeable and updatable.
  restored.add(rng.next(), 0.5);
  restored.merge(s);
}

TEST(BottomK, SerializeRejectsCorruption) {
  BottomKSampler s(32, 10);
  for (std::uint64_t x = 0; x < 1000; ++x) s.add(x, 0.0);
  auto bytes = s.serialize();
  bytes[0] = 0x7e;
  EXPECT_THROW(BottomKSampler::deserialize(bytes), SerializationError);
  auto truncated = s.serialize();
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(BottomKSampler::deserialize(truncated), SerializationError);
}

TEST(BottomK, RejectsBadParameters) {
  EXPECT_THROW(BottomKSampler(1, 1), InvalidArgument);
  BottomKSampler s(4, 1);
  s.add(1, 0.0);
  EXPECT_THROW(s.estimate_value_quantile(1.5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Merge algebra, asserted on serialized bytes (canonical hash-sorted form):
// the single-pass linear merge and its fast paths must keep BottomK merges
// associative, commutative over label-consistent values, and permutation-
// invariant — that algebra is what licenses the referee's tree reduction.

// `sites` samplers over overlapping streams. With `consistent_values` every
// occurrence of a label carries the same value (value = f(label)), so even
// the leftmost-wins value rule cannot distinguish merge orders; without it,
// values encode the originating site (order-sensitive on shared labels).
std::vector<BottomKSampler> merge_fixture(std::size_t sites, std::size_t k,
                                          bool consistent_values, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 400; ++i) shared.push_back(rng.next());
  std::vector<BottomKSampler> out;
  for (std::size_t s = 0; s < sites; ++s) {
    BottomKSampler b(k, 21);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t label =
          rng.bernoulli(0.5) ? shared[rng.below(shared.size())] : rng.next();
      b.add(label, consistent_values ? static_cast<double>(label % 1000)
                                     : static_cast<double>(s));
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<std::uint8_t> fold_in_order(const std::vector<BottomKSampler>& parts,
                                        const std::vector<std::size_t>& order) {
  BottomKSampler acc = parts[order[0]];
  for (std::size_t i = 1; i < order.size(); ++i) acc.merge(parts[order[i]]);
  return acc.serialize();
}

TEST(BottomKMergeAlgebra, PermutedMergeOrdersSerializeIdentically) {
  const auto parts = merge_fixture(6, 64, /*consistent_values=*/true, 31);
  std::vector<std::size_t> order(parts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto expected = fold_in_order(parts, order);
  Xoshiro256 rng(32);
  for (int trial = 0; trial < 8; ++trial) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    EXPECT_EQ(fold_in_order(parts, order), expected) << "trial " << trial;
  }
}

TEST(BottomKMergeAlgebra, AssociativityHoldsEvenWithSiteTaggedValues) {
  // Grouping must not matter even when permutation WOULD (values differ by
  // site, so leftmost-wins is order-sensitive — but (a·b)·c and a·(b·c)
  // share the same left-to-right order).
  const auto parts = merge_fixture(3, 64, /*consistent_values=*/false, 33);
  BottomKSampler left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  BottomKSampler bc = parts[1];
  bc.merge(parts[2]);
  BottomKSampler right = parts[0];
  right.merge(bc);
  EXPECT_EQ(left.serialize(), right.serialize());
}

TEST(BottomKMergeAlgebra, CommutativityHoldsForConsistentValues) {
  const auto parts = merge_fixture(2, 64, /*consistent_values=*/true, 34);
  BottomKSampler ab = parts[0];
  ab.merge(parts[1]);
  BottomKSampler ba = parts[1];
  ba.merge(parts[0]);
  EXPECT_EQ(ab.serialize(), ba.serialize());
}

TEST(BottomKMergeAlgebra, EmptyFastPathsPreserveBytes) {
  auto parts = merge_fixture(1, 64, true, 35);
  const auto loaded_bytes = parts[0].serialize();
  BottomKSampler empty(64, 21);
  empty.merge(parts[0]);  // empty-self fast path: straight copy
  EXPECT_EQ(empty.serialize(), loaded_bytes);
  BottomKSampler still_empty(64, 21);
  parts[0].merge(still_empty);  // empty-other fast path: no-op
  EXPECT_EQ(parts[0].serialize(), loaded_bytes);
}

TEST(BottomKMergeAlgebra, DisjointHashRangesTakeSpliceAndRejectPaths) {
  // A probe sampler with a large k exposes the hash order, letting us build
  // two k=64 samplers whose hash ranges are fully disjoint.
  BottomKSampler probe(4096, 21);
  Xoshiro256 rng(36);
  for (int i = 0; i < 20'000; ++i) probe.add(rng.next(), 0.0);
  std::vector<std::uint64_t> low_labels, high_labels;
  const auto& entries = probe.entries();
  for (std::size_t i = 0; i < 64; ++i) low_labels.push_back(entries[i].label);
  for (std::size_t i = entries.size() - 64; i < entries.size(); ++i) {
    high_labels.push_back(entries[i].label);
  }
  BottomKSampler low(64, 21), high(64, 21), both(64, 21);
  for (auto x : low_labels) low.add(x, 1.0), both.add(x, 1.0);
  for (auto x : high_labels) high.add(x, 2.0), both.add(x, 2.0);
  ASSERT_TRUE(low.saturated());
  // Saturated-reject: every incoming hash is above the k-th smallest.
  const auto low_bytes = low.serialize();
  low.merge(high);
  EXPECT_EQ(low.serialize(), low_bytes);
  // Splice-prepend: the other sampler's whole range sorts before ours.
  high.merge(low);
  EXPECT_EQ(high.serialize(), both.serialize());
}

TEST(BottomKMergeAlgebra, MergeManyMatchesSequentialFold) {
  const auto parts = merge_fixture(10, 64, /*consistent_values=*/false, 37);
  std::vector<std::size_t> order(parts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto expected = fold_in_order(parts, order);
  BottomKSampler many = parts[0];
  std::vector<const BottomKSampler*> rest;
  for (std::size_t i = 1; i < parts.size(); ++i) rest.push_back(&parts[i]);
  many.merge_many(std::span<const BottomKSampler* const>(rest));
  EXPECT_EQ(many.serialize(), expected);
}

TEST(BottomK, SampleIsUnbiasedOverLabelClasses) {
  // Labels 0..99999; predicate "label < 30000" must hold for ~30% of the
  // sample regardless of how often each label occurs.
  BottomKSampler s(2048, 11);
  Xoshiro256 rng(5);
  for (int i = 0; i < 500'000; ++i) {
    const std::uint64_t label = rng.below(100'000);
    s.add(label, 0.0);  // heavy duplication, uneven multiplicities
  }
  EXPECT_NEAR(s.estimate_fraction_if([](std::uint64_t label, double) { return label < 30'000; }),
              0.3, 0.04);
}

}  // namespace
}  // namespace ustream
