#include "stream/transforms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.h"
#include "stream/generators.h"

namespace ustream {
namespace {

std::map<std::uint64_t, std::size_t> label_multiset(const std::vector<Item>& items) {
  std::map<std::uint64_t, std::size_t> m;
  for (const Item& item : items) ++m[item.label];
  return m;
}

std::vector<Item> small_stream() {
  SyntheticStream s({.distinct = 200, .total_items = 1000, .zipf_alpha = 1.0, .seed = 3});
  return s.to_vector();
}

TEST(Transforms, DuplicateMultipliesMultiplicities) {
  const auto base = small_stream();
  const auto dup = duplicate_stream(base, 3, 7);
  EXPECT_EQ(dup.size(), base.size() * 3);
  const auto mb = label_multiset(base);
  const auto md = label_multiset(dup);
  ASSERT_EQ(mb.size(), md.size());
  for (const auto& [label, count] : mb) {
    EXPECT_EQ(md.at(label), count * 3);
  }
}

TEST(Transforms, DuplicateFactorOneIsPermutation) {
  const auto base = small_stream();
  const auto out = duplicate_stream(base, 1, 8);
  EXPECT_EQ(label_multiset(out), label_multiset(base));
}

TEST(Transforms, DuplicateRejectsZeroFactor) {
  EXPECT_THROW(duplicate_stream(small_stream(), 0, 1), InvalidArgument);
}

TEST(Transforms, ShufflePreservesMultiset) {
  const auto base = small_stream();
  const auto shuffled = shuffle_stream(base, 11);
  EXPECT_EQ(label_multiset(shuffled), label_multiset(base));
  EXPECT_NE(shuffled, base);  // overwhelmingly likely to move something
}

TEST(Transforms, ShuffleDeterministicPerSeed) {
  const auto base = small_stream();
  EXPECT_EQ(shuffle_stream(base, 5), shuffle_stream(base, 5));
  EXPECT_NE(shuffle_stream(base, 5), shuffle_stream(base, 6));
}

TEST(Transforms, SortAscendingDescending) {
  const auto base = small_stream();
  const auto asc = sort_stream(base, true);
  const auto desc = sort_stream(base, false);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end(),
                             [](const Item& a, const Item& b) { return a.label < b.label; }));
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end(),
                             [](const Item& a, const Item& b) { return a.label > b.label; }));
  EXPECT_EQ(label_multiset(asc), label_multiset(base));
}

TEST(Transforms, InterleavePreservesEverything) {
  std::vector<std::vector<Item>> streams;
  streams.push_back({{1, 0}, {2, 0}, {3, 0}});
  streams.push_back({{10, 0}});
  streams.push_back({{20, 0}, {21, 0}});
  const auto inter = interleave_streams(streams);
  EXPECT_EQ(inter.size(), 6u);
  // Round-robin order: 1,10,20,2,21,3.
  EXPECT_EQ(inter[0].label, 1u);
  EXPECT_EQ(inter[1].label, 10u);
  EXPECT_EQ(inter[2].label, 20u);
  EXPECT_EQ(inter[3].label, 2u);
  EXPECT_EQ(inter[4].label, 21u);
  EXPECT_EQ(inter[5].label, 3u);
}

TEST(Transforms, InterleaveEmptyInputs) {
  EXPECT_TRUE(interleave_streams({}).empty());
  EXPECT_TRUE(interleave_streams({{}, {}}).empty());
}

}  // namespace
}  // namespace ustream
