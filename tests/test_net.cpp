// The net subsystem end to end: socket primitives, TcpTransport client,
// RefereeServer event loop, and the CLI serve/push pair as real processes
// over loopback.
//
// The load-bearing assertions mirror the soak suite's contract: a referee
// fed over TCP must be BYTE-IDENTICAL to the in-process Channel referee on
// the same traces/seed — complete or degraded — because both paths route
// through the same frames, the same CollectState and the same MergeEngine.
#include "net/referee_server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "cli/commands.h"
#include "common/frame.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/collect.h"
#include "distributed/faulty_channel.h"
#include "distributed/runtime.h"
#include "freq/freq_sketch.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "obs/metrics.h"
#include "stream/partitioner.h"

// Path to the real `ustream` binary, passed by ctest as the first
// non-gtest argv entry (see tests/CMakeLists.txt); the multi-process test
// is skipped when absent (e.g. running the test binary by hand).
static std::string g_ustream_bin;  // NOLINT

namespace ustream {
namespace {

using net::PushAck;
using net::RefereeServer;
using net::RefereeServerConfig;
using net::TcpTransport;
using net::TcpTransportConfig;

TcpTransportConfig client_config(std::uint16_t port) {
  TcpTransportConfig config;
  config.host = "127.0.0.1";
  config.port = port;
  config.base_backoff = std::chrono::microseconds{1000};
  config.max_backoff = std::chrono::microseconds{20'000};
  return config;
}

TEST(NetSocket, ListenConnectRoundTrip) {
  net::Socket listener = net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(listener);
  ASSERT_NE(port, 0);

  net::Socket client = net::connect_tcp("127.0.0.1", port, std::chrono::milliseconds{1000},
                                        std::chrono::milliseconds{1000});
  net::Socket server;
  for (int i = 0; i < 100 && !server.valid(); ++i) {
    server = net::accept_conn(listener);
    if (!server.valid()) std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  ASSERT_TRUE(server.valid());

  const std::vector<std::uint8_t> ping{1, 2, 3, 4, 5};
  net::send_all(client, ping);
  std::vector<std::uint8_t> got(ping.size());
  // The accepted side is nonblocking; poll-by-retry until the bytes land.
  for (int i = 0; i < 100; ++i) {
    try {
      net::recv_exact(server, got);
      break;
    } catch (const net::TransportError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
  }
  EXPECT_EQ(got, ping);
}

TEST(NetSocket, ConnectToDeadPortThrowsAfterBackoffBudget) {
  // Grab an ephemeral port and release it: nobody is listening there now.
  std::uint16_t port = 0;
  {
    net::Socket probe = net::listen_tcp("127.0.0.1", 0);
    port = net::local_port(probe);
  }
  TcpTransportConfig config = client_config(port);
  config.max_connect_attempts = 3;
  TcpTransport transport(1, config);
  EXPECT_THROW(transport.send(0, {1, 2, 3}), net::TransportError);
  // The backoff loop really dialed max_connect_attempts times, and no frame
  // ever hit the wire, so the model was charged zero messages.
  EXPECT_EQ(transport.connect_attempts(), 3u);
  EXPECT_EQ(transport.stats().messages, 0u);
}

TEST(NetSocket, UnregisteredSiteIsAProtocolError) {
  TcpTransport transport(2, client_config(1));  // port never dialed
  EXPECT_THROW(transport.send(2, {1}), ProtocolError);
}

// Builds the t per-site sketches for a shared workload — the observation
// phase both referees (in-process and TCP) then consume identically.
struct Workload {
  DistributedWorkload data;
  EstimatorParams params;
  std::vector<F0Estimator> sites;

  explicit Workload(std::size_t t, std::uint64_t seed = 7) {
    DistributedConfig config;
    config.sites = t;
    config.union_distinct = 30'000;
    config.overlap = 0.3;
    config.seed = seed;
    data = make_distributed_workload(config);
    params = EstimatorParams::for_guarantee(0.1, 0.05, seed);
    for (std::size_t s = 0; s < t; ++s) {
      F0Estimator est(params);
      for (const Item& item : data.site_streams[s]) est.add(item.label);
      sites.push_back(std::move(est));
    }
  }

  // The reference referee: the perfect in-process Channel, site-order fold.
  std::vector<std::uint8_t> channel_referee_bytes(const std::vector<bool>* alive = nullptr) {
    auto channel = std::make_unique<FaultyChannel>(sites.size(), FaultSpec{}, 99);
    FaultyChannel* view = channel.get();
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (alive != nullptr && !(*alive)[s]) view->set_site_faults(s, FaultSpec::dropping(1.0));
    }
    const EstimatorParams p = params;
    DistributedRun<F0Estimator> run(sites.size(), [&p] { return F0Estimator(p); },
                                    std::move(channel));
    for (std::size_t s = 0; s < sites.size(); ++s) {
      for (const Item& item : data.site_streams[s]) run.site(s).add(item.label);
    }
    RetryPolicy policy;
    policy.max_attempts_per_site = 2;
    policy.sleep_on_backoff = false;
    return run.collect(policy).serialize();
  }
};

TEST(NetReferee, TcpLoopbackRefereeIsByteIdenticalToChannelReferee) {
  constexpr std::size_t kSites = 4;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.sites = kSites;
  RefereeServer server(config);
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  TcpTransport transport(kSites, client_config(server.port()));
  for (std::size_t s = 0; s < kSites; ++s) {
    transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                    static_cast<std::uint32_t>(s), 0},
                                   workload.sites[s].serialize()));
  }
  referee.join();

  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  ASSERT_TRUE(result.union_sketch.has_value());
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());
  EXPECT_EQ(result.report.total_attempts(), kSites);
  EXPECT_EQ(result.wire.messages, kSites);
  EXPECT_FALSE(result.timed_out);
  // Per-site wire attribution matches what each site shipped.
  const ChannelStats client_stats = transport.stats();
  for (std::size_t s = 0; s < kSites; ++s) {
    // Client counts the bare frame; the server observed the same bytes.
    EXPECT_EQ(result.wire.bytes_per_site[s] - kFrameHeaderBytes,
              client_stats.bytes_per_site[s] - kFrameHeaderBytes);
  }
}

TEST(NetReferee, DuplicateWrongKindAndGarbageGetHonestAcks) {
  constexpr std::size_t kSites = 2;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.sites = kSites;
  RefereeServer server(config);
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  TcpTransportConfig tconfig = client_config(server.port());
  tconfig.max_send_attempts = 1;  // surface 'Q' as an error instead of retrying
  TcpTransport transport(kSites, tconfig);

  const auto frame0 = frame_encode({PayloadKind::kF0Estimator, 0, 0},
                                   workload.sites[0].serialize());
  EXPECT_EQ(transport.send_with_ack(0, frame0), PushAck::kAccepted);
  // Retransmission of an already-accepted frame: deduped, acked 'D'.
  EXPECT_EQ(transport.send_with_ack(0, frame0), PushAck::kDuplicate);
  // A structurally valid frame of the WRONG protocol: quarantined.
  const auto wrong_kind = frame_encode({PayloadKind::kDistinctSum, 1, 0},
                                       workload.sites[1].serialize());
  EXPECT_THROW(transport.send_with_ack(1, wrong_kind), net::TransportError);
  // Garbage that is not even a frame: quarantined at decode.
  EXPECT_THROW(transport.send_with_ack(1, std::vector<std::uint8_t>(64, 0xAB)),
               net::TransportError);
  // The real site-1 frame still lands: quarantine never poisons the site.
  const auto frame1 = frame_encode({PayloadKind::kF0Estimator, 1, 0},
                                   workload.sites[1].serialize());
  EXPECT_EQ(transport.send_with_ack(1, frame1), PushAck::kAccepted);
  referee.join();

  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  EXPECT_EQ(result.report.duplicates_dropped, 1u);
  EXPECT_EQ(result.report.frames_quarantined, 2u);
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());
  // 1 retransmission observed for site 0 (the duplicate).
  EXPECT_GE(result.report.retries, 1u);
}

TEST(NetReferee, KilledSiteDegradesToTheSameLowerBoundAsFaultyChannel) {
  constexpr std::size_t kSites = 3;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.sites = kSites;
  config.timeout = std::chrono::milliseconds{1500};
  RefereeServer server(config);
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  TcpTransport transport(kSites, client_config(server.port()));
  for (std::size_t s = 0; s < 2; ++s) {
    transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                    static_cast<std::uint32_t>(s), 0},
                                   workload.sites[s].serialize()));
  }
  // Site 2 dies mid-stream: it announces a full frame, ships half of it,
  // and its connection drops. The referee must treat the stranded bytes as
  // a truncated (quarantined) transmission, then time out degraded.
  {
    const auto frame = frame_encode({PayloadKind::kF0Estimator, 2, 0},
                                    workload.sites[2].serialize());
    net::Socket victim = net::connect_tcp("127.0.0.1", server.port(),
                                          std::chrono::milliseconds{1000},
                                          std::chrono::milliseconds{1000});
    const auto len = static_cast<std::uint32_t>(frame.size());
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16), static_cast<std::uint8_t>(len >> 24)};
    net::send_all(victim, prefix);
    net::send_all(victim, std::span<const std::uint8_t>(frame.data(), frame.size() / 2));
  }  // victim socket closes here — mid-frame
  referee.join();

  EXPECT_TRUE(result.report.degraded());
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.report.sites_reported, 2u);
  EXPECT_GE(result.report.frames_quarantined, 1u);
  ASSERT_EQ(result.report.missing_sites(), std::vector<std::size_t>{2});
  ASSERT_TRUE(result.union_sketch.has_value());
  // Degraded-lower-bound semantics over TCP == over FaultyChannel: the
  // referee that lost site 2 to a killed connection is byte-identical to
  // the referee that lost site 2 to a fully dropping channel.
  const std::vector<bool> alive{true, true, false};
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes(&alive));
}

// One admin round trip: connect, send the one-line request, read the
// response to EOF (the admin protocol is response-then-close).
std::string admin_query(std::uint16_t port, const std::string& request) {
  net::Socket sock = net::connect_tcp("127.0.0.1", port, std::chrono::milliseconds{2000},
                                      std::chrono::milliseconds{2000});
  const std::string line = request + "\n";
  net::send_all(sock, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(line.data()), line.size()));
  std::string out;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

// Pulls a counter's value out of a render_json metrics line; ~0 if absent.
std::uint64_t json_counter(const std::string& json, const std::string& name) {
  const std::string key = "\"name\":\"" + name + "\",\"type\":\"counter\",\"value\":";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return ~std::uint64_t{0};
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

TEST(NetAdmin, ServesLiveMetricsMidCollection) {
  constexpr std::size_t kSites = 2;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.sites = kSites;
  config.admin_port = 0;  // ephemeral; read back below
  RefereeServer server(config);
  ASSERT_TRUE(server.admin_port().has_value());
  const std::uint16_t admin = *server.admin_port();
  ASSERT_NE(admin, 0);
  ASSERT_NE(admin, server.port());

  // The registry is process-global and other tests in this binary run
  // referees too — assert on deltas, not absolutes.
  obs::MetricsRegistry& reg = obs::default_registry();
  const std::uint64_t accepted0 = reg.counter("ustream_referee_frames_accepted_total").value();
  const std::uint64_t requests0 = reg.counter("ustream_referee_admin_requests_total").value();

  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  EXPECT_EQ(admin_query(admin, "GET /health"), "ok\n");

  TcpTransport transport(kSites, client_config(server.port()));
  transport.send(0, frame_encode({PayloadKind::kF0Estimator, 0, 0},
                                 workload.sites[0].serialize()));

  // Mid-collection (site 0 acked, site 1 outstanding): the live snapshot
  // must already show the accepted frame, in both exposition formats.
  const std::string prom = admin_query(admin, "GET /metrics");
  EXPECT_NE(prom.find("# TYPE ustream_referee_frames_accepted_total counter"),
            std::string::npos)
      << prom;
  const std::string json = admin_query(admin, "GET /metrics.json");
  EXPECT_EQ(json_counter(json, "ustream_referee_frames_accepted_total"), accepted0 + 1)
      << json;
  EXPECT_EQ(json.find('\n'), json.size() - 1) << "metrics.json must be one line";

  // A bad request is answered (and the loop survives it).
  EXPECT_EQ(admin_query(admin, "GET /nope").rfind("error:", 0), 0u);

  transport.send(1, frame_encode({PayloadKind::kF0Estimator, 1, 0},
                                 workload.sites[1].serialize()));
  referee.join();

  // Admin traffic never disturbed the collection: complete, byte-identical
  // to the in-process referee, and the ledger agrees with the counters.
  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());
  EXPECT_EQ(reg.counter("ustream_referee_frames_accepted_total").value(), accepted0 + 2);
  EXPECT_GE(reg.counter("ustream_referee_admin_requests_total").value(), requests0 + 4);
}

TEST(NetAdmin, QueryEndpointRoutesThroughInstalledHandler) {
  // The admin loop owns only the ROUTE: `/query?e=` (JSON) and
  // `/query.txt?e=` (text) hand the still-percent-encoded expression to
  // the configured handler, and a throwing handler becomes an error
  // response, not a dead admin loop. The handler's semantics (decode,
  // resolve, evaluate) live in the CLI and are covered end to end below.
  Workload workload(1);

  RefereeServerConfig config;
  config.sites = 1;
  config.admin_port = 0;
  struct Seen {
    std::string raw;
    bool json = false;
  };
  std::vector<Seen> seen;  // admin requests run serialized on shard 0's loop
  config.query_handler = [&seen](const std::string& raw, bool as_json) {
    if (raw == "boom") throw std::runtime_error("handler exploded");
    seen.push_back({raw, as_json});
    return as_json ? std::string("{\"echo\":true}\n") : std::string("echo\n");
  };
  RefereeServer server(std::move(config));
  ASSERT_TRUE(server.admin_port().has_value());
  const std::uint16_t admin = *server.admin_port();

  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  EXPECT_EQ(admin_query(admin, "GET /query?e=site%3A0%20%7C%20site%3A1"),
            "{\"echo\":true}\n");
  EXPECT_EQ(admin_query(admin, "GET /query.txt?e=site%3A0"), "echo\n");
  EXPECT_EQ(admin_query(admin, "GET /query?e=boom"), "error: handler exploded\n");
  EXPECT_EQ(admin_query(admin, "GET /health"), "ok\n");  // loop survived the throw

  TcpTransport transport(1, client_config(server.port()));
  transport.send(0, frame_encode({PayloadKind::kF0Estimator, 0, 0},
                                 workload.sites[0].serialize()));
  referee.join();
  ASSERT_TRUE(result.report.complete()) << result.report.summary();

  // The handler saw the RAW query string (decoding is its job), with the
  // route's format flag.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].raw, "site%3A0%20%7C%20site%3A1");
  EXPECT_TRUE(seen[0].json);
  EXPECT_EQ(seen[1].raw, "site%3A0");
  EXPECT_FALSE(seen[1].json);
}

TEST(NetAdmin, QueryEndpointWithoutHandlerReportsDisabled) {
  RefereeServerConfig config;
  config.sites = 1;
  config.admin_port = 0;
  RefereeServer server(std::move(config));
  ASSERT_TRUE(server.admin_port().has_value());
  const std::uint16_t admin = *server.admin_port();

  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });
  EXPECT_EQ(admin_query(admin, "GET /query?e=site%3A0"),
            "error: query endpoint disabled (no query handler)\n");
  server.request_stop();
  referee.join();
}

// ---------------------------------------------------------------------------
// Ledger algebra for the sharded referee: demote_accepted undoes a local
// acceptance that lost the cross-shard arbitration, and merge_reports folds
// per-shard ledgers into the sequential-referee report.

std::vector<std::uint8_t> frame_bytes(std::uint32_t site, std::uint32_t epoch) {
  return frame_encode({PayloadKind::kF0Estimator, site, epoch},
                      std::vector<std::uint8_t>{1, 2, 3});
}

TEST(CollectLedger, DemoteAcceptedRestoresPriorState) {
  CollectState state(2, PayloadKind::kF0Estimator, DedupMode::kLatestWins);

  // First acceptance lost to another shard: back to unreported, counted as
  // a duplicate — exactly what a sequential referee whose table already
  // held the site would have recorded.
  state.record_send(0);
  ASSERT_TRUE(state.ingest(frame_bytes(0, 5)).has_value());
  EXPECT_EQ(state.report().sites_reported, 1u);
  state.demote_accepted(0, 0, false, /*count_stale=*/false);
  EXPECT_EQ(state.report().sites_reported, 0u);
  EXPECT_FALSE(state.site_reported(0));
  EXPECT_EQ(state.report().duplicates_dropped, 1u);
  EXPECT_EQ(state.report().per_site[0].accepted_epoch, 0u);

  // A latest-wins replacement lost to a newer global epoch: the site stays
  // reported at its previous epoch, and the loss counts as stale.
  state.record_send(1);
  ASSERT_TRUE(state.ingest(frame_bytes(1, 3)).has_value());
  state.record_send(1);
  ASSERT_TRUE(state.ingest(frame_bytes(1, 7)).has_value());
  EXPECT_EQ(state.report().per_site[1].accepted_epoch, 7u);
  state.demote_accepted(1, 3, /*previously_reported=*/true, /*count_stale=*/true);
  EXPECT_TRUE(state.site_reported(1));
  EXPECT_EQ(state.report().sites_reported, 1u);
  EXPECT_EQ(state.report().per_site[1].accepted_epoch, 3u);
  EXPECT_EQ(state.report().stale_dropped, 1u);
}

TEST(CollectLedger, MergeReportsFoldsShardLedgers) {
  // Shard A saw site 0 (one attempt, accepted epoch 2) and one garbage
  // frame; shard B saw a RETRANSMISSION of site 0 (demoted: duplicate) and
  // site 1 (accepted).
  CollectReport a;
  a.sites_total = 2;
  a.per_site.resize(2);
  a.per_site[0] = {1, true, false, 2};
  a.sites_reported = 1;
  a.frames_quarantined = 1;
  CollectReport b;
  b.sites_total = 2;
  b.per_site.resize(2);
  b.per_site[0] = {1, false, false, 0};
  b.per_site[1] = {1, true, false, 0};
  b.sites_reported = 1;
  b.duplicates_dropped = 1;

  const CollectReport merged = merge_reports({a, b});
  EXPECT_EQ(merged.sites_total, 2u);
  EXPECT_EQ(merged.sites_reported, 2u);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.frames_quarantined, 1u);
  EXPECT_EQ(merged.duplicates_dropped, 1u);
  EXPECT_EQ(merged.per_site[0].attempts, 2u);
  EXPECT_EQ(merged.per_site[0].accepted_epoch, 2u);
  // The retransmission landed on a different shard than the original —
  // each shard alone saw one attempt, but the union saw a retry. This is
  // what a sequential referee over the same frame stream reports.
  EXPECT_EQ(merged.retries, 1u);
  EXPECT_EQ(merged.total_attempts(), 3u);
}

TEST(CollectLedger, MergeReportsKeepsNewestEpochAcrossParts) {
  CollectReport a;
  a.sites_total = 1;
  a.per_site.resize(1);
  a.per_site[0] = {2, true, false, 5};
  a.sites_reported = 1;
  CollectReport b;
  b.sites_total = 1;
  b.per_site.resize(1);
  b.per_site[0] = {1, true, false, 3};
  b.sites_reported = 1;
  const CollectReport merged = merge_reports({b, a});  // order must not matter
  EXPECT_EQ(merged.per_site[0].accepted_epoch, 5u);
  EXPECT_EQ(merged.sites_reported, 1u);
}

TEST(CollectLedger, MergeReportsRejectsMismatchedShape) {
  CollectReport a;
  a.sites_total = 2;
  a.per_site.resize(2);
  CollectReport b;
  b.sites_total = 3;
  b.per_site.resize(3);
  EXPECT_THROW(merge_reports({a, b}), InvalidArgument);
  EXPECT_THROW(merge_reports({}), InvalidArgument);
}

TEST(CollectLedger, MergeReportsEmptyShardLedgersFoldToNothing) {
  // The kernel's SO_REUSEPORT hash can leave shards with zero connections —
  // their ledgers are fresh CollectStates that saw no frames. Folding any
  // number of them must be the identity, not an error and not phantom
  // reports.
  CollectReport empty;
  empty.sites_total = 3;
  empty.per_site.resize(3);

  const CollectReport merged = merge_reports({empty, empty, empty, empty});
  EXPECT_EQ(merged.sites_total, 3u);
  EXPECT_EQ(merged.sites_reported, 0u);
  EXPECT_TRUE(merged.degraded());
  EXPECT_EQ(merged.total_attempts(), 0u);
  EXPECT_EQ(merged.retries, 0u);
  EXPECT_EQ(merged.missing_sites(), (std::vector<std::size_t>{0, 1, 2}));

  // One live shard among idle ones folds to exactly that shard's view.
  CollectReport live = empty;
  live.per_site[1] = {1, true, false, 4};
  live.sites_reported = 1;
  const CollectReport mixed = merge_reports({empty, live, empty});
  EXPECT_EQ(mixed.sites_reported, 1u);
  EXPECT_EQ(mixed.per_site[1].accepted_epoch, 4u);
  EXPECT_EQ(mixed.missing_sites(), (std::vector<std::size_t>{0, 2}));
}

TEST(CollectLedger, MergeReportsAllShardsDegradedStaysDegraded) {
  // Every shard individually degraded, and the union still missing site 2:
  // the fold must not manufacture completeness, and the quarantine/attempt
  // tallies of the failed site must survive into the merged ledger so the
  // degraded estimate stays quantifiable (DESIGN.md §6.3).
  CollectReport a;
  a.sites_total = 3;
  a.per_site.resize(3);
  a.per_site[0] = {1, true, false, 0};
  a.per_site[2] = {2, false, true, 0};  // exhausted retry budget, never landed
  a.sites_reported = 1;
  a.frames_quarantined = 2;
  CollectReport b;
  b.sites_total = 3;
  b.per_site.resize(3);
  b.per_site[1] = {1, true, false, 0};
  b.per_site[2] = {1, false, false, 0};
  b.sites_reported = 1;
  b.frames_quarantined = 1;

  const CollectReport merged = merge_reports({a, b});
  EXPECT_EQ(merged.sites_reported, 2u);
  EXPECT_TRUE(merged.degraded());
  EXPECT_EQ(merged.missing_sites(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(merged.frames_quarantined, 3u);
  EXPECT_EQ(merged.per_site[2].attempts, 3u);
  // Site 2's 3 cross-shard attempts with zero acceptances are 2 retries.
  EXPECT_EQ(merged.retries, 2u);
}

TEST(CollectLedger, MergeReportsCountsDuplicateSiteOnceAfterDemotion) {
  // The race the arbiter resolves: two shards each locally accepted site 0
  // before one lost the global claim and demoted (duplicates_dropped += 1
  // on the loser). After demotion only ONE ledger still holds the site;
  // the fold counts it once and carries the loser's duplicate tally.
  CollectState winner(2, PayloadKind::kF0Estimator, DedupMode::kExactlyOnce);
  CollectState loser(2, PayloadKind::kF0Estimator, DedupMode::kExactlyOnce);
  winner.record_send(0);
  ASSERT_TRUE(winner.ingest(frame_bytes(0, 0)).has_value());
  loser.record_send(0);
  ASSERT_TRUE(loser.ingest(frame_bytes(0, 0)).has_value());
  loser.demote_accepted(0, 0, /*previously_reported=*/false, /*count_stale=*/false);

  const CollectReport merged = merge_reports({winner.report(), loser.report()});
  EXPECT_EQ(merged.sites_reported, 1u);
  EXPECT_EQ(merged.per_site[0].attempts, 2u);
  EXPECT_EQ(merged.duplicates_dropped, 1u);
  EXPECT_EQ(merged.retries, 1u);

  // Had BOTH ledgers kept the site (the bug demotion prevents), the merged
  // report would still count it once — the fold is idempotent per site.
  CollectState undemoted(2, PayloadKind::kF0Estimator, DedupMode::kExactlyOnce);
  undemoted.record_send(0);
  ASSERT_TRUE(undemoted.ingest(frame_bytes(0, 0)).has_value());
  const CollectReport folded = merge_reports({winner.report(), undemoted.report()});
  EXPECT_EQ(folded.sites_reported, 1u);
}

TEST(NetReferee, BindAllInterfacesAcceptsLoopbackClients) {
  // `serve --bind 0.0.0.0` — the wildcard listener must run a complete
  // round for clients dialing any local address (here loopback), with the
  // same ledger/estimate as the default 127.0.0.1 bind.
  constexpr std::size_t kSites = 3;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.bind_host = "0.0.0.0";
  config.sites = kSites;
  RefereeServer server(config);
  EXPECT_NE(server.port(), 0);
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  TcpTransport transport(kSites, client_config(server.port()));
  for (std::size_t s = 0; s < kSites; ++s) {
    transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                    static_cast<std::uint32_t>(s), 0},
                                   workload.sites[s].serialize()));
  }
  referee.join();

  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  ASSERT_TRUE(result.union_sketch.has_value());
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());
}

// ---------------------------------------------------------------------------
// The sharded referee. SO_REUSEPORT routing is the kernel's choice, so
// every assertion here must hold REGARDLESS of which shard each connection
// landed on — that invariance is precisely the tentpole's claim.

TEST(NetShardedReferee, ShardedServerIsByteIdenticalToSequentialReferee) {
  constexpr std::size_t kSites = 8;
  Workload workload(kSites);

  obs::MetricsRegistry& reg = obs::default_registry();
  std::uint64_t accepted0 = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    accepted0 += reg.counter("ustream_referee_frames_accepted_total",
                             "shard=\"" + std::to_string(k) + "\"").value();
  }

  RefereeServerConfig config;
  config.sites = kSites;
  config.shards = 3;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });

  // One transport (= one connection) per site so the kernel spreads the
  // connections across the SO_REUSEPORT acceptors.
  for (std::size_t s = 0; s < kSites; ++s) {
    TcpTransport transport(kSites, client_config(server.port()));
    transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                    static_cast<std::uint32_t>(s), 0},
                                   workload.sites[s].serialize()));
  }
  referee.join();

  // The union sketch: byte-identical to the in-process sequential referee.
  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  ASSERT_TRUE(result.union_sketch.has_value());
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());

  // The folded ledger: identical to what the sequential referee reports.
  EXPECT_EQ(result.report.sites_reported, kSites);
  EXPECT_EQ(result.report.total_attempts(), kSites);
  EXPECT_EQ(result.report.retries, 0u);
  EXPECT_EQ(result.report.duplicates_dropped, 0u);
  EXPECT_FALSE(result.timed_out);

  // Wire accounting folds across shards without loss.
  EXPECT_EQ(result.wire.messages, kSites);
  ASSERT_EQ(result.shards.size(), 3u);
  std::size_t shard_frames = 0;
  std::uint64_t shard_bytes = 0;
  for (const auto& shard : result.shards) {
    shard_frames += shard.wire.messages;
    shard_bytes += shard.wire.total_bytes;
  }
  EXPECT_EQ(shard_frames, result.wire.messages);
  EXPECT_EQ(shard_bytes, result.wire.total_bytes);

  // Sharded metrics are per-shard labeled series; their sum is the fleet
  // view a dashboard aggregates.
  std::uint64_t accepted1 = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    accepted1 += reg.counter("ustream_referee_frames_accepted_total",
                             "shard=\"" + std::to_string(k) + "\"").value();
  }
  EXPECT_EQ(accepted1 - accepted0, kSites);
}

TEST(NetShardedReferee, CrossShardDuplicatesCollapseToOneAcceptance) {
  // 12 pushes of the SAME (site, epoch) over 12 fresh connections: however
  // the kernel spreads them, exactly one wins the shared arbiter and the
  // sink runs exactly once — the sharded ledger cannot double-count a
  // site. A second holdout site completes the round only AFTER the
  // duplicate storm, keeping the server in-round throughout.
  constexpr std::size_t kPushes = 12;
  Workload workload(2);

  RefereeServerConfig config;
  config.sites = 2;
  config.shards = 4;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));

  std::atomic<std::size_t> sink_calls{0};
  RefereeServer::Result result;
  std::thread referee([&server, &result, &sink_calls] {
    result = server.run([&sink_calls](std::size_t, std::uint32_t, std::uint16_t, PayloadKind,
                                      std::vector<std::uint8_t>&&) {
      sink_calls.fetch_add(1, std::memory_order_relaxed);
      return true;
    });
  });

  const auto frame = frame_encode({PayloadKind::kF0Estimator, 0, 0},
                                  workload.sites[0].serialize());
  std::size_t accepted = 0, duplicate = 0;
  for (std::size_t i = 0; i < kPushes; ++i) {
    TcpTransport transport(2, client_config(server.port()));
    switch (transport.send_with_ack(0, frame)) {
      case PushAck::kAccepted: ++accepted; break;
      case PushAck::kDuplicate: ++duplicate; break;
      default: ADD_FAILURE() << "unexpected ack on push " << i; break;
    }
  }
  {
    TcpTransport transport(2, client_config(server.port()));
    EXPECT_EQ(transport.send_with_ack(
                  1, frame_encode({PayloadKind::kF0Estimator, 1, 0},
                                  workload.sites[1].serialize())),
              PushAck::kAccepted);
  }
  referee.join();

  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(duplicate, kPushes - 1);
  EXPECT_EQ(sink_calls.load(), 2u);
  EXPECT_TRUE(result.report.complete());
  EXPECT_EQ(result.report.sites_reported, 2u);
  EXPECT_EQ(result.report.duplicates_dropped, kPushes - 1);
  EXPECT_EQ(result.report.total_attempts(), kPushes + 1);
  EXPECT_EQ(result.report.retries, kPushes - 1);
}

TEST(NetShardedReferee, LatestWinsEpochOrderHoldsAcrossShards) {
  // Epochs 2, 5, then 3 over three fresh connections (each acked before
  // the next is sent): whatever shards they land on, the global verdicts
  // must be accept, accept, stale — and the final ledger holds epoch 5.
  // A holdout second site closes the round after the epoch traffic, since
  // a complete round ends the server in every dedup mode.
  Workload workload(2);

  RefereeServerConfig config;
  config.sites = 2;
  config.shards = 3;
  config.dedup = DedupMode::kLatestWins;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));

  std::vector<std::uint32_t> delivered;
  RefereeServer::Result result;
  std::thread referee([&server, &result, &delivered] {
    result = server.run([&delivered](std::size_t, std::uint32_t epoch, std::uint16_t, PayloadKind,
                                     std::vector<std::uint8_t>&&) {
      delivered.push_back(epoch);  // serialized under the arbiter mutex
      return true;
    });
  });

  const auto push = [&](std::uint32_t site, std::uint32_t epoch) {
    TcpTransport transport(2, client_config(server.port()));
    return transport.send_with_ack(
        site, frame_encode({PayloadKind::kF0Estimator, site, epoch},
                           workload.sites[site].serialize()));
  };
  EXPECT_EQ(push(0, 2), PushAck::kAccepted);
  EXPECT_EQ(push(0, 5), PushAck::kAccepted);
  EXPECT_EQ(push(0, 3), PushAck::kStale);
  EXPECT_EQ(push(1, 7), PushAck::kAccepted);
  referee.join();

  EXPECT_EQ(delivered, (std::vector<std::uint32_t>{2, 5, 7}));
  EXPECT_EQ(result.report.sites_reported, 2u);
  EXPECT_EQ(result.report.stale_dropped, 1u);
  EXPECT_EQ(result.report.duplicates_dropped, 0u);
  EXPECT_EQ(result.report.per_site[0].accepted_epoch, 5u);
  // Each accept lives in the ledger of the shard it landed on (epochs 2
  // and 5 may be on different shards); the fold's epoch-max recovers the
  // newest. At least one shard holds site 0, and the newest epoch held is 5.
  std::uint32_t newest = 0;
  std::size_t holders = 0;
  for (const auto& shard : result.shards) {
    if (shard.report.per_site[0].reported) {
      ++holders;
      if (shard.report.per_site[0].accepted_epoch > newest) {
        newest = shard.report.per_site[0].accepted_epoch;
      }
    }
  }
  EXPECT_GE(holders, 1u);
  EXPECT_EQ(newest, 5u);
}

TEST(NetShardedReferee, GroupedCollectionIsByteIdenticalAcrossShardCounts) {
  // Two groups' traffic interleaved over per-site connections (sites
  // alternate group 1 / group 2, one connection each so the kernel spreads
  // them): however SO_REUSEPORT routes the frames, the folded ledger's
  // group tags and the per-group reductions must be byte-identical to a
  // single-shard referee fed the same frames — the grouped extension of
  // the sharding invariance claim.
  constexpr std::size_t kSites = 8;
  Workload workload(kSites);
  const auto group_of = [](std::size_t site) {
    return static_cast<std::uint16_t>(site % 2 == 0 ? 1 : 2);
  };

  const auto run_referee = [&](std::size_t shards) {
    RefereeServerConfig config;
    config.sites = kSites;
    config.shards = shards;
    config.timeout = std::chrono::milliseconds{30'000};
    RefereeServer server(std::move(config));

    std::vector<std::optional<F0Estimator>> accepted(kSites);
    RefereeServer::Result result;
    std::thread referee([&server, &result, &accepted] {
      result = server.run([&accepted](std::size_t site, std::uint32_t, std::uint16_t,
                                      PayloadKind, std::vector<std::uint8_t>&& payload) {
        // Serialized under the shared arbiter mutex, so the plain vector
        // is safe even with four shard loops.
        accepted[site] = F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
        return true;
      });
    });
    for (std::size_t s = 0; s < kSites; ++s) {
      TcpTransport transport(kSites, client_config(server.port()));
      transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                      static_cast<std::uint32_t>(s), 0, group_of(s)},
                                     workload.sites[s].serialize()));
    }
    referee.join();
    return std::pair{std::move(result), std::move(accepted)};
  };

  auto [sharded, sharded_accepted] = run_referee(4);
  auto [single, single_accepted] = run_referee(1);
  ASSERT_TRUE(sharded.report.complete()) << sharded.report.summary();
  ASSERT_TRUE(single.report.complete()) << single.report.summary();
  for (std::size_t s = 0; s < kSites; ++s) {
    EXPECT_EQ(sharded.report.per_site[s].group, group_of(s)) << "site " << s;
    EXPECT_EQ(single.report.per_site[s].group, group_of(s)) << "site " << s;
  }

  const auto sharded_groups =
      reduce_groups<F0Estimator>(sharded.report, std::move(sharded_accepted));
  const auto single_groups =
      reduce_groups<F0Estimator>(single.report, std::move(single_accepted));
  ASSERT_EQ(sharded_groups.size(), 2u);
  ASSERT_EQ(single_groups.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(sharded_groups[k].group, single_groups[k].group);
    EXPECT_EQ(sharded_groups[k].sites, single_groups[k].sites);
    EXPECT_EQ(sharded_groups[k].sketch.serialize(), single_groups[k].sketch.serialize());
    // And both match a site-order fold of just that group's members — the
    // "one single-group collection per group" reference from collect.h.
    std::vector<std::optional<F0Estimator>> members;
    for (std::size_t s : sharded_groups[k].sites) members.emplace_back(workload.sites[s]);
    auto reference = MergeEngine::shared().reduce(std::move(members));
    ASSERT_TRUE(reference.has_value());
    EXPECT_EQ(sharded_groups[k].sketch.serialize(), reference->serialize());
  }
}

TEST(NetShardedReferee, FreqCollectionIsByteIdenticalAcrossShardCounts) {
  // The ISSUE acceptance claim for the frequency subsystem: heavy-hitter
  // estimates over the union are IDENTICAL whether the sites land on 1
  // shard or 4 — the freq merge algebra (no-truncation SpaceSaver union +
  // counter addition) is merge-tree invariant, so the sharded referee's
  // tree reduce and the sequential site-order fold serialize alike.
  constexpr std::size_t kSites = 8;
  const FreqConfig freq_config{.depth = 4, .width_log2 = 10, .heavy_capacity = 32,
                               .seed = 99};
  std::vector<FreqSketch> sites(kSites, FreqSketch(freq_config));
  Xoshiro256 rng(63);
  for (std::size_t s = 0; s < kSites; ++s) {
    for (int i = 0; i < 20'000; ++i) sites[s].add(rng.below(4'000));
  }

  const auto run_referee = [&](std::size_t shards) {
    RefereeServerConfig config;
    config.sites = kSites;
    config.shards = shards;
    config.expected_kind = PayloadKind::kFreqSketch;
    config.timeout = std::chrono::milliseconds{30'000};
    RefereeServer server(std::move(config));

    std::vector<std::optional<FreqSketch>> accepted(kSites);
    RefereeServer::Result result;
    std::thread referee([&server, &result, &accepted] {
      result = server.run([&accepted](std::size_t site, std::uint32_t, std::uint16_t,
                                      PayloadKind, std::vector<std::uint8_t>&& payload) {
        accepted[site] =
            FreqSketch::deserialize(std::span<const std::uint8_t>(payload));
        return true;
      });
    });
    for (std::size_t s = 0; s < kSites; ++s) {
      TcpTransport transport(kSites, client_config(server.port()));
      transport.send(s, frame_encode({PayloadKind::kFreqSketch,
                                      static_cast<std::uint32_t>(s), 0},
                                     sites[s].serialize()));
    }
    referee.join();
    EXPECT_TRUE(result.report.complete()) << result.report.summary();
    auto merged = MergeEngine::shared().reduce(std::move(accepted));
    EXPECT_TRUE(merged.has_value());
    return merged->serialize();
  };

  const auto sharded = run_referee(4);
  const auto single = run_referee(1);
  EXPECT_EQ(sharded, single);

  // Both equal the sequential site-order fold of the raw site summaries.
  FreqSketch fold = sites[0];
  for (std::size_t s = 1; s < kSites; ++s) fold.merge(sites[s]);
  EXPECT_EQ(single, fold.serialize());

  // And the heavy-hitter table those bytes answer from is the union's.
  const FreqSketch restored =
      FreqSketch::deserialize(std::span<const std::uint8_t>(single));
  const auto top = restored.top(10);
  ASSERT_FALSE(top.empty());
  for (const auto& hh : top) {
    EXPECT_GE(hh.estimate, hh.lower);
    EXPECT_LE(hh.estimate, hh.upper);
  }
}

TEST(NetShardedReferee, PollBackendMatchesEpollBackend) {
  // The same sharded collection through the poll fallback: identical
  // bytes, identical ledger. Guards the fallback against rotting.
  constexpr std::size_t kSites = 4;
  Workload workload(kSites);

  RefereeServerConfig config;
  config.sites = kSites;
  config.shards = 2;
  config.backend = net::EventLoop::Backend::kPoll;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });
  for (std::size_t s = 0; s < kSites; ++s) {
    TcpTransport transport(kSites, client_config(server.port()));
    transport.send(s, frame_encode({PayloadKind::kF0Estimator,
                                    static_cast<std::uint32_t>(s), 0},
                                   workload.sites[s].serialize()));
  }
  referee.join();
  ASSERT_TRUE(result.report.complete()) << result.report.summary();
  EXPECT_EQ(result.union_sketch->serialize(), workload.channel_referee_bytes());
}

TEST(NetReferee, RequestStopEndsTheLoopDegraded) {
  RefereeServerConfig config;
  config.sites = 1;
  RefereeServer server(config);
  net::NetCollectResult<F0Estimator> result;
  std::thread referee([&server, &result] {
    result = net::collect_and_merge<F0Estimator>(server);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  server.request_stop();
  referee.join();
  EXPECT_TRUE(result.report.degraded());
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.union_sketch.has_value());  // zero sites: no union
}

// ---------------------------------------------------------------------------
// The acceptance test: `ustream serve` + tx `ustream push` as REAL processes
// over loopback, byte-identical to the in-process pipeline on the same
// traces/seed, with --json output parsed rather than prose scraped.

class NetCliTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir();
  std::vector<std::string> files_;

  std::string path(const std::string& name) {
    files_.push_back(dir_ + "/net_" + name);
    return files_.back();
  }

  void TearDown() override {
    for (const auto& f : files_) std::remove(f.c_str());
  }

  static std::pair<int, std::string> invoke(const std::vector<std::string>& argv) {
    std::string out;
    const int code = cli::run(argv, out);
    return {code, out};
  }

  static std::vector<std::uint8_t> slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }

  // Polls for the serve process's port file.
  static std::uint16_t wait_for_port(const std::string& port_file) {
    for (int i = 0; i < 200; ++i) {
      std::ifstream in(port_file);
      int port = 0;
      if (in >> port && port > 0) return static_cast<std::uint16_t>(port);
      std::this_thread::sleep_for(std::chrono::milliseconds{25});
    }
    return 0;
  }
};

TEST_F(NetCliTest, MultiProcessServePushMatchesInProcessMergeByteForByte) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  // Observation phase: shared files, exactly as the in-process CLI test.
  const auto t0 = path("s0.trace"), t1 = path("s1.trace");
  const auto s0 = path("s0.sk"), s1 = path("s1.sk");
  const auto inproc = path("union_inproc.sk"), net_sk = path("union_net.sk");
  const auto port_file = path("port.txt"), serve_log = path("serve.json");
  for (const auto& [trace, seed] : {std::pair{t0, "1"}, std::pair{t1, "2"}}) {
    auto [code, out] = invoke({"generate", "--distinct", "20000", "--items", "60000",
                               "--seed", seed, "--out", trace});
    ASSERT_EQ(code, 0) << out;
  }
  for (const auto& [trace, sketch] : {std::pair{t0, s0}, std::pair{t1, s1}}) {
    auto [code, out] = invoke({"sketch", "--in", trace, "--eps", "0.1", "--delta", "0.05",
                               "--seed", "42", "--out", sketch});
    ASSERT_EQ(code, 0) << out;
  }
  auto [mcode, mout] = invoke({"merge", "--out", inproc, s0, s1});
  ASSERT_EQ(mcode, 0) << mout;

  // Referee process. popen keeps the pipe open until the server exits, so
  // reading to EOF below is also the "wait for completion" step.
  const std::string serve_cmd = g_ustream_bin + " serve --port 0 --sites 2 --json" +
                                " --timeout-ms 30000 --out " + net_sk +
                                " --port-file " + port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  ASSERT_NE(port, 0) << "serve never wrote its port file";

  // Site processes.
  const std::string target = " --to 127.0.0.1:" + std::to_string(port);
  ASSERT_EQ(std::system((g_ustream_bin + " push" + target + " --site 0 " + s0 +
                         " > /dev/null 2>&1").c_str()), 0);
  ASSERT_EQ(std::system((g_ustream_bin + " push" + target + " --site 1 " + s1 +
                         " > /dev/null 2>&1").c_str()), 0);

  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << serve_out;
  EXPECT_NE(serve_out.find("\"degraded\":false"), std::string::npos) << serve_out;
  EXPECT_NE(serve_out.find("\"sites_reported\":2"), std::string::npos) << serve_out;

  // The whole point: two processes over TCP produced the same referee, to
  // the byte, as the in-process merge of the same sketch files.
  const auto net_bytes = slurp(net_sk);
  ASSERT_FALSE(net_bytes.empty());
  EXPECT_EQ(net_bytes, slurp(inproc));

  // And scripts can read the estimate without scraping prose.
  auto [jcode, jout] = invoke({"estimate", "--json", net_sk});
  ASSERT_EQ(jcode, 0) << jout;
  EXPECT_EQ(jout.find("{\"file\":"), 0u) << jout;
  EXPECT_NE(jout.find("\"estimate\":"), std::string::npos) << jout;
  auto [icode, iout] = invoke({"info", "--json", net_sk});
  ASSERT_EQ(icode, 0) << iout;
  EXPECT_NE(iout.find("\"format\":\"framed-sketch\""), std::string::npos) << iout;
}

// The ISSUE 5 acceptance test: real serve/push processes, with the admin
// endpoint queried MID-collection (site 0 acked, site 1 outstanding) via
// `ustream stats`, and the live frame counters cross-checked against the
// final CollectReport ledger. A fresh serve process starts its registry at
// zero, so absolute counter values are meaningful here (unlike in-process
// tests, which must use deltas).
TEST_F(NetCliTest, AdminEndpointServesMetricsMidCollectionMatchingLedger) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto t0 = path("a0.trace"), t1 = path("a1.trace");
  const auto s0 = path("a0.sk"), s1 = path("a1.sk");
  const auto port_file = path("aport.txt"), admin_port_file = path("aadmin.txt");
  for (const auto& [trace, seed] : {std::pair{t0, "7"}, std::pair{t1, "8"}}) {
    ASSERT_EQ(invoke({"generate", "--distinct", "8000", "--items", "20000",
                      "--seed", seed, "--out", trace}).first, 0);
  }
  for (const auto& [trace, sketch] : {std::pair{t0, s0}, std::pair{t1, s1}}) {
    ASSERT_EQ(invoke({"sketch", "--in", trace, "--seed", "42", "--out", sketch}).first, 0);
  }

  // --stats makes serve dump its own registry as a metrics.json line on
  // exit — that is the "final ledger view" half of the cross-check.
  const std::string serve_cmd = g_ustream_bin + " serve --port 0 --sites 2 --json" +
                                " --stats --timeout-ms 30000" +
                                " --port-file " + port_file +
                                " --admin-port-file " + admin_port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  const std::uint16_t admin = wait_for_port(admin_port_file);
  ASSERT_NE(port, 0) << "serve never wrote its port file";
  ASSERT_NE(admin, 0) << "serve never wrote its admin port file";

  const std::string target = " --to 127.0.0.1:" + std::to_string(port);
  ASSERT_EQ(std::system((g_ustream_bin + " push" + target + " --site 0 " + s0 +
                         " > /dev/null 2>&1").c_str()), 0);

  // Mid-collection: the push above was acked (so ingested), site 1 has not
  // reported. Query the live registry through the stats CLI.
  const std::string admin_target = "127.0.0.1:" + std::to_string(admin);
  auto [hcode, hout] = invoke({"stats", "--from", admin_target, "--health"});
  ASSERT_EQ(hcode, 0) << hout;
  EXPECT_EQ(hout, "ok\n");
  auto [jcode, mid_json] = invoke({"stats", "--from", admin_target, "--json"});
  ASSERT_EQ(jcode, 0) << mid_json;
  EXPECT_EQ(json_counter(mid_json, "ustream_referee_frames_accepted_total"), 1u) << mid_json;
  EXPECT_EQ(json_counter(mid_json, "ustream_referee_connections_total"), 1u) << mid_json;
  EXPECT_EQ(json_counter(mid_json, "ustream_referee_frames_duplicate_total"), 0u) << mid_json;
  // The default (Prometheus text) form works against the same endpoint.
  auto [pcode, mid_prom] = invoke({"stats", "--from", admin_target});
  ASSERT_EQ(pcode, 0) << mid_prom;
  EXPECT_NE(mid_prom.find("ustream_referee_frames_accepted_total 1\n"), std::string::npos)
      << mid_prom;

  // --stats before the positional: boolean flags must not swallow the
  // sketch-file argument.
  ASSERT_EQ(std::system((g_ustream_bin + " push" + target + " --site 1 --stats " + s1 +
                         " > /dev/null 2>&1").c_str()), 0);

  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << serve_out;

  // Ledger (report line): both sites reported, two wire frames, none bad.
  EXPECT_NE(serve_out.find("\"degraded\":false"), std::string::npos) << serve_out;
  EXPECT_NE(serve_out.find("\"sites_reported\":2"), std::string::npos) << serve_out;

  // Counters (metrics line): must agree with the ledger — two accepted
  // frames total (the mid-push view saw exactly the first), zero bad, and
  // the open-connections gauge settled back to zero.
  EXPECT_EQ(json_counter(serve_out, "ustream_referee_frames_accepted_total"), 2u) << serve_out;
  EXPECT_EQ(json_counter(serve_out, "ustream_referee_frames_duplicate_total"), 0u) << serve_out;
  EXPECT_EQ(json_counter(serve_out, "ustream_referee_frames_stale_total"), 0u) << serve_out;
  EXPECT_EQ(json_counter(serve_out, "ustream_referee_frames_quarantined_total"), 0u)
      << serve_out;
  EXPECT_GE(json_counter(serve_out, "ustream_referee_admin_requests_total"), 3u) << serve_out;
  EXPECT_NE(serve_out.find("\"name\":\"ustream_referee_connections_open\","
                           "\"type\":\"gauge\",\"value\":0"),
            std::string::npos)
      << serve_out;
}

TEST_F(NetCliTest, ServeExitsDegradedWhenASiteNeverPushes) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto trace = path("d.trace");
  const auto sketch = path("d.sk");
  const auto port_file = path("dport.txt");
  ASSERT_EQ(invoke({"generate", "--distinct", "5000", "--items", "10000", "--out", trace})
                .first, 0);
  ASSERT_EQ(invoke({"sketch", "--in", trace, "--out", sketch}).first, 0);

  const std::string serve_cmd = g_ustream_bin + " serve --port 0 --sites 2 --json" +
                                " --timeout-ms 2000 --port-file " + port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  ASSERT_NE(port, 0);
  ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                         " --site 0 " + sketch + " > /dev/null 2>&1").c_str()), 0);

  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  // Degraded collection is a DISTINCT exit code (3), same as `collect`.
  EXPECT_EQ(WEXITSTATUS(status), 3) << serve_out;
  EXPECT_NE(serve_out.find("\"degraded\":true"), std::string::npos) << serve_out;
  EXPECT_NE(serve_out.find("\"timed_out\":true"), std::string::npos) << serve_out;
}

// Continuous mode as real processes: a well-configured delta pusher
// converges, and a site whose sketch was built under DIFFERENT (eps, seed)
// parameters gets its frames rejected — the referee must survive to its
// deadline and report honestly, not die mid-run on the un-mergeable
// mirror (the crash this test pins down).
TEST_F(NetCliTest, ContinuousServeSurvivesMismatchedSiteParams) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto port_file = path("cport.txt");
  const std::string serve_cmd = g_ustream_bin +
                                " serve --port 0 --sites 2 --continuous --json" +
                                " --timeout-ms 8000 --port-file " + port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  ASSERT_NE(port, 0);
  const std::string target = " push --to 127.0.0.1:" + std::to_string(port) +
                             " --continuous";

  // Site 0: the protocol's happy path — deltas while the chain holds,
  // flushed full frame at end of stream.
  ASSERT_EQ(std::system((g_ustream_bin + target +
                         " --site 0 --items 30000 --distinct 10000 --seed 42"
                         " > /dev/null 2>&1").c_str()), 0);
  // Site 1: same protocol, incompatible estimator parameters. Every frame
  // it sends is rejected (its sketch can never join site 0's union), so the
  // referee quarantines it until the transport gives up — the pusher must
  // fail CLEANLY (error exit, actionable message), against a referee that
  // is still alive.
  const auto mm_out = path("mismatch.out");
  const int mm = std::system((g_ustream_bin + target +
                              " --site 1 --items 2000 --distinct 500 --seed 7"
                              " --eps 0.3 --attempts 2 > " + mm_out +
                              " 2>&1").c_str());
  ASSERT_TRUE(WIFEXITED(mm));
  EXPECT_EQ(WEXITSTATUS(mm), 1);
  const auto mm_bytes = slurp(mm_out);
  const std::string mm_text(mm_bytes.begin(), mm_bytes.end());
  EXPECT_NE(mm_text.find("undeliverable"), std::string::npos) << mm_text;

  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  // The referee reached its deadline: site 0 reported (with applied
  // deltas), site 1 never landed a frame — degraded, not crashed.
  EXPECT_EQ(WEXITSTATUS(status), 3) << serve_out;
  EXPECT_NE(serve_out.find("\"sites_reported\":1"), std::string::npos) << serve_out;
  EXPECT_NE(serve_out.find("\"degraded\":true"), std::string::npos) << serve_out;
  EXPECT_EQ(serve_out.find("\"deltas_applied\":0,"), std::string::npos) << serve_out;
  EXPECT_EQ(serve_out.find("error:"), std::string::npos) << serve_out;
}

// Sharded serve as a real process: 4 sites into 2 shard loops, output
// byte-identical to the in-process merge, per-shard breakdown in the JSON.
TEST_F(NetCliTest, ShardedServeMatchesInProcessMergeByteForByte) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  std::vector<std::string> sketches;
  const auto inproc = path("sh_inproc.sk"), net_sk = path("sh_net.sk");
  const auto port_file = path("sh_port.txt");
  for (int i = 0; i < 4; ++i) {
    const auto trace = path("sh" + std::to_string(i) + ".trace");
    sketches.push_back(path("sh" + std::to_string(i) + ".sk"));
    ASSERT_EQ(invoke({"generate", "--distinct", "8000", "--items", "20000",
                      "--seed", std::to_string(11 + i), "--out", trace}).first, 0);
    ASSERT_EQ(invoke({"sketch", "--in", trace, "--seed", "42",
                      "--out", sketches.back()}).first, 0);
  }
  ASSERT_EQ(invoke({"merge", "--out", inproc, sketches[0], sketches[1], sketches[2],
                    sketches[3]}).first, 0);

  const std::string serve_cmd = g_ustream_bin +
                                " serve --port 0 --sites 4 --shards 2 --json" +
                                " --timeout-ms 30000 --out " + net_sk +
                                " --port-file " + port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  ASSERT_NE(port, 0) << "serve never wrote its port file";
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                           " --site " + std::to_string(i) + " " + sketches[i] +
                           " > /dev/null 2>&1").c_str()), 0);
  }
  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << serve_out;
  EXPECT_NE(serve_out.find("\"sites_reported\":4"), std::string::npos) << serve_out;
  // Two per-shard entries in the breakdown (whatever the routing was).
  EXPECT_NE(serve_out.find("\"shards\":[{"), std::string::npos) << serve_out;

  const auto net_bytes = slurp(net_sk);
  ASSERT_FALSE(net_bytes.empty());
  EXPECT_EQ(net_bytes, slurp(inproc));
}

// The query engine end to end as real processes: a serve referee takes
// grouped pushes, answers `ustream query --from` MID-collection (site 0
// in, site 1 outstanding) through its admin endpoint, and reports the
// per-group estimates once the round completes. The live answer and the
// file-mode answer for the same expression must be IDENTICAL strings —
// both paths resolve the same sketch bytes through the same evaluator.
TEST_F(NetCliTest, GroupedServePushAndLiveQueryEndToEnd) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto t0 = path("q0.trace"), t1 = path("q1.trace");
  const auto s0 = path("q0.sk"), s1 = path("q1.sk");
  const auto port_file = path("qport.txt"), admin_port_file = path("qadmin.txt");
  for (const auto& [trace, seed] : {std::pair{t0, "31"}, std::pair{t1, "32"}}) {
    ASSERT_EQ(invoke({"generate", "--distinct", "8000", "--items", "20000",
                      "--seed", seed, "--out", trace}).first, 0);
  }
  // The group tag lands in the sketch file's frame header, so file-mode
  // `group:G` operands resolve without any referee.
  for (const auto& [trace, sketch, group] :
       {std::tuple{t0, s0, "1"}, std::tuple{t1, s1, "2"}}) {
    ASSERT_EQ(invoke({"sketch", "--in", trace, "--seed", "42", "--group", group,
                      "--out", sketch}).first, 0);
  }

  const std::string serve_cmd = g_ustream_bin + " serve --port 0 --sites 2 --json" +
                                " --timeout-ms 30000 --port-file " + port_file +
                                " --admin-port-file " + admin_port_file + " 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  const std::uint16_t admin = wait_for_port(admin_port_file);
  ASSERT_NE(port, 0) << "serve never wrote its port file";
  ASSERT_NE(admin, 0) << "serve never wrote its admin port file";

  ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                         " --site 0 --group 1 " + s0 + " > /dev/null 2>&1").c_str()), 0);

  // Mid-collection: site 0's sketch is queryable by site id and group id,
  // and the answers match the offline evaluation of the same file exactly.
  const std::string admin_target = "127.0.0.1:" + std::to_string(admin);
  auto [lc, live_site] = invoke({"query", "site:0", "--from", admin_target});
  ASSERT_EQ(lc, 0) << live_site;
  auto [fc, file_site] = invoke({"query", "site:0", s0});
  ASSERT_EQ(fc, 0) << file_site;
  EXPECT_EQ(live_site, file_site);
  auto [ljc, live_group] = invoke({"query", "group:1", "--from", admin_target, "--json"});
  ASSERT_EQ(ljc, 0) << live_group;
  auto [fjc, file_group] = invoke({"query", "group:1", "--json", s0});
  ASSERT_EQ(fjc, 0) << file_group;
  EXPECT_EQ(live_group, file_group);
  // An operand the referee has not seen yet is a clean one-line error and
  // a distinct exit code — and the referee survives to finish the round.
  auto [ec, eout] = invoke({"query", "site:1", "--from", admin_target});
  EXPECT_EQ(ec, 1) << eout;
  EXPECT_EQ(eout.rfind("error:", 0), 0u) << eout;

  ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                         " --site 1 --group 2 " + s1 + " > /dev/null 2>&1").c_str()), 0);

  std::string serve_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), serve)) serve_out += buf;
  const int status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(status)) << serve_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << serve_out;
  EXPECT_NE(serve_out.find("\"sites_reported\":2"), std::string::npos) << serve_out;
  // The per-group report: one entry per tag, one site each, sorted by id.
  EXPECT_NE(serve_out.find("\"groups\":[{\"group\":1,\"sites\":1,"), std::string::npos)
      << serve_out;
  EXPECT_NE(serve_out.find("{\"group\":2,\"sites\":1,"), std::string::npos) << serve_out;
}

// Relay fan-in as real processes: two sites push to a sharded relay
// referee, which merges locally and pushes ONE frame upstream. The
// upstream referee's output must be byte-identical to a direct in-process
// merge of the two site sketches — the 2-level tree changes the wire
// topology, never the bytes.
TEST_F(NetCliTest, RelayTreeIsByteIdenticalToFlatMerge) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto t0 = path("r0.trace"), t1 = path("r1.trace");
  const auto s0 = path("r0.sk"), s1 = path("r1.sk");
  const auto inproc = path("r_inproc.sk"), up_sk = path("r_up.sk");
  const auto up_port_file = path("r_upport.txt"), relay_port_file = path("r_rport.txt");
  for (const auto& [trace, seed] : {std::pair{t0, "21"}, std::pair{t1, "22"}}) {
    ASSERT_EQ(invoke({"generate", "--distinct", "8000", "--items", "20000",
                      "--seed", seed, "--out", trace}).first, 0);
  }
  for (const auto& [trace, sketch] : {std::pair{t0, s0}, std::pair{t1, s1}}) {
    ASSERT_EQ(invoke({"sketch", "--in", trace, "--seed", "42", "--out", sketch}).first, 0);
  }
  ASSERT_EQ(invoke({"merge", "--out", inproc, s0, s1}).first, 0);

  // Upstream referee: sees the whole relay subtree as its single "site 0".
  const std::string up_cmd = g_ustream_bin + " serve --port 0 --sites 1 --json" +
                             " --timeout-ms 30000 --out " + up_sk +
                             " --port-file " + up_port_file + " 2>&1";
  std::FILE* up = popen(up_cmd.c_str(), "r");
  ASSERT_NE(up, nullptr);
  const std::uint16_t up_port = wait_for_port(up_port_file);
  ASSERT_NE(up_port, 0) << "upstream serve never wrote its port file";

  // Relay referee: collects the two real sites on two shards, then pushes
  // the merged sketch upstream.
  const std::string relay_cmd = g_ustream_bin +
                                " serve --port 0 --sites 2 --shards 2 --json" +
                                " --timeout-ms 30000" +
                                " --relay --upstream 127.0.0.1:" + std::to_string(up_port) +
                                " --relay-site 0 --relay-epoch 1" +
                                " --port-file " + relay_port_file + " 2>&1";
  std::FILE* relay = popen(relay_cmd.c_str(), "r");
  ASSERT_NE(relay, nullptr);
  const std::uint16_t relay_port = wait_for_port(relay_port_file);
  ASSERT_NE(relay_port, 0) << "relay serve never wrote its port file";

  for (const auto& [site, sketch] : {std::pair{"0", s0}, std::pair{"1", s1}}) {
    ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" +
                           std::to_string(relay_port) + " --site " + site + " " + sketch +
                           " > /dev/null 2>&1").c_str()), 0);
  }

  std::string relay_out, up_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), relay)) relay_out += buf;
  int status = pclose(relay);
  ASSERT_TRUE(WIFEXITED(status)) << relay_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << relay_out;
  EXPECT_NE(relay_out.find("\"relay_ack\":\"accepted\""), std::string::npos) << relay_out;

  while (std::fgets(buf, sizeof(buf), up)) up_out += buf;
  status = pclose(up);
  ASSERT_TRUE(WIFEXITED(status)) << up_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << up_out;
  EXPECT_NE(up_out.find("\"sites_reported\":1"), std::string::npos) << up_out;

  const auto up_bytes = slurp(up_sk);
  ASSERT_FALSE(up_bytes.empty());
  EXPECT_EQ(up_bytes, slurp(inproc));
}

// `ustream stats --watch` against a live referee: bounded by --count, one
// snapshot per poll, and the admin request counter visibly advances
// between snapshots.
TEST_F(NetCliTest, StatsWatchPollsTheAdminEndpoint) {
  if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";

  const auto trace = path("w.trace"), sketch = path("w.sk");
  ASSERT_EQ(invoke({"generate", "--distinct", "2000", "--items", "5000",
                    "--seed", "31", "--out", trace}).first, 0);
  ASSERT_EQ(invoke({"sketch", "--in", trace, "--seed", "42", "--out", sketch}).first, 0);

  const auto port_file = path("w_port.txt"), admin_port_file = path("w_admin.txt");
  const std::string serve_cmd = g_ustream_bin + " serve --port 0 --sites 1" +
                                " --timeout-ms 20000 --port-file " + port_file +
                                " --admin-port-file " + admin_port_file +
                                " > /dev/null 2>&1";
  std::FILE* serve = popen(serve_cmd.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  const std::uint16_t port = wait_for_port(port_file);
  const std::uint16_t admin = wait_for_port(admin_port_file);
  ASSERT_NE(port, 0) << "serve never wrote its port file";
  ASSERT_NE(admin, 0) << "serve never wrote its admin port file";

  // The watch loop runs in THIS process via cli::run — snapshots go to
  // stdout, so capture through a pipe-backed popen of ourselves is not
  // needed: --count 3 --json gives three one-line snapshots.
  std::string watch_cmd = g_ustream_bin + " stats --from 127.0.0.1:" +
                          std::to_string(admin) + " --json --watch 0.2 --count 3 2>&1";
  std::FILE* watch = popen(watch_cmd.c_str(), "r");
  ASSERT_NE(watch, nullptr);
  std::string watch_out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), watch)) watch_out += buf;
  const int status = pclose(watch);
  ASSERT_TRUE(WIFEXITED(status)) << watch_out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << watch_out;

  // Three snapshots (one JSON line each, blank-line separated when piped),
  // each showing one more admin request than the last.
  std::vector<std::uint64_t> requests;
  std::istringstream lines(watch_out);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    const auto n = json_counter(line, "ustream_referee_admin_requests_total");
    if (n != ~std::uint64_t{0}) requests.push_back(n);
  }
  ASSERT_EQ(requests.size(), 3u) << watch_out;
  EXPECT_EQ(requests[1], requests[0] + 1);
  EXPECT_EQ(requests[2], requests[1] + 1);

  // Complete the round so serve exits promptly instead of waiting out its
  // timeout.
  ASSERT_EQ(std::system((g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                         " --site 0 " + sketch + " > /dev/null 2>&1").c_str()), 0);
  const int serve_status = pclose(serve);
  ASSERT_TRUE(WIFEXITED(serve_status));
  EXPECT_EQ(WEXITSTATUS(serve_status), 0);
}

TEST(NetDeltaProtocol, AckSequenceDrivesResyncAndChainRepair) {
  // Continuous server (latest-wins + kF0Delta): full frames re-base, a
  // delta must extend the accepted chain exactly; a gap earns 'R' (which
  // send_with_ack surfaces WITHOUT retrying — retransmitting a rejected
  // delta is useless), a replayed epoch 'D', an older one 'S', and a delta
  // that deserializes but cannot apply demotes to 'R' as well. One
  // connection keeps the whole chain on one shard's ledger.
  RefereeServerConfig config;
  config.sites = 1;
  config.dedup = DedupMode::kLatestWins;
  config.delta_kind = PayloadKind::kF0Delta;
  config.continuous = true;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));

  std::optional<F0Estimator> mirror;
  RefereeServer::Result result;
  std::thread referee([&server, &result, &mirror] {
    result = server.run([&mirror](std::size_t, std::uint32_t, std::uint16_t, PayloadKind kind,
                                  std::vector<std::uint8_t>&& payload) {
      try {
        if (kind == PayloadKind::kF0Delta) {
          F0Estimator next = *mirror;
          next.apply_delta(std::span<const std::uint8_t>(payload));
          mirror = std::move(next);
        } else {
          mirror = F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
        }
        return true;
      } catch (const SerializationError&) {
        return false;
      }
    });
  });

  F0Estimator est(EstimatorParams::for_guarantee(0.2, 0.1, 50));
  Xoshiro256 rng(51);
  auto grow = [&](int n) {
    for (int i = 0; i < n; ++i) est.add(rng.next());
  };
  TcpTransport transport(1, client_config(server.port()));
  auto send = [&transport](PayloadKind kind, std::uint32_t epoch,
                           const std::vector<std::uint8_t>& payload) {
    return transport.send_with_ack(0, frame_encode({kind, 0, epoch}, payload));
  };

  grow(2000);
  const F0Estimator base1 = est;
  EXPECT_EQ(send(PayloadKind::kF0Estimator, 1, base1.serialize()), PushAck::kAccepted);
  grow(2000);
  const F0Estimator base2 = est;
  const auto delta12 = base2.serialize_delta(base1);
  EXPECT_EQ(send(PayloadKind::kF0Delta, 2, delta12), PushAck::kAccepted);
  grow(2000);
  const auto delta23 = est.serialize_delta(base2);
  // Gap: epoch 4 does not extend accepted epoch 2.
  EXPECT_EQ(send(PayloadKind::kF0Delta, 4, delta23), PushAck::kResync);
  // The chain repairs at the correct next epoch...
  EXPECT_EQ(send(PayloadKind::kF0Delta, 3, delta23), PushAck::kAccepted);
  // ...a replayed epoch is a duplicate, an older one stale.
  EXPECT_EQ(send(PayloadKind::kF0Delta, 3, delta23), PushAck::kDuplicate);
  EXPECT_EQ(send(PayloadKind::kF0Delta, 2, delta12), PushAck::kStale);
  // Valid frame, inapplicable payload (copy-count mismatch against the
  // mirror): the sink refuses, the acceptance demotes to resync.
  F0Estimator other(EstimatorParams{.capacity = 16, .copies = 3, .seed = 77});
  other.add(1);
  const F0Estimator other_base = other;
  other.add(2);
  EXPECT_EQ(send(PayloadKind::kF0Delta, 4, other.serialize_delta(other_base)),
            PushAck::kResync);
  // The owed full frame re-bases the chain (latest-wins: any newer epoch).
  grow(1000);
  EXPECT_EQ(send(PayloadKind::kF0Estimator, 5, est.serialize()), PushAck::kAccepted);
  server.request_stop();
  referee.join();

  ASSERT_TRUE(mirror.has_value());
  EXPECT_EQ(mirror->serialize(), est.serialize());
  EXPECT_EQ(result.report.per_site[0].accepted_epoch, 5u);
  EXPECT_EQ(result.report.deltas_applied, 2u);  // 3 accepted - 1 demoted
  EXPECT_EQ(result.report.resyncs, 2u);         // the gap + the demotion
  EXPECT_EQ(result.report.duplicates_dropped, 1u);
  EXPECT_EQ(result.report.stale_dropped, 1u);
}

TEST(NetDeltaProtocol, CrossConnectionDeltaWithoutLocalChainForcesResync) {
  // A delta arriving on a FRESH connection may land on a shard whose local
  // ledger never saw the site's full frame: the shard must answer 'R'
  // (resync) rather than guess — the site then re-bases with a full frame,
  // which any shard can accept.
  RefereeServerConfig config;
  config.sites = 1;
  config.shards = 2;
  config.dedup = DedupMode::kLatestWins;
  config.delta_kind = PayloadKind::kF0Delta;
  config.continuous = true;
  config.timeout = std::chrono::milliseconds{30'000};
  RefereeServer server(std::move(config));

  std::optional<F0Estimator> mirror;
  RefereeServer::Result result;
  std::thread referee([&server, &result, &mirror] {
    result = server.run([&mirror](std::size_t, std::uint32_t, std::uint16_t, PayloadKind kind,
                                  std::vector<std::uint8_t>&& payload) {
      try {
        if (kind == PayloadKind::kF0Delta) {
          F0Estimator next = *mirror;
          next.apply_delta(std::span<const std::uint8_t>(payload));
          mirror = std::move(next);
        } else {
          mirror = F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
        }
        return true;
      } catch (const SerializationError&) {
        return false;
      }
    });
  });

  F0Estimator est(EstimatorParams::for_guarantee(0.2, 0.1, 52));
  Xoshiro256 rng(53);
  for (int i = 0; i < 2000; ++i) est.add(rng.next());
  F0Estimator base = est;
  {
    TcpTransport transport(1, client_config(server.port()));
    EXPECT_EQ(transport.send_with_ack(
                  0, frame_encode({PayloadKind::kF0Estimator, 0, 1}, base.serialize())),
              PushAck::kAccepted);
  }
  // Push fresh deltas over fresh connections: the kernel spreads the
  // connections across the SO_REUSEPORT acceptors, so some land on the
  // shard holding the chain (accepted — the chain advances) and, with
  // overwhelming probability within the attempt budget, at least one lands
  // on the other shard, whose local ledger never saw the site: that shard
  // must demand a resync rather than guess. After every verdict the site's
  // state stays recoverable via a full re-base.
  bool saw_resync = false;
  std::uint32_t epoch = 2;
  for (int attempt = 0; attempt < 64 && !saw_resync; ++attempt) {
    for (int i = 0; i < 200; ++i) est.add(rng.next());
    const auto delta = est.serialize_delta(base);
    TcpTransport transport(1, client_config(server.port()));
    const PushAck ack = transport.send_with_ack(
        0, frame_encode({PayloadKind::kF0Delta, 0, epoch}, delta));
    if (ack == PushAck::kResync) {
      saw_resync = true;
      // Re-base: the full frame is accepted wherever it lands.
      TcpTransport rebase(1, client_config(server.port()));
      EXPECT_EQ(rebase.send_with_ack(
                    0, frame_encode({PayloadKind::kF0Estimator, 0, epoch + 1},
                                    est.serialize())),
                PushAck::kAccepted);
    } else {
      ASSERT_EQ(ack, PushAck::kAccepted) << "attempt " << attempt;
      base = est;
      ++epoch;
    }
  }
  EXPECT_TRUE(saw_resync) << "64 fresh connections all landed on the chain's shard";
  server.request_stop();
  referee.join();

  ASSERT_TRUE(mirror.has_value());
  EXPECT_EQ(mirror->serialize(), est.serialize());
}

}  // namespace
}  // namespace ustream

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Remaining args after gtest filtering: [0] = self, [1] = ustream binary.
  if (argc > 1) g_ustream_bin = argv[1];
  if (const char* env = std::getenv("USTREAM_BIN"); g_ustream_bin.empty() && env != nullptr) {
    g_ustream_bin = env;
  }
  return RUN_ALL_TESTS();
}
