// DistinctSumEstimator (Theorem T3): sums over distinct labels, duplicate-
// insensitively.
#include "core/distinct_sum.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "stream/generators.h"

namespace ustream {
namespace {

TEST(DistinctSum, ExactWhileSmall) {
  DistinctSumEstimator est(0.1, 0.05);
  double want = 0.0;
  for (std::uint64_t x = 1; x <= 300; ++x) {
    est.add(x * 37, static_cast<double>(x));
    want += static_cast<double>(x);
  }
  EXPECT_DOUBLE_EQ(est.estimate_sum(), want);
  EXPECT_DOUBLE_EQ(est.estimate_distinct(), 300.0);
}

TEST(DistinctSum, LargeStreamAccuracy) {
  // 150k distinct labels with values in [1, 2]: bounded value ratio, the
  // regime the guarantee covers.
  DistinctSumEstimator est(0.1, 0.05, 71);
  Xoshiro256 rng(2);
  double truth = 0.0;
  for (int i = 0; i < 150'000; ++i) {
    const std::uint64_t label = rng.next();
    const double value = 1.0 + rng.uniform01();
    est.add(label, value);
    truth += value;
  }
  EXPECT_LT(relative_error(est.estimate_sum(), truth), 0.10);
}

TEST(DistinctSum, DuplicatesContributeOnce) {
  SyntheticStream stream({.distinct = 20'000, .total_items = 200'000, .zipf_alpha = 1.0,
                          .seed = 11, .value_lo = 5.0, .value_hi = 10.0});
  DistinctSumEstimator est(0.1, 0.05, 72);
  while (!stream.done()) {
    const Item item = stream.next();
    est.add(item.label, item.value);
  }
  EXPECT_LT(relative_error(est.estimate_sum(), stream.true_sum_distinct()), 0.10);
}

TEST(DistinctSum, NaiveSumWouldBeWrong) {
  // Guard the premise of the experiment: with 10x duplication the naive
  // per-item sum overshoots the distinct-sum truth by ~10x.
  SyntheticStream stream({.distinct = 5'000, .total_items = 50'000, .zipf_alpha = 0.0,
                          .seed = 13, .value_lo = 1.0, .value_hi = 1.0});
  double naive = 0.0;
  DistinctSumEstimator est(0.1, 0.05, 73);
  while (!stream.done()) {
    const Item item = stream.next();
    naive += item.value;
    est.add(item.label, item.value);
  }
  EXPECT_GT(naive / stream.true_sum_distinct(), 5.0);
  EXPECT_LT(relative_error(est.estimate_sum(), stream.true_sum_distinct()), 0.10);
}

TEST(DistinctSum, MeanEstimate) {
  DistinctSumEstimator est(0.1, 0.05, 74);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100'000; ++i) est.add(rng.next(), 4.0);
  EXPECT_NEAR(est.estimate_mean(), 4.0, 1e-9);
}

TEST(DistinctSum, MergeEqualsConcat) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 75);
  DistinctSumEstimator whole(params), a(params), b(params);
  Xoshiro256 rng(4);
  for (int i = 0; i < 60'000; ++i) {
    const std::uint64_t label = rng.next();
    const double value = rng.uniform(1.0, 2.0);
    whole.add(label, value);
    (i % 2 ? a : b).add(label, value);
  }
  a.merge(b);
  // Same sampled set; summation order may differ, so compare to FP noise.
  EXPECT_NEAR(a.estimate_sum(), whole.estimate_sum(),
              1e-9 * whole.estimate_sum());
  EXPECT_DOUBLE_EQ(a.estimate_distinct(), whole.estimate_distinct());
}

TEST(DistinctSum, SerializeRoundtrip) {
  DistinctSumEstimator est(0.2, 0.1, 76);
  Xoshiro256 rng(5);
  for (int i = 0; i < 30'000; ++i) est.add(rng.next(), rng.uniform(0.0, 10.0));
  auto restored = DistinctSumEstimator::deserialize(est.serialize());
  EXPECT_DOUBLE_EQ(restored.estimate_sum(), est.estimate_sum());
  EXPECT_DOUBLE_EQ(restored.estimate_distinct(), est.estimate_distinct());
}

TEST(DistinctSum, IntegerValueVariant) {
  BasicDistinctSumEstimator<PairwiseHash, std::uint64_t> est(0.1, 0.05, 77);
  for (std::uint64_t x = 0; x < 100; ++x) est.add(x, 3);
  EXPECT_DOUBLE_EQ(est.estimate_sum(), 300.0);
}

TEST(DistinctSum, EmptyEstimates) {
  DistinctSumEstimator est(0.2, 0.1);
  EXPECT_DOUBLE_EQ(est.estimate_sum(), 0.0);
  EXPECT_DOUBLE_EQ(est.estimate_distinct(), 0.0);
  EXPECT_DOUBLE_EQ(est.estimate_mean(), 0.0);
}

}  // namespace
}  // namespace ustream
