// The motivating application: per-link monitors, central union queries.
#include <gtest/gtest.h>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/stats.h"
#include "netmon/monitor.h"
#include "netmon/trace_gen.h"

namespace ustream {
namespace {

TEST(TraceGen, TruthMatchesRecount) {
  const auto w = make_network_workload({.links = 3, .flows_per_link = 5000, .seed = 1});
  for (NetLabel kind : {NetLabel::kDstIp, NetLabel::kSrcIp, NetLabel::kFlow,
                        NetLabel::kSrcDstPair}) {
    DenseSet u;
    for (const auto& trace : w.link_traces) {
      for (const Packet& p : trace) u.insert(extract_label(p, kind));
    }
    EXPECT_EQ(u.size(), w.truth.union_distinct[static_cast<std::size_t>(kind)])
        << to_string(kind);
  }
}

TEST(TraceGen, OverlapInflatesNaiveSum) {
  const auto disjoint = make_network_workload(
      {.links = 4, .flows_per_link = 5000, .link_overlap = 0.0, .seed = 2});
  const auto shared = make_network_workload(
      {.links = 4, .flows_per_link = 5000, .link_overlap = 0.8, .seed = 2});
  const auto q = static_cast<std::size_t>(NetLabel::kFlow);
  const double ratio_disjoint = static_cast<double>(disjoint.truth.naive_sum[q]) /
                                static_cast<double>(disjoint.truth.union_distinct[q]);
  const double ratio_shared = static_cast<double>(shared.truth.naive_sum[q]) /
                              static_cast<double>(shared.truth.union_distinct[q]);
  EXPECT_NEAR(ratio_disjoint, 1.0, 0.01);
  EXPECT_GT(ratio_shared, 1.5);
}

TEST(TraceGen, ScanEpisodeInflatesDistinctDsts) {
  const auto quiet = make_network_workload(
      {.links = 1, .flows_per_link = 3000, .scan_fraction = 0.0, .seed = 3});
  const auto scanned = make_network_workload(
      {.links = 1, .flows_per_link = 3000, .scan_fraction = 0.3, .seed = 3});
  const auto dst = static_cast<std::size_t>(NetLabel::kDstIp);
  EXPECT_GT(scanned.truth.union_distinct[dst], 2 * quiet.truth.union_distinct[dst]);
  // Scans add packets, but only modestly to volume relative to the distinct
  // blowup (they are one-packet flows).
  EXPECT_LT(scanned.total_packets, 2 * quiet.total_packets);
}

TEST(TraceGen, FlowSizesAreSkewed) {
  const auto w = make_network_workload(
      {.links = 1, .flows_per_link = 5000, .packets_per_flow = 8.0, .flow_zipf_alpha = 1.2,
       .seed = 4});
  // Count per-flow packet totals; the top flow must far exceed the mean.
  DenseMap<std::uint64_t> per_flow;
  for (const Packet& p : w.link_traces[0]) {
    auto [e, inserted] = per_flow.try_emplace(extract_label(p, NetLabel::kFlow), 0);
    ++e->value;
  }
  std::uint64_t max_packets = 0, total = 0;
  for (const auto& e : per_flow) {
    max_packets = std::max(max_packets, e.value);
    total += e.value;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(per_flow.size());
  EXPECT_GT(static_cast<double>(max_packets), 10.0 * mean);
}

TEST(TraceGen, RejectsBadConfig) {
  EXPECT_THROW(make_network_workload({.links = 0}), InvalidArgument);
  EXPECT_THROW(make_network_workload({.links = 1, .flows_per_link = 0}), InvalidArgument);
  EXPECT_THROW(make_network_workload({.links = 1, .link_overlap = 1.5}), InvalidArgument);
  EXPECT_THROW(make_network_workload({.links = 1, .scan_fraction = 1.0}), InvalidArgument);
}

TEST(Monitor, EndToEndUnionQueries) {
  const auto w = make_network_workload(
      {.links = 4, .flows_per_link = 10'000, .link_overlap = 0.5, .seed = 5});
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 6);
  std::vector<LinkMonitor> monitors(w.link_traces.size(), LinkMonitor(params));
  for (std::size_t link = 0; link < w.link_traces.size(); ++link) {
    for (const Packet& p : w.link_traces[link]) monitors[link].observe(p);
  }
  MonitoringCenter center(monitors.size(), params);
  center.collect(monitors);
  for (NetLabel kind : {NetLabel::kDstIp, NetLabel::kSrcIp, NetLabel::kFlow,
                        NetLabel::kSrcDstPair}) {
    const auto q = static_cast<std::size_t>(kind);
    const auto ans = center.query(kind);
    EXPECT_LT(relative_error(ans.union_estimate,
                             static_cast<double>(w.truth.union_distinct[q])),
              0.1)
        << to_string(kind);
    // The naive sum should track the (overcounted) naive truth, not the union.
    EXPECT_LT(relative_error(ans.naive_sum, static_cast<double>(w.truth.naive_sum[q])), 0.1)
        << to_string(kind);
  }
}

TEST(Monitor, PerLinkEstimatesAreLocal) {
  const auto w = make_network_workload({.links = 2, .flows_per_link = 8000, .seed = 7});
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 8);
  LinkMonitor mon(params);
  for (const Packet& p : w.link_traces[0]) mon.observe(p);
  EXPECT_EQ(mon.packets_observed(), w.link_traces[0].size());
  const auto q = static_cast<std::size_t>(NetLabel::kFlow);
  EXPECT_LT(relative_error(mon.estimate(NetLabel::kFlow),
                           static_cast<double>(w.truth.per_link_distinct[0][q])),
            0.1);
}

TEST(Monitor, ReportBytesAreAccounted) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 9);
  const auto w = make_network_workload({.links = 2, .flows_per_link = 2000, .seed = 10});
  std::vector<LinkMonitor> monitors(2, LinkMonitor(params));
  for (std::size_t link = 0; link < 2; ++link) {
    for (const Packet& p : w.link_traces[link]) monitors[link].observe(p);
  }
  MonitoringCenter center(2, params);
  center.collect(monitors);
  const auto stats = center.channel_stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_GT(stats.total_bytes, 0u);
  EXPECT_EQ(stats.bytes_per_site[0], monitors[0].report().size());
}

TEST(Monitor, CorruptReportRejected) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 11);
  MonitoringCenter center(1, params);
  std::vector<std::uint8_t> junk = {0x42, 1, 2, 3};
  EXPECT_THROW(center.receive(0, junk), SerializationError);
}

TEST(Monitor, RetransmittedReportIsMergedOnce) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 12);
  const auto w = make_network_workload({.links = 2, .flows_per_link = 4000, .seed = 13});
  std::vector<LinkMonitor> monitors(2, LinkMonitor(params));
  for (std::size_t link = 0; link < 2; ++link) {
    for (const Packet& p : w.link_traces[link]) monitors[link].observe(p);
  }
  MonitoringCenter center(2, params);
  center.collect(monitors);
  const double before = center.query(NetLabel::kFlow).naive_sum;
  // A network retransmit replays link 1's framed report verbatim: the
  // center must drop it (same link+epoch) rather than double-merge —
  // visible in the naive sum, which WOULD double if merged twice.
  center.receive(1, monitors[1].report(1, 0));
  EXPECT_DOUBLE_EQ(center.query(NetLabel::kFlow).naive_sum, before);
  EXPECT_EQ(center.reports_received(), 2u);
  EXPECT_EQ(center.duplicates_dropped(), 1u);
  // A NEW epoch from the same link is not a duplicate.
  center.receive(1, monitors[1].report(1, 1));
  EXPECT_EQ(center.reports_received(), 3u);
  EXPECT_EQ(center.duplicates_dropped(), 1u);
}

TEST(Monitor, MistaggedReportRejected) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 14);
  const auto w = make_network_workload({.links = 2, .flows_per_link = 1000, .seed = 15});
  LinkMonitor mon(params);
  for (const Packet& p : w.link_traces[0]) mon.observe(p);
  MonitoringCenter center(2, params);
  // Frame says link 1, receive says link 0: a routing bug, not corruption —
  // but it must still be refused before touching the merged state.
  EXPECT_THROW(center.receive(0, mon.report(1, 0)), SerializationError);
  EXPECT_EQ(center.reports_received(), 0u);
}

}  // namespace
}  // namespace ustream
