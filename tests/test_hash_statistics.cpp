// Statistical quality tests for the hash substrate: uniformity, empirical
// pairwise independence, and the geometric level law the sampler's analysis
// assumes. Thresholds are generous (5+ sigma) so the suite is deterministic
// in practice while still catching real regressions (e.g. a broken fold in
// the field reduction shifts these distributions dramatically).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "hash/hash_family.h"
#include "hash/level.h"
#include "hash/pairwise.h"

namespace ustream {
namespace {

// Chi-square-style uniformity check over `buckets` buckets.
template <typename HashFn>
double uniformity_chi2(HashFn&& h, int bits, std::size_t buckets, std::size_t samples) {
  std::vector<std::size_t> counts(buckets, 0);
  Xoshiro256 rng(4242);
  for (std::size_t i = 0; i < samples; ++i) {
    // Use the TOP bits for bucketing: valid for every family including
    // multiply-shift (whose low bits are intentionally weak).
    const std::uint64_t v = h(rng.next());
    ++counts[static_cast<std::size_t>((static_cast<unsigned __int128>(v) * buckets) >> bits)];
  }
  const double expected = static_cast<double>(samples) / static_cast<double>(buckets);
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// For k buckets, chi2 ~ ChiSq(k-1): mean k-1, stddev sqrt(2(k-1)).
double chi2_limit(std::size_t buckets, double sigmas) {
  const double dof = static_cast<double>(buckets - 1);
  return dof + sigmas * std::sqrt(2.0 * dof);
}

TEST(HashStatistics, PairwiseUniformTopBits) {
  PairwiseHash h(101);
  EXPECT_LT(uniformity_chi2(h, PairwiseHash::kBits, 256, 200'000), chi2_limit(256, 6.0));
}

TEST(HashStatistics, TabulationUniformTopBits) {
  TabulationHash h(103);
  EXPECT_LT(uniformity_chi2(h, TabulationHash::kBits, 256, 200'000), chi2_limit(256, 6.0));
}

TEST(HashStatistics, MurmurUniformTopBits) {
  MurmurMixHash h(107);
  EXPECT_LT(uniformity_chi2(h, 64, 256, 200'000), chi2_limit(256, 6.0));
}

TEST(HashStatistics, PairwiseEmpiricalPairwiseIndependence) {
  // For random distinct x != y, the events [bit_j(h(x))] and [bit_j(h(y))]
  // must be uncorrelated. Estimate Pr[both set] - Pr[set]^2 for a few bits.
  PairwiseHash h(109);
  Xoshiro256 rng(11);
  constexpr int kPairs = 100'000;
  for (int bit : {0, 1, 5, 30, 60}) {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    int x_set = 0, y_set = 0, both = 0;
    for (int i = 0; i < kPairs; ++i) {
      const std::uint64_t x = rng.next(), y = rng.next();
      if (x == y) continue;
      const bool bx = h(x) & mask, by = h(y) & mask;
      x_set += bx;
      y_set += by;
      both += bx && by;
    }
    const double px = static_cast<double>(x_set) / kPairs;
    const double py = static_cast<double>(y_set) / kPairs;
    const double pboth = static_cast<double>(both) / kPairs;
    // Covariance must vanish; tolerance ~6/sqrt(kPairs).
    EXPECT_NEAR(pboth, px * py, 0.02) << "bit " << bit;
    EXPECT_NEAR(px, 0.5, 0.02) << "bit " << bit;
  }
}

TEST(HashStatistics, PairwiseLevelDistributionIsGeometric) {
  // Pr[level >= l] = 2^-l: check observed frequencies for l = 0..12.
  PairwiseHash h(113);
  Xoshiro256 rng(13);
  constexpr std::size_t kSamples = 400'000;
  std::array<std::size_t, 62> at_least{};
  for (std::size_t i = 0; i < kSamples; ++i) {
    const int lvl = hash_level(h(rng.next()), PairwiseHash::kBits);
    for (int l = 0; l <= lvl && l < 62; ++l) ++at_least[static_cast<std::size_t>(l)];
  }
  for (int l = 1; l <= 12; ++l) {
    const double expected = std::ldexp(static_cast<double>(kSamples), -l);
    const double sigma = std::sqrt(expected);  // binomial stddev upper bound
    EXPECT_NEAR(static_cast<double>(at_least[static_cast<std::size_t>(l)]), expected,
                6.0 * sigma + 1.0)
        << "level " << l;
  }
}

TEST(HashStatistics, DistinctSeedsDecorrelate) {
  // Levels under independent seeds must be independent: the probability
  // that two seeds give the same label level >= 1 simultaneously is ~1/4.
  PairwiseHash h1(SeedSequence(7).child(0));
  PairwiseHash h2(SeedSequence(7).child(1));
  Xoshiro256 rng(17);
  constexpr int kSamples = 100'000;
  int both = 0;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t x = rng.next();
    const bool a = hash_level(h1(x), 61) >= 1;
    const bool b = hash_level(h2(x), 61) >= 1;
    both += a && b;
  }
  EXPECT_NEAR(static_cast<double>(both) / kSamples, 0.25, 0.01);
}

TEST(HashStatistics, MultiplyShiftLowBitsAreBiased) {
  // Negative control: multiply-shift's trailing-zero levels are NOT
  // geometric for structured inputs — the documented reason the sampler
  // defaults to the pairwise field hash. With sequential inputs and odd
  // multiplier a, a*x+b has period-2 parity, so level>=1 happens for
  // exactly half the inputs but level>=2 frequencies are distorted.
  MultiplyShiftHash h(211);
  std::size_t level_ge2 = 0;
  constexpr std::size_t kSamples = 1 << 16;
  for (std::uint64_t x = 0; x < kSamples; ++x) {
    if (hash_level(h(4 * x), 64) >= 2) ++level_ge2;
  }
  const double frac = static_cast<double>(level_ge2) / kSamples;
  // Ideal hashing would give 0.25 +- tiny; multiply-shift on stride-4
  // inputs collapses to 0 or 1 depending on the seed's low bits.
  EXPECT_TRUE(frac < 0.1 || frac > 0.4) << "unexpectedly well-behaved: " << frac;
}

}  // namespace
}  // namespace ustream
