// The durability subsystem (DESIGN.md §11): WAL segment round trips,
// rotation chains, header/CRC corruption verdicts, the torn-tail fuzz
// matrix (same seeded corruption style as test_fuzz.cpp), snapshot
// compaction + fallback, replay dedup semantics, and crash-resume through
// a real RefereeServer — stop a WAL-backed referee mid-collection, recover
// into a second server, and assert the collected state matches an
// uninterrupted run byte for byte.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "common/frame.h"
#include "common/random.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "freq/freq_sketch.h"
#include "net/referee_server.h"
#include "net/tcp_transport.h"

namespace ustream {
namespace {

using durability::DurableLog;
using durability::FsyncPolicy;
using durability::RecoveryOptions;
using durability::RecoveryResult;
using durability::SegmentReader;
using durability::WalConfig;
using durability::WalWriter;

// A scratch directory removed on scope exit (recursively, one level deep —
// WAL dirs hold only regular files).
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ustream_wal_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    for (const auto& seg : durability::scan_wal_segments(path)) {
      ::unlink(seg.path.c_str());
    }
    for (const auto& snap : durability::scan_snapshots(path)) {
      ::unlink(snap.path.c_str());
    }
    ::rmdir(path.c_str());
  }
};

std::vector<std::uint8_t> make_frame(std::uint32_t site, std::uint32_t epoch,
                                     std::uint64_t seed,
                                     std::size_t payload_bytes = 64) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> payload(payload_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
  return frame_encode({PayloadKind::kOpaque, site, epoch}, payload);
}

WalConfig test_config(const std::string& dir, std::uint32_t shard = 0) {
  WalConfig config;
  config.dir = dir;
  config.run_id = 0xfeedULL;
  config.shard = shard;
  config.fsync = FsyncPolicy::kNever;  // tests survive process exit, not power loss
  return config;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

void write_all(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(WalBasics, FsyncPolicyNamesRoundTrip) {
  for (auto policy : {FsyncPolicy::kAlways, FsyncPolicy::kInterval, FsyncPolicy::kNever}) {
    EXPECT_EQ(durability::parse_fsync_policy(durability::fsync_policy_name(policy)), policy);
  }
  EXPECT_THROW(durability::parse_fsync_policy("sometimes"), InvalidArgument);
}

TEST(WalBasics, SegmentNamesSortInChainOrder) {
  EXPECT_LT(durability::wal_segment_name(0, 9), durability::wal_segment_name(0, 10));
  EXPECT_LT(durability::wal_segment_name(1, 99), durability::wal_segment_name(2, 0));
}

TEST(Wal, AppendCommitReadRoundTrip) {
  TempDir dir;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t site = 0; site < 5; ++site) {
    frames.push_back(make_frame(site, 7, 100 + site, 64 + site * 33));
  }
  {
    WalWriter writer(test_config(dir.path), 0, 0);
    for (const auto& frame : frames) {
      writer.append(frame);
      writer.commit();
    }
    writer.sync();
    EXPECT_EQ(writer.records_appended(), 5u);
    EXPECT_GE(writer.fsyncs(), 1u);  // sync() forces one even under kNever
  }
  const auto segments = durability::scan_wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].header_valid);
  EXPECT_EQ(segments[0].run_id, 0xfeedULL);
  EXPECT_EQ(segments[0].shard, 0u);
  EXPECT_EQ(segments[0].seq, 0u);

  SegmentReader reader(segments[0].path);
  for (const auto& frame : frames) {
    auto record = reader.next();
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(std::vector<std::uint8_t>(record->begin(), record->end()), frame);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.torn_tail());
  EXPECT_EQ(reader.records_read(), 5u);
}

TEST(Wal, RotationChainsSegmentsAndReplaysAcrossThem) {
  TempDir dir;
  WalConfig config = test_config(dir.path);
  config.segment_bytes = 256;  // force rotation every couple of records
  std::size_t total = 0;
  {
    WalWriter writer(config, 0, 0);
    for (std::uint32_t i = 0; i < 12; ++i) {
      writer.append(make_frame(i, 1, 900 + i, 100));
      writer.commit();
      ++total;
    }
    EXPECT_GE(writer.rotations(), 3u);
  }
  const auto segments = durability::scan_wal_segments(dir.path);
  EXPECT_GE(segments.size(), 4u);
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_TRUE(segments[i].header_valid);
    EXPECT_EQ(segments[i].seq, i);  // contiguous chain
    SegmentReader reader(segments[i].path);
    while (reader.next()) ++replayed;
    EXPECT_FALSE(reader.torn_tail());
  }
  EXPECT_EQ(replayed, total);
}

TEST(Wal, HeaderCorruptionIsDetectedNotTrusted) {
  TempDir dir;
  {
    WalWriter writer(test_config(dir.path), 0, 0);
    writer.append(make_frame(0, 1, 5));
    writer.sync();
  }
  auto segments = durability::scan_wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  auto bytes = read_all(segments[0].path);
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 64; ++trial) {
    auto copy = bytes;
    copy[rng.below(durability::kWalHeaderBytes)] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    write_all(segments[0].path, copy);
    const auto rescanned = durability::scan_wal_segments(dir.path);
    ASSERT_EQ(rescanned.size(), 1u);
    if (copy == bytes) continue;  // xor happened to be a no-op — impossible, but
    EXPECT_FALSE(rescanned[0].header_valid) << "trial " << trial;
    EXPECT_FALSE(rescanned[0].error.empty());
    EXPECT_THROW(SegmentReader r(rescanned[0].path), SerializationError);
  }
  write_all(segments[0].path, bytes);  // restore for TempDir cleanup scan
}

// Satellite: torn-write tolerance. A kill -9 (or power cut under
// fsync=never) can strand a partial record at the WAL tail: a short length
// prefix, a short body, or trailing garbage. Replay must keep the intact
// prefix, stop cleanly at the tear, and never crash — the same corruption
// matrix contract test_fuzz.cpp enforces on wire bytes.
TEST(Wal, TornTailFuzzMatrix) {
  TempDir dir;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t site = 0; site < 6; ++site) {
    frames.push_back(make_frame(site, 3, 40 + site, 80 + site * 17));
  }
  {
    WalWriter writer(test_config(dir.path), 0, 0);
    for (const auto& frame : frames) writer.append(frame);
    writer.sync();
  }
  const auto segments = durability::scan_wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  const auto intact = read_all(segments[0].path);

  Xoshiro256 rng(4242);
  for (int trial = 0; trial < 400; ++trial) {
    auto copy = intact;
    const int mode = static_cast<int>(rng.below(3));
    if (mode == 0) {
      // Truncate anywhere past the header: mid-length, mid-body, between
      // records — every prefix a crashed write() could have left.
      copy.resize(durability::kWalHeaderBytes +
                  rng.below(copy.size() - durability::kWalHeaderBytes + 1));
    } else if (mode == 1) {
      // Trailing garbage: a partially-written length prefix that announces
      // nonsense, or bytes from a recycled buffer.
      const auto extra = 1 + rng.below(12);
      for (std::uint64_t i = 0; i < extra; ++i) {
        copy.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    } else {
      // Burst-corrupt the tail record's bytes in place (torn overwrite):
      // structure stays intact, the frame CRC must catch it at replay.
      const std::size_t start =
          durability::kWalHeaderBytes +
          rng.below(copy.size() - durability::kWalHeaderBytes);
      const std::size_t len = std::min<std::size_t>(1 + rng.below(16), copy.size() - start);
      for (std::size_t i = 0; i < len; ++i) {
        copy[start + i] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
    }
    write_all(segments[0].path, copy);

    // Structural replay never crashes, and every intact-prefix record is
    // byte-equal to what was logged.
    try {
      SegmentReader reader(segments[0].path);
      std::size_t i = 0;
      while (auto record = reader.next()) {
        if (mode != 2 && i < frames.size()) {
          EXPECT_EQ(std::vector<std::uint8_t>(record->begin(), record->end()), frames[i])
              << "trial " << trial;
        }
        ++i;
      }
      EXPECT_LE(reader.records_read(), frames.size() + 1);
    } catch (const SerializationError&) {
      // Header damaged by a tail-burst landing in the first 32 bytes of a
      // short file — rejecting the whole segment is the right verdict.
    }

    // Full recovery over the damaged dir: also must not crash, and every
    // frame it accepts must be one of the logged (valid-CRC) frames.
    RecoveryOptions options;
    options.dir = dir.path;
    options.sites = 6;
    options.expected_kind = PayloadKind::kOpaque;
    options.dedup = DedupMode::kExactlyOnce;
    const RecoveryResult result = durability::recover_referee_state(options);
    for (std::size_t site = 0; site < result.sites.size(); ++site) {
      if (!result.sites[site].has_value()) continue;
      EXPECT_EQ(result.sites[site]->frame, frames[site]) << "trial " << trial;
    }
  }
  write_all(segments[0].path, intact);
  // And the intact file replays completely, with no torn tail.
  SegmentReader reader(segments[0].path);
  std::size_t count = 0;
  while (reader.next()) ++count;
  EXPECT_EQ(count, frames.size());
  EXPECT_FALSE(reader.torn_tail());
}

TEST(Wal, TruncatedTailKeepsIntactPrefix) {
  TempDir dir;
  std::vector<std::vector<std::uint8_t>> frames = {
      make_frame(0, 1, 1, 50), make_frame(1, 1, 2, 50), make_frame(2, 1, 3, 50)};
  {
    WalWriter writer(test_config(dir.path), 0, 0);
    for (const auto& frame : frames) writer.append(frame);
    writer.sync();
  }
  const auto segments = durability::scan_wal_segments(dir.path);
  auto bytes = read_all(segments[0].path);
  bytes.resize(bytes.size() - 20);  // shear the last record mid-body
  write_all(segments[0].path, bytes);

  SegmentReader reader(segments[0].path);
  ASSERT_TRUE(reader.next().has_value());
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_EQ(reader.records_read(), 2u);
  EXPECT_GT(reader.stranded_bytes(), 0u);
}

TEST(Snapshot, WriteScanLoadRoundTrip) {
  TempDir dir;
  std::vector<std::vector<std::uint8_t>> frames = {
      make_frame(0, 2, 11), make_frame(1, 2, 12), make_frame(2, 2, 13)};
  durability::write_snapshot(dir.path, 0xabcULL, 1, frames);
  const auto snapshots = durability::scan_snapshots(dir.path);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_TRUE(snapshots[0].valid);
  EXPECT_EQ(snapshots[0].seq, 1u);
  EXPECT_EQ(snapshots[0].run_id, 0xabcULL);
  EXPECT_EQ(durability::load_snapshot(snapshots[0].path), frames);
}

TEST(Snapshot, CorruptNewestFallsBackToPrevious) {
  TempDir dir;
  const auto old_frames = std::vector<std::vector<std::uint8_t>>{make_frame(0, 1, 21)};
  const auto new_frames = std::vector<std::vector<std::uint8_t>>{
      make_frame(0, 2, 22), make_frame(1, 1, 23)};
  durability::write_snapshot(dir.path, 9, 1, old_frames);
  durability::write_snapshot(dir.path, 9, 2, new_frames);
  // Damage snapshot 2's tail: scan must mark it invalid, recovery must use 1.
  auto snapshots = durability::scan_snapshots(dir.path);
  ASSERT_EQ(snapshots.size(), 2u);
  auto bytes = read_all(snapshots[1].path);
  bytes.resize(bytes.size() - 7);
  write_all(snapshots[1].path, bytes);

  snapshots = durability::scan_snapshots(dir.path);
  EXPECT_TRUE(snapshots[0].valid);
  EXPECT_FALSE(snapshots[1].valid);

  RecoveryOptions options;
  options.dir = dir.path;
  options.sites = 2;
  options.expected_kind = PayloadKind::kOpaque;
  options.dedup = DedupMode::kLatestWins;
  const RecoveryResult result = durability::recover_referee_state(options);
  EXPECT_TRUE(result.used_snapshot);
  EXPECT_EQ(result.snapshot_seq, 1u);
  ASSERT_TRUE(result.sites[0].has_value());
  EXPECT_EQ(result.sites[0]->frame, old_frames[0]);
  EXPECT_FALSE(result.sites[1].has_value());  // only in the damaged snapshot
}

// Replay goes through CollectState, so dedup semantics are inherited, not
// re-implemented: exactly-once keeps the first frame per site even across
// shard files; latest-wins keeps the max epoch regardless of file order.
TEST(Recovery, ExactlyOnceKeepsFirstAcrossShardFiles) {
  TempDir dir;
  const auto winner = make_frame(0, 1, 31);
  const auto loser = make_frame(0, 1, 32);
  {
    WalWriter w0(test_config(dir.path, 0), 0, 0);
    w0.append(winner);
    w0.sync();
    WalWriter w1(test_config(dir.path, 1), 0, 0);
    w1.append(loser);
    w1.sync();
  }
  RecoveryOptions options;
  options.dir = dir.path;
  options.sites = 1;
  options.expected_kind = PayloadKind::kOpaque;
  options.dedup = DedupMode::kExactlyOnce;
  const RecoveryResult result = durability::recover_referee_state(options);
  EXPECT_EQ(result.frames_replayed, 1u);
  EXPECT_EQ(result.frames_superseded, 1u);
  ASSERT_TRUE(result.sites[0].has_value());
  EXPECT_EQ(result.sites[0]->frame, winner);  // shard 0 scans first
}

TEST(Recovery, LatestWinsKeepsMaxEpochRegardlessOfOrder) {
  TempDir dir;
  const auto e1 = make_frame(0, 1, 41);
  const auto e3 = make_frame(0, 3, 43);
  const auto e2 = make_frame(0, 2, 42);
  {
    WalWriter writer(test_config(dir.path), 0, 0);
    writer.append(e1);
    writer.append(e3);
    writer.append(e2);  // stale arrival logged after the winner
    writer.sync();
  }
  RecoveryOptions options;
  options.dir = dir.path;
  options.sites = 1;
  options.expected_kind = PayloadKind::kOpaque;
  options.dedup = DedupMode::kLatestWins;
  const RecoveryResult result = durability::recover_referee_state(options);
  ASSERT_TRUE(result.sites[0].has_value());
  EXPECT_EQ(result.sites[0]->epoch, 3u);
  EXPECT_EQ(result.sites[0]->frame, e3);
  EXPECT_EQ(result.frames_superseded, 1u);
}

TEST(DurableLog, ResumeContinuesChainsAndAccumulatesSites) {
  TempDir dir;
  DurableLog::Options options;
  options.dir = dir.path;
  options.fsync = FsyncPolicy::kNever;
  const auto f0 = make_frame(0, 1, 51);
  const auto f1 = make_frame(1, 1, 52);
  const auto f2 = make_frame(2, 1, 53);
  {
    DurableLog log(options, 3, 2, /*run_id=*/77);
    log.log_accepted(0, 0, 1, f0);
    log.log_accepted(1, 1, 1, f1);
    EXPECT_EQ(log.records_logged(), 2u);
  }  // "crash": destructor syncs, but nothing else happens

  RecoveryOptions rec;
  rec.dir = dir.path;
  rec.sites = 3;
  rec.expected_kind = PayloadKind::kOpaque;
  rec.dedup = DedupMode::kExactlyOnce;
  RecoveryResult recovered = durability::recover_referee_state(rec);
  EXPECT_EQ(recovered.sites_recovered(), 2u);
  EXPECT_EQ(recovered.run_id, 77u);

  {
    DurableLog log(options, 3, 2, std::move(recovered));
    log.log_accepted(0, 2, 1, f2);
  }
  const RecoveryResult final_state = durability::recover_referee_state(rec);
  EXPECT_EQ(final_state.sites_recovered(), 3u);
  ASSERT_TRUE(final_state.sites[0].has_value());
  ASSERT_TRUE(final_state.sites[2].has_value());
  EXPECT_EQ(final_state.sites[0]->frame, f0);
  EXPECT_EQ(final_state.sites[1]->frame, f1);
  EXPECT_EQ(final_state.sites[2]->frame, f2);
  // Resumed writers continued the per-shard chains; no file collisions.
  const auto segments = durability::scan_wal_segments(dir.path);
  for (const auto& seg : segments) EXPECT_TRUE(seg.header_valid);
}

TEST(DurableLog, FreshLogOnDirtyDirThrows) {
  TempDir dir;
  DurableLog::Options options;
  options.dir = dir.path;
  { DurableLog log(options, 1, 1, /*run_id=*/1); }
  EXPECT_THROW(DurableLog(options, 1, 1, /*run_id=*/2), InvalidArgument);
}

TEST(DurableLog, SnapshotCompactsAndCoversSegments) {
  TempDir dir;
  DurableLog::Options options;
  options.dir = dir.path;
  options.fsync = FsyncPolicy::kNever;
  options.snapshot_every = 2;
  const auto f0 = make_frame(0, 1, 61);
  const auto f1 = make_frame(1, 1, 62);
  {
    DurableLog log(options, 2, 1, /*run_id=*/5);
    log.log_accepted(0, 0, 1, f0);
    log.log_accepted(0, 1, 1, f1);
    EXPECT_EQ(log.snapshots_written(), 1u);
  }
  // Delete every segment: the snapshot alone must recover both sites —
  // compaction really covers the log, it doesn't just summarize it.
  for (const auto& seg : durability::scan_wal_segments(dir.path)) {
    ::unlink(seg.path.c_str());
  }
  RecoveryOptions rec;
  rec.dir = dir.path;
  rec.sites = 2;
  rec.expected_kind = PayloadKind::kOpaque;
  rec.dedup = DedupMode::kExactlyOnce;
  const RecoveryResult result = durability::recover_referee_state(rec);
  EXPECT_TRUE(result.used_snapshot);
  EXPECT_EQ(result.sites_recovered(), 2u);
  EXPECT_EQ(result.sites[0]->frame, f0);
  EXPECT_EQ(result.sites[1]->frame, f1);
}

// Crash-resume through the real server: push a subset of sites into a
// WAL-backed referee, stop it mid-collection, recover into a second server
// on the same dir, push the rest (plus a duplicate), and require the
// collected per-site payloads to be byte-identical to an uninterrupted
// run. Run at 1 and 4 shards — the per-shard WAL files must fold back
// into one state.
void crash_resume_round_trip(std::size_t shards) {
  constexpr std::size_t kSites = 4;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t site = 0; site < kSites; ++site) {
    auto frame = make_frame(site, 1, 500 + site, 96);
    frames.push_back(frame);
    payloads.push_back(frame_decode(frame).payload);
  }

  auto make_server_config = [&](const std::string& wal_dir, bool recover) {
    net::RefereeServerConfig config;
    config.sites = kSites;
    config.shards = shards;
    config.expected_kind = PayloadKind::kOpaque;
    config.dedup = DedupMode::kExactlyOnce;
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = FsyncPolicy::kNever;
    wal.recover = recover;
    config.wal = wal;
    return config;
  };
  auto push = [](std::uint16_t port, std::size_t site,
                 const std::vector<std::uint8_t>& frame) {
    net::TcpTransportConfig config;
    config.host = "127.0.0.1";
    config.port = port;
    net::TcpTransport transport(site + 1, config);
    return transport.send_with_ack(site, frame);
  };

  TempDir dir;
  std::vector<std::optional<std::vector<std::uint8_t>>> collected(kSites);
  auto sink = [&collected](std::size_t site, std::uint32_t, std::uint16_t, PayloadKind,
                           std::vector<std::uint8_t>&& payload) {
    collected[site] = std::move(payload);
    return true;
  };

  // Phase 1: accept sites 0 and 1, then stop (the WAL holds their frames).
  {
    net::RefereeServer server(make_server_config(dir.path, false));
    std::thread runner([&] { (void)server.run(sink); });
    EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kAccepted);
    EXPECT_EQ(push(server.port(), 1, frames[1]), net::PushAck::kAccepted);
    server.request_stop();
    runner.join();
  }
  collected.assign(kSites, std::nullopt);  // the crash loses all in-memory state

  // Phase 2: recover and finish. The duplicate re-push of site 0 (a pusher
  // retrying across the restart) must dedup against RECOVERED state.
  net::RefereeServer server(make_server_config(dir.path, true));
  EXPECT_EQ(server.durable_log()->recovered().sites_recovered(), 2u);
  net::RefereeServer::Result result;
  std::thread runner([&] { result = server.run(sink); });
  EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kDuplicate);
  EXPECT_EQ(push(server.port(), 2, frames[2]), net::PushAck::kAccepted);
  EXPECT_EQ(push(server.port(), 3, frames[3]), net::PushAck::kAccepted);
  runner.join();

  EXPECT_TRUE(result.report.complete());
  EXPECT_EQ(result.report.sites_reported, kSites);
  EXPECT_EQ(result.durability.sites_recovered, 2u);
  EXPECT_EQ(result.durability.records_logged, 2u);  // only the two live accepts
  EXPECT_GE(result.report.duplicates_dropped, 1u);
  for (std::size_t site = 0; site < kSites; ++site) {
    ASSERT_TRUE(collected[site].has_value()) << "site " << site;
    EXPECT_EQ(*collected[site], payloads[site]) << "site " << site;
  }
}

TEST(CrashResume, ByteIdenticalStateSingleShard) { crash_resume_round_trip(1); }

TEST(CrashResume, ByteIdenticalStateFourShards) { crash_resume_round_trip(4); }

TEST(CrashResume, FreqPayloadsSurviveCrashRecoveryCycle) {
  // The ISSUE acceptance claim for the frequency subsystem's durability
  // leg: freq payloads logged before a crash replay through recovery, a
  // pusher retry across the restart dedups against RECOVERED state, and
  // the post-recovery union heavy-hitter summary is byte-identical to an
  // uninterrupted fold of the same site sketches.
  constexpr std::size_t kSites = 4;
  const FreqConfig freq_config{.depth = 4, .width_log2 = 9, .heavy_capacity = 24,
                               .seed = 71};
  std::vector<FreqSketch> sites(kSites, FreqSketch(freq_config));
  std::vector<std::vector<std::uint8_t>> frames;
  Xoshiro256 rng(72);
  for (std::uint32_t site = 0; site < kSites; ++site) {
    for (int i = 0; i < 10'000; ++i) sites[site].add(rng.below(2'000));
    frames.push_back(frame_encode({PayloadKind::kFreqSketch, site, 1},
                                  sites[site].serialize()));
  }

  auto make_server_config = [&](const std::string& wal_dir, bool recover) {
    net::RefereeServerConfig config;
    config.sites = kSites;
    config.shards = 2;
    config.expected_kind = PayloadKind::kFreqSketch;
    config.dedup = DedupMode::kExactlyOnce;
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = FsyncPolicy::kNever;
    wal.recover = recover;
    config.wal = wal;
    return config;
  };
  auto push = [](std::uint16_t port, std::size_t site,
                 const std::vector<std::uint8_t>& frame) {
    net::TcpTransportConfig config;
    config.host = "127.0.0.1";
    config.port = port;
    net::TcpTransport transport(site + 1, config);
    return transport.send_with_ack(site, frame);
  };

  TempDir dir;
  std::vector<std::optional<FreqSketch>> collected(kSites);
  auto sink = [&collected](std::size_t site, std::uint32_t, std::uint16_t, PayloadKind,
                           std::vector<std::uint8_t>&& payload) {
    collected[site] = FreqSketch::deserialize(std::span<const std::uint8_t>(payload));
    return true;
  };

  // Phase 1: sites 0 and 1 land, then the referee "crashes".
  {
    net::RefereeServer server(make_server_config(dir.path, false));
    std::thread runner([&] { (void)server.run(sink); });
    EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kAccepted);
    EXPECT_EQ(push(server.port(), 1, frames[1]), net::PushAck::kAccepted);
    server.request_stop();
    runner.join();
  }
  collected.assign(kSites, std::nullopt);  // the crash loses in-memory state

  // Phase 2: recover, dedup the retry, collect the rest.
  net::RefereeServer server(make_server_config(dir.path, true));
  EXPECT_EQ(server.durable_log()->recovered().sites_recovered(), 2u);
  net::RefereeServer::Result result;
  std::thread runner([&] { result = server.run(sink); });
  EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kDuplicate);
  EXPECT_EQ(push(server.port(), 2, frames[2]), net::PushAck::kAccepted);
  EXPECT_EQ(push(server.port(), 3, frames[3]), net::PushAck::kAccepted);
  runner.join();

  EXPECT_TRUE(result.report.complete());
  EXPECT_EQ(result.durability.sites_recovered, 2u);
  for (std::size_t site = 0; site < kSites; ++site) {
    ASSERT_TRUE(collected[site].has_value()) << "site " << site;
    EXPECT_EQ(collected[site]->serialize(), sites[site].serialize()) << "site " << site;
  }

  // The union built from recovered + live payloads equals the fold of the
  // original site sketches down to the bytes — and its top(k) intervals
  // are the union stream's.
  FreqSketch recovered_union = *collected[0];
  for (std::size_t site = 1; site < kSites; ++site) {
    recovered_union.merge(*collected[site]);
  }
  FreqSketch direct = sites[0];
  for (std::size_t site = 1; site < kSites; ++site) direct.merge(sites[site]);
  EXPECT_EQ(recovered_union.serialize(), direct.serialize());
  EXPECT_FALSE(recovered_union.top(5).empty());
}

TEST(CrashResume, GroupLedgerSurvivesRestartByteForByte) {
  // Grouped frames (v2 wire encoding) through the WAL: the crash loses the
  // in-memory ledger, recovery replays the logged frames through the same
  // sink, and the restored ledger must carry each site's group tag — so a
  // post-restart per-group reduction buckets exactly as the pre-crash one
  // would have. Site 3 stays ungrouped (v1) to pin the mixed case.
  constexpr std::size_t kSites = 4;
  constexpr std::uint16_t kGroups[kSites] = {3, 5, 3, 0};
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t site = 0; site < kSites; ++site) {
    Xoshiro256 rng(700 + site);
    std::vector<std::uint8_t> payload(96);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
    frames.push_back(
        frame_encode({PayloadKind::kOpaque, site, 1, kGroups[site]}, payload));
    payloads.push_back(std::move(payload));
  }

  auto make_server_config = [&](const std::string& wal_dir, bool recover) {
    net::RefereeServerConfig config;
    config.sites = kSites;
    config.expected_kind = PayloadKind::kOpaque;
    config.dedup = DedupMode::kExactlyOnce;
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = FsyncPolicy::kNever;
    wal.recover = recover;
    config.wal = wal;
    return config;
  };
  auto push = [](std::uint16_t port, std::size_t site,
                 const std::vector<std::uint8_t>& frame) {
    net::TcpTransportConfig config;
    config.host = "127.0.0.1";
    config.port = port;
    net::TcpTransport transport(site + 1, config);
    return transport.send_with_ack(site, frame);
  };

  struct Got {
    std::uint16_t group = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<std::optional<Got>> collected(kSites);
  auto sink = [&collected](std::size_t site, std::uint32_t, std::uint16_t group,
                           PayloadKind, std::vector<std::uint8_t>&& payload) {
    collected[site] = Got{group, std::move(payload)};
    return true;
  };

  TempDir dir;
  // Phase 1: accept one site of each group, then "crash".
  {
    net::RefereeServer server(make_server_config(dir.path, false));
    std::thread runner([&] { (void)server.run(sink); });
    EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kAccepted);
    EXPECT_EQ(push(server.port(), 1, frames[1]), net::PushAck::kAccepted);
    server.request_stop();
    runner.join();
  }
  collected.assign(kSites, std::nullopt);  // the crash loses all in-memory state

  // Phase 2: recover and finish. The replayed frames re-run the sink with
  // their ORIGINAL group tags, and the retrying pusher's duplicate dedups
  // against the recovered (site, epoch) — group included.
  net::RefereeServer server(make_server_config(dir.path, true));
  EXPECT_EQ(server.durable_log()->recovered().sites_recovered(), 2u);
  net::RefereeServer::Result result;
  std::thread runner([&] { result = server.run(sink); });
  EXPECT_EQ(push(server.port(), 0, frames[0]), net::PushAck::kDuplicate);
  EXPECT_EQ(push(server.port(), 2, frames[2]), net::PushAck::kAccepted);
  EXPECT_EQ(push(server.port(), 3, frames[3]), net::PushAck::kAccepted);
  runner.join();

  EXPECT_TRUE(result.report.complete());
  EXPECT_EQ(result.durability.sites_recovered, 2u);
  for (std::size_t site = 0; site < kSites; ++site) {
    ASSERT_TRUE(collected[site].has_value()) << "site " << site;
    EXPECT_EQ(collected[site]->group, kGroups[site]) << "site " << site;
    EXPECT_EQ(collected[site]->payload, payloads[site]) << "site " << site;
    // The ledger a per-group reduction would bucket by: identical to what
    // an uninterrupted run records.
    EXPECT_EQ(result.report.per_site[site].group, kGroups[site]) << "site " << site;
    EXPECT_EQ(result.report.per_site[site].accepted_epoch, 1u) << "site " << site;
  }
}

TEST(CrashResume, DeltaChainSurvivesRestartAndExtends) {
  // Continuous-mode WAL: a site's logged state is a CHAIN (full frame +
  // accepted deltas). Kill the referee mid-chain, recover, and the replayed
  // chain must rebuild the same mirror through the same sink path — then
  // the NEXT delta extends the recovered chain as if the crash never
  // happened. snapshot_every=2 forces a snapshot between the chain's links,
  // so recovery exercises the flattened-chain snapshot plus a segment tail.
  auto make_server_config = [](const std::string& wal_dir, bool recover) {
    net::RefereeServerConfig config;
    config.sites = 1;
    config.dedup = DedupMode::kLatestWins;
    config.delta_kind = PayloadKind::kF0Delta;
    config.continuous = true;
    config.timeout = std::chrono::milliseconds{30'000};
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = FsyncPolicy::kNever;
    wal.snapshot_every = 2;
    wal.recover = recover;
    config.wal = wal;
    return config;
  };
  auto push = [](std::uint16_t port, PayloadKind kind, std::uint32_t epoch,
                 const std::vector<std::uint8_t>& payload) {
    net::TcpTransportConfig config;
    config.host = "127.0.0.1";
    config.port = port;
    net::TcpTransport transport(1, config);
    return transport.send_with_ack(0, frame_encode({kind, 0, epoch}, payload));
  };

  F0Estimator est(EstimatorParams::for_guarantee(0.2, 0.1, 60));
  Xoshiro256 rng(61);
  auto grow = [&](int n) {
    for (int i = 0; i < n; ++i) est.add(rng.next());
  };
  std::optional<F0Estimator> mirror;
  auto sink = [&mirror](std::size_t, std::uint32_t, std::uint16_t, PayloadKind kind,
                        std::vector<std::uint8_t>&& payload) {
    try {
      if (kind == PayloadKind::kF0Delta) {
        F0Estimator next = *mirror;
        next.apply_delta(std::span<const std::uint8_t>(payload));
        mirror = std::move(next);
      } else {
        mirror = F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
      }
      return true;
    } catch (const SerializationError&) {
      return false;
    }
  };

  TempDir dir;
  // Phase 1: full (epoch 1) + two chained deltas, then "crash".
  {
    net::RefereeServer server(make_server_config(dir.path, false));
    std::thread runner([&] { (void)server.run(sink); });
    grow(2000);
    F0Estimator base = est;
    EXPECT_EQ(push(server.port(), PayloadKind::kF0Estimator, 1, base.serialize()),
              net::PushAck::kAccepted);
    for (std::uint32_t epoch = 2; epoch <= 3; ++epoch) {
      grow(1500);
      EXPECT_EQ(push(server.port(), PayloadKind::kF0Delta, epoch,
                     est.serialize_delta(base)),
                net::PushAck::kAccepted);
      base = est;
    }
    server.request_stop();
    runner.join();
  }
  const auto pre_crash_mirror = mirror->serialize();
  EXPECT_EQ(pre_crash_mirror, est.serialize());
  mirror.reset();  // the crash loses all in-memory state

  // The raw recovery result shows the chain shape: one full frame, the
  // delta(s) past the snapshot replayed on top, chain head at epoch 3.
  {
    RecoveryOptions rec;
    rec.dir = dir.path;
    rec.sites = 1;
    rec.expected_kind = PayloadKind::kF0Estimator;
    rec.dedup = DedupMode::kLatestWins;
    rec.delta_kind = PayloadKind::kF0Delta;
    const RecoveryResult recovered = durability::recover_referee_state(rec);
    ASSERT_EQ(recovered.sites_recovered(), 1u);
    EXPECT_EQ(recovered.sites[0]->epoch, 3u);
    EXPECT_TRUE(recovered.used_snapshot);
    EXPECT_EQ(recovered.frames_replayed, 3u) << recovered.summary();
  }

  // Phase 2: recover into a new server. Preload replays the chain through
  // the sink (rebuilding the pre-crash mirror), and the next delta extends
  // the recovered chain; a replay of an already-chained epoch dedups.
  net::RefereeServer server(make_server_config(dir.path, true));
  net::RefereeServer::Result result;
  std::thread runner([&] { result = server.run(sink); });
  // Wait for the preload (run() replays before accepting connections, so
  // the first ack implies the mirror is rebuilt).
  F0Estimator base = est;
  grow(1500);
  EXPECT_EQ(push(server.port(), PayloadKind::kF0Delta, 4, est.serialize_delta(base)),
            net::PushAck::kAccepted);
  EXPECT_EQ(push(server.port(), PayloadKind::kF0Delta, 4, est.serialize_delta(base)),
            net::PushAck::kDuplicate);
  EXPECT_EQ(push(server.port(), PayloadKind::kF0Delta, 2, est.serialize_delta(base)),
            net::PushAck::kStale);
  server.request_stop();
  runner.join();

  ASSERT_TRUE(mirror.has_value());
  EXPECT_EQ(mirror->serialize(), est.serialize());
  EXPECT_EQ(result.durability.sites_recovered, 1u);
  EXPECT_EQ(result.report.per_site[0].accepted_epoch, 4u);
}

}  // namespace
}  // namespace ustream
