#include "stream/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/random.h"

namespace ustream {
namespace {

std::vector<double> empirical_pmf(const ZipfDistribution& z, std::size_t samples,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::size_t> counts(z.n() + 1, 0);
  for (std::size_t i = 0; i < samples; ++i) ++counts[z.sample(rng)];
  std::vector<double> pmf(z.n() + 1, 0.0);
  for (std::size_t k = 1; k <= z.n(); ++k) {
    pmf[k] = static_cast<double>(counts[k]) / static_cast<double>(samples);
  }
  return pmf;
}

std::vector<double> exact_pmf(std::size_t n, double alpha) {
  std::vector<double> pmf(n + 1, 0.0);
  double z = 0.0;
  for (std::size_t k = 1; k <= n; ++k) z += std::pow(static_cast<double>(k), -alpha);
  for (std::size_t k = 1; k <= n; ++k) {
    pmf[k] = std::pow(static_cast<double>(k), -alpha) / z;
  }
  return pmf;
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution z(100, 1.2);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = z.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(Zipf, NEqualsOneIsDegenerate) {
  ZipfDistribution z(1, 2.0);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(Zipf, AlphaZeroIsUniform) {
  constexpr std::size_t kN = 20;
  constexpr std::size_t kSamples = 200'000;
  const auto pmf = empirical_pmf(ZipfDistribution(kN, 0.0), kSamples, 3);
  for (std::size_t k = 1; k <= kN; ++k) {
    EXPECT_NEAR(pmf[k], 1.0 / kN, 0.006) << k;
  }
}

TEST(Zipf, MatchesExactPmfAlpha1) {
  constexpr std::size_t kN = 50;
  const auto emp = empirical_pmf(ZipfDistribution(kN, 1.0), 400'000, 4);
  const auto exact = exact_pmf(kN, 1.0);
  for (std::size_t k = 1; k <= kN; ++k) {
    EXPECT_NEAR(emp[k], exact[k], 0.004 + exact[k] * 0.1) << k;
  }
}

TEST(Zipf, MatchesExactPmfAlpha2) {
  constexpr std::size_t kN = 30;
  const auto emp = empirical_pmf(ZipfDistribution(kN, 2.0), 400'000, 5);
  const auto exact = exact_pmf(kN, 2.0);
  for (std::size_t k = 1; k <= kN; ++k) {
    EXPECT_NEAR(emp[k], exact[k], 0.004 + exact[k] * 0.1) << k;
  }
}

TEST(Zipf, MatchesExactPmfFractionalAlpha) {
  constexpr std::size_t kN = 40;
  const auto emp = empirical_pmf(ZipfDistribution(kN, 0.7), 400'000, 6);
  const auto exact = exact_pmf(kN, 0.7);
  for (std::size_t k = 1; k <= kN; ++k) {
    EXPECT_NEAR(emp[k], exact[k], 0.004 + exact[k] * 0.1) << k;
  }
}

TEST(Zipf, HeavySkewConcentratesOnHead) {
  ZipfDistribution z(10'000, 1.5);
  Xoshiro256 rng(7);
  std::size_t head = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (z.sample(rng) <= 10) ++head;
  }
  EXPECT_GT(static_cast<double>(head) / kSamples, 0.6);
}

TEST(Zipf, LargeNWorks) {
  ZipfDistribution z(10'000'000, 1.1);
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto k = z.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10'000'000u);
  }
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), InvalidArgument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), InvalidArgument);
}

}  // namespace
}  // namespace ustream
