#include "core/params.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ustream {
namespace {

TEST(Params, CapacityScalesInverseSquare) {
  const auto c10 = EstimatorParams::capacity_for_epsilon(0.10);
  const auto c05 = EstimatorParams::capacity_for_epsilon(0.05);
  const auto c01 = EstimatorParams::capacity_for_epsilon(0.01);
  EXPECT_EQ(c10, 3600u);
  EXPECT_EQ(c05, 14400u);
  EXPECT_EQ(c01, 360000u);
}

TEST(Params, CapacityConstantKnob) {
  EXPECT_EQ(EstimatorParams::capacity_for_epsilon(0.1, 12.0), 1200u);
  EXPECT_EQ(EstimatorParams::capacity_for_epsilon(0.1, 48.0), 4800u);
}

TEST(Params, CapacityHasFloor) {
  EXPECT_GE(EstimatorParams::capacity_for_epsilon(0.99), 4u);
}

TEST(Params, CopiesAreOddAndMonotone) {
  const auto r1 = EstimatorParams::copies_for_delta(0.3);
  const auto r2 = EstimatorParams::copies_for_delta(0.05);
  const auto r3 = EstimatorParams::copies_for_delta(0.001);
  EXPECT_EQ(r1 % 2, 1u);
  EXPECT_EQ(r2 % 2, 1u);
  EXPECT_EQ(r3 % 2, 1u);
  EXPECT_LE(r1, r2);
  EXPECT_LT(r2, r3);
}

TEST(Params, ForGuaranteeComposes) {
  const auto p = EstimatorParams::for_guarantee(0.1, 0.05, 999);
  EXPECT_EQ(p.capacity, EstimatorParams::capacity_for_epsilon(0.1));
  EXPECT_EQ(p.copies, EstimatorParams::copies_for_delta(0.05));
  EXPECT_EQ(p.seed, 999u);
}

TEST(Params, RejectsBadInputs) {
  EXPECT_THROW(EstimatorParams::capacity_for_epsilon(0.0), InvalidArgument);
  EXPECT_THROW(EstimatorParams::capacity_for_epsilon(1.0), InvalidArgument);
  EXPECT_THROW(EstimatorParams::capacity_for_epsilon(-0.5), InvalidArgument);
  EXPECT_THROW(EstimatorParams::capacity_for_epsilon(0.1, 0.0), InvalidArgument);
  EXPECT_THROW(EstimatorParams::copies_for_delta(0.0), InvalidArgument);
  EXPECT_THROW(EstimatorParams::copies_for_delta(1.0), InvalidArgument);
}

}  // namespace
}  // namespace ustream
