// Observability subsystem tests: registry semantics, snapshot consistency
// under concurrent writers (the TSan hammer the `threads` label exists
// for), trace-span nesting, the shared log2 bucket rule, and both
// exposition renderers.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream::obs {
namespace {

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = reg.gauge("connections_open");
  g.add(3);
  g.sub(1);
  EXPECT_EQ(g.value(), 2);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);

  LatencyHistogram& h = reg.histogram("latency_ns");
  h.observe(0);
  h.observe(1);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1001u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, ReturnsSameInstanceForSameNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits", "kind=\"f0\"");
  Counter& b = reg.counter("hits", "kind=\"f0\"");
  Counter& other = reg.counter("hits", "kind=\"sum\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InvalidArgument);
  EXPECT_THROW(reg.histogram("x"), InvalidArgument);
}

TEST(MetricsRegistry, ReferencesStayValidAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("metric_000");
  first.add(1);
  // Hundreds of later registrations must not move the first counter.
  for (int i = 1; i < 300; ++i) {
    reg.counter("metric_" + std::to_string(i)).add(1);
  }
  first.add(1);
  EXPECT_EQ(reg.counter("metric_000").value(), 2u);
  EXPECT_EQ(&reg.counter("metric_000"), &first);
}

TEST(MetricsRegistry, SnapshotSortedAndFindable) {
  MetricsRegistry reg;
  reg.counter("b_total").add(2);
  reg.gauge("a_gauge").set(5);
  reg.histogram("c_ns").observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "a_gauge");
  EXPECT_EQ(snap.samples[1].name, "b_total");
  EXPECT_EQ(snap.samples[2].name, "c_ns");
  EXPECT_EQ(snap.counter_or("b_total"), 2u);
  EXPECT_EQ(snap.counter_or("missing", 77), 77u);
  const MetricSample* h = snap.find("c_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 100u);
}

// The log2 bucket rule is shared between Log2Histogram and
// LatencyHistogram — pin down the boundaries once.
TEST(BucketMath, IndexAndUpperBoundAgree) {
  EXPECT_EQ(log2_bucket_index(0), 0u);
  EXPECT_EQ(log2_bucket_index(1), 1u);
  EXPECT_EQ(log2_bucket_index(2), 2u);
  EXPECT_EQ(log2_bucket_index(3), 2u);
  EXPECT_EQ(log2_bucket_index(4), 3u);
  EXPECT_EQ(log2_bucket_upper(0), 0u);
  EXPECT_EQ(log2_bucket_upper(1), 1u);
  EXPECT_EQ(log2_bucket_upper(2), 3u);
  EXPECT_EQ(log2_bucket_upper(3), 7u);
  // Every value lands in the bucket whose inclusive upper bound covers it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 63ull, 64ull, 1000ull, (1ull << 40)}) {
    const std::size_t i = log2_bucket_index(v);
    EXPECT_LE(v, log2_bucket_upper(i)) << v;
    if (i > 0) {
      EXPECT_GT(v, log2_bucket_upper(i - 1)) << v;
    }
  }
}

TEST(LatencyHistogram, ClampsOverflowIntoLastBucket) {
  LatencyHistogram h;
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceSpan, FeedsHistogramAndTracksNesting) {
  MetricsRegistry reg;
  LatencyHistogram& outer = reg.histogram("outer_ns");
  LatencyHistogram& inner = reg.histogram("inner_ns");
  EXPECT_EQ(TraceSpan::current(), nullptr);
  EXPECT_EQ(TraceSpan::depth(), 0u);
  {
    TraceSpan a("outer_ns", outer);
    EXPECT_EQ(TraceSpan::current(), &a);
    EXPECT_EQ(TraceSpan::depth(), 1u);
    {
      TraceSpan b("inner_ns", inner);
      EXPECT_EQ(TraceSpan::current(), &b);
      EXPECT_STREQ(TraceSpan::current()->name(), "inner_ns");
      EXPECT_EQ(TraceSpan::depth(), 2u);
    }
    EXPECT_EQ(TraceSpan::current(), &a);
  }
  EXPECT_EQ(TraceSpan::current(), nullptr);
  EXPECT_EQ(TraceSpan::depth(), 0u);
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);
}

TEST(TraceSpan, MacroCompilesAndRecords) {
  const std::uint64_t before =
      default_registry().histogram("test_obs_macro_span_ns").count();
  {
    USTREAM_TRACE_SPAN("test_obs_macro_span_ns");
  }
#if USTREAM_METRICS_ENABLED
  EXPECT_EQ(default_registry().histogram("test_obs_macro_span_ns").count(), before + 1);
#else
  EXPECT_EQ(default_registry().histogram("test_obs_macro_span_ns").count(), before);
#endif
}

TEST(Exposition, PrometheusRendersAllThreeTypes) {
  MetricsRegistry reg;
  reg.counter("frames_total", "verdict=\"accepted\"").add(3);
  reg.gauge("open").set(-2);
  LatencyHistogram& h = reg.histogram("lat_ns");
  h.observe(0);
  h.observe(1);
  h.observe(3);
  const std::string text = render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE frames_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("frames_total{verdict=\"accepted\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE open gauge\n"), std::string::npos);
  EXPECT_NE(text.find("open -2\n"), std::string::npos);
  // Cumulative buckets under the log2 rule: le=0 -> 1, le=1 -> 2, le=3 -> 3.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
}

TEST(Exposition, JsonIsOneLine) {
  MetricsRegistry reg;
  reg.counter("a_total").add(7);
  reg.histogram("b_ns").observe(5);
  const std::string json = render_json(reg.snapshot());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"a_total\",\"type\":\"counter\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b_ns\",\"type\":\"histogram\",\"count\":1,\"sum\":5"),
            std::string::npos);
}

// The ISSUE's TSan hammer: 8 writer threads pound one registry — counters,
// a gauge, and one shared histogram — while a reader snapshots in a loop.
// Asserts: (a) counter values observed by the reader are monotone, (b) a
// histogram snapshot's count always equals the sum of its own buckets (no
// torn totals), and (c) the final tallies are exact.
TEST(MetricsRegistryConcurrency, WritersVsSnapshotReader) {
  constexpr int kWriters = 8;
  constexpr std::uint64_t kOpsPerWriter = 20'000;

  MetricsRegistry reg;
  // Register up front so writer threads never race the first registration
  // through the macro-free direct path (registration itself is also
  // thread-safe, which ReferencesStayValidAcrossRegistrations covers).
  Counter& hits = reg.counter("hammer_hits_total");
  Gauge& open = reg.gauge("hammer_open");
  LatencyHistogram& lat = reg.histogram("hammer_lat_ns");

  std::atomic<bool> stop{false};
  std::atomic<int> started{0};

  std::thread reader([&] {
    std::uint64_t last_hits = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.snapshot();
      const MetricSample* c = snap.find("hammer_hits_total");
      ASSERT_NE(c, nullptr);
      ASSERT_GE(c->counter_value, last_hits) << "counter went backwards";
      last_hits = c->counter_value;
      const MetricSample* h = snap.find("hammer_lat_ns");
      ASSERT_NE(h, nullptr);
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t b : h->buckets) bucket_total += b;
      ASSERT_EQ(h->count, bucket_total) << "torn histogram total";
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      started.fetch_add(1);
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        hits.add(1);
        open.add(1);
        lat.observe((i << 3) + static_cast<std::uint64_t>(w));
        open.sub(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(hits.value(), kWriters * kOpsPerWriter);
  EXPECT_EQ(open.value(), 0);
  EXPECT_EQ(lat.count(), kWriters * kOpsPerWriter);
}

// Concurrent first-registration from many threads must yield one instance.
TEST(MetricsRegistryConcurrency, RacingRegistrationsConverge) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = reg.counter("raced_total");
      c.add(1);
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
  EXPECT_EQ(reg.counter("raced_total").value(), static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace ustream::obs
