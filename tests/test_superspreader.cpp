// Superspreader detection over one link and over the union of links.
#include "netmon/superspreader.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace ustream {
namespace {

SuperspreaderConfig test_config() {
  SuperspreaderConfig c;
  c.table_capacity = 256;
  c.sampler_capacity = 128;
  c.admission_level = 3;
  c.seed = 99;
  return c;
}

// Workload: a few heavy scanners among many light sources.
struct Contact {
  std::uint64_t src, dst;
};

std::vector<Contact> scanner_workload(std::uint64_t seed, std::size_t scanners,
                                      std::size_t scan_width, std::size_t light_sources) {
  std::vector<Contact> out;
  Xoshiro256 rng(seed);
  for (std::size_t s = 0; s < scanners; ++s) {
    const std::uint64_t src = 0xbad0000 + s;
    for (std::size_t d = 0; d < scan_width; ++d) {
      out.push_back({src, rng.next()});
    }
  }
  for (std::size_t s = 0; s < light_sources; ++s) {
    const std::uint64_t src = 0x900d0000 + s;
    // 1-4 destinations, each contacted several times.
    const std::size_t dsts = 1 + rng.below(4);
    for (std::size_t d = 0; d < dsts; ++d) {
      const std::uint64_t dst = rng.next();
      for (int rep = 0; rep < 5; ++rep) out.push_back({src, dst});
    }
  }
  // Shuffle.
  for (std::size_t i = out.size(); i > 1; --i) std::swap(out[i - 1], out[rng.below(i)]);
  return out;
}

TEST(Superspreader, FindsScannersNotChatter) {
  SuperspreaderDetector det(test_config());
  for (const auto& c : scanner_workload(1, 5, 2000, 3000)) det.observe(c.src, c.dst);
  const auto reports = det.report(500.0);
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& r : reports) {
    EXPECT_GE(r.source, 0xbad0000u);
    EXPECT_LT(r.source, 0xbad0000u + 5);
    // Admission loses ~2^admission_level early contacts; estimates land
    // within a loose band of the 2000 truth.
    EXPECT_NEAR(r.distinct_destinations, 2000.0, 600.0);
  }
}

TEST(Superspreader, ReportSortedDescending) {
  SuperspreaderDetector det(test_config());
  Xoshiro256 rng(2);
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t d = 0; d < 300 * (s + 1); ++d) det.observe(s, rng.next());
  }
  const auto reports = det.report(100.0);
  ASSERT_GE(reports.size(), 3u);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GE(reports[i - 1].distinct_destinations, reports[i].distinct_destinations);
  }
}

TEST(Superspreader, DuplicateContactsDoNotAdmitOrInflate) {
  SuperspreaderDetector det(test_config());
  // One source contacting ONE destination a million times: the admission
  // coin for the pair is flipped once (deterministic), so either it is
  // never admitted, or admitted with estimate 1. Never a superspreader.
  for (int i = 0; i < 1'000'000; ++i) det.observe(7, 1234);
  EXPECT_LE(det.estimate(7), 1.0);
  EXPECT_TRUE(det.report(10.0).empty());
}

TEST(Superspreader, TableCapacityEnforced) {
  auto config = test_config();
  config.table_capacity = 32;
  config.admission_level = 0;  // admit everything
  SuperspreaderDetector det(config);
  Xoshiro256 rng(3);
  for (std::uint64_t s = 0; s < 1000; ++s) det.observe(s, rng.next());
  EXPECT_LE(det.tracked_sources(), 32u);
}

TEST(Superspreader, EvictionKeepsHeavySources) {
  auto config = test_config();
  config.table_capacity = 16;
  config.admission_level = 0;
  SuperspreaderDetector det(config);
  Xoshiro256 rng(4);
  // One heavy source interleaved with hundreds of one-shot sources.
  for (int round = 0; round < 500; ++round) {
    det.observe(42, rng.next());  // heavy: 500 distinct dsts
    det.observe(1000 + static_cast<std::uint64_t>(round), rng.next());  // one-shot
  }
  EXPECT_GT(det.estimate(42), 200.0);
}

TEST(Superspreader, MergeAcrossLinksMatchesCentral) {
  const auto config = test_config();
  SuperspreaderDetector central(config), link_a(config), link_b(config);
  const auto contacts = scanner_workload(5, 3, 1500, 1000);
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    central.observe(contacts[i].src, contacts[i].dst);
    ((i % 2) ? link_a : link_b).observe(contacts[i].src, contacts[i].dst);
  }
  link_a.merge(link_b);
  // Same shared coins everywhere: tracked scanners' per-source samplers
  // merge coordinately; estimates for scanners agree with central exactly
  // (same survivor sets) up to admission timing of the FIRST contact.
  for (std::uint64_t s = 0; s < 3; ++s) {
    const double merged = link_a.estimate(0xbad0000 + s);
    const double direct = central.estimate(0xbad0000 + s);
    EXPECT_NEAR(merged, direct, 0.15 * direct + 20.0) << s;
    EXPECT_GT(merged, 700.0) << s;
  }
}

TEST(Superspreader, MergeMismatchRejected) {
  auto a_config = test_config();
  auto b_config = test_config();
  b_config.seed = 123;
  SuperspreaderDetector a(a_config), b(b_config);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(Superspreader, SerializeRoundtrip) {
  SuperspreaderDetector det(test_config());
  for (const auto& c : scanner_workload(6, 2, 800, 500)) det.observe(c.src, c.dst);
  auto restored = SuperspreaderDetector::deserialize(det.serialize());
  EXPECT_EQ(restored.tracked_sources(), det.tracked_sources());
  const auto want = det.report(100.0);
  const auto got = restored.report(100.0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].source, want[i].source);
    EXPECT_DOUBLE_EQ(got[i].distinct_destinations, want[i].distinct_destinations);
  }
  // Restored detector keeps observing and merging.
  restored.observe(1, 2);
  restored.merge(det);
}

TEST(Superspreader, SerializeRejectsCorruption) {
  SuperspreaderDetector det(test_config());
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) det.observe(rng.below(50), rng.next());
  auto bytes = det.serialize();
  bytes[0] = 0x7d;
  EXPECT_THROW(SuperspreaderDetector::deserialize(bytes), SerializationError);
  auto truncated = det.serialize();
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(SuperspreaderDetector::deserialize(truncated), SerializationError);
}

TEST(Superspreader, RejectsBadConfig) {
  SuperspreaderConfig bad;
  bad.table_capacity = 0;
  EXPECT_THROW(SuperspreaderDetector{bad}, InvalidArgument);
  SuperspreaderConfig bad2;
  bad2.admission_level = 40;
  EXPECT_THROW(SuperspreaderDetector{bad2}, InvalidArgument);
}

}  // namespace
}  // namespace ustream
