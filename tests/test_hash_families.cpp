// Functional tests of every hash family: determinism, seeding, output
// range, level extraction, and the runtime-dispatch wrapper.
#include <gtest/gtest.h>

#include <set>

#include "hash/field61.h"
#include "hash/hash_family.h"
#include "hash/kwise.h"
#include "hash/level.h"
#include "hash/mix.h"
#include "hash/multiply_shift.h"
#include "hash/pairwise.h"
#include "hash/tabulation.h"

namespace ustream {
namespace {

TEST(PairwiseHash, DeterministicPerSeed) {
  PairwiseHash a(5), b(5), c(6);
  for (std::uint64_t x : {0ull, 1ull, 42ull, ~0ull}) {
    EXPECT_EQ(a(x), b(x));
    EXPECT_NE(a(x), c(x)) << x;  // different seeds disagree w.h.p.
  }
}

TEST(PairwiseHash, OutputBelowPrime) {
  PairwiseHash h(7);
  for (std::uint64_t x = 0; x < 10'000; ++x) {
    ASSERT_LT(h(x), field61::kPrime);
  }
}

TEST(PairwiseHash, NonzeroSlope) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    EXPECT_NE(PairwiseHash(seed).a(), 0u);
  }
}

TEST(PairwiseHash, IsAffine) {
  // h(x) must equal a*x + b over the field — the structure the coordinated
  // analysis (and the range sampler's counting oracle) depends on.
  PairwiseHash h(11);
  for (std::uint64_t x : {0ull, 1ull, 1000ull, (1ull << 60)}) {
    EXPECT_EQ(h(x), field61::mul_add(h.a(), field61::canon(x), h.b()));
  }
}

TEST(PairwiseHash, InjectiveOnField) {
  // Affine maps with a != 0 are bijections on GF(p): no collisions among
  // distinct canonical inputs.
  PairwiseHash h(13);
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 8192; ++x) outs.insert(h(x));
  EXPECT_EQ(outs.size(), 8192u);
}

TEST(KWiseHash, DegreeAndDeterminism) {
  KWiseHash h4(3, 4);
  EXPECT_EQ(h4.independence(), 4u);
  KWiseHash h4b(3, 4);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h4(x), h4b(x));
}

TEST(KWiseHash, K1IsConstant) {
  KWiseHash h(9, 1);
  const std::uint64_t c = h(0);
  for (std::uint64_t x = 1; x < 100; ++x) EXPECT_EQ(h(x), c);
}

TEST(KWiseHash, RejectsKZero) { EXPECT_THROW(KWiseHash(1, 0), InvalidArgument); }

TEST(KWiseHash, MatchesPairwiseStructureAtK2) {
  // A degree-1 polynomial is an affine map; outputs stay in the field.
  KWiseHash h(21, 2);
  for (std::uint64_t x = 0; x < 1000; ++x) ASSERT_LT(h(x), field61::kPrime);
}

TEST(TabulationHash, DeterminismAndSpread) {
  TabulationHash a(1), b(1), c(2);
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(a(x), b(x));
    outs.insert(a(x));
  }
  EXPECT_EQ(outs.size(), 1000u);  // no collisions on small input
  EXPECT_NE(a(12345), c(12345));
}

TEST(TabulationHash, SingleByteChangesOutput) {
  TabulationHash h(3);
  for (int byte = 0; byte < 8; ++byte) {
    EXPECT_NE(h(0), h(std::uint64_t{1} << (8 * byte)));
  }
}

TEST(MultiplyShiftHash, DeterministicAndOddMultiplier) {
  MultiplyShiftHash a(4), b(4);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(MurmurMix, Bijectivity) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 10'000; ++x) outs.insert(murmur_mix64(x));
  EXPECT_EQ(outs.size(), 10'000u);
}

TEST(MurmurMix, SeededVariantDiffers) {
  EXPECT_NE(murmur_mix64_seeded(42, 1), murmur_mix64_seeded(42, 2));
}

TEST(XxMix, Bijectivity) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 10'000; ++x) outs.insert(xx_mix64(x));
  EXPECT_EQ(outs.size(), 10'000u);
}

TEST(LevelFunction, MatchesManualComputation) {
  PairwiseHash h(8);
  LevelFunction<PairwiseHash> level(h);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(level(x), hash_level(h(x), PairwiseHash::kBits));
  }
  EXPECT_EQ(LevelFunction<PairwiseHash>::max_level(), 61);
}

TEST(HashLevel, ZeroValueCapsAtBits) {
  EXPECT_EQ(hash_level(0, 61), 61);
  EXPECT_EQ(hash_level(1, 61), 0);
  EXPECT_EQ(hash_level(1ULL << 60, 61), 60);
}

TEST(AnyLabelHash, MatchesConcreteFamilies) {
  const std::uint64_t seed = 77;
  AnyLabelHash pw(HashKind::kPairwise, seed);
  PairwiseHash pw_ref(seed);
  AnyLabelHash tab(HashKind::kTabulation, seed);
  TabulationHash tab_ref(seed);
  AnyLabelHash mm(HashKind::kMurmurMix, seed);
  for (std::uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(pw.value(x), pw_ref(x));
    EXPECT_EQ(tab.value(x), tab_ref(x));
    EXPECT_EQ(mm.value(x), murmur_mix64_seeded(x, seed));
  }
  EXPECT_EQ(pw.bits(), 61);
  EXPECT_EQ(tab.bits(), 64);
}

TEST(HashKind, StringRoundtrip) {
  for (HashKind k : {HashKind::kPairwise, HashKind::kFourWise, HashKind::kTabulation,
                     HashKind::kMultiplyShift, HashKind::kMurmurMix}) {
    EXPECT_EQ(hash_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(hash_kind_from_string("nope"), InvalidArgument);
}

}  // namespace
}  // namespace ustream
