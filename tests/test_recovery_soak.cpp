// The ISSUE 7 acceptance soak: a REAL `ustream serve` process with a WAL
// is killed with SIGKILL mid-collection — after some sites were acked,
// with one pusher started while the referee is DOWN so its connect-backoff
// retries span the restart — then restarted with `serve --recover`. The
// recovered run must finish complete and write a union sketch byte-
// identical to an uninterrupted reference run over the same sketch files,
// at 1 and 4 shards.
//
// kill -9 is the strongest crash this test can inject: no destructors, no
// atexit, no flush — whatever reached the kernel via write() before each
// ack survives, which is exactly the WAL's ack-implies-logged contract
// (durability/wal.h). Pushers never learn the referee died mid-ack; they
// just retry, and the dedup machinery absorbs the replays.
//
// On failure the WAL dir is preserved (and copied to
// $USTREAM_RECOVERY_ARTIFACT_DIR if set) so CI uploads it as an artifact.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string g_ustream_bin;  // NOLINT

std::uint16_t wait_for_port(const std::string& port_file) {
  for (int i = 0; i < 400; ++i) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0) return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds{25});
  }
  return 0;
}

std::vector<std::uint8_t> slurp(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// fork/execvp so the test owns the serve process's real PID — popen would
// hand back the shell's, and SIGKILL must hit the referee itself.
pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log != nullptr) ::dup2(::fileno(stdout), 2);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);
  ::execvp(cargv[0], cargv.data());
  std::_Exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

class RecoverySoak : public ::testing::TestWithParam<int> {
 protected:
  std::string dir_;

  void SetUp() override {
    if (g_ustream_bin.empty()) {
      const char* env = std::getenv("USTREAM_BIN");
      if (env != nullptr) g_ustream_bin = env;
    }
    if (g_ustream_bin.empty()) GTEST_SKIP() << "ustream binary path not provided";
    char tmpl[] = "/tmp/ustream_recovery_soak_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }

  void TearDown() override {
    if (dir_.empty()) return;
    if (HasFailure()) {
      // Keep the evidence: CI uploads $USTREAM_RECOVERY_ARTIFACT_DIR on
      // failure (.github/workflows/ci.yml), so park the WAL dir there.
      const char* artifact = std::getenv("USTREAM_RECOVERY_ARTIFACT_DIR");
      if (artifact != nullptr && artifact[0] != '\0') {
        run_cmd("mkdir -p '" + std::string(artifact) + "' && cp -r '" + dir_ +
                "' '" + artifact + "/'");
      }
      std::fprintf(stderr, "recovery soak failed; WAL dir preserved at %s\n",
                   dir_.c_str());
      return;
    }
    run_cmd("rm -rf '" + dir_ + "'");
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }
};

TEST_P(RecoverySoak, Kill9MidCollectionRecoversByteIdentical) {
  const int shards = GetParam();
  constexpr int kSites = 6;

  // Per-site sketch files over distinct but overlapping streams.
  std::vector<std::string> sketches;
  for (int site = 0; site < kSites; ++site) {
    const std::string trace = path("s" + std::to_string(site) + ".trace");
    const std::string sketch = path("s" + std::to_string(site) + ".sk");
    ASSERT_EQ(run_cmd(g_ustream_bin + " generate --distinct 4000 --items 12000 --seed " +
                      std::to_string(100 + site) + " --out " + trace + " >/dev/null 2>&1"),
              0);
    ASSERT_EQ(run_cmd(g_ustream_bin + " sketch --in " + trace +
                      " --eps 0.1 --delta 0.05 --seed 42 --out " + sketch +
                      " >/dev/null 2>&1"),
              0);
    sketches.push_back(sketch);
  }

  const std::string shards_flag = std::to_string(shards);
  const std::string sites_flag = std::to_string(kSites);

  // Reference: one uninterrupted run.
  const std::string ref_out = path("union_ref.sk");
  {
    const std::string port_file = path("ref_port.txt");
    const pid_t serve = spawn({g_ustream_bin, "serve", "--port", "0", "--sites", sites_flag,
                               "--shards", shards_flag, "--timeout-ms", "60000",
                               "--port-file", port_file, "--out", ref_out, "--json"},
                              path("ref_serve.log"));
    const std::uint16_t port = wait_for_port(port_file);
    ASSERT_NE(port, 0);
    for (int site = 0; site < kSites; ++site) {
      ASSERT_EQ(run_cmd(g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                        " --site " + std::to_string(site) + " " + sketches[site] +
                        " >/dev/null 2>&1"),
                0);
    }
    const int status = wait_exit(serve);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(path("ref_serve.log")).data();
  }
  const auto ref_bytes = slurp(ref_out);
  ASSERT_FALSE(ref_bytes.empty());

  // Crash run, phase 1: WAL on, accept half the sites, then SIGKILL.
  const std::string wal_dir = path("wal");
  const std::string rec_out = path("union_rec.sk");
  const std::string port_file = path("crash_port.txt");
  std::uint16_t port = 0;
  {
    const pid_t serve = spawn({g_ustream_bin, "serve", "--port", "0", "--sites", sites_flag,
                               "--shards", shards_flag, "--timeout-ms", "60000",
                               "--wal-dir", wal_dir, "--fsync", "interval",
                               "--snapshot-every", "2", "--port-file", port_file},
                              path("crash_serve.log"));
    port = wait_for_port(port_file);
    ASSERT_NE(port, 0);
    for (int site = 0; site < kSites / 2; ++site) {
      // push exits only after the referee's ack — so each of these frames
      // is already in the WAL (committed before the ack was queued).
      ASSERT_EQ(run_cmd(g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                        " --site " + std::to_string(site) + " " + sketches[site] +
                        " >/dev/null 2>&1"),
                0);
    }
    ASSERT_EQ(::kill(serve, SIGKILL), 0);
    const int status = wait_exit(serve);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }

  // Phase 2: while the referee is DOWN, start a pusher whose connect
  // backoff spans the restart (the "pushers retrying across the restart"
  // half of the acceptance criterion), plus a re-push of an already-acked
  // site that must dedup against recovered state.
  const int straddle_site = kSites / 2;
  const pid_t straddler =
      spawn({g_ustream_bin, "push", "--to", "127.0.0.1:" + std::to_string(port), "--site",
             std::to_string(straddle_site), "--connect-attempts", "60",
             sketches[straddle_site]},
            path("straddler.log"));
  std::this_thread::sleep_for(std::chrono::milliseconds{200});  // let it start failing

  // Phase 3: recover on the SAME port (the straddler is dialing it).
  {
    ::unlink(port_file.c_str());
    const pid_t serve = spawn({g_ustream_bin, "serve", "--port", std::to_string(port),
                               "--sites", sites_flag, "--shards", shards_flag,
                               "--timeout-ms", "60000", "--wal-dir", wal_dir, "--recover",
                               "--fsync", "interval", "--snapshot-every", "2",
                               "--port-file", port_file, "--out", rec_out, "--json"},
                              path("recover_serve.log"));
    ASSERT_NE(wait_for_port(port_file), 0);
    // Re-push an acked site: the referee died, the site's operator got
    // nervous and re-sent. Must be a clean duplicate, not a double count.
    ASSERT_EQ(run_cmd(g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                      " --site 0 " + sketches[0] + " >/dev/null 2>&1"),
              0);
    for (int site = straddle_site + 1; site < kSites; ++site) {
      ASSERT_EQ(run_cmd(g_ustream_bin + " push --to 127.0.0.1:" + std::to_string(port) +
                        " --site " + std::to_string(site) + " " + sketches[site] +
                        " >/dev/null 2>&1"),
                0);
    }
    const int straddler_status = wait_exit(straddler);
    EXPECT_TRUE(WIFEXITED(straddler_status) && WEXITSTATUS(straddler_status) == 0)
        << slurp(path("straddler.log")).data();
    const int status = wait_exit(serve);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(path("recover_serve.log")).data();

    const std::string serve_json(
        reinterpret_cast<const char*>(slurp(path("recover_serve.log")).data()),
        slurp(path("recover_serve.log")).size());
    EXPECT_NE(serve_json.find("\"degraded\":false"), std::string::npos) << serve_json;
    EXPECT_NE(serve_json.find("\"sites_reported\":" + sites_flag), std::string::npos)
        << serve_json;
    EXPECT_NE(serve_json.find("\"recovered_sites\":" + std::to_string(kSites / 2)),
              std::string::npos)
        << serve_json;
  }

  // The acceptance criterion: merged output byte-identical to the
  // uninterrupted run, across the kill -9 / recover boundary.
  const auto rec_bytes = slurp(rec_out);
  ASSERT_FALSE(rec_bytes.empty());
  EXPECT_EQ(rec_bytes, ref_bytes);
}

INSTANTIATE_TEST_SUITE_P(Shards, RecoverySoak, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "shard";
                         });

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) g_ustream_bin = argv[1];
  return RUN_ALL_TESTS();
}
