#include "stream/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/dense_map.h"
#include "common/error.h"

namespace ustream {
namespace {

std::size_t recount_union(const DistributedWorkload& w) {
  DenseSet u;
  for (const auto& stream : w.site_streams) {
    for (const Item& item : stream) u.insert(item.label);
  }
  return u.size();
}

TEST(Partitioner, UnionTruthMatchesRecount) {
  const auto w = make_distributed_workload(
      {.sites = 6, .union_distinct = 20'000, .overlap = 0.4, .duplication = 3.0,
       .zipf_alpha = 1.0, .seed = 1});
  EXPECT_EQ(w.union_distinct, 20'000u);
  EXPECT_EQ(recount_union(w), 20'000u);
}

TEST(Partitioner, PerSiteTruthMatchesRecount) {
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 10'000, .overlap = 0.25, .duplication = 2.0, .seed = 2});
  for (std::size_t s = 0; s < 4; ++s) {
    DenseSet set;
    for (const Item& item : w.site_streams[s]) set.insert(item.label);
    EXPECT_EQ(set.size(), w.site_distinct[s]) << s;
  }
}

TEST(Partitioner, ZeroOverlapPartitions) {
  const auto w = make_distributed_workload(
      {.sites = 8, .union_distinct = 30'000, .overlap = 0.0, .duplication = 1.5, .seed = 3});
  const auto sum = std::accumulate(w.site_distinct.begin(), w.site_distinct.end(),
                                   std::size_t{0});
  EXPECT_EQ(sum, w.union_distinct);
}

TEST(Partitioner, FullOverlapReplicatesEverywhere) {
  const auto w = make_distributed_workload(
      {.sites = 5, .union_distinct = 5000, .overlap = 1.0, .duplication = 1.0, .seed = 4});
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(w.site_distinct[s], 5000u) << s;
  }
}

TEST(Partitioner, OverlapInterpolates) {
  const auto lo = make_distributed_workload(
      {.sites = 4, .union_distinct = 20'000, .overlap = 0.1, .duplication = 1.0, .seed = 5});
  const auto hi = make_distributed_workload(
      {.sites = 4, .union_distinct = 20'000, .overlap = 0.7, .duplication = 1.0, .seed = 5});
  const auto sum_lo =
      std::accumulate(lo.site_distinct.begin(), lo.site_distinct.end(), std::size_t{0});
  const auto sum_hi =
      std::accumulate(hi.site_distinct.begin(), hi.site_distinct.end(), std::size_t{0});
  EXPECT_LT(sum_lo, sum_hi);  // more overlap -> more naive double counting
  EXPECT_GT(sum_lo, lo.union_distinct);
  EXPECT_LT(sum_hi, 4u * hi.union_distinct + 1);
}

TEST(Partitioner, DuplicationScalesStreamLength) {
  const auto w1 = make_distributed_workload(
      {.sites = 2, .union_distinct = 10'000, .overlap = 0.0, .duplication = 1.0, .seed = 6});
  const auto w4 = make_distributed_workload(
      {.sites = 2, .union_distinct = 10'000, .overlap = 0.0, .duplication = 4.0, .seed = 6});
  EXPECT_NEAR(static_cast<double>(w4.total_items) / static_cast<double>(w1.total_items), 4.0,
              0.1);
}

TEST(Partitioner, SumDistinctTruthMatchesManual) {
  const auto w = make_distributed_workload(
      {.sites = 3, .union_distinct = 3000, .overlap = 0.5, .duplication = 2.0, .seed = 7,
       .value_lo = 1.0, .value_hi = 5.0});
  DenseMap<double> values;
  for (const auto& stream : w.site_streams) {
    for (const Item& item : stream) values.try_emplace(item.label, item.value);
  }
  double sum = 0.0;
  for (const auto& e : values) sum += e.value;
  EXPECT_NEAR(sum, w.union_sum_distinct, 1e-6 * sum);
}

TEST(Partitioner, ValuesConsistentAcrossSites) {
  // A shared label must carry the same value at every site that sees it.
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 2000, .overlap = 0.8, .duplication = 1.0, .seed = 8,
       .value_lo = 0.0, .value_hi = 1.0});
  DenseMap<double> seen;
  for (const auto& stream : w.site_streams) {
    for (const Item& item : stream) {
      auto [entry, inserted] = seen.try_emplace(item.label, item.value);
      if (!inserted) {
        ASSERT_DOUBLE_EQ(entry->value, item.value);
      }
    }
  }
}

TEST(Partitioner, DeterministicPerSeed) {
  const DistributedConfig cfg{.sites = 3, .union_distinct = 1000, .overlap = 0.2,
                              .duplication = 2.0, .seed = 9};
  const auto a = make_distributed_workload(cfg);
  const auto b = make_distributed_workload(cfg);
  ASSERT_EQ(a.site_streams.size(), b.site_streams.size());
  for (std::size_t s = 0; s < a.site_streams.size(); ++s) {
    EXPECT_EQ(a.site_streams[s], b.site_streams[s]);
  }
}

TEST(Partitioner, RejectsBadConfig) {
  EXPECT_THROW(make_distributed_workload({.sites = 0}), InvalidArgument);
  EXPECT_THROW(make_distributed_workload({.sites = 2, .union_distinct = 10, .overlap = 1.5}),
               InvalidArgument);
  EXPECT_THROW(
      make_distributed_workload({.sites = 2, .union_distinct = 10, .duplication = 0.5}),
      InvalidArgument);
  EXPECT_THROW(make_distributed_workload({.sites = 2, .union_distinct = 0}), InvalidArgument);
}

}  // namespace
}  // namespace ustream
