// Exact-equivalence contract of the batched ingestion path: add_batch must
// produce BIT-IDENTICAL sampler state to per-item add(), for every hash
// family, capacity, stream shape, and chunking — including chunks that
// straddle level raises — and the equivalence must survive merges and
// thread-parallel sharding. Checked by serializing both states and
// comparing the bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/ams_f0.h"
#include "baselines/bjkst.h"
#include "baselines/exact.h"
#include "baselines/factory.h"
#include "baselines/fm_pcsa.h"
#include "baselines/hyperloglog.h"
#include "baselines/kmv.h"
#include "baselines/linear_counting.h"
#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "distributed/sharding.h"
#include "hash/batch.h"
#include "hash/field61.h"
#include "hash/hash_family.h"
#include "netmon/monitor.h"
#include "netmon/trace_gen.h"
#include "stream/generators.h"

namespace ustream {
namespace {

std::vector<std::uint64_t> uniform_labels(std::size_t count, std::uint64_t seed) {
  std::vector<std::uint64_t> labels(count);
  Xoshiro256 rng(seed);
  for (auto& l : labels) l = rng.next();
  return labels;
}

std::vector<std::uint64_t> zipf_labels(std::size_t distinct, std::size_t total,
                                       std::uint64_t seed) {
  SyntheticStream stream({.distinct = distinct, .total_items = total, .zipf_alpha = 1.2,
                          .seed = seed});
  std::vector<std::uint64_t> labels;
  labels.reserve(total);
  for (const Item& item : stream.to_vector()) labels.push_back(item.label);
  return labels;
}

// Feeds `labels` into `fn` as consecutive chunks of (ragged) size `chunk`.
template <typename Fn>
void in_chunks(std::span<const std::uint64_t> labels, std::size_t chunk, Fn fn) {
  for (std::size_t i = 0; i < labels.size(); i += chunk) {
    fn(labels.subspan(i, std::min(chunk, labels.size() - i)));
  }
}

template <typename Hash>
void expect_sampler_batch_equivalence(std::size_t capacity,
                                      const std::vector<std::uint64_t>& labels) {
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{32},
                            std::size_t{1000}, labels.size()}) {
    CoordinatedSampler<Hash, Unit> scalar(capacity, 42);
    CoordinatedSampler<Hash, Unit> batched(capacity, 42);
    for (std::uint64_t l : labels) scalar.add(l);
    in_chunks(labels, chunk, [&](auto span) { batched.add_batch(span); });
    ASSERT_EQ(scalar.serialize(), batched.serialize())
        << "capacity=" << capacity << " chunk=" << chunk;
    ASSERT_EQ(scalar.items_processed(), batched.items_processed());
    ASSERT_EQ(scalar.level_raises(), batched.level_raises());
  }
}

TEST(BatchEquivalence, SamplerAcrossHashFamiliesAndCapacities) {
  const auto uniform = uniform_labels(20'000, 7);
  const auto zipf = zipf_labels(5'000, 20'000, 8);
  for (std::size_t capacity : {std::size_t{4}, std::size_t{64}, std::size_t{1024}}) {
    expect_sampler_batch_equivalence<PairwiseHash>(capacity, uniform);
    expect_sampler_batch_equivalence<PairwiseHash>(capacity, zipf);
    expect_sampler_batch_equivalence<TabulationHash>(capacity, uniform);
    expect_sampler_batch_equivalence<MurmurMixHash>(capacity, zipf);
    expect_sampler_batch_equivalence<MultiplyShiftHash>(capacity, uniform);
  }
}

TEST(BatchEquivalence, SamplerMidBatchLevelRaises) {
  // Tiny capacity + all-distinct stream: the level climbs repeatedly inside
  // a single add_batch call, exercising the stale-mask re-check path.
  const auto labels = uniform_labels(30'000, 11);
  CoordinatedSampler<PairwiseHash, Unit> scalar(8, 3);
  CoordinatedSampler<PairwiseHash, Unit> batched(8, 3);
  for (std::uint64_t l : labels) scalar.add(l);
  batched.add_batch(labels);  // one giant batch
  EXPECT_GT(scalar.level(), 8);  // the stream really does climb
  EXPECT_EQ(scalar.serialize(), batched.serialize());
}

TEST(BatchEquivalence, ValuedSamplerCarriesValues) {
  const auto labels = uniform_labels(10'000, 13);
  std::vector<double> values(labels.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = label_value(labels[i], 99, 0.5, 2.0);
  }
  CoordinatedSampler<PairwiseHash, double> scalar(128, 5);
  CoordinatedSampler<PairwiseHash, double> batched(128, 5);
  for (std::size_t i = 0; i < labels.size(); ++i) scalar.add(labels[i], values[i]);
  for (std::size_t i = 0; i < labels.size(); i += 333) {
    const std::size_t n = std::min<std::size_t>(333, labels.size() - i);
    batched.add_batch(std::span<const std::uint64_t>(labels).subspan(i, n),
                      std::span<const double>(values).subspan(i, n));
  }
  EXPECT_EQ(scalar.serialize(), batched.serialize());
  EXPECT_DOUBLE_EQ(scalar.estimate_sum(), batched.estimate_sum());
}

TEST(BatchEquivalence, SurvivesMerges) {
  const auto a = uniform_labels(15'000, 17);
  const auto b = zipf_labels(4'000, 15'000, 19);
  auto scalar_fed = [](const std::vector<std::uint64_t>& labels) {
    CoordinatedSampler<PairwiseHash, Unit> s(64, 23);
    for (std::uint64_t l : labels) s.add(l);
    return s;
  };
  auto batch_fed = [](const std::vector<std::uint64_t>& labels) {
    CoordinatedSampler<PairwiseHash, Unit> s(64, 23);
    in_chunks(labels, 97, [&](auto span) { s.add_batch(span); });
    return s;
  };
  auto s1 = scalar_fed(a), s2 = scalar_fed(b);
  auto b1 = batch_fed(a), b2 = batch_fed(b);
  s1.merge(s2);
  b1.merge(b2);
  EXPECT_EQ(s1.serialize(), b1.serialize());
  // Merged-then-batched continues identically to merged-then-scalar.
  const auto tail = uniform_labels(5'000, 29);
  for (std::uint64_t l : tail) s1.add(l);
  b1.add_batch(tail);
  EXPECT_EQ(s1.serialize(), b1.serialize());
}

TEST(BatchEquivalence, F0EstimatorAllCopies) {
  const auto labels = zipf_labels(30'000, 60'000, 31);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 37);
  F0Estimator scalar(params);
  F0Estimator batched(params);
  for (std::uint64_t l : labels) scalar.add(l);
  in_chunks(labels, 513, [&](auto span) { batched.add_batch(span); });
  EXPECT_EQ(scalar.serialize(), batched.serialize());
  EXPECT_DOUBLE_EQ(scalar.estimate(), batched.estimate());
}

TEST(BatchEquivalence, DistinctSumEstimator) {
  const auto params = EstimatorParams::for_guarantee(0.15, 0.1, 41);
  SyntheticStream stream({.distinct = 8'000, .total_items = 30'000, .zipf_alpha = 0.8,
                          .seed = 43, .value_lo = 1.0, .value_hi = 10.0});
  const auto items = stream.to_vector();
  std::vector<std::uint64_t> labels;
  std::vector<double> values;
  for (const Item& item : items) {
    labels.push_back(item.label);
    values.push_back(item.value);
  }
  DistinctSumEstimator scalar(params);
  DistinctSumEstimator batched(params);
  for (const Item& item : items) scalar.add(item.label, item.value);
  for (std::size_t i = 0; i < labels.size(); i += 777) {
    const std::size_t n = std::min<std::size_t>(777, labels.size() - i);
    batched.add_batch(std::span<const std::uint64_t>(labels).subspan(i, n),
                      std::span<const double>(values).subspan(i, n));
  }
  EXPECT_EQ(scalar.serialize(), batched.serialize());
  EXPECT_DOUBLE_EQ(scalar.estimate_sum(), batched.estimate_sum());
}

TEST(BatchEquivalence, ParallelShardingIsDeterministic) {
  SyntheticStream stream({.distinct = 40'000, .total_items = 120'000, .zipf_alpha = 1.1,
                          .seed = 47});
  const auto items = stream.to_vector();
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 53);
  F0Estimator sequential(params);
  for (const Item& item : items) sequential.add(item.label);
  const auto expected = sequential.serialize();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const F0Estimator parallel = sketch_in_parallel(items, params, threads);
    EXPECT_EQ(expected, parallel.serialize()) << "threads=" << threads;
  }
}

TEST(BatchEquivalence, BaselinesMatchScalarState) {
  const auto uniform = uniform_labels(25'000, 59);
  const auto zipf = zipf_labels(6'000, 25'000, 61);
  for (const auto* labels : {&uniform, &zipf}) {
    std::vector<std::pair<std::unique_ptr<DistinctCounter>,
                          std::unique_ptr<DistinctCounter>>> pairs;
    auto make_pair = [&pairs](auto factory) {
      pairs.emplace_back(factory(), factory());
    };
    make_pair([] { return std::make_unique<ExactDistinctCounter>(); });
    make_pair([] { return std::make_unique<FmPcsaCounter>(64, 7); });
    make_pair([] { return std::make_unique<AmsF0Counter>(9, 7); });
    make_pair([] { return std::make_unique<BjkstCounter>(256, 7); });
    make_pair([] { return std::make_unique<KmvCounter>(512, 7); });
    make_pair([] { return std::make_unique<LinearCountingCounter>(1 << 16, 7); });
    make_pair([] { return std::make_unique<HyperLogLogCounter>(12, 7); });
    make_pair([] {
      return std::make_unique<GtCounter>(EstimatorParams::for_guarantee(0.1, 0.1, 7));
    });
    for (auto& [scalar, batched] : pairs) {
      for (std::uint64_t l : *labels) scalar->add(l);
      in_chunks(*labels, 129, [&](auto span) { batched->add_batch(span); });
      // Identical internal state implies exactly identical estimates.
      EXPECT_EQ(scalar->estimate(), batched->estimate()) << scalar->name();
    }
  }
}

TEST(BatchEquivalence, DefaultAddBatchFallback) {
  // A counter that does NOT override add_batch must still match: the
  // interface default loops over add().
  class LoopCounter final : public DistinctCounter {
   public:
    void add(std::uint64_t label) override { inner_.add(label); }
    double estimate() const override { return inner_.estimate(); }
    void merge(const DistinctCounter&) override {}
    std::size_t bytes_used() const override { return inner_.bytes_used(); }
    std::string name() const override { return "loop"; }
    std::unique_ptr<DistinctCounter> clone_empty() const override {
      return std::make_unique<LoopCounter>();
    }

   private:
    ExactDistinctCounter inner_;
  };
  const auto labels = uniform_labels(5'000, 67);
  LoopCounter scalar, batched;
  for (std::uint64_t l : labels) scalar.add(l);
  batched.add_batch(labels);
  EXPECT_EQ(scalar.estimate(), batched.estimate());
}

// Pins the PairwiseHash hash_block kernel (SIMD on hosts that have it)
// against the scalar field evaluation, lane by lane, including the inputs
// that stress the Mersenne reduction: values at and around p = 2^61 - 1,
// all-ones words, and every sub-vector tail length.
TEST(BatchEquivalence, PairwiseHashBlockMatchesScalarExactly) {
  constexpr std::uint64_t p = field61::kPrime;
  std::vector<std::uint64_t> labels = {0,     1,      2,          p - 1, p,
                                       p + 1, 2 * p,  2 * p + 1,  ~0ull, ~0ull - 1,
                                       1ull << 61,    (1ull << 61) - 1,  1ull << 63,
                                       (1ull << 63) + p};
  Xoshiro256 rng(2027);
  for (int i = 0; i < 500; ++i) labels.push_back(rng.next());
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const PairwiseHash hash(seed);
    for (std::uint64_t reject_mask : {0ull, 1ull, 0xffull, (1ull << 20) - 1}) {
      // Cover every tail length 1..64 plus full blocks.
      for (std::size_t n = 1; n <= 64; ++n) {
        for (std::size_t start = 0; start + n <= labels.size();
             start += 97) {  // a stride, to vary alignment and content
          std::uint64_t out[64];
          const std::uint64_t survivors =
              hash_block(hash, labels.data() + start, out, n, reject_mask);
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint64_t expected = hash(labels[start + j]);
            ASSERT_EQ(out[j], expected)
                << "seed " << seed << " label " << labels[start + j];
            ASSERT_EQ((survivors >> j) & 1,
                      std::uint64_t{(expected & reject_mask) == 0});
          }
          if (n < 64) {
            ASSERT_EQ(survivors >> n, 0u);  // no bits beyond the block
          }
        }
      }
    }
  }
}

TEST(BatchEquivalence, LinkMonitorObserveBatch) {
  const auto params = EstimatorParams::for_guarantee(0.15, 0.1, 71);
  NetworkConfig config;
  config.links = 1;
  config.flows_per_link = 5'000;
  config.seed = 73;
  const auto packets = make_network_workload(config).link_traces.front();
  LinkMonitor scalar(params);
  LinkMonitor batched(params);
  for (const Packet& p : packets) scalar.observe(p);
  for (std::size_t i = 0; i < packets.size(); i += 700) {
    const std::size_t n = std::min<std::size_t>(700, packets.size() - i);
    batched.observe_batch(std::span<const Packet>(packets).subspan(i, n));
  }
  EXPECT_EQ(scalar.packets_observed(), batched.packets_observed());
  EXPECT_EQ(scalar.report(), batched.report());
}

}  // namespace
}  // namespace ustream
