#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace ustream {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Sample, QuantilesAndMedian) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
}

TEST(Sample, SingleElement) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Sample, ErrorsOnEmptyOrBadQ) {
  Sample s;
  EXPECT_THROW(s.quantile(0.5), InvalidArgument);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(s.quantile(1.1), InvalidArgument);
}

TEST(Sample, FractionAbove) {
  Sample s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_above(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 1.0);
}

TEST(Sample, MeanAndStddev) {
  Sample s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MedianOf, OddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW(median_of({}), InvalidArgument);
}

TEST(MedianOf, U64) {
  EXPECT_EQ(median_of_u64({5, 1, 9}), 5u);
  EXPECT_EQ(median_of_u64({1}), 1u);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(signed_relative_error(90, 100), -0.1);
  EXPECT_DOUBLE_EQ(signed_relative_error(110, 100), 0.1);
}

}  // namespace
}  // namespace ustream
