// Shared property suite over every distinct counter behind the common
// interface (parameterized), plus the factory sizing rules.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/factory.h"
#include "common/error.h"
#include "common/random.h"
#include "common/stats.h"

namespace ustream {
namespace {

struct CounterCase {
  CounterKind kind;
  double accuracy_band;  // generous acceptance band, 100k-distinct stream
  double small_band;     // band at 100 distinct (some baselines have known
                         // small-range bias; GT/KMV are exact there)
};

void PrintTo(const CounterCase& c, std::ostream* os) { *os << to_string(c.kind); }

class EveryCounter : public ::testing::TestWithParam<CounterCase> {
 protected:
  std::unique_ptr<DistinctCounter> make(std::uint64_t seed = 77) const {
    return make_counter_for_epsilon(GetParam().kind, 0.1, seed, 1 << 20);
  }
};

TEST_P(EveryCounter, SmallCountsAreTight) {
  auto c = make();
  for (std::uint64_t x = 0; x < 100; ++x) c->add(x * 1'000'003);
  EXPECT_NEAR(c->estimate(), 100.0, 100.0 * GetParam().small_band) << c->name();
}

TEST_P(EveryCounter, LargeStreamWithinBand) {
  auto c = make();
  Xoshiro256 rng(1);
  constexpr std::size_t kDistinct = 100'000;
  for (std::size_t i = 0; i < kDistinct; ++i) c->add(rng.next());
  EXPECT_LT(relative_error(c->estimate(), kDistinct), GetParam().accuracy_band) << c->name();
}

TEST_P(EveryCounter, DuplicateInsensitive) {
  auto once = make(33);
  auto many = make(33);
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> labels;
  for (int i = 0; i < 20'000; ++i) labels.push_back(rng.next());
  for (auto x : labels) once->add(x);
  for (int rep = 0; rep < 4; ++rep) {
    for (auto x : labels) many->add(x);
  }
  EXPECT_DOUBLE_EQ(once->estimate(), many->estimate()) << once->name();
}

TEST_P(EveryCounter, MergeIsUnion) {
  auto a = make(44);
  auto b = a->clone_empty();
  auto whole = a->clone_empty();
  Xoshiro256 rng(3);
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t x = rng.next();
    whole->add(x);
    (i % 2 ? *a : *b).add(x);
  }
  a->merge(*b);
  EXPECT_DOUBLE_EQ(a->estimate(), whole->estimate()) << a->name();
}

TEST_P(EveryCounter, MergeRejectsWrongType) {
  auto c = make(55);
  // Merge with a counter of a different concrete type must throw.
  auto other = make_counter_for_epsilon(GetParam().kind == CounterKind::kKmv
                                            ? CounterKind::kHyperLogLog
                                            : CounterKind::kKmv,
                                        0.1, 55);
  EXPECT_THROW(c->merge(*other), InvalidArgument);
}

TEST_P(EveryCounter, CloneEmptyIsEmptyAndCompatible) {
  auto c = make(66);
  for (std::uint64_t x = 0; x < 1000; ++x) c->add(x);
  auto fresh = c->clone_empty();
  EXPECT_DOUBLE_EQ(fresh->estimate(), 0.0);
  fresh->merge(*c);  // compatible lineage
  EXPECT_DOUBLE_EQ(fresh->estimate(), c->estimate());
}

TEST_P(EveryCounter, BytesUsedIsPositive) {
  auto c = make();
  EXPECT_GT(c->bytes_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EveryCounter,
    ::testing::Values(CounterCase{CounterKind::kGibbonsTirthapura, 0.10, 0.001},
                      CounterCase{CounterKind::kFmPcsa, 0.25, 1.2},
                      CounterCase{CounterKind::kAmsF0, 4.0, 4.0},
                      CounterCase{CounterKind::kBjkst, 0.20, 0.35},
                      CounterCase{CounterKind::kKmv, 0.20, 0.001},
                      CounterCase{CounterKind::kLinearCounting, 0.10, 0.05},
                      CounterCase{CounterKind::kHyperLogLog, 0.15, 0.35}),
    [](const auto& param_info) {
      std::string name = to_string(param_info.param.kind);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Factory, ExactCounterIsExact) {
  auto c = make_counter_for_epsilon(CounterKind::kExact, 0.1, 1);
  for (std::uint64_t x = 0; x < 12'345; ++x) c->add(x);
  for (std::uint64_t x = 0; x < 1000; ++x) c->add(x);  // duplicates
  EXPECT_DOUBLE_EQ(c->estimate(), 12'345.0);
}

TEST(Factory, SpaceBudgetRoughlyRespected) {
  for (CounterKind kind : all_sketch_kinds()) {
    for (std::size_t budget : {1u << 12, 1u << 16}) {
      auto c = make_counter_for_space(kind, budget, 2);
      // Within 8x of budget in either direction (sketch granularity).
      EXPECT_LT(c->bytes_used(), budget * 8) << to_string(kind) << " @" << budget;
      EXPECT_GT(c->bytes_used(), budget / 8) << to_string(kind) << " @" << budget;
    }
  }
}

TEST(Factory, NamesRoundTrip) {
  for (CounterKind kind : all_sketch_kinds()) {
    auto c = make_counter_for_epsilon(kind, 0.2, 3);
    EXPECT_EQ(c->name(), to_string(kind));
  }
}

TEST(Factory, EpsilonTightensSketches) {
  // Smaller epsilon must not shrink the sketch.
  for (CounterKind kind : all_sketch_kinds()) {
    auto loose = make_counter_for_epsilon(kind, 0.2, 4);
    auto tight = make_counter_for_epsilon(kind, 0.02, 4);
    EXPECT_GE(tight->bytes_used(), loose->bytes_used()) << to_string(kind);
  }
}

TEST(Factory, RejectsBadArguments) {
  EXPECT_THROW(make_counter_for_epsilon(CounterKind::kKmv, 0.0, 1), InvalidArgument);
  EXPECT_THROW(make_counter_for_epsilon(CounterKind::kKmv, 1.0, 1), InvalidArgument);
  EXPECT_THROW(make_counter_for_space(CounterKind::kKmv, 16, 1), InvalidArgument);
}

}  // namespace
}  // namespace ustream
