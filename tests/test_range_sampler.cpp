// Range-efficient coordinated sampling (extension E11).
#include "core/range_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/stats.h"

namespace ustream {
namespace {

TEST(RangeSampler, SinglePointsMatchSurvivalRule) {
  RangeSampler s(1 << 14, 3);
  for (std::uint64_t x = 0; x < 2000; ++x) s.add(x);
  EXPECT_EQ(s.level(), 0);
  EXPECT_EQ(s.size(), 2000u);
  EXPECT_DOUBLE_EQ(s.estimate_distinct(), 2000.0);
}

TEST(RangeSampler, IntervalEqualsPointInserts) {
  // Feeding [lo, hi] as one interval or as hi-lo+1 points must yield the
  // same sample (state equivalence of the range-efficient path).
  RangeSampler by_range(64, 7);
  RangeSampler by_points(64, 7);
  constexpr std::uint64_t kLo = 1'000'000, kHi = 1'020'000;
  by_range.add_range(kLo, kHi);
  for (std::uint64_t x = kLo; x <= kHi; ++x) by_points.add(x);
  EXPECT_EQ(by_range.level(), by_points.level());
  auto a = by_range.sample_labels(), b = by_points.sample_labels();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RangeSampler, SampleHoldsExactlyTheSurvivors) {
  RangeSampler s(128, 11);
  s.add_range(5'000'000, 5'500'000);
  for (auto x : s.sample_labels()) {
    EXPECT_TRUE(s.survives(x));
    EXPECT_GE(x, 5'000'000u);
    EXPECT_LE(x, 5'500'000u);
  }
  EXPECT_EQ(s.size(), static_cast<std::size_t>(
                          s.count_survivors(5'000'000, 5'500'000, s.threshold())));
}

TEST(RangeSampler, WideIntervalAccuracy) {
  // One interval of width 10M: estimate within a loose band (single
  // sampler, no median boosting -> allow 3 sigma-ish slack).
  RangeSampler s(4096, 13);
  constexpr std::uint64_t kWidth = 10'000'000;
  s.add_range(123'456'789, 123'456'789 + kWidth - 1);
  EXPECT_LT(relative_error(s.estimate_distinct(), static_cast<double>(kWidth)), 0.1);
}

TEST(RangeSampler, OverlappingIntervalsDoNotDoubleCount) {
  RangeSampler once(512, 17);
  RangeSampler twice(512, 17);
  once.add_range(1000, 200'000);
  twice.add_range(1000, 200'000);
  twice.add_range(1000, 200'000);            // identical
  twice.add_range(50'000, 150'000);          // contained
  EXPECT_EQ(once.level(), twice.level());
  auto a = once.sample_labels(), b = twice.sample_labels();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RangeSampler, ManySmallIntervalsAccuracy) {
  // Disjoint intervals of width 100 -> F0 = 100 * count.
  RangeSampler s(2048, 19);
  constexpr int kIntervals = 2000;
  for (int i = 0; i < kIntervals; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1000 + 5;
    s.add_range(base, base + 99);
  }
  EXPECT_LT(relative_error(s.estimate_distinct(), 100.0 * kIntervals), 0.15);
}

TEST(RangeSampler, CapacityInvariant) {
  RangeSampler s(100, 23);
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t lo = rng.below(RangeSampler::kDomain - 1'000'000);
    s.add_range(lo, lo + rng.below(1'000'000));
    ASSERT_LE(s.size(), 100u);
  }
}

TEST(RangeSampler, MergeEqualsConcat) {
  RangeSampler whole(128, 29), a(128, 29), b(128, 29);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t lo = rng.below(1ull << 40);
    const std::uint64_t hi = lo + rng.below(1 << 20);
    whole.add_range(lo, hi);
    ((i % 2) ? a : b).add_range(lo, hi);
  }
  a.merge(b);
  // Both paths implement "minimal level at which the covered set fits", so
  // the states agree exactly.
  EXPECT_EQ(a.level(), whole.level());
  auto la = a.sample_labels(), lw = whole.sample_labels();
  std::sort(la.begin(), la.end());
  std::sort(lw.begin(), lw.end());
  EXPECT_EQ(la, lw);
}

TEST(RangeSampler, MismatchedMergeRejected) {
  RangeSampler a(64, 1), b(64, 2), c(32, 1);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(a.merge(c), InvalidArgument);
}

TEST(RangeSampler, SerializeRoundtrip) {
  RangeSampler s(256, 31);
  s.add_range(10'000, 3'000'000);
  auto restored = RangeSampler::deserialize(s.serialize());
  EXPECT_EQ(restored.level(), s.level());
  EXPECT_EQ(restored.size(), s.size());
  auto a = s.sample_labels(), b = restored.sample_labels();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RangeSampler, SerializeRejectsCorruption) {
  RangeSampler s(64, 37);
  s.add_range(0, 1'000'000);
  auto bytes = s.serialize();
  bytes[0] = 0x7f;
  EXPECT_THROW(RangeSampler::deserialize(bytes), SerializationError);
}

TEST(RangeSampler, RejectsBadIntervals) {
  RangeSampler s(64, 41);
  EXPECT_THROW(s.add_range(10, 9), InvalidArgument);
  EXPECT_THROW(s.add_range(0, RangeSampler::kDomain), InvalidArgument);
}

TEST(RangeF0Estimator, MedianBoostedAccuracy) {
  RangeF0Estimator est(0.1, 0.05, 43);
  constexpr std::uint64_t kWidth = 5'000'000;
  est.add_range(1ull << 35, (1ull << 35) + kWidth - 1);
  EXPECT_LT(relative_error(est.estimate(), static_cast<double>(kWidth)), 0.1);
}

TEST(RangeF0Estimator, AgreesWithPointEstimatorOnPointStreams) {
  // Same inputs as points: both paths estimate the same truth well.
  RangeF0Estimator ranged(0.1, 0.05, 47);
  Xoshiro256 rng(3);
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) ranged.add(rng.below(RangeSampler::kDomain));
  EXPECT_LT(relative_error(ranged.estimate(), kN), 0.1);
}

TEST(RangeF0Estimator, MergeAcrossSites) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 53);
  RangeF0Estimator a(params), b(params);
  a.add_range(0, 2'000'000);
  b.add_range(1'000'000, 3'000'000);  // overlaps a
  a.merge(b);
  EXPECT_LT(relative_error(a.estimate(), 3'000'001.0), 0.1);
}

}  // namespace
}  // namespace ustream
