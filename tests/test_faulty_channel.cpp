// FaultyChannel: seeded fault injection must be deterministic, honest in
// its accounting, and degrade to a perfect Channel at p = 0.
#include "distributed/faulty_channel.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ustream {
namespace {

std::vector<std::uint8_t> message(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(FaultyChannel, NoFaultsBehavesLikeChannel) {
  FaultyChannel ch(2, FaultSpec{}, 1);
  ch.send(0, message(10, 0xAA));
  ch.send(1, message(20, 0xBB));
  const auto delivered = ch.drain();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], message(10, 0xAA));
  EXPECT_EQ(delivered[1], message(20, 0xBB));
  const auto stats = ch.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.total_bytes, 30u);
  EXPECT_EQ(stats.bytes_per_site[0], 10u);
  EXPECT_EQ(stats.bytes_per_site[1], 20u);
  EXPECT_EQ(ch.fault_stats().injected(), 0u);
}

TEST(FaultyChannel, CertainDropDeliversNothingButChargesBytes) {
  FaultyChannel ch(1, FaultSpec::dropping(1.0), 2);
  for (int i = 0; i < 50; ++i) ch.send(0, message(100, 1));
  EXPECT_TRUE(ch.drain().empty());
  // The sender still paid for every attempt.
  EXPECT_EQ(ch.stats().messages, 50u);
  EXPECT_EQ(ch.stats().total_bytes, 5000u);
  EXPECT_EQ(ch.fault_stats().dropped, 50u);
  EXPECT_EQ(ch.fault_stats().delivered, 0u);
}

TEST(FaultyChannel, CertainDuplicationDeliversTwoCopies) {
  FaultyChannel ch(1, FaultSpec::duplicating(1.0), 3);
  for (int i = 0; i < 20; ++i) ch.send(0, message(8, static_cast<std::uint8_t>(i)));
  EXPECT_EQ(ch.drain().size(), 40u);
  EXPECT_EQ(ch.fault_stats().duplicated, 20u);
  EXPECT_EQ(ch.fault_stats().delivered, 40u);
  // Duplicates are a network artifact: the site sent (and paid for) 20.
  EXPECT_EQ(ch.stats().messages, 20u);
}

TEST(FaultyChannel, CorruptionMutatesBytesButKeepsDelivery) {
  FaultyChannel ch(1, FaultSpec::corrupting(1.0), 4);
  const auto original = message(64, 0x5A);
  int mutated = 0;
  for (int i = 0; i < 100; ++i) {
    ch.send(0, original);
    for (const auto& got : ch.drain()) {
      if (got != original) ++mutated;
    }
  }
  const auto fs = ch.fault_stats();
  EXPECT_EQ(fs.delivered, 100u);
  EXPECT_EQ(fs.corrupted(), fs.truncated + fs.bit_flipped);
  EXPECT_GT(fs.corrupted(), 0u);
  EXPECT_GT(mutated, 0);
}

TEST(FaultyChannel, SameSeedSameFaults) {
  for (int round = 0; round < 2; ++round) {
    FaultyChannel a(3, FaultSpec::chaos(0.3), 99);
    FaultyChannel b(3, FaultSpec::chaos(0.3), 99);
    for (int i = 0; i < 200; ++i) {
      a.send(static_cast<std::size_t>(i % 3), message(32, static_cast<std::uint8_t>(i)));
      b.send(static_cast<std::size_t>(i % 3), message(32, static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(a.drain(), b.drain());
    EXPECT_EQ(a.fault_stats().injected(), b.fault_stats().injected());
  }
}

TEST(FaultyChannel, PerSiteConfigIsolatesTheFlakySite) {
  FaultyChannel ch(2, FaultSpec{}, 5);
  ch.set_site_faults(1, FaultSpec::dropping(1.0));
  for (int i = 0; i < 30; ++i) {
    ch.send(0, message(4, 0));
    ch.send(1, message(4, 1));
  }
  const auto delivered = ch.drain();
  ASSERT_EQ(delivered.size(), 30u);  // only site 0's messages arrive
  for (const auto& m : delivered) EXPECT_EQ(m[0], 0);
  EXPECT_EQ(ch.fault_stats().dropped, 30u);
}

TEST(FaultyChannel, RejectsUnregisteredSites) {
  FaultyChannel ch(2, FaultSpec{}, 6);
  EXPECT_THROW(ch.send(2, message(1, 0)), ProtocolError);
  EXPECT_THROW(ch.set_site_faults(7, FaultSpec{}), ProtocolError);
}

}  // namespace
}  // namespace ustream
