#include "stream/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/serialize.h"
#include "stream/generators.h"

namespace ustream {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ustream_trace_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceIoTest, RoundtripEmpty) {
  write_trace(path_, {});
  EXPECT_TRUE(read_trace(path_).empty());
}

TEST_F(TraceIoTest, RoundtripTypical) {
  SyntheticStream s({.distinct = 2000, .total_items = 10'000, .zipf_alpha = 1.1, .seed = 1,
                     .value_lo = 0.0, .value_hi = 100.0});
  const auto items = s.to_vector();
  write_trace(path_, items);
  EXPECT_EQ(read_trace(path_), items);
}

TEST_F(TraceIoTest, RoundtripExtremeValues) {
  std::vector<Item> items = {
      {0, 0.0}, {~std::uint64_t{0}, -1.5e300}, {1, 1e-300}, {42, 0.0}};
  write_trace(path_, items);
  EXPECT_EQ(read_trace(path_), items);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_trace(::testing::TempDir() + "/definitely_missing_ustream.bin"),
               InvalidArgument);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTATRACEFILE_____";
  out.close();
  EXPECT_THROW(read_trace(path_), SerializationError);
}

TEST_F(TraceIoTest, TruncatedFileThrows) {
  SyntheticStream s({.distinct = 100, .total_items = 500, .seed = 2});
  write_trace(path_, s.to_vector());
  // Truncate in the middle.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), {});
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<long>(contents.size() / 2));
  out.close();
  EXPECT_THROW(read_trace(path_), SerializationError);
}

TEST_F(TraceIoTest, TrailingGarbageThrows) {
  write_trace(path_, {{1, 2.0}});
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "x";
  out.close();
  EXPECT_THROW(read_trace(path_), SerializationError);
}

TEST_F(TraceIoTest, ClusteredLabelsCompressWell) {
  // XOR-delta coding should make consecutive labels tiny on disk.
  std::vector<Item> clustered;
  for (std::uint64_t i = 0; i < 10'000; ++i) clustered.push_back({i + (1ull << 40), 0.0});
  write_trace(path_, clustered);
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  // 8 bytes of value + ~2 bytes of label per item, plus header.
  EXPECT_LT(size, 10'000u * 11);
}

}  // namespace
}  // namespace ustream
