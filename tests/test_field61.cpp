#include "hash/field61.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace ustream {
namespace {

using field61::kPrime;

// Slow reference reduction via native 128-bit modulo.
std::uint64_t ref_mod(unsigned __int128 v) { return static_cast<std::uint64_t>(v % kPrime); }

TEST(Field61, PrimeValue) {
  EXPECT_EQ(kPrime, (std::uint64_t{1} << 61) - 1);
}

TEST(Field61, ReduceMatchesReferenceOnEdges) {
  const unsigned __int128 cases[] = {
      0,
      1,
      kPrime - 1,
      kPrime,
      kPrime + 1,
      2 * static_cast<unsigned __int128>(kPrime),
      static_cast<unsigned __int128>(kPrime) * kPrime,          // max a*b
      static_cast<unsigned __int128>(kPrime) * kPrime + kPrime - 1,  // max a*b + c
  };
  for (auto v : cases) {
    EXPECT_EQ(field61::reduce(v), ref_mod(v));
  }
}

TEST(Field61, ReduceMatchesReferenceRandom) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t a = rng.next() % kPrime;
    const std::uint64_t b = rng.next() % kPrime;
    const std::uint64_t c = rng.next() % kPrime;
    const unsigned __int128 v = static_cast<unsigned __int128>(a) * b + c;
    ASSERT_EQ(field61::reduce(v), ref_mod(v));
  }
}

TEST(Field61, MulAddAgreesWithComposition) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t a = rng.next() % kPrime;
    const std::uint64_t b = rng.next() % kPrime;
    const std::uint64_t c = rng.next() % kPrime;
    ASSERT_EQ(field61::mul_add(a, b, c), field61::add(field61::mul(a, b), c));
  }
}

TEST(Field61, AddWrapsCorrectly) {
  EXPECT_EQ(field61::add(kPrime - 1, 1), 0u);
  EXPECT_EQ(field61::add(kPrime - 1, kPrime - 1), kPrime - 2);
  EXPECT_EQ(field61::add(0, 0), 0u);
}

TEST(Field61, MulIdentityAndZero) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next() % kPrime;
    EXPECT_EQ(field61::mul(a, 1), a);
    EXPECT_EQ(field61::mul(a, 0), 0u);
  }
}

TEST(Field61, MulCommutativeAssociative) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next() % kPrime;
    const std::uint64_t b = rng.next() % kPrime;
    const std::uint64_t c = rng.next() % kPrime;
    ASSERT_EQ(field61::mul(a, b), field61::mul(b, a));
    ASSERT_EQ(field61::mul(field61::mul(a, b), c), field61::mul(a, field61::mul(b, c)));
  }
}

TEST(Field61, CanonMapsIntoRange) {
  EXPECT_EQ(field61::canon(kPrime), 0u);
  EXPECT_EQ(field61::canon(kPrime - 1), kPrime - 1);
  EXPECT_EQ(field61::canon(~std::uint64_t{0}), ref_mod(~std::uint64_t{0}));
  Xoshiro256 rng(31);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next();
    const std::uint64_t c = field61::canon(v);
    ASSERT_LT(c, kPrime);
    ASSERT_EQ(c, ref_mod(v));
  }
}

TEST(Field61, MulIsBijectiveForNonzeroA) {
  // a * x runs over all residues as x does (a != 0): sample and check no
  // collisions among distinct x.
  const std::uint64_t a = 0x123456789abcdefULL % kPrime;
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 4096; ++x) outs.insert(field61::mul(a, x));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace ustream
