// Fault-injection soak matrix (ctest label: soak).
//
// The acceptance bar for the fault-tolerant collection subsystem:
//   * under seeded drop/duplicate/corrupt faults, collect() converges via
//     retries and the referee state is BIT-IDENTICAL to a fault-free run
//     (each site merged exactly once, no corrupted frame ever accepted);
//   * the CollectReport's books balance: attempts/retries/missing sites
//     reconcile with what the channel actually did;
//   * total loss degrades, never lies: the estimate becomes a reported
//     lower bound with every missing site named.
#include <gtest/gtest.h>

#include <memory>

#include "distributed/faulty_channel.h"
#include "distributed/protocols.h"
#include "distributed/runtime.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

constexpr std::size_t kSites = 6;

DistributedWorkload soak_workload(std::uint64_t seed) {
  return make_distributed_workload({.sites = kSites, .union_distinct = 20'000,
                                    .overlap = 0.4, .duplication = 1.5, .seed = seed});
}

RetryPolicy soak_policy() {
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;  // p=0.5 drop: residual loss 2^-16 per site
  policy.sleep_on_backoff = false;    // schedule still computed, just not slept
  return policy;
}

// Runs collection over the given transport and returns the referee bytes.
// Fault stats must be copied out BEFORE the run (which owns the transport)
// is destroyed — callers get them via `fault_out`, never a raw pointer into
// the channel.
std::vector<std::uint8_t> run_collect(const DistributedWorkload& w,
                                      const EstimatorParams& params,
                                      std::unique_ptr<Transport> transport,
                                      const RetryPolicy& policy, CollectReport* report_out,
                                      FaultStats* fault_out = nullptr) {
  const bool faulty = transport != nullptr;
  DistributedRun<F0Estimator> run(kSites, [&params] { return F0Estimator(params); },
                                  std::move(transport));
  for (std::size_t s = 0; s < kSites; ++s) {
    for (const Item& item : w.site_streams[s]) run.site(s).add(item.label);
  }
  const auto bytes = run.collect(policy).serialize();
  if (report_out) *report_out = run.collect_report();
  if (fault_out && faulty) {
    *fault_out = dynamic_cast<FaultyChannel&>(run.transport()).fault_stats();
  }
  return bytes;
}

class SoakMatrix : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(FaultLevels, SoakMatrix, ::testing::Values(0.05, 0.2, 0.5));

TEST_P(SoakMatrix, CollectConvergesBitIdenticallyUnderEachFaultMix) {
  const double p = GetParam();
  const auto w = soak_workload(11);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 21);
  const auto fault_free =
      run_collect(w, params, nullptr, soak_policy(), nullptr);

  struct Mix {
    const char* name;
    FaultSpec spec;
    // Only the single-fault mixes pin down WHICH counter must move; in the
    // combined mix a given fault can legitimately never fire in the few
    // sends a 6-site collect needs, so there only the invariants apply.
    bool pure;
  };
  const Mix mixes[] = {
      {"drop", FaultSpec::dropping(p), true},
      {"duplicate", FaultSpec::duplicating(p), true},
      {"corrupt", FaultSpec::corrupting(p), true},
      {"drop+duplicate+corrupt", FaultSpec::chaos(p), false},
  };
  std::uint64_t mix_index = 0;
  for (const Mix& mix : mixes) {
    auto channel = std::make_unique<FaultyChannel>(
        kSites, mix.spec,
        0xFA017 * (static_cast<std::uint64_t>(p * 100) + 1) + mix_index++);
    CollectReport report;
    FaultStats fs;
    const auto faulty =
        run_collect(w, params, std::move(channel), soak_policy(), &report, &fs);

    ASSERT_TRUE(report.complete()) << mix.name << " p=" << p << "\n" << report.summary();
    // Bit-identical referee: every site merged exactly once, and no
    // corrupted frame slipped past the CRC into the merge.
    EXPECT_EQ(faulty, fault_free) << mix.name << " p=" << p;

    // The report's books must balance against the channel's ground truth.
    std::uint64_t attempts = 0;
    for (const auto& site : report.per_site) {
      EXPECT_TRUE(site.reported);
      EXPECT_FALSE(site.exhausted);
      EXPECT_GE(site.attempts, 1u);
      attempts += site.attempts;
    }
    EXPECT_EQ(attempts, fs.sends) << mix.name;
    EXPECT_EQ(report.retries, attempts - kSites) << mix.name;
    // Nothing is quarantined that the channel didn't actually corrupt.
    EXPECT_LE(report.frames_quarantined, fs.corrupted()) << mix.name;
    // Ground-truth coupling for the single-fault mixes: whenever the
    // channel injected a fault, the report must have paid for it — a drop
    // forces a retry, a clean duplicate is deduped, a corruption is
    // quarantined. (In the combined mix faults interact — e.g. a corrupted
    // duplicate is quarantined, not deduped — so only invariants apply.)
    if (mix.pure) {
      if (fs.dropped > 0) {
        EXPECT_GT(report.retries, 0u) << mix.name;
      }
      if (fs.duplicated > 0) {
        EXPECT_GT(report.duplicates_dropped, 0u) << mix.name;
      }
      if (fs.corrupted() > 0) {
        EXPECT_GT(report.frames_quarantined, 0u) << mix.name;
      }
      // And at meaningful fault rates the seeded channel really does
      // misbehave, so the convergence above was earned through recovery.
      if (p >= 0.2) {
        EXPECT_GT(fs.injected(), 0u) << mix.name;
      }
    }
  }
}

TEST(Soak, TotalLossDegradesAndNamesEveryMissingSite) {
  const auto w = soak_workload(12);
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 22);
  RetryPolicy policy;
  policy.max_attempts_per_site = 3;
  policy.sleep_on_backoff = false;
  DistributedRun<F0Estimator> run(
      kSites, [&params] { return F0Estimator(params); },
      std::make_unique<FaultyChannel>(kSites, FaultSpec::dropping(1.0), 7));
  for (std::size_t s = 0; s < kSites; ++s) {
    for (const Item& item : w.site_streams[s]) run.site(s).add(item.label);
  }
  const double estimate = run.collect(policy).estimate();
  const CollectReport& report = run.collect_report();
  EXPECT_EQ(estimate, 0.0);  // empty union: maximally degraded lower bound
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.sites_reported, 0u);
  EXPECT_EQ(report.missing_sites().size(), kSites);
  for (const auto& site : report.per_site) {
    EXPECT_TRUE(site.exhausted);
    EXPECT_EQ(site.attempts, 3u);
  }
  EXPECT_NE(report.summary().find("DEGRADED"), std::string::npos);
  EXPECT_NE(report.summary().find("exhausted"), std::string::npos);
}

TEST(Soak, SingleFlakySiteDegradesOnlyItsPrefix) {
  // One site's link is down; the other five must still merge cleanly and
  // the estimate must stay a sane lower bound of the union.
  const auto w = soak_workload(13);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 23);
  auto channel = std::make_unique<FaultyChannel>(kSites, FaultSpec{}, 8);
  channel->set_site_faults(2, FaultSpec::dropping(1.0));
  RetryPolicy policy;
  policy.max_attempts_per_site = 4;
  policy.sleep_on_backoff = false;
  DistributedRun<F0Estimator> run(kSites, [&params] { return F0Estimator(params); },
                                  std::move(channel));
  for (std::size_t s = 0; s < kSites; ++s) {
    for (const Item& item : w.site_streams[s]) run.site(s).add(item.label);
  }
  const double estimate = run.collect(policy).estimate();
  const CollectReport& report = run.collect_report();
  EXPECT_EQ(report.sites_reported, kSites - 1);
  ASSERT_EQ(report.missing_sites(), std::vector<std::size_t>{2});
  // Lower bound: missing one site can only remove distinct labels.
  EXPECT_LT(estimate, 1.1 * static_cast<double>(w.union_distinct));
  // ...but the five reporting sites still cover most of the union here.
  EXPECT_GT(estimate, 0.5 * static_cast<double>(w.union_distinct));
}

// The parallel referee (tree reduction on the merge-engine pool) must be
// byte-identical to the plain sequential site-order merge for every payload
// kind — through a chaotic channel, and in degraded (partial-site)
// collections where the reduction has to skip gaps.
template <typename Sketch>
void expect_parallel_referee_matches_sequential(
    const std::function<Sketch()>& make,
    const std::function<void(std::size_t, Sketch&)>& feed, std::uint64_t seed) {
  // Sequential reference: fold locally-built site sketches in site order —
  // no engine, no transport, no frames.
  std::vector<Sketch> local;
  for (std::size_t s = 0; s < kSites; ++s) {
    Sketch sketch = make();
    feed(s, sketch);
    local.push_back(std::move(sketch));
  }
  const auto fold_bytes = [&local](const std::vector<bool>& present) {
    std::optional<Sketch> acc;
    for (std::size_t s = 0; s < kSites; ++s) {
      if (!present[s]) continue;
      if (!acc) {
        acc = local[s];
      } else {
        acc->merge(local[s]);
      }
    }
    return acc->serialize();
  };

  MergeEngine engine(4);
  {  // Complete collection through a chaotic channel.
    DistributedRun<Sketch> run(
        kSites, make, std::make_unique<FaultyChannel>(kSites, FaultSpec::chaos(0.2), seed));
    for (std::size_t s = 0; s < kSites; ++s) feed(s, run.site(s));
    const auto& referee = run.collect(soak_policy(), &engine);
    ASSERT_TRUE(run.collect_report().complete()) << run.collect_report().summary();
    EXPECT_EQ(referee.serialize(), fold_bytes(std::vector<bool>(kSites, true)));
  }
  {  // Degraded: site 2's link is dead, so the reduction must skip its gap.
    auto channel = std::make_unique<FaultyChannel>(kSites, FaultSpec{}, seed + 1);
    channel->set_site_faults(2, FaultSpec::dropping(1.0));
    DistributedRun<Sketch> run(kSites, make, std::move(channel));
    for (std::size_t s = 0; s < kSites; ++s) feed(s, run.site(s));
    RetryPolicy policy;
    policy.max_attempts_per_site = 3;
    policy.sleep_on_backoff = false;
    const auto& referee = run.collect(policy, &engine);
    ASSERT_EQ(run.collect_report().missing_sites(), std::vector<std::size_t>{2});
    std::vector<bool> present(kSites, true);
    present[2] = false;
    EXPECT_EQ(referee.serialize(), fold_bytes(present));
  }
}

TEST(Soak, ParallelRefereeMatchesSequentialMergeForF0) {
  const auto w = soak_workload(15);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 25);
  expect_parallel_referee_matches_sequential<F0Estimator>(
      [&params] { return F0Estimator(params); },
      [&w](std::size_t s, F0Estimator& sketch) {
        for (const Item& item : w.site_streams[s]) sketch.add(item.label);
      },
      41);
}

TEST(Soak, ParallelRefereeMatchesSequentialMergeForDistinctSum) {
  const auto w = soak_workload(16);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 26);
  expect_parallel_referee_matches_sequential<DistinctSumEstimator>(
      [&params] { return DistinctSumEstimator(params); },
      [&w](std::size_t s, DistinctSumEstimator& sketch) {
        for (const Item& item : w.site_streams[s]) sketch.add(item.label, item.value);
      },
      43);
}

TEST(Soak, RetransmitStormMergesEachSiteExactlyOnce) {
  // duplicate=1.0 doubles every frame; dedup by (site, epoch) must make
  // the referee indistinguishable from a clean run.
  const auto w = soak_workload(14);
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 24);
  const auto clean = run_collect(w, params, nullptr, soak_policy(), nullptr);
  CollectReport report;
  const auto noisy = run_collect(
      w, params, std::make_unique<FaultyChannel>(kSites, FaultSpec::duplicating(1.0), 9),
      soak_policy(), &report);
  EXPECT_EQ(noisy, clean);
  EXPECT_EQ(report.duplicates_dropped, kSites);  // one extra copy per site
  EXPECT_EQ(report.retries, 0u);
}

}  // namespace
}  // namespace ustream
