// Wire-format tests: the serialized sampler is the distributed model's
// message, so roundtrip fidelity and rejection of corrupt input are part
// of the protocol's correctness.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/coordinated_sampler.h"

namespace ustream {
namespace {

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;
using ValueSampler = CoordinatedSampler<PairwiseHash, double>;

Sampler make_loaded_sampler(std::size_t capacity, std::uint64_t seed, int items) {
  Sampler s(capacity, seed);
  Xoshiro256 rng(seed ^ 0xabcdef);
  for (int i = 0; i < items; ++i) s.add(rng.next());
  return s;
}

TEST(SamplerSerialize, RoundtripEmpty) {
  Sampler s(32, 5);
  auto restored = Sampler::deserialize(s.serialize());
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.level(), 0);
  EXPECT_EQ(restored.seed(), 5u);
  EXPECT_EQ(restored.capacity(), 32u);
}

TEST(SamplerSerialize, RoundtripLoadedStateEquality) {
  for (int items : {10, 1000, 50'000}) {
    Sampler s = make_loaded_sampler(64, 42, items);
    auto restored = Sampler::deserialize(s.serialize());
    EXPECT_EQ(restored.level(), s.level());
    EXPECT_EQ(restored.size(), s.size());
    auto a = s.sample_labels(), b = restored.sample_labels();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(restored.estimate_distinct(), s.estimate_distinct());
  }
}

TEST(SamplerSerialize, RestoredSamplerKeepsWorking) {
  Sampler s = make_loaded_sampler(64, 43, 10'000);
  auto restored = Sampler::deserialize(s.serialize());
  Xoshiro256 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t x = rng.next();
    s.add(x);
    restored.add(x);
  }
  EXPECT_EQ(s.level(), restored.level());
  EXPECT_EQ(s.size(), restored.size());
}

TEST(SamplerSerialize, ValueCarryingRoundtrip) {
  ValueSampler s(128, 7);
  for (std::uint64_t x = 1; x <= 100; ++x) s.add(x, static_cast<double>(x) * 0.5);
  auto restored = ValueSampler::deserialize(s.serialize());
  EXPECT_DOUBLE_EQ(restored.estimate_sum(), s.estimate_sum());
  EXPECT_EQ(restored.size(), s.size());
}

TEST(SamplerSerialize, U64ValueRoundtrip) {
  CoordinatedSampler<PairwiseHash, std::uint64_t> s(64, 8);
  s.add(10, 111);
  s.add(20, 222);
  auto restored =
      CoordinatedSampler<PairwiseHash, std::uint64_t>::deserialize(s.serialize());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.estimate_sum(), 333.0);
}

TEST(SamplerSerialize, MergedFromWireEqualsDirectMerge) {
  Sampler a = make_loaded_sampler(32, 11, 5000);
  Sampler b = make_loaded_sampler(32, 11, 7000);
  Sampler direct = a;
  direct.merge(b);
  auto via_wire = Sampler::deserialize(a.serialize());
  via_wire.merge(Sampler::deserialize(b.serialize()));
  EXPECT_EQ(via_wire.level(), direct.level());
  EXPECT_EQ(via_wire.size(), direct.size());
}

TEST(SamplerSerialize, WireSizeIsCompact) {
  // Level>0 states hold <= capacity labels; the message must be O(capacity)
  // words regardless of how many items streamed through (log-space claim).
  Sampler s = make_loaded_sampler(64, 12, 200'000);
  EXPECT_LE(s.serialize().size(), 64u * 10 + 32);
}

TEST(SamplerSerialize, RejectsBadVersion) {
  Sampler s = make_loaded_sampler(16, 13, 100);
  auto bytes = s.serialize();
  bytes[0] = 0x7f;
  EXPECT_THROW(Sampler::deserialize(bytes), SerializationError);
}

TEST(SamplerSerialize, RejectsValueKindMismatch) {
  ValueSampler s(16, 14);
  s.add(1, 2.0);
  auto bytes = s.serialize();
  EXPECT_THROW(Sampler::deserialize(bytes), SerializationError);
}

TEST(SamplerSerialize, RejectsTruncation) {
  Sampler s = make_loaded_sampler(16, 15, 1000);
  auto bytes = s.serialize();
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    std::vector<std::uint8_t> trunc(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(Sampler::deserialize(trunc), SerializationError) << cut;
  }
}

TEST(SamplerSerialize, RejectsTrailingGarbage) {
  Sampler s = make_loaded_sampler(16, 16, 100);
  auto bytes = s.serialize();
  bytes.push_back(0);
  EXPECT_THROW(Sampler::deserialize(bytes), SerializationError);
}

TEST(SamplerSerialize, RejectsTamperedLabels) {
  // Flipping a label delta breaks the "entry level consistent with seed"
  // check with overwhelming probability.
  Sampler s = make_loaded_sampler(16, 17, 5000);
  auto bytes = s.serialize();
  bool rejected = false;
  // Try a few tamper positions past the header.
  for (std::size_t pos = 16; pos < bytes.size() && !rejected; ++pos) {
    auto copy = bytes;
    copy[pos] ^= 0x55;
    try {
      (void)Sampler::deserialize(copy);
    } catch (const SerializationError&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
}

}  // namespace
}  // namespace ustream
