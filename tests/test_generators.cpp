#include "stream/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "common/dense_map.h"
#include "common/error.h"

namespace ustream {
namespace {

TEST(LabelPool, RandomLabelsAreDistinct) {
  const auto pool = make_label_pool(50'000, LabelKind::kRandom64, 1);
  std::set<std::uint64_t> s(pool.begin(), pool.end());
  EXPECT_EQ(s.size(), 50'000u);
}

TEST(LabelPool, SequentialIsIota) {
  const auto pool = make_label_pool(100, LabelKind::kSequential, 2);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(pool[i], i);
}

TEST(LabelPool, ClusteredHasRuns) {
  const auto pool = make_label_pool(1000, LabelKind::kClustered, 3);
  std::set<std::uint64_t> s(pool.begin(), pool.end());
  EXPECT_EQ(s.size(), 1000u);
  // Consecutive members within a run differ by 1.
  int consecutive = 0;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    if (pool[i] == pool[i - 1] + 1) ++consecutive;
  }
  EXPECT_GT(consecutive, 900);
}

TEST(LabelPool, DeterministicPerSeed) {
  EXPECT_EQ(make_label_pool(1000, LabelKind::kRandom64, 7),
            make_label_pool(1000, LabelKind::kRandom64, 7));
  EXPECT_NE(make_label_pool(1000, LabelKind::kRandom64, 7),
            make_label_pool(1000, LabelKind::kRandom64, 8));
}

TEST(LabelValue, DeterministicAndInRange) {
  for (std::uint64_t label : {0ull, 1ull, 42ull, ~0ull}) {
    const double v = label_value(label, 5, 2.0, 10.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 10.0);
    EXPECT_DOUBLE_EQ(v, label_value(label, 5, 2.0, 10.0));
  }
  EXPECT_NE(label_value(1, 5, 0.0, 1.0), label_value(2, 5, 0.0, 1.0));
  EXPECT_NE(label_value(1, 5, 0.0, 1.0), label_value(1, 6, 0.0, 1.0));
}

TEST(SyntheticStream, TruthMatchesEmission) {
  SyntheticStream stream({.distinct = 5000, .total_items = 30'000, .zipf_alpha = 1.0,
                          .seed = 9});
  DenseSet seen;
  std::size_t count = 0;
  while (!stream.done()) {
    seen.insert(stream.next().label);
    ++count;
  }
  EXPECT_EQ(count, 30'000u);
  EXPECT_EQ(seen.size(), 5000u);
  EXPECT_EQ(stream.true_distinct(), 5000u);
}

TEST(SyntheticStream, EveryPoolLabelAppears) {
  SyntheticStream stream({.distinct = 1000, .total_items = 1000, .seed = 10});
  DenseSet seen;
  while (!stream.done()) seen.insert(stream.next().label);
  for (std::uint64_t label : stream.labels()) EXPECT_TRUE(seen.contains(label));
}

TEST(SyntheticStream, ValuesAreConsistentPerLabel) {
  SyntheticStream stream({.distinct = 200, .total_items = 5000, .zipf_alpha = 1.5,
                          .seed = 11, .value_lo = 1.0, .value_hi = 3.0});
  DenseMap<double> first_value;
  while (!stream.done()) {
    const Item item = stream.next();
    auto [entry, inserted] = first_value.try_emplace(item.label, item.value);
    if (!inserted) {
      EXPECT_DOUBLE_EQ(entry->value, item.value);
    }
  }
}

TEST(SyntheticStream, TrueSumMatchesManualSum) {
  SyntheticStream stream({.distinct = 300, .total_items = 300, .seed = 12,
                          .value_lo = 0.5, .value_hi = 2.5});
  double sum = 0.0;
  while (!stream.done()) sum += stream.next().value;
  EXPECT_NEAR(sum, stream.true_sum_distinct(), 1e-9);
}

TEST(SyntheticStream, ResetReplaysIdentically) {
  SyntheticStream stream({.distinct = 500, .total_items = 5000, .zipf_alpha = 0.8,
                          .seed = 13});
  std::vector<Item> first;
  while (!stream.done()) first.push_back(stream.next());
  stream.reset();
  for (const Item& want : first) {
    ASSERT_FALSE(stream.done());
    EXPECT_EQ(stream.next(), want);
  }
}

TEST(SyntheticStream, ToVectorMatchesStreaming) {
  SyntheticStream stream({.distinct = 100, .total_items = 700, .zipf_alpha = 1.0,
                          .seed = 14});
  const auto vec = stream.to_vector();
  EXPECT_EQ(vec.size(), 700u);
  stream.reset();
  for (const Item& want : vec) EXPECT_EQ(stream.next(), want);
}

TEST(SyntheticStream, RejectsBadConfig) {
  EXPECT_THROW(SyntheticStream({.distinct = 0, .total_items = 10}), InvalidArgument);
  EXPECT_THROW(SyntheticStream({.distinct = 100, .total_items = 50}), InvalidArgument);
  EXPECT_THROW(SyntheticStream({.distinct = 10, .total_items = 10, .value_lo = 2.0,
                                .value_hi = 1.0}),
               InvalidArgument);
}

TEST(SyntheticStream, ExhaustionThrows) {
  SyntheticStream stream({.distinct = 2, .total_items = 2, .seed = 15});
  stream.next();
  stream.next();
  EXPECT_TRUE(stream.done());
  EXPECT_THROW(stream.next(), InvalidArgument);
}

}  // namespace
}  // namespace ustream
