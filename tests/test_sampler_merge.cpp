// The merge laws — what makes the referee's union computation sound.
// The strongest property (and the one the distributed model needs) is
// EXACT state equivalence: merging per-site samplers yields bit-for-bit
// the state of one sampler that saw the concatenation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "core/coordinated_sampler.h"

namespace ustream {
namespace {

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

std::vector<std::uint64_t> sorted_labels(const Sampler& s) {
  auto v = s.sample_labels();
  std::sort(v.begin(), v.end());
  return v;
}

void expect_same_state(const Sampler& a, const Sampler& b) {
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(sorted_labels(a), sorted_labels(b));
}

// Parameterized over (capacity, #streams, labels per stream, overlap seed).
struct MergeCase {
  std::size_t capacity;
  std::size_t streams;
  std::size_t labels_per_stream;
  std::uint64_t seed;
};

class MergeEqualsConcat : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MergeEqualsConcat, StateEquivalence) {
  const auto p = GetParam();
  const std::uint64_t shared_seed = SplitMix64::mix(p.seed);
  Xoshiro256 rng(p.seed);

  // Build t per-stream label lists with some cross-stream repetition.
  std::vector<std::vector<std::uint64_t>> streams(p.streams);
  std::vector<std::uint64_t> shared;
  for (std::size_t i = 0; i < p.labels_per_stream / 4 + 1; ++i) shared.push_back(rng.next());
  for (auto& st : streams) {
    for (std::size_t i = 0; i < p.labels_per_stream; ++i) {
      st.push_back(rng.bernoulli(0.3) ? shared[rng.below(shared.size())] : rng.next());
    }
  }

  Sampler concat(p.capacity, shared_seed);
  std::vector<Sampler> parts;
  for (const auto& st : streams) {
    Sampler s(p.capacity, shared_seed);
    for (auto x : st) {
      s.add(x);
      concat.add(x);
    }
    parts.push_back(std::move(s));
  }
  Sampler merged = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) merged.merge(parts[i]);
  expect_same_state(merged, concat);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeEqualsConcat,
    ::testing::Values(MergeCase{8, 2, 100, 1}, MergeCase{8, 2, 5000, 2},
                      MergeCase{64, 4, 2000, 3}, MergeCase{64, 16, 500, 4},
                      MergeCase{256, 3, 20'000, 5}, MergeCase{16, 8, 3000, 6},
                      MergeCase{1024, 2, 800, 7},   // under-capacity merge
                      MergeCase{4, 4, 10'000, 8},   // extreme pressure
                      MergeCase{128, 32, 300, 9}, MergeCase{512, 5, 8000, 10}));

TEST(SamplerMerge, Commutative) {
  Xoshiro256 rng(21);
  Sampler a(32, 77), b(32, 77);
  for (int i = 0; i < 3000; ++i) a.add(rng.next());
  for (int i = 0; i < 3000; ++i) b.add(rng.next());
  Sampler ab = a;
  ab.merge(b);
  Sampler ba = b;
  ba.merge(a);
  expect_same_state(ab, ba);
}

TEST(SamplerMerge, Associative) {
  Xoshiro256 rng(22);
  Sampler a(32, 78), b(32, 78), c(32, 78);
  for (int i = 0; i < 2000; ++i) a.add(rng.next());
  for (int i = 0; i < 2000; ++i) b.add(rng.next());
  for (int i = 0; i < 2000; ++i) c.add(rng.next());
  Sampler left = a;
  left.merge(b);
  left.merge(c);
  Sampler bc = b;
  bc.merge(c);
  Sampler right = a;
  right.merge(bc);
  expect_same_state(left, right);
}

TEST(SamplerMerge, IdempotentOnSelf) {
  Xoshiro256 rng(23);
  Sampler a(32, 79);
  for (int i = 0; i < 5000; ++i) a.add(rng.next());
  Sampler twice = a;
  twice.merge(a);
  expect_same_state(twice, a);
}

TEST(SamplerMerge, WithEmptyIsIdentity) {
  Xoshiro256 rng(24);
  Sampler a(32, 80);
  for (int i = 0; i < 5000; ++i) a.add(rng.next());
  Sampler empty(32, 80);
  Sampler m = a;
  m.merge(empty);
  expect_same_state(m, a);
  Sampler m2 = empty;
  m2.merge(a);
  expect_same_state(m2, a);
}

TEST(SamplerMerge, MismatchedSeedRejected) {
  Sampler a(32, 1), b(32, 2);
  EXPECT_FALSE(a.can_merge_with(b));
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(SamplerMerge, MismatchedCapacityRejected) {
  Sampler a(32, 1), b(64, 1);
  EXPECT_FALSE(a.can_merge_with(b));
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(SamplerMerge, ItemsProcessedAccumulates) {
  Sampler a(32, 5), b(32, 5);
  for (std::uint64_t i = 0; i < 10; ++i) a.add(i);
  for (std::uint64_t i = 0; i < 20; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.items_processed(), 30u);
}

TEST(SamplerMerge, ValueCarryingMergePreservesValues) {
  CoordinatedSampler<PairwiseHash, double> a(128, 9), b(128, 9);
  a.add(1, 10.0);
  b.add(2, 20.0);
  b.add(1, 999.0);  // duplicate with different value: a's copy also exists
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  // Sum = 10 + 20 (the label-1 value in `a` wins; b's 999 for label 1 is a
  // duplicate of an existing entry).
  EXPECT_DOUBLE_EQ(a.estimate_sum(), 30.0);
}

}  // namespace
}  // namespace ustream
