// Parameterized wire-format and merge-law matrix: every (hash family x
// value payload) combination the library instantiates goes through the
// same roundtrip + merge-law battery.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/frame.h"
#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"
#include "core/windowed_sampler.h"
#include "freq/freq_sketch.h"
#include "freq/universal_sketch.h"
#include "hash/hash_family.h"

namespace ustream {
namespace {

template <typename Hash, typename V>
struct Combo {
  using HashT = Hash;
  using ValueT = V;
};

template <typename C>
class WireMatrix : public ::testing::Test {};

using Combos = ::testing::Types<
    Combo<PairwiseHash, Unit>, Combo<PairwiseHash, double>,
    Combo<PairwiseHash, std::uint64_t>, Combo<TabulationHash, Unit>,
    Combo<MurmurMixHash, Unit>, Combo<MultiplyShiftHash, Unit>>;
TYPED_TEST_SUITE(WireMatrix, Combos, );

template <typename S>
S loaded(std::size_t capacity, std::uint64_t seed, int items, std::uint64_t rng_seed) {
  S s(capacity, seed);
  Xoshiro256 rng(rng_seed);
  for (int i = 0; i < items; ++i) {
    if constexpr (S::kHasValue) {
      s.add(rng.next(), typename S::Slot{}.value + 1);
    } else {
      s.add(rng.next());
    }
  }
  return s;
}

TYPED_TEST(WireMatrix, RoundtripPreservesState) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  for (int items : {0, 10, 5000}) {
    S s = loaded<S>(48, 7, items, 1);
    S restored = S::deserialize(s.serialize());
    ASSERT_EQ(restored.level(), s.level());
    ASSERT_EQ(restored.size(), s.size());
    auto a = s.sample_labels(), b = restored.sample_labels();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TYPED_TEST(WireMatrix, MergeEqualsConcat) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S whole(32, 9), a(32, 9), b(32, 9);
  Xoshiro256 rng(2);
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t x = rng.next();
    if constexpr (S::kHasValue) {
      whole.add(x, {});
      ((i % 2) ? a : b).add(x, {});
    } else {
      whole.add(x);
      ((i % 2) ? a : b).add(x);
    }
  }
  a.merge(b);
  ASSERT_EQ(a.level(), whole.level());
  ASSERT_EQ(a.size(), whole.size());
}

TYPED_TEST(WireMatrix, MergeAfterRoundtripEqualsDirect) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S a = loaded<S>(24, 11, 4000, 3);
  S b = loaded<S>(24, 11, 6000, 4);
  S direct = a;
  direct.merge(b);
  S via_wire = S::deserialize(a.serialize());
  via_wire.merge(S::deserialize(b.serialize()));
  ASSERT_EQ(via_wire.level(), direct.level());
  ASSERT_EQ(via_wire.size(), direct.size());
}

TYPED_TEST(WireMatrix, CrossHashMessagesRejected) {
  // A message produced under one value payload must not deserialize as
  // another (tag mismatch), and corrupt headers throw.
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S s = loaded<S>(16, 13, 100, 5);
  auto bytes = s.serialize();
  bytes[1] = static_cast<std::uint8_t>(bytes[1] + 1);  // flip the value tag
  ASSERT_THROW(S::deserialize(bytes), SerializationError);
}

TYPED_TEST(WireMatrix, SamplerDeltaRoundtripAcrossHashes) {
  // The delta encoding must hold for every hash family the library
  // instantiates: mirror(base) + delta(base -> live) == live, byte for
  // byte, including across level raises.
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S live(32, 17);
  Xoshiro256 rng(6);
  auto feed = [&](int items) {
    for (int i = 0; i < items; ++i) {
      if constexpr (S::kHasValue) {
        live.add(rng.next(), typename S::Slot{}.value + 1);
      } else {
        live.add(rng.next());
      }
    }
  };
  feed(500);
  const S base = live;
  S mirror = S::deserialize(base.serialize());
  feed(4000);  // enough to force level raises at capacity 32
  ASSERT_GT(live.level(), base.level());
  ByteWriter w;
  live.serialize_delta(w, base);
  const auto delta = w.take();
  ByteReader r(delta);
  mirror.apply_delta(r);
  ASSERT_EQ(mirror.serialize(), live.serialize());
}

// The three continuous-mode payload kinds (kWindowedF0, kF0Delta,
// kWindowedDelta) join the frame matrix: each roundtrips under its own
// kind and is rejected when the frame announces a different kind — the
// referee's kind dispatch is what keeps a delta from being parsed as a
// full sketch (and vice versa).
TEST(WireKindMatrix, ContinuousPayloadKindsRoundtripAndCrossReject) {
  F0Estimator f0(EstimatorParams{.capacity = 32, .copies = 3, .seed = 40});
  WindowedF0Estimator wf0(EstimatorParams{.capacity = 32, .copies = 3, .seed = 41});
  Xoshiro256 rng(7);
  std::uint64_t t = 0;
  for (int i = 0; i < 3000; ++i) {
    f0.add(rng.next());
    wf0.add(rng.next(), t++);
  }
  const F0Estimator f0_base = f0;
  const std::uint64_t base_seq = wf0.sequence(), base_ts = wf0.last_timestamp();
  std::vector<WindowedF0Estimator::Op> ops;
  for (int i = 0; i < 500; ++i) {
    const WindowedF0Estimator::Op op{rng.next(), t++};
    f0.add(op.first);
    wf0.add(op.first, op.second);
    ops.push_back(op);
  }

  const struct {
    PayloadKind kind;
    std::vector<std::uint8_t> payload;
  } rows[] = {
      {PayloadKind::kWindowedF0, wf0.serialize()},
      {PayloadKind::kF0Delta, f0.serialize_delta(f0_base)},
      {PayloadKind::kWindowedDelta,
       WindowedF0Estimator::encode_delta(base_seq, base_ts, ops)},
  };
  for (const auto& row : rows) {
    const auto framed = frame_encode({row.kind, 3, 9}, row.payload);
    const Frame frame = frame_decode(framed);
    ASSERT_EQ(frame.header.kind, row.kind);
    ASSERT_EQ(frame.payload, row.payload);
    for (const auto& other : rows) {
      if (other.kind == row.kind) continue;
      // Same bytes under the wrong kind: the dispatch layer must refuse
      // to hand them to the other decoder.
      ASSERT_NE(frame_decode(frame_encode({other.kind, 3, 9}, row.payload)).header.kind,
                row.kind);
    }
  }

  // And the payloads themselves cross-reject: a windowed full state is not
  // a valid f0 delta, an op-replay delta is not a valid windowed state.
  F0Estimator f0_mirror = f0_base;
  ASSERT_THROW(f0_mirror.apply_delta(std::span<const std::uint8_t>(rows[0].payload)),
               SerializationError);
  ASSERT_THROW(WindowedF0Estimator::deserialize(
                   std::span<const std::uint8_t>(rows[2].payload)),
               SerializationError);
  WindowedF0Estimator wf0_mirror =
      WindowedF0Estimator::deserialize(std::span<const std::uint8_t>(rows[0].payload));
  ASSERT_THROW(wf0_mirror.apply_delta(std::span<const std::uint8_t>(rows[1].payload)),
               SerializationError);
}

// The frequency payload kinds (kFreqSketch, kUniversalSketch) join the
// frame matrix: each roundtrips under its own kind, the frame layer keeps
// the kinds distinct, and the payloads themselves cross-reject — a
// universal sketch is not a valid freq sketch and vice versa, so a
// mis-tagged frame cannot be silently parsed as the wrong summary.
TEST(WireKindMatrix, FreqPayloadKindsRoundtripAndCrossReject) {
  FreqSketch freq(FreqConfig{.depth = 4, .width_log2 = 9, .heavy_capacity = 24, .seed = 60});
  UniversalSketch universal(UniversalConfig{.levels = 5, .depth = 4, .width_log2 = 8,
                                            .heavy_capacity = 16, .seed = 61});
  Xoshiro256 rng(62);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t label = rng.below(3'000);
    freq.add(label);
    universal.add(label);
  }

  const struct {
    PayloadKind kind;
    std::vector<std::uint8_t> payload;
  } rows[] = {
      {PayloadKind::kFreqSketch, freq.serialize()},
      {PayloadKind::kUniversalSketch, universal.serialize()},
  };
  for (const auto& row : rows) {
    const auto framed = frame_encode({row.kind, 2, 4}, row.payload);
    const Frame frame = frame_decode(framed);
    ASSERT_EQ(frame.header.kind, row.kind);
    ASSERT_EQ(frame.payload, row.payload);
    for (const auto& other : rows) {
      if (other.kind == row.kind) continue;
      ASSERT_NE(frame_decode(frame_encode({other.kind, 2, 4}, row.payload)).header.kind,
                row.kind);
    }
  }

  ASSERT_THROW(FreqSketch::deserialize(std::span<const std::uint8_t>(rows[1].payload)),
               SerializationError);
  ASSERT_THROW(UniversalSketch::deserialize(std::span<const std::uint8_t>(rows[0].payload)),
               SerializationError);
}

}  // namespace
}  // namespace ustream
