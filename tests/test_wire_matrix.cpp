// Parameterized wire-format and merge-law matrix: every (hash family x
// value payload) combination the library instantiates goes through the
// same roundtrip + merge-law battery.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "hash/hash_family.h"

namespace ustream {
namespace {

template <typename Hash, typename V>
struct Combo {
  using HashT = Hash;
  using ValueT = V;
};

template <typename C>
class WireMatrix : public ::testing::Test {};

using Combos = ::testing::Types<
    Combo<PairwiseHash, Unit>, Combo<PairwiseHash, double>,
    Combo<PairwiseHash, std::uint64_t>, Combo<TabulationHash, Unit>,
    Combo<MurmurMixHash, Unit>, Combo<MultiplyShiftHash, Unit>>;
TYPED_TEST_SUITE(WireMatrix, Combos, );

template <typename S>
S loaded(std::size_t capacity, std::uint64_t seed, int items, std::uint64_t rng_seed) {
  S s(capacity, seed);
  Xoshiro256 rng(rng_seed);
  for (int i = 0; i < items; ++i) {
    if constexpr (S::kHasValue) {
      s.add(rng.next(), typename S::Slot{}.value + 1);
    } else {
      s.add(rng.next());
    }
  }
  return s;
}

TYPED_TEST(WireMatrix, RoundtripPreservesState) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  for (int items : {0, 10, 5000}) {
    S s = loaded<S>(48, 7, items, 1);
    S restored = S::deserialize(s.serialize());
    ASSERT_EQ(restored.level(), s.level());
    ASSERT_EQ(restored.size(), s.size());
    auto a = s.sample_labels(), b = restored.sample_labels();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TYPED_TEST(WireMatrix, MergeEqualsConcat) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S whole(32, 9), a(32, 9), b(32, 9);
  Xoshiro256 rng(2);
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t x = rng.next();
    if constexpr (S::kHasValue) {
      whole.add(x, {});
      ((i % 2) ? a : b).add(x, {});
    } else {
      whole.add(x);
      ((i % 2) ? a : b).add(x);
    }
  }
  a.merge(b);
  ASSERT_EQ(a.level(), whole.level());
  ASSERT_EQ(a.size(), whole.size());
}

TYPED_TEST(WireMatrix, MergeAfterRoundtripEqualsDirect) {
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S a = loaded<S>(24, 11, 4000, 3);
  S b = loaded<S>(24, 11, 6000, 4);
  S direct = a;
  direct.merge(b);
  S via_wire = S::deserialize(a.serialize());
  via_wire.merge(S::deserialize(b.serialize()));
  ASSERT_EQ(via_wire.level(), direct.level());
  ASSERT_EQ(via_wire.size(), direct.size());
}

TYPED_TEST(WireMatrix, CrossHashMessagesRejected) {
  // A message produced under one value payload must not deserialize as
  // another (tag mismatch), and corrupt headers throw.
  using S = CoordinatedSampler<typename TypeParam::HashT, typename TypeParam::ValueT>;
  S s = loaded<S>(16, 13, 100, 5);
  auto bytes = s.serialize();
  bytes[1] = static_cast<std::uint8_t>(bytes[1] + 1);  // flip the value tag
  ASSERT_THROW(S::deserialize(bytes), SerializationError);
}

}  // namespace
}  // namespace ustream
