// The counting oracle behind the range sampler.
#include "core/floor_sum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "hash/field61.h"

namespace ustream {
namespace {

unsigned __int128 brute_floor_sum(std::uint64_t n, std::uint64_t m, std::uint64_t a,
                                  std::uint64_t b) {
  unsigned __int128 s = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    s += (static_cast<unsigned __int128>(a) * i + b) / m;
  }
  return s;
}

std::uint64_t brute_count_below(std::uint64_t n, std::uint64_t p, std::uint64_t a,
                                std::uint64_t b, std::uint64_t t) {
  std::uint64_t c = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * i + b) % p);
    if (v < t) ++c;
  }
  return c;
}

TEST(FloorSum, SmallExactCases) {
  EXPECT_EQ(floor_sum(0, 5, 3, 1), 0u);
  EXPECT_EQ(floor_sum(1, 5, 3, 1), 0u);   // floor(1/5)
  EXPECT_EQ(floor_sum(5, 1, 0, 0), 0u);
  EXPECT_EQ(floor_sum(4, 10, 6, 3), static_cast<unsigned __int128>(0 + 0 + 1 + 2));
}

TEST(FloorSum, MatchesBruteForceRandom) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t n = 1 + rng.below(2000);
    const std::uint64_t m = 1 + rng.below(1 << 20);
    const std::uint64_t a = rng.below(1 << 21);  // also exercises a >= m
    const std::uint64_t b = rng.below(1 << 21);
    ASSERT_EQ(floor_sum(n, m, a, b), brute_floor_sum(n, m, a, b))
        << n << " " << m << " " << a << " " << b;
  }
}

TEST(FloorSum, LargeFieldParametersRun) {
  // Smoke: field-sized parameters terminate and are self-consistent
  // (monotone in n).
  const std::uint64_t p = field61::kPrime;
  const std::uint64_t a = 0x1234567890abcdefULL % p;
  const std::uint64_t b = 0x0fedcba098765432ULL % p;
  const auto s1 = floor_sum(1'000'000, p, a, b);
  const auto s2 = floor_sum(2'000'000, p, a, b);
  EXPECT_LT(s1, s2);
}

TEST(CountBelowThreshold, MatchesBruteForceRandom) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t p = 97 + rng.below(1 << 16);
    const std::uint64_t n = 1 + rng.below(3000);
    const std::uint64_t a = rng.below(p);
    const std::uint64_t b = rng.below(p);
    const std::uint64_t t = rng.below(p + 1);
    ASSERT_EQ(count_below_threshold(n, p, a, b, t), brute_count_below(n, p, a, b, t))
        << p << " " << n << " " << a << " " << b << " " << t;
  }
}

TEST(CountBelowThreshold, Extremes) {
  const std::uint64_t p = 101;
  EXPECT_EQ(count_below_threshold(50, p, 13, 7, 0), 0u);
  EXPECT_EQ(count_below_threshold(50, p, 13, 7, p), 50u);
  EXPECT_EQ(count_below_threshold(0, p, 13, 7, 50), 0u);
}

TEST(CountBelowThreshold, FieldScaleAgainstSampling) {
  // At p = 2^61-1, count over a wide range with threshold p/8 must land
  // near n/8 for a generic affine map.
  const std::uint64_t p = field61::kPrime;
  const std::uint64_t a = 0x0badc0ffee123457ULL % p;
  const std::uint64_t b = 42;
  const std::uint64_t n = 10'000'000;
  const std::uint64_t t = p >> 3;
  const std::uint64_t c = count_below_threshold(n, p, a, b, t);
  EXPECT_NEAR(static_cast<double>(c), static_cast<double>(n) / 8.0,
              6.0 * std::sqrt(static_cast<double>(n) / 8.0) + 16.0);
}

TEST(CountBelowThreshold, RejectsThresholdAboveModulus) {
  EXPECT_THROW(count_below_threshold(10, 101, 3, 5, 102), InvalidArgument);
}

}  // namespace
}  // namespace ustream
