// Coordinated set expressions: union / intersection / difference / Jaccard
// from same-seed samplers.
#include "core/set_ops.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace ustream {
namespace {

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

// Builds two label sets with |A| = |B| = n and |A ∩ B| = shared.
struct TwoSets {
  std::vector<std::uint64_t> a, b;
};

TwoSets make_two_sets(std::size_t n, std::size_t shared, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TwoSets out;
  for (std::size_t i = 0; i < shared; ++i) {
    const std::uint64_t x = rng.next();
    out.a.push_back(x);
    out.b.push_back(x);
  }
  for (std::size_t i = shared; i < n; ++i) out.a.push_back(rng.next());
  for (std::size_t i = shared; i < n; ++i) out.b.push_back(rng.next());
  return out;
}

TEST(SetOps, ExactInSmallRegime) {
  const auto sets = make_two_sets(100, 40, 1);
  Sampler a(1024, 9), b(1024, 9);
  for (auto x : sets.a) a.add(x);
  for (auto x : sets.b) b.add(x);
  const SetCounts c = coordinated_set_counts(a, b);
  EXPECT_EQ(c.level, 0);
  EXPECT_DOUBLE_EQ(c.union_estimate(), 160.0);
  EXPECT_DOUBLE_EQ(c.intersection_estimate(), 40.0);
  EXPECT_DOUBLE_EQ(c.difference_estimate(), 60.0);
  EXPECT_DOUBLE_EQ(c.jaccard_estimate(), 0.25);
}

TEST(SetOps, CountsPartitionTheRestrictedSamples) {
  const auto sets = make_two_sets(50'000, 20'000, 2);
  Sampler a(256, 10), b(256, 10);
  for (auto x : sets.a) a.add(x);
  for (auto x : sets.b) b.add(x);
  const SetCounts c = coordinated_set_counts(a, b);
  EXPECT_EQ(c.level, std::max(a.level(), b.level()));
  // only_a + both = |S_A restricted|; sanity check against direct count.
  std::size_t a_restricted = 0;
  for (const auto& e : a.entries()) {
    if (e.value.level >= c.level) ++a_restricted;
  }
  EXPECT_EQ(c.only_a + c.both, a_restricted);
}

TEST(SetOps, MismatchedSeedsRejected) {
  Sampler a(64, 1), b(64, 2);
  EXPECT_THROW(coordinated_set_counts(a, b), InvalidArgument);
}

TEST(SetOps, EstimatorLevelAccuracy) {
  constexpr std::size_t kN = 80'000, kShared = 30'000;
  const auto sets = make_two_sets(kN, kShared, 3);
  const auto params = EstimatorParams::for_guarantee(0.08, 0.05, 21);
  F0Estimator a(params), b(params);
  for (auto x : sets.a) a.add(x);
  for (auto x : sets.b) b.add(x);
  const auto est = estimate_set_expressions(a, b);
  const double union_truth = 2.0 * kN - kShared;
  EXPECT_LT(relative_error(est.union_size, union_truth), 0.08);
  EXPECT_LT(relative_error(est.intersection_size, kShared), 0.25);
  EXPECT_LT(relative_error(est.difference_a_minus_b, kN - kShared), 0.25);
  EXPECT_NEAR(est.jaccard, static_cast<double>(kShared) / union_truth, 0.06);
}

TEST(SetOps, DisjointSetsGiveZeroIntersection) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 22);
  F0Estimator a(params), b(params);
  Xoshiro256 rng(4);
  for (int i = 0; i < 40'000; ++i) a.add(rng.next() | 1);        // odd labels
  for (int i = 0; i < 40'000; ++i) b.add(rng.next() & ~1ull);    // even labels
  const auto est = estimate_set_expressions(a, b);
  // Small sample intersections can fire spuriously only at tiny scale.
  EXPECT_LT(est.intersection_size / est.union_size, 0.02);
  EXPECT_LT(est.jaccard, 0.02);
}

TEST(SetOps, IdenticalSetsGiveJaccardOne) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 23);
  F0Estimator a(params), b(params);
  Xoshiro256 rng(5);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t x = rng.next();
    a.add(x);
    b.add(x);
  }
  const auto est = estimate_set_expressions(a, b);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0);
  EXPECT_DOUBLE_EQ(est.difference_a_minus_b, 0.0);
  EXPECT_DOUBLE_EQ(est.union_size, est.intersection_size);
}

TEST(SetOps, UnionMatchesMergeEstimateExactlyWhenUnionFits) {
  // When the restricted union fits in capacity, the set-expression union is
  // bit-identical to merge-then-estimate (the merge raises no further).
  const auto params = EstimatorParams{.capacity = 4096, .copies = 5, .seed = 24};
  F0Estimator a(params), b(params);
  Xoshiro256 rng(6);
  for (int i = 0; i < 1500; ++i) a.add(rng.next());
  for (int i = 0; i < 1500; ++i) b.add(rng.next());
  const auto est = estimate_set_expressions(a, b);
  F0Estimator merged = a;
  merged.merge(b);
  EXPECT_DOUBLE_EQ(est.union_size, merged.estimate());
}

TEST(SetOps, UnionTracksMergeEstimateUnderPressure) {
  // When the union overflows capacity the merge raises its level, so the
  // two estimates differ — but both stay within the error band.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 24);
  F0Estimator a(params), b(params);
  Xoshiro256 rng(6);
  for (int i = 0; i < 30'000; ++i) a.add(rng.next());
  for (int i = 0; i < 30'000; ++i) b.add(rng.next());
  const auto est = estimate_set_expressions(a, b);
  F0Estimator merged = a;
  merged.merge(b);
  EXPECT_LT(relative_error(est.union_size, 60'000.0), 0.1);
  EXPECT_LT(relative_error(merged.estimate(), 60'000.0), 0.1);
}

TEST(SetOps, MismatchedEstimatorsRejected) {
  F0Estimator a(EstimatorParams{.capacity = 32, .copies = 3, .seed = 1});
  F0Estimator b(EstimatorParams{.capacity = 32, .copies = 3, .seed = 9});
  EXPECT_THROW(estimate_set_expressions(a, b), InvalidArgument);
}

}  // namespace
}  // namespace ustream
