// SketchRegistry: subset-union queries and group comparisons at the referee.
#include "distributed/registry.h"

#include <gtest/gtest.h>

#include "common/dense_map.h"
#include "common/random.h"
#include "common/stats.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  EstimatorParams params_ = EstimatorParams::for_guarantee(0.1, 0.05, 404);
  DistributedWorkload workload_ = make_distributed_workload(
      {.sites = 6, .union_distinct = 60'000, .overlap = 0.4, .duplication = 2.0, .seed = 3});
  SketchRegistry registry_{params_};

  void SetUp() override {
    for (std::size_t s = 0; s < 6; ++s) {
      F0Estimator sketch(params_);
      for (const Item& item : workload_.site_streams[s]) sketch.add(item.label);
      registry_.put("site" + std::to_string(s), std::move(sketch));
    }
  }

  std::size_t exact_union(std::span<const std::size_t> sites) const {
    DenseSet u;
    for (std::size_t s : sites) {
      for (const Item& item : workload_.site_streams[s]) u.insert(item.label);
    }
    return u.size();
  }
};

TEST_F(RegistryTest, BasicBookkeeping) {
  EXPECT_EQ(registry_.size(), 6u);
  EXPECT_TRUE(registry_.contains("site0"));
  EXPECT_FALSE(registry_.contains("site9"));
  EXPECT_EQ(registry_.site_names().size(), 6u);
}

TEST_F(RegistryTest, WholeUnionMatchesTruth) {
  EXPECT_LT(relative_error(registry_.estimate_union_all(),
                           static_cast<double>(workload_.union_distinct)),
            0.1);
}

TEST_F(RegistryTest, SubsetUnionsMatchExactRecounts) {
  const std::vector<std::vector<std::size_t>> groups = {{0}, {1, 2}, {0, 3, 5}, {2, 4}};
  for (const auto& group : groups) {
    std::vector<std::string> names;
    for (auto s : group) names.push_back("site" + std::to_string(s));
    const double truth = static_cast<double>(exact_union(group));
    EXPECT_LT(relative_error(registry_.estimate_union(names), truth), 0.1)
        << names.size() << " sites";
  }
}

TEST_F(RegistryTest, SingleSiteMatchesDirectEstimate) {
  const std::vector<std::string> one = {"site2"};
  EXPECT_DOUBLE_EQ(registry_.estimate_union(one), registry_.estimate_site("site2"));
}

TEST_F(RegistryTest, GroupComparisonTracksOverlap) {
  const std::vector<std::string> a = {"site0", "site1", "site2"};
  const std::vector<std::string> b = {"site3", "site4", "site5"};
  const auto cmp = registry_.compare_groups(a, b);
  // With overlap = 0.4 the two halves share a large label population.
  const std::size_t ga[] = {0, 1, 2}, gb[] = {3, 4, 5};
  DenseSet sa, sb;
  for (auto s : ga) {
    for (const Item& item : workload_.site_streams[s]) sa.insert(item.label);
  }
  for (auto s : gb) {
    for (const Item& item : workload_.site_streams[s]) sb.insert(item.label);
  }
  std::size_t inter = 0;
  sa.for_each([&](std::uint64_t x) {
    if (sb.contains(x)) ++inter;
  });
  EXPECT_LT(relative_error(cmp.intersection_size, static_cast<double>(inter)), 0.25);
  EXPECT_LT(relative_error(cmp.union_size, static_cast<double>(workload_.union_distinct)),
            0.1);
}

TEST_F(RegistryTest, PutSerializedAndReplace) {
  F0Estimator fresh(params_);
  fresh.add(1);
  const auto bytes = fresh.serialize();
  registry_.put_serialized("site0", bytes);  // replaces
  EXPECT_EQ(registry_.size(), 6u);
  EXPECT_DOUBLE_EQ(registry_.estimate_site("site0"), 1.0);
}

TEST_F(RegistryTest, PutFramedValidatesBeforeParsing) {
  F0Estimator fresh(params_);
  fresh.add(7);
  fresh.add(8);
  const auto framed = frame_encode({PayloadKind::kF0Estimator, 0, 0}, fresh.serialize());
  registry_.put_framed("site0", framed);  // replaces
  EXPECT_DOUBLE_EQ(registry_.estimate_site("site0"), 2.0);

  // A flipped bit anywhere in the frame is rejected by the CRC before any
  // estimator parsing, and the registry keeps its previous sketch.
  auto corrupt = framed;
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_THROW(registry_.put_framed("site0", corrupt), SerializationError);
  EXPECT_DOUBLE_EQ(registry_.estimate_site("site0"), 2.0);

  // A structurally valid frame of the wrong protocol is refused too.
  const auto wrong_kind = frame_encode({PayloadKind::kBottomK, 0, 0}, fresh.serialize());
  EXPECT_THROW(registry_.put_framed("site0", wrong_kind), SerializationError);
  EXPECT_THROW(registry_.put_framed("site0", std::vector<std::uint8_t>{1, 2, 3}),
               SerializationError);
}

TEST_F(RegistryTest, Errors) {
  const std::vector<std::string> unknown = {"nope"};
  EXPECT_THROW(registry_.estimate_union(unknown), InvalidArgument);
  EXPECT_THROW(registry_.estimate_union({}), InvalidArgument);
  F0Estimator wrong(EstimatorParams{.capacity = 8, .copies = 3, .seed = 1});
  EXPECT_THROW(registry_.put("bad", std::move(wrong)), InvalidArgument);
}

}  // namespace
}  // namespace ustream
