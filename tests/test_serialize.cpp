#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace ustream {
namespace {

TEST(Serialize, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.141592653589793);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintEdgeCases) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 129,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (auto v : cases) w.varint(v);
  ByteReader r(w.data());
  for (auto v : cases) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintSizes) {
  ByteWriter w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
  ByteWriter w3;
  w3.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w3.size(), 10u);
}

TEST(Serialize, SignedVarintRoundtrip) {
  const std::int64_t cases[] = {0, 1, -1, 63, -64, 64, -65,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  ByteWriter w;
  for (auto v : cases) w.svarint(v);
  ByteReader r(w.data());
  for (auto v : cases) EXPECT_EQ(r.svarint(), v);
}

TEST(Serialize, StringRoundtrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Serialize, BytesRoundtrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 255, 0};
  ByteWriter w;
  w.bytes(payload);
  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(5), payload);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedReadsThrow) {
  ByteWriter w;
  w.u32(5);
  {
    ByteReader r(w.data());
    EXPECT_THROW(r.u64(), SerializationError);
  }
  {
    ByteReader r(std::span<const std::uint8_t>{});
    EXPECT_THROW(r.u8(), SerializationError);
  }
  {
    // Varint whose continuation bit never ends.
    const std::vector<std::uint8_t> bad(3, 0x80);
    ByteReader r(bad);
    EXPECT_THROW(r.varint(), SerializationError);
  }
}

TEST(Serialize, OverlongVarintThrows) {
  // 11 continuation bytes exceed the 64-bit capacity.
  std::vector<std::uint8_t> bad(10, 0xff);
  bad.push_back(0x01);
  ByteReader r(bad);
  EXPECT_THROW(r.varint(), SerializationError);
}

TEST(Serialize, RemainingAndPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_EQ(r.position(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TakeMovesBuffer) {
  ByteWriter w;
  w.u8(7);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 7);
}

}  // namespace
}  // namespace ustream
