#include "common/dense_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace ustream {
namespace {

TEST(DenseMap, InsertAndFind) {
  DenseMap<int> m;
  auto [e1, ins1] = m.try_emplace(42, 7);
  EXPECT_TRUE(ins1);
  EXPECT_EQ(e1->value, 7);
  auto [e2, ins2] = m.try_emplace(42, 99);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(e2->value, 7);  // first value wins
  EXPECT_EQ(m.size(), 1u);
  EXPECT_NE(m.find(42), nullptr);
  EXPECT_EQ(m.find(43), nullptr);
}

TEST(DenseMap, ZeroAndMaxKeys) {
  DenseMap<int> m;
  m.try_emplace(0, 1);
  m.try_emplace(~std::uint64_t{0}, 2);
  EXPECT_TRUE(m.contains(0));
  EXPECT_TRUE(m.contains(~std::uint64_t{0}));
  EXPECT_EQ(m.size(), 2u);
}

TEST(DenseMap, GrowthKeepsAllKeys) {
  DenseMap<std::uint64_t> m;
  Xoshiro256 rng(1);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t k = rng.next();
    keys.insert(k);
    m.try_emplace(k, k * 2);
  }
  EXPECT_EQ(m.size(), keys.size());
  for (std::uint64_t k : keys) {
    auto* e = m.find(k);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, k * 2);
  }
}

TEST(DenseMap, FilterKeepsPredicate) {
  DenseMap<std::uint64_t> m;
  for (std::uint64_t i = 0; i < 1000; ++i) m.try_emplace(i, i);
  m.filter([](const auto& e) { return e.key % 3 == 0; });
  EXPECT_EQ(m.size(), 334u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.contains(i), i % 3 == 0) << i;
  }
  // Map still functions after filter (reindex correct).
  m.try_emplace(2000, 1);
  EXPECT_TRUE(m.contains(2000));
}

TEST(DenseMap, FilterAll) {
  DenseMap<int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.try_emplace(i, 0);
  m.filter([](const auto&) { return false; });
  EXPECT_TRUE(m.empty());
  m.try_emplace(5, 1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, IterationSeesEveryEntryOnce) {
  DenseMap<int> m;
  for (std::uint64_t i = 100; i < 200; ++i) m.try_emplace(i, 1);
  std::set<std::uint64_t> seen;
  for (const auto& e : m) EXPECT_TRUE(seen.insert(e.key).second);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(DenseMap, ClearResets) {
  DenseMap<int> m;
  for (std::uint64_t i = 0; i < 50; ++i) m.try_emplace(i, 0);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(3));
}

TEST(DenseMap, BytesUsedGrows) {
  DenseMap<int> small;
  DenseMap<int> big;
  for (std::uint64_t i = 0; i < 10'000; ++i) big.try_emplace(i, 0);
  EXPECT_GT(big.bytes_used(), small.bytes_used());
}

TEST(DenseMap, AdversarialCollidingKeys) {
  // Keys differing only in high bits; the internal mixer must spread them.
  DenseMap<int> m;
  for (std::uint64_t i = 0; i < 4096; ++i) m.try_emplace(i << 52, 0);
  EXPECT_EQ(m.size(), 4096u);
  for (std::uint64_t i = 0; i < 4096; ++i) EXPECT_TRUE(m.contains(i << 52));
}

TEST(DenseSet, InsertSemantics) {
  DenseSet s;
  EXPECT_TRUE(s.insert(10));
  EXPECT_FALSE(s.insert(10));
  EXPECT_TRUE(s.insert(11));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(12));
}

TEST(DenseSet, ForEachVisitsAll) {
  DenseSet s;
  for (std::uint64_t i = 0; i < 500; ++i) s.insert(i * 7);
  std::vector<std::uint64_t> seen;
  s.for_each([&](std::uint64_t k) { seen.push_back(k); });
  EXPECT_EQ(seen.size(), 500u);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i * 7);
}

}  // namespace
}  // namespace ustream
