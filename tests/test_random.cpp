#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ustream {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 (from the public-domain reference code).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(SplitMix64, MixIsBijectiveOnSamples) {
  // Distinct inputs must map to distinct outputs (mix is invertible).
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10'000; ++i) outs.insert(SplitMix64::mix(i));
  EXPECT_EQ(outs.size(), 10'000u);
}

TEST(Xoshiro256, Determinism) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 62)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowCoversSmallRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, Uniform01Range) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20'000, 0.3, 0.02);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(SeedSequence, ChildrenAreDistinctAndStable) {
  SeedSequence seq(99);
  std::set<std::uint64_t> children;
  for (std::uint64_t i = 0; i < 1000; ++i) children.insert(seq.child(i));
  EXPECT_EQ(children.size(), 1000u);
  EXPECT_EQ(seq.child(5), SeedSequence(99).child(5));
  EXPECT_NE(seq.child(5), SeedSequence(100).child(5));
}

}  // namespace
}  // namespace ustream
