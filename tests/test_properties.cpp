// Parameterized property sweeps across the workload space — the paper's
// guarantees exercised as statistical invariants over many configurations.
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "common/stats.h"
#include "core/f0_estimator.h"
#include "distributed/protocols.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "stream/transforms.h"

namespace ustream {
namespace {

// --- Accuracy is insensitive to workload shape (duplication, skew, label
// --- structure, arrival order): F0 only depends on the SET of labels.

struct ShapeCase {
  std::size_t distinct;
  std::size_t total_items;
  double zipf_alpha;
  LabelKind kind;
};

void PrintTo(const ShapeCase& c, std::ostream* os) {
  *os << "distinct=" << c.distinct << " items=" << c.total_items << " alpha=" << c.zipf_alpha
      << " kind=" << static_cast<int>(c.kind);
}

class WorkloadShape : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(WorkloadShape, EstimateWithinEpsilon) {
  const auto p = GetParam();
  SyntheticStream stream({.distinct = p.distinct, .total_items = p.total_items,
                          .zipf_alpha = p.zipf_alpha, .label_kind = p.kind, .seed = 1234});
  F0Estimator est(0.1, 0.01, 777);  // delta small enough for a sweep
  while (!stream.done()) est.add(stream.next().label);
  EXPECT_LT(relative_error(est.estimate(), static_cast<double>(p.distinct)), 0.1);
}

TEST_P(WorkloadShape, ArrivalOrderIrrelevant) {
  const auto p = GetParam();
  SyntheticStream stream({.distinct = p.distinct, .total_items = p.total_items,
                          .zipf_alpha = p.zipf_alpha, .label_kind = p.kind, .seed = 4321});
  const auto items = stream.to_vector();
  F0Estimator natural(0.1, 0.05, 88), sorted(0.1, 0.05, 88), reversed(0.1, 0.05, 88);
  for (const Item& item : items) natural.add(item.label);
  for (const Item& item : sort_stream(items, true)) sorted.add(item.label);
  for (const Item& item : sort_stream(items, false)) reversed.add(item.label);
  EXPECT_DOUBLE_EQ(natural.estimate(), sorted.estimate());
  EXPECT_DOUBLE_EQ(natural.estimate(), reversed.estimate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadShape,
    ::testing::Values(ShapeCase{20'000, 20'000, 0.0, LabelKind::kRandom64},
                      ShapeCase{20'000, 200'000, 0.0, LabelKind::kRandom64},
                      ShapeCase{20'000, 200'000, 1.0, LabelKind::kRandom64},
                      ShapeCase{20'000, 200'000, 2.0, LabelKind::kRandom64},
                      ShapeCase{20'000, 100'000, 1.2, LabelKind::kSequential},
                      ShapeCase{20'000, 100'000, 1.2, LabelKind::kClustered},
                      ShapeCase{100'000, 300'000, 0.8, LabelKind::kRandom64},
                      ShapeCase{5'000, 500'000, 1.5, LabelKind::kSequential}));

// --- The union protocol meets the guarantee across (sites, overlap). ---

struct UnionCase {
  std::size_t sites;
  double overlap;
};

void PrintTo(const UnionCase& c, std::ostream* os) {
  *os << c.sites << " sites, overlap " << c.overlap;
}

class UnionSweep : public ::testing::TestWithParam<UnionCase> {};

TEST_P(UnionSweep, UnionEstimateWithinEpsilon) {
  const auto p = GetParam();
  const auto w = make_distributed_workload({.sites = p.sites, .union_distinct = 30'000,
                                            .overlap = p.overlap, .duplication = 2.0,
                                            .zipf_alpha = 1.0, .seed = 99});
  const auto res = run_f0_union(w, EstimatorParams::for_guarantee(0.1, 0.01, 55));
  EXPECT_LT(res.relative_error, 0.1);
  EXPECT_EQ(res.channel.messages, p.sites);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnionSweep,
                         ::testing::Values(UnionCase{1, 0.0}, UnionCase{2, 0.0},
                                           UnionCase{2, 1.0}, UnionCase{4, 0.25},
                                           UnionCase{8, 0.5}, UnionCase{16, 0.75},
                                           UnionCase{32, 0.1}, UnionCase{3, 0.9}));

// --- Failure probability: across many independent seeds at a LOOSE eps,
// --- failures must be rare (checks the (eps, delta) calculus end to end).

TEST(FailureProbability, BoundHoldsAcrossSeeds) {
  constexpr double kEps = 0.2, kDelta = 0.05;
  constexpr int kTrials = 40;
  constexpr std::size_t kDistinct = 30'000;
  int failures = 0;
  for (int t = 0; t < kTrials; ++t) {
    F0Estimator est(kEps, kDelta, 10'000 + static_cast<std::uint64_t>(t) * 13);
    Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 7);
    for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next());
    if (relative_error(est.estimate(), static_cast<double>(kDistinct)) > kEps) ++failures;
  }
  EXPECT_LE(failures, 7);  // Binomial(40, .05): P[>7] < 1e-4
}

// --- Capacity-constant ablation: the error shrinks as the constant grows.

TEST(CapacityConstant, LargerConstantGivesSmallerError) {
  constexpr std::size_t kDistinct = 200'000;
  double err_small = 0.0, err_large = 0.0;
  for (double constant : {4.0, 64.0}) {
    Sample errors;
    for (int t = 0; t < 8; ++t) {
      EstimatorParams p;
      p.capacity = EstimatorParams::capacity_for_epsilon(0.1, constant);
      p.copies = 5;
      p.seed = 500 + static_cast<std::uint64_t>(t);
      F0Estimator est(p);
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next());
      errors.add(relative_error(est.estimate(), static_cast<double>(kDistinct)));
    }
    (constant < 10.0 ? err_small : err_large) = errors.mean();
  }
  EXPECT_LT(err_large, err_small);
}

// --- Serialization fuzz: random sampler states survive the wire. ---

TEST(SerializationFuzz, ManyRandomStatesRoundtrip) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t capacity = 1 + rng.below(300);
    const std::uint64_t seed = rng.next();
    CoordinatedSampler<PairwiseHash, Unit> s(capacity, seed);
    const std::uint64_t items = rng.below(20'000);
    for (std::uint64_t i = 0; i < items; ++i) s.add(rng.next());
    auto restored = CoordinatedSampler<PairwiseHash, Unit>::deserialize(s.serialize());
    ASSERT_EQ(restored.level(), s.level());
    ASSERT_EQ(restored.size(), s.size());
    ASSERT_DOUBLE_EQ(restored.estimate_distinct(), s.estimate_distinct());
  }
}

// --- Random split/merge fuzz at the estimator level. ---

TEST(MergeFuzz, RandomSplitsAlwaysMatchCentral) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto params = EstimatorParams{.capacity = 64 + rng.below(512),
                                        .copies = 3,
                                        .seed = rng.next()};
    const std::size_t sites = 2 + rng.below(9);
    std::vector<F0Estimator> parts(sites, F0Estimator(params));
    F0Estimator central(params);
    const std::uint64_t items = 1000 + rng.below(50'000);
    for (std::uint64_t i = 0; i < items; ++i) {
      const std::uint64_t x = rng.below(items / 2 + 1);  // force duplicates
      central.add(x);
      parts[rng.below(sites)].add(x);
    }
    F0Estimator merged = parts[0];
    for (std::size_t s = 1; s < sites; ++s) merged.merge(parts[s]);
    ASSERT_DOUBLE_EQ(merged.estimate(), central.estimate()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ustream
