// The merge engine's determinism contract: tree reduction on the worker
// pool — any pool size, any scheduling — produces serialized bytes
// IDENTICAL to the sequential site-order fold, for every sketch kind the
// referee handles, including degraded (partial-site) collections. Plus the
// ThreadPool's own little contract: every index exactly once, exceptions
// rethrown, nested calls inline.
#include "core/merge_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/distinct_sampler.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "core/range_sampler.h"
#include "distributed/sharding.h"
#include "stream/generators.h"

namespace ustream {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(workers);
    constexpr std::size_t kN = 2048;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", workers " << workers;
    }
  }
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, RethrowsTheFirstBodyException) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "workers " << workers;
    // The pool must remain usable after an exceptional job.
    std::atomic<std::size_t> done{0};
    pool.parallel_for(32, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 32u);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

// ---------------------------------------------------------------------------
// Tree reduction == sequential site-order fold, as serialized bytes.

using Bytes = std::vector<std::uint8_t>;

// Per-site F0 estimators over overlapping random streams.
std::vector<F0Estimator> f0_sites(std::size_t t, const EstimatorParams& params,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 500; ++i) shared.push_back(rng.next());
  std::vector<F0Estimator> sites;
  sites.reserve(t);
  for (std::size_t s = 0; s < t; ++s) {
    F0Estimator est(params);
    for (int i = 0; i < 2000; ++i) {
      est.add(rng.bernoulli(0.3) ? shared[rng.below(shared.size())] : rng.next());
    }
    sites.push_back(std::move(est));
  }
  return sites;
}

template <typename Sketch>
Bytes fold_bytes(const std::vector<Sketch>& sites) {
  Sketch acc = sites.front();
  for (std::size_t s = 1; s < sites.size(); ++s) acc.merge(sites[s]);
  return acc.serialize();
}

TEST(MergeEngine, TreeReductionMatchesSequentialFoldForF0) {
  const auto params = EstimatorParams::for_guarantee(0.15, 0.1, 31);
  for (std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{5}, std::size_t{8}, std::size_t{16},
                        std::size_t{64}}) {
    const auto sites = f0_sites(t, params, 0xA11CE + t);
    const Bytes expected = fold_bytes(sites);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      MergeEngine engine(threads);
      auto parts = sites;  // reduce consumes its input
      const auto merged = engine.reduce(std::move(parts));
      ASSERT_TRUE(merged.has_value());
      EXPECT_EQ(merged->serialize(), expected) << "t=" << t << " threads=" << threads;
    }
  }
}

TEST(MergeEngine, ValuedSketchesKeepLeftmostValueUnderTreeReduction) {
  // Shared labels carry a DIFFERENT value at every site, so any deviation
  // from the fold's leftmost-wins rule changes the serialized bytes.
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 32);
  Xoshiro256 rng(91);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 400; ++i) shared.push_back(rng.next());
  std::vector<DistinctSumEstimator> sites;
  for (std::size_t s = 0; s < 9; ++s) {
    DistinctSumEstimator est(params);
    for (int i = 0; i < 1500; ++i) {
      const bool hit = rng.bernoulli(0.5);
      const std::uint64_t label = hit ? shared[rng.below(shared.size())] : rng.next();
      est.add(label, static_cast<double>(s * 1000 + i));
    }
    sites.push_back(std::move(est));
  }
  const Bytes expected = fold_bytes(sites);
  MergeEngine engine(4);
  auto parts = sites;
  const auto merged = engine.reduce(std::move(parts));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), expected);
}

TEST(MergeEngine, BottomKTreeReductionMatchesFold) {
  Xoshiro256 rng(17);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 300; ++i) shared.push_back(rng.next());
  std::vector<BottomKSampler> sites;
  for (std::size_t s = 0; s < 12; ++s) {
    BottomKSampler b(128, 555);
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t label =
          rng.bernoulli(0.4) ? shared[rng.below(shared.size())] : rng.next();
      b.add(label, static_cast<double>(s));  // per-site values: leftmost must win
    }
    sites.push_back(std::move(b));
  }
  const Bytes expected = fold_bytes(sites);
  MergeEngine engine(3);
  auto parts = sites;
  const auto merged = engine.reduce(std::move(parts));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), expected);
}

TEST(MergeEngine, RangeEstimatorTreeReductionMatchesFold) {
  const EstimatorParams params{.capacity = 256, .copies = 3, .seed = 77};
  Xoshiro256 rng(18);
  std::vector<RangeF0Estimator> sites;
  for (std::size_t s = 0; s < 7; ++s) {
    RangeF0Estimator est(params);
    for (int i = 0; i < 60; ++i) {
      const std::uint64_t lo = rng.next() % (RangeSampler::kDomain - 100'000);
      est.add_range(lo, lo + rng.below(100'000));
    }
    sites.push_back(std::move(est));
  }
  RangeF0Estimator fold = sites.front();
  for (std::size_t s = 1; s < sites.size(); ++s) fold.merge(sites[s]);
  MergeEngine engine(4);
  auto parts = sites;
  const auto merged = engine.reduce(std::move(parts));
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->num_copies(), fold.num_copies());
  for (std::size_t c = 0; c < fold.num_copies(); ++c) {
    EXPECT_EQ(merged->copy(c).serialize(), fold.copy(c).serialize()) << "copy " << c;
  }
}

TEST(MergeEngine, DegradedReductionSkipsMissingSitesInOrder) {
  const auto params = EstimatorParams::for_guarantee(0.15, 0.1, 33);
  const auto sites = f0_sites(10, params, 0xDE6);
  // Knock out sites 0, 4 and 9 (front, middle, back).
  std::vector<std::optional<F0Estimator>> accepted;
  std::vector<F0Estimator> present;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    if (s == 0 || s == 4 || s == 9) {
      accepted.emplace_back(std::nullopt);
    } else {
      accepted.emplace_back(sites[s]);
      present.push_back(sites[s]);
    }
  }
  const Bytes expected = fold_bytes(present);
  MergeEngine engine(4);
  const auto merged = engine.reduce(std::move(accepted));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), expected);
}

TEST(MergeEngine, EmptyAndSingletonReductions) {
  MergeEngine engine(2);
  EXPECT_FALSE(engine.reduce(std::vector<BottomKSampler>{}).has_value());
  std::vector<std::optional<BottomKSampler>> all_missing(4);
  EXPECT_FALSE(engine.reduce(std::move(all_missing)).has_value());
  BottomKSampler one(16, 9);
  one.add(42, 1.0);
  const Bytes expected = one.serialize();
  std::vector<BottomKSampler> single;
  single.push_back(std::move(one));
  const auto merged = engine.reduce(std::move(single));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->serialize(), expected);
}

// ---------------------------------------------------------------------------
// Copy-parallel and k-way estimator merges.

TEST(MergeEngine, CopyParallelMergeMatchesPlainMerge) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 34);
  const auto sites = f0_sites(2, params, 0xC0FFEE);
  F0Estimator plain = sites[0];
  plain.merge(sites[1]);
  ThreadPool pool(3);
  F0Estimator pooled = sites[0];
  pooled.merge(sites[1], pool);
  EXPECT_EQ(pooled.serialize(), plain.serialize());
}

TEST(MergeEngine, EstimatorMergeManyMatchesFold) {
  const auto params = EstimatorParams::for_guarantee(0.15, 0.1, 35);
  const auto sites = f0_sites(9, params, 0xF01D);
  const Bytes expected = fold_bytes(sites);
  ThreadPool pool(3);
  F0Estimator many = sites[0];
  std::vector<const F0Estimator*> rest;
  for (std::size_t s = 1; s < sites.size(); ++s) rest.push_back(&sites[s]);
  many.merge_many(std::span<const F0Estimator* const>(rest), pool);
  EXPECT_EQ(many.serialize(), expected);
}

TEST(MergeEngine, SamplerMergeManyMatchesFold) {
  using Sampler = CoordinatedSampler<PairwiseHash, double>;
  Xoshiro256 rng(55);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 200; ++i) shared.push_back(rng.next());
  std::vector<Sampler> parts;
  for (std::size_t s = 0; s < 8; ++s) {
    Sampler p(64, 1234);
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t label =
          rng.bernoulli(0.4) ? shared[rng.below(shared.size())] : rng.next();
      p.add(label, static_cast<double>(s + 1));
    }
    parts.push_back(std::move(p));
  }
  Sampler fold = parts[0];
  for (std::size_t s = 1; s < parts.size(); ++s) fold.merge(parts[s]);
  Sampler many = parts[0];
  std::vector<const Sampler*> rest;
  for (std::size_t s = 1; s < parts.size(); ++s) rest.push_back(&parts[s]);
  many.merge_many(std::span<const Sampler* const>(rest));
  EXPECT_EQ(many.serialize(), fold.serialize());
}

TEST(MergeEngine, BottomKMergeManyMatchesFold) {
  Xoshiro256 rng(56);
  std::vector<std::uint64_t> shared;
  for (int i = 0; i < 150; ++i) shared.push_back(rng.next());
  std::vector<BottomKSampler> parts;
  for (std::size_t s = 0; s < 16; ++s) {
    BottomKSampler b(64, 777);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t label =
          rng.bernoulli(0.5) ? shared[rng.below(shared.size())] : rng.next();
      b.add(label, static_cast<double>(s));
    }
    parts.push_back(std::move(b));
  }
  const Bytes expected = fold_bytes(parts);
  BottomKSampler many = parts[0];
  std::vector<const BottomKSampler*> rest;
  for (std::size_t s = 1; s < parts.size(); ++s) rest.push_back(&parts[s]);
  many.merge_many(std::span<const BottomKSampler* const>(rest));
  EXPECT_EQ(many.serialize(), expected);
}

// ---------------------------------------------------------------------------
// shard_and_merge rides the engine and stays exact.

TEST(MergeEngine, ShardAndMergeIsEngineAndThreadCountInvariant) {
  SyntheticStream stream({.distinct = 20'000, .total_items = 80'000,
                          .zipf_alpha = 1.0, .seed = 44});
  const auto items = stream.to_vector();
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 36);
  F0Estimator sequential(params);
  for (const Item& item : items) sequential.add(item.label);
  const Bytes expected = sequential.serialize();
  MergeEngine one(1), four(4);
  for (MergeEngine* engine : {&one, &four}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const F0Estimator merged = shard_and_merge<F0Estimator>(
          items, threads, [&params] { return F0Estimator(params); },
          [](F0Estimator& sketch, std::span<const Item> chunk) {
            for (const Item& item : chunk) sketch.add(item.label);
          },
          engine);
      EXPECT_EQ(merged.serialize(), expected)
          << "threads=" << threads << " engine=" << engine->threads();
    }
  }
}

}  // namespace
}  // namespace ustream
