// Unit tests of the CoordinatedSampler's structural invariants — the
// properties the paper's analysis rests on.
#include "core/coordinated_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "hash/hash_family.h"

namespace ustream {
namespace {

using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

TEST(CoordinatedSampler, ExactInSmallRegime) {
  // While distinct count <= capacity, level stays 0 and the estimate is
  // exactly the distinct count.
  Sampler s(128, 1);
  for (std::uint64_t x = 0; x < 100; ++x) s.add(x * 977);
  EXPECT_EQ(s.level(), 0);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s.estimate_distinct(), 100.0);
}

TEST(CoordinatedSampler, DuplicateInsensitiveStateEquality) {
  // Re-adding seen labels must leave the ENTIRE state unchanged, even
  // across level raises — stronger than just estimate equality.
  Sampler once(64, 2);
  Sampler thrice(64, 2);
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> labels;
  for (int i = 0; i < 5000; ++i) labels.push_back(rng.next());
  for (auto x : labels) once.add(x);
  for (int rep = 0; rep < 3; ++rep) {
    for (auto x : labels) thrice.add(x);
  }
  EXPECT_EQ(once.level(), thrice.level());
  EXPECT_EQ(once.size(), thrice.size());
  auto a = once.sample_labels(), b = thrice.sample_labels();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(CoordinatedSampler, CapacityInvariantHolds) {
  Sampler s(50, 3);
  Xoshiro256 rng(6);
  for (int i = 0; i < 20'000; ++i) {
    s.add(rng.next());
    ASSERT_LE(s.size(), 50u);
  }
  EXPECT_GT(s.level(), 0);
}

TEST(CoordinatedSampler, SampleContainsOnlyHighLevelLabels) {
  Sampler s(32, 4);
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) s.add(rng.next());
  for (auto label : s.sample_labels()) {
    EXPECT_GE(s.level_of(label), s.level());
  }
}

TEST(CoordinatedSampler, SampleIsCompleteAtItsLevel) {
  // Every inserted label whose level >= current threshold must be present:
  // the sample is exactly the survivor set, not an arbitrary subset.
  Sampler s(32, 8);
  Xoshiro256 rng(8);
  std::vector<std::uint64_t> labels;
  for (int i = 0; i < 5000; ++i) labels.push_back(rng.next());
  for (auto x : labels) s.add(x);
  std::set<std::uint64_t> expected;
  for (auto x : labels) {
    if (s.level_of(x) >= s.level()) expected.insert(x);
  }
  auto got = s.sample_labels();
  EXPECT_EQ(got.size(), expected.size());
  for (auto x : got) EXPECT_TRUE(expected.count(x)) << x;
}

TEST(CoordinatedSampler, DeterministicAcrossInstances) {
  Sampler a(64, 99), b(64, 99);
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t x = rng.next();
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.level(), b.level());
  auto la = a.sample_labels(), lb = b.sample_labels();
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_EQ(la, lb);
}

TEST(CoordinatedSampler, SeedChangesSample) {
  Sampler a(64, 1), b(64, 2);
  for (std::uint64_t x = 0; x < 10'000; ++x) {
    a.add(x);
    b.add(x);
  }
  auto la = a.sample_labels(), lb = b.sample_labels();
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_NE(la, lb);
}

TEST(CoordinatedSampler, ValueFirstWins) {
  CoordinatedSampler<PairwiseHash, double> s(16, 5);
  s.add(42, 1.5);
  s.add(42, 99.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.estimate_sum(), 1.5);
}

TEST(CoordinatedSampler, EstimateSumSmallRegimeExact) {
  CoordinatedSampler<PairwiseHash, double> s(128, 5);
  double want = 0.0;
  for (std::uint64_t x = 1; x <= 100; ++x) {
    s.add(x * 31, static_cast<double>(x));
    want += static_cast<double>(x);
  }
  EXPECT_DOUBLE_EQ(s.estimate_sum(), want);
}

TEST(CoordinatedSampler, CountIfSmallRegimeExact) {
  Sampler s(256, 6);
  for (std::uint64_t x = 0; x < 200; ++x) s.add(x);
  EXPECT_DOUBLE_EQ(s.estimate_count_if([](std::uint64_t x) { return x % 2 == 0; }), 100.0);
  EXPECT_DOUBLE_EQ(s.estimate_count_if([](std::uint64_t x) { return x < 50; }), 50.0);
}

TEST(CoordinatedSampler, ItemsProcessedCounts) {
  Sampler s(16, 7);
  for (int i = 0; i < 123; ++i) s.add(static_cast<std::uint64_t>(i % 10));
  EXPECT_EQ(s.items_processed(), 123u);
}

TEST(CoordinatedSampler, RejectsZeroCapacity) {
  EXPECT_THROW(Sampler(0, 1), InvalidArgument);
}

TEST(CoordinatedSampler, ContainsReflectsSample) {
  Sampler s(1024, 10);
  s.add(5);
  s.add(6);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(6));
  EXPECT_FALSE(s.contains(7));
}

TEST(CoordinatedSampler, BytesUsedScalesWithCapacity) {
  // Storage is preallocated at capacity (no data-dependent growth on the
  // hot path); footprint must scale with the capacity parameter.
  Sampler small(64, 11), big(8192, 11);
  EXPECT_GT(big.bytes_used(), small.bytes_used());
  // And streaming items must not change the footprint (O(capacity) space
  // regardless of stream length).
  const auto before = big.bytes_used();
  for (std::uint64_t x = 0; x < 100'000; ++x) big.add(x);
  EXPECT_EQ(big.bytes_used(), before);
}

TEST(CoordinatedSampler, WorksWithAlternativeHashes) {
  CoordinatedSampler<TabulationHash, Unit> tab(128, 12);
  CoordinatedSampler<MurmurMixHash, Unit> mm(128, 12);
  for (std::uint64_t x = 0; x < 100; ++x) {
    tab.add(x);
    mm.add(x);
  }
  EXPECT_DOUBLE_EQ(tab.estimate_distinct(), 100.0);
  EXPECT_DOUBLE_EQ(mm.estimate_distinct(), 100.0);
}

TEST(CoordinatedSampler, LevelRaisesRecorded) {
  Sampler s(8, 13);
  Xoshiro256 rng(14);
  for (int i = 0; i < 10'000; ++i) s.add(rng.next());
  EXPECT_GT(s.level_raises(), 0u);
  EXPECT_GE(s.level_raises(), static_cast<std::uint64_t>(s.level()));
}

}  // namespace
}  // namespace ustream
