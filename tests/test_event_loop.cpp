// EventLoop's contract on both backends (epoll and the poll fallback):
// registered fds with pending readiness — and ONLY those — come back from
// wait(), carrying their opaque data pointer; add/modify/remove keep the
// bookkeeping consistent through swap-removal; WakePipe wakeups survive a
// notify storm from another thread; and the sharded referee accepts a
// burst of simultaneous connections arriving mid-round.
#include "net/event_loop.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/frame.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "net/referee_server.h"
#include "net/socket.h"
#include "net/tcp_transport.h"

namespace ustream::net {
namespace {

std::vector<EventLoop::Backend> backends() {
  std::vector<EventLoop::Backend> b{EventLoop::Backend::kPoll};
#ifdef __linux__
  b.push_back(EventLoop::Backend::kEpoll);
#endif
  return b;
}

std::string backend_name(EventLoop::Backend b) {
  return b == EventLoop::Backend::kPoll ? "poll" : "epoll";
}

// A nonblocking pipe pair the loop can watch: readable once written to.
struct Pipe {
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read = Socket(fds[0]);
    write = Socket(fds[1]);
    set_nonblocking(read.fd(), true);
    set_nonblocking(write.fd(), true);
  }
  void make_readable() {
    const std::uint8_t byte = 1;
    ASSERT_EQ(::write(write.fd(), &byte, 1), 1);
  }
  void drain() {
    std::uint8_t buf[16];
    while (::read(read.fd(), buf, sizeof(buf)) > 0) {
    }
  }
  Socket read;
  Socket write;
};

TEST(EventLoop, ReportsOnlyReadyFds) {
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    constexpr std::size_t kPipes = 16;
    std::vector<Pipe> pipes(kPipes);
    std::vector<int> marks(kPipes);
    for (std::size_t i = 0; i < kPipes; ++i) {
      marks[i] = static_cast<int>(i);
      loop.add(pipes[i].read.fd(), EventLoop::kRead, &marks[i]);
    }
    EXPECT_EQ(loop.watched(), kPipes);

    // Nothing readable: zero events, not kPipes events with empty masks.
    std::vector<EventLoop::Event> events;
    EXPECT_EQ(loop.wait(events, 0), 0u);

    // Exactly two readable: exactly those two come back — the dispatch
    // path scales with READY fds, not registered fds (the O(n)-scan fix).
    pipes[3].make_readable();
    pipes[11].make_readable();
    ASSERT_EQ(loop.wait(events, 1000), 2u);
    std::vector<int> got;
    for (const auto& ev : events) {
      EXPECT_NE(ev.events & EventLoop::kRead, 0u);
      got.push_back(*static_cast<int*>(ev.data));
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{3, 11}));

    // Level-triggered: still pending until drained.
    ASSERT_EQ(loop.wait(events, 0), 2u);
    pipes[3].drain();
    pipes[11].drain();
    EXPECT_EQ(loop.wait(events, 0), 0u);
  }
}

TEST(EventLoop, ModifyChangesInterestAndData) {
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    Pipe pipe;
    int first = 1, second = 2;
    loop.add(pipe.read.fd(), EventLoop::kRead, &first);
    pipe.make_readable();
    std::vector<EventLoop::Event> events;
    ASSERT_EQ(loop.wait(events, 1000), 1u);
    EXPECT_EQ(events[0].data, &first);

    // Interest cleared: the still-readable fd must stop being reported.
    loop.modify(pipe.read.fd(), 0, &first);
    EXPECT_EQ(loop.wait(events, 0), 0u);

    // Interest restored with new data: reported again, new pointer.
    loop.modify(pipe.read.fd(), EventLoop::kRead, &second);
    ASSERT_EQ(loop.wait(events, 0), 1u);
    EXPECT_EQ(events[0].data, &second);
  }
}

TEST(EventLoop, WriteInterestOnWritablePipe) {
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    Pipe pipe;
    int mark = 7;
    loop.add(pipe.write.fd(), EventLoop::kWrite, &mark);
    std::vector<EventLoop::Event> events;
    ASSERT_EQ(loop.wait(events, 1000), 1u);  // empty pipe: writable now
    EXPECT_NE(events[0].events & EventLoop::kWrite, 0u);
    EXPECT_EQ(events[0].data, &mark);
  }
}

TEST(EventLoop, RemoveSurvivesSwapRemoval) {
  // The poll backend swap-removes into the vacated slot; removing from the
  // middle then exercising the swapped-in fd is exactly the case that
  // breaks naive index bookkeeping. Run the same sequence on epoll too.
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    constexpr std::size_t kPipes = 8;
    std::vector<Pipe> pipes(kPipes);
    std::vector<int> marks(kPipes);
    for (std::size_t i = 0; i < kPipes; ++i) {
      marks[i] = static_cast<int>(i);
      loop.add(pipes[i].read.fd(), EventLoop::kRead, &marks[i]);
    }
    // Remove from the middle (the LAST entry gets swapped into slot 2).
    loop.remove(pipes[2].read.fd());
    loop.remove(pipes[5].read.fd());
    EXPECT_EQ(loop.watched(), kPipes - 2);

    for (std::size_t i = 0; i < kPipes; ++i) pipes[i].make_readable();
    std::vector<EventLoop::Event> events;
    ASSERT_EQ(loop.wait(events, 1000), kPipes - 2);
    std::vector<int> got;
    for (const auto& ev : events) got.push_back(*static_cast<int*>(ev.data));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 3, 4, 6, 7}));

    // Removed fds can be re-added (fresh registration, fresh data).
    loop.add(pipes[2].read.fd(), EventLoop::kRead, &marks[2]);
    ASSERT_EQ(loop.wait(events, 1000), kPipes - 1);
  }
}

TEST(EventLoop, AddRejectsDuplicateRegistration) {
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    Pipe pipe;
    int mark = 0;
    loop.add(pipe.read.fd(), EventLoop::kRead, &mark);
    EXPECT_THROW(loop.add(pipe.read.fd(), EventLoop::kRead, &mark), InvalidArgument);
    EXPECT_EQ(loop.watched(), 1u);
  }
}

TEST(EventLoop, HangupReportedWhenPeerCloses) {
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    Pipe pipe;
    int mark = 0;
    loop.add(pipe.read.fd(), EventLoop::kRead, &mark);
    pipe.write.close();
    std::vector<EventLoop::Event> events;
    ASSERT_EQ(loop.wait(events, 1000), 1u);
    // Closed writer: POLLHUP / EPOLLHUP — readable EOF, reported as hangup
    // (some kernels also flag kRead; either way the caller must see it).
    EXPECT_NE(events[0].events & (EventLoop::kHangup | EventLoop::kRead), 0u);
  }
}

#ifdef __linux__
TEST(EventLoop, DefaultBackendIsEpollOnLinux) {
  EventLoop loop;
  EXPECT_EQ(loop.backend(), EventLoop::Backend::kEpoll);
}
#endif

TEST(EventLoop, WakePipeNotifyStormFromAnotherThread) {
  // A remote thread hammers notify() while the loop waits and drains: no
  // wakeup may be lost (the loop must always observe readiness after the
  // final notify), and the storm must not wedge the pipe (notify is
  // nonblocking and saturates silently).
  for (const auto backend : backends()) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    WakePipe wake;
    int mark = 0;
    loop.add(wake.read_fd(), EventLoop::kRead, &mark);

    constexpr int kNotifies = 10'000;
    std::atomic<int> sent{0};
    std::thread stormer([&] {
      for (int i = 0; i < kNotifies; ++i) {
        wake.notify();
        sent.fetch_add(1, std::memory_order_release);
      }
    });

    std::vector<EventLoop::Event> events;
    int rounds = 0;
    // Keep draining until the storm is over AND the pipe is empty.
    for (;;) {
      const std::size_t n = loop.wait(events, 10);
      if (n > 0) {
        EXPECT_EQ(events[0].data, &mark);
        wake.drain();
        ++rounds;
      }
      if (sent.load(std::memory_order_acquire) == kNotifies && n == 0) break;
    }
    stormer.join();
    EXPECT_GE(rounds, 1);
    // After the final drain there is nothing pending.
    EXPECT_EQ(loop.wait(events, 0), 0u);
  }
}

TEST(EventLoop, RefereeAcceptStormMidRound) {
  // Satellite coverage for the sharded accept path: many clients connect
  // SIMULTANEOUSLY (each also pushing a frame and reading its ack) while
  // the shard loops are mid-round. Every site must land exactly once,
  // regardless of which SO_REUSEPORT acceptor the kernel picked.
  constexpr std::size_t kSites = 48;
  RefereeServerConfig config;
  config.sites = kSites;
  config.shards = 2;
  config.timeout = std::chrono::milliseconds(30'000);
  RefereeServer server(std::move(config));
  const std::uint16_t port = server.port();

  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 1234);
  std::thread pusher([port, &params] {
    std::vector<std::thread> clients;
    clients.reserve(kSites);
    for (std::size_t site = 0; site < kSites; ++site) {
      clients.emplace_back([port, site, &params] {
        F0Estimator est(params);
        est.add(site * 1000 + 1);
        const auto frame = frame_encode(
            {PayloadKind::kF0Estimator, static_cast<std::uint32_t>(site), 0},
            est.serialize());
        TcpTransportConfig tc;
        tc.port = port;
        TcpTransport transport(kSites, tc);
        EXPECT_EQ(transport.send_with_ack(site, frame), PushAck::kAccepted);
      });
    }
    for (auto& t : clients) t.join();
  });

  std::atomic<std::size_t> delivered{0};
  const auto result = server.run([&delivered](std::size_t, std::uint32_t, std::uint16_t, PayloadKind,
                                              std::vector<std::uint8_t>&&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  pusher.join();

  EXPECT_TRUE(result.report.complete());
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(delivered.load(), kSites);
  EXPECT_EQ(result.report.sites_reported, kSites);
  EXPECT_EQ(result.report.duplicates_dropped, 0u);
  ASSERT_EQ(result.shards.size(), 2u);
  std::size_t shard_sum = 0;
  for (const auto& shard : result.shards) shard_sum += shard.report.sites_reported;
  EXPECT_EQ(shard_sum, kSites);
}

}  // namespace
}  // namespace ustream::net
