// The frequency subsystem: CountSketch point/F2 estimates, SpaceSaver's
// deterministic intervals, the FreqSketch bundle, and the layered
// UniversalSketch — plus the superspreader fusion stage that rides the
// SpaceSaver.
//
// The load-bearing assertions mirror test_sampler_merge.cpp: merges must
// be associative, commutative and merge-tree invariant DOWN TO THE BYTES,
// because the referee's MergeEngine tree-reduces freq payloads and the
// 1-shard and 4-shard collection planes must agree exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "freq/count_sketch.h"
#include "freq/freq_sketch.h"
#include "freq/space_saver.h"
#include "freq/universal_sketch.h"
#include "netmon/superspreader.h"
#include "stream/zipf.h"

namespace ustream {
namespace {

// A skewed label stream with exact ground-truth counts on the side.
struct SkewedStream {
  std::vector<std::uint64_t> labels;
  std::unordered_map<std::uint64_t, std::uint64_t> truth;

  SkewedStream(std::size_t items, std::size_t distinct, double alpha,
               std::uint64_t seed) {
    ZipfDistribution zipf(distinct, alpha);
    Xoshiro256 rng(seed);
    labels.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      // Mix the rank so the heavy labels are not just 1, 2, 3, ...
      const std::uint64_t label = 0x9e3779b97f4a7c15ULL * zipf.sample(rng);
      labels.push_back(label);
      ++truth[label];
    }
  }

  // True top-k labels by (count desc, label asc) — the report order.
  std::vector<std::uint64_t> true_top(std::size_t k) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(truth.begin(), truth.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < rows.size() && i < k; ++i) out.push_back(rows[i].first);
    return out;
  }
};

// ---------------------------------------------------------------------------
// CountSketch

TEST(CountSketch, BatchIngestIsBitIdenticalToScalar) {
  const SkewedStream stream(20'000, 4'000, 1.2, 1);
  CountSketch scalar(4, 10, 7), batched(4, 10, 7);
  for (std::uint64_t label : stream.labels) scalar.add(label);
  batched.add_batch(stream.labels);
  EXPECT_EQ(batched.serialize(), scalar.serialize());
  EXPECT_EQ(batched.items_processed(), stream.labels.size());
}

TEST(CountSketch, EstimatesConcentrateOnHeavyLabels) {
  const SkewedStream stream(60'000, 10'000, 1.5, 2);
  CountSketch cs(4, 12, 9);
  cs.add_batch(stream.labels);
  // The error bound is O(sqrt(F2 / width)); heavy labels must land within
  // a few multiples of it.
  double f2 = 0.0;
  for (const auto& [label, count] : stream.truth) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  const double tolerance = 6.0 * std::sqrt(f2 / static_cast<double>(cs.width()));
  for (std::uint64_t label : stream.true_top(20)) {
    const auto truth = static_cast<double>(stream.truth.at(label));
    EXPECT_NEAR(static_cast<double>(cs.estimate(label)), truth, tolerance)
        << "label " << label;
  }
  EXPECT_NEAR(cs.l2_squared(), f2, 0.25 * f2);
}

TEST(CountSketch, MergeEqualsConcatByteForByte) {
  const SkewedStream stream(30'000, 5'000, 1.3, 3);
  CountSketch whole(4, 11, 5), a(4, 11, 5), b(4, 11, 5);
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    whole.add(stream.labels[i]);
    ((i % 2 == 0) ? a : b).add(stream.labels[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.serialize(), whole.serialize());
}

TEST(CountSketch, RoundTripAndMismatchRejection) {
  CountSketch cs(5, 9, 17);
  Xoshiro256 rng(4);
  for (int i = 0; i < 5'000; ++i) cs.add(rng.next());
  const auto bytes = cs.serialize();
  EXPECT_EQ(CountSketch::deserialize(bytes).serialize(), bytes);

  CountSketch wrong_seed(5, 9, 18), wrong_depth(4, 9, 17), wrong_width(5, 8, 17);
  EXPECT_THROW(cs.merge(wrong_seed), InvalidArgument);
  EXPECT_THROW(cs.merge(wrong_depth), InvalidArgument);
  EXPECT_THROW(cs.merge(wrong_width), InvalidArgument);
  EXPECT_THROW(CountSketch(8, 8, 0), InvalidArgument);  // depth*(w+1) > 61
}

// ---------------------------------------------------------------------------
// SpaceSaver

TEST(SpaceSaver, ExactWhenDistinctFitsCapacity) {
  SpaceSaver ss(64);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t label = rng.below(50);  // 50 distinct < 64 capacity
    ss.add(label);
    ++truth[label];
  }
  EXPECT_EQ(ss.absent_bound(), 0u);
  EXPECT_EQ(ss.size(), truth.size());
  for (const auto& [label, count] : truth) {
    const auto bound = ss.estimate(label);
    EXPECT_EQ(bound.upper, count);
    EXPECT_EQ(bound.lower, count);
  }
}

TEST(SpaceSaver, IntervalInvariantsOnSkewedStream) {
  const SkewedStream stream(50'000, 8'000, 1.4, 6);
  SpaceSaver ss(48);
  for (std::uint64_t label : stream.labels) ss.add(label);

  EXPECT_EQ(ss.total_weight(), stream.labels.size());
  // m never exceeds the minimum tracked count.
  std::uint64_t min_count = ~std::uint64_t{0};
  for (const auto& e : ss.top(ss.size())) min_count = std::min(min_count, e.count);
  EXPECT_LE(ss.absent_bound(), min_count);

  for (const auto& [label, count] : stream.truth) {
    const auto bound = ss.estimate(label);
    if (ss.contains(label)) {
      EXPECT_LE(bound.lower, count) << "label " << label;
      EXPECT_GE(bound.upper, count) << "label " << label;
    } else {
      EXPECT_LE(count, ss.absent_bound()) << "label " << label;
    }
  }
  // guaranteed_at_least really is a guarantee.
  for (const auto& e : ss.guaranteed_at_least(100)) {
    EXPECT_GE(stream.truth.at(e.label), 100u) << "label " << e.label;
  }
}

TEST(SpaceSaver, MergedIntervalsStillCoverTruth) {
  const SkewedStream stream(40'000, 6'000, 1.5, 7);
  constexpr std::size_t kParts = 4;
  std::vector<SpaceSaver> parts(kParts, SpaceSaver(32));
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    parts[i % kParts].add(stream.labels[i]);
  }
  SpaceSaver merged = parts[0];
  for (std::size_t p = 1; p < kParts; ++p) merged.merge(parts[p]);

  EXPECT_EQ(merged.total_weight(), stream.labels.size());
  for (const auto& [label, count] : stream.truth) {
    const auto bound = merged.estimate(label);
    EXPECT_LE(bound.lower, count) << "label " << label;
    if (merged.contains(label)) {
      EXPECT_GE(bound.upper, count) << "label " << label;
    } else {
      EXPECT_LE(count, merged.absent_bound()) << "label " << label;
    }
  }
}

// The byte-level merge algebra MergeEngine relies on: any merge tree over
// the same parts serializes identically (merge does not truncate, entries
// are written label-sorted).
TEST(SpaceSaver, MergeIsAssociativeCommutativeAndTreeInvariantInBytes) {
  const SkewedStream stream(24'000, 4'000, 1.3, 8);
  constexpr std::size_t kParts = 6;
  std::vector<SpaceSaver> parts(kParts, SpaceSaver(24));
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    parts[i % kParts].add(stream.labels[i]);
  }

  // Sequential site-order fold — the reference.
  SpaceSaver fold = parts[0];
  for (std::size_t p = 1; p < kParts; ++p) fold.merge(parts[p]);
  const auto reference = fold.serialize();

  // Reversed order (commutativity under folding).
  SpaceSaver reversed = parts[kParts - 1];
  for (std::size_t p = kParts - 1; p-- > 0;) reversed.merge(parts[p]);
  EXPECT_EQ(reversed.serialize(), reference);

  // Balanced tree (associativity): ((0+1)+(2+3))+(4+5).
  SpaceSaver left = parts[0], mid = parts[2], right = parts[4];
  left.merge(parts[1]);
  mid.merge(parts[3]);
  right.merge(parts[5]);
  left.merge(mid);
  left.merge(right);
  EXPECT_EQ(left.serialize(), reference);

  // Random permutations of the fold order.
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.below(i + 1)]);
    }
    SpaceSaver acc = parts[order[0]];
    for (std::size_t p = 1; p < order.size(); ++p) acc.merge(parts[order[p]]);
    EXPECT_EQ(acc.serialize(), reference) << "trial " << trial;
  }
}

TEST(SpaceSaver, MergeWithEmptyIsIdentity) {
  const SkewedStream stream(10'000, 2'000, 1.2, 10);
  SpaceSaver ss(32);
  for (std::uint64_t label : stream.labels) ss.add(label);
  const auto before = ss.serialize();
  ss.merge(SpaceSaver(32));
  EXPECT_EQ(ss.serialize(), before);
}

TEST(SpaceSaver, MismatchedCapacityRejected) {
  SpaceSaver a(16), b(32);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(SpaceSaver(0), InvalidArgument);
}

TEST(SpaceSaver, RoundTripPreservesBytes) {
  const SkewedStream stream(20'000, 3'000, 1.4, 11);
  SpaceSaver ss(40);
  for (std::uint64_t label : stream.labels) ss.add(label);
  const auto bytes = ss.serialize();
  SpaceSaver restored = SpaceSaver::deserialize(bytes);
  EXPECT_EQ(restored.serialize(), bytes);
  EXPECT_EQ(restored.absent_bound(), ss.absent_bound());
  EXPECT_EQ(restored.total_weight(), ss.total_weight());
  // The restored heap still evicts correctly: keep ingesting.
  for (int i = 0; i < 1'000; ++i) restored.add(0xdeadULL + static_cast<unsigned>(i));
  EXPECT_LE(restored.size(), restored.capacity());
}

// ---------------------------------------------------------------------------
// FreqSketch

TEST(FreqSketch, BatchIngestIsBitIdenticalToScalar) {
  const SkewedStream stream(20'000, 4'000, 1.3, 12);
  FreqConfig config{.depth = 4, .width_log2 = 10, .heavy_capacity = 32, .seed = 13};
  FreqSketch scalar(config), batched(config);
  for (std::uint64_t label : stream.labels) scalar.add(label);
  batched.add_batch(stream.labels);
  EXPECT_EQ(batched.serialize(), scalar.serialize());
}

TEST(FreqSketch, EstimateRespectsDeterministicBounds) {
  const SkewedStream stream(50'000, 8'000, 1.5, 14);
  FreqSketch sketch(FreqConfig{.depth = 4, .width_log2 = 11, .heavy_capacity = 48, .seed = 15});
  sketch.add_batch(stream.labels);
  for (const auto& hh : sketch.top(48)) {
    EXPECT_GE(hh.estimate, hh.lower);
    EXPECT_LE(hh.estimate, hh.upper);
    EXPECT_EQ(sketch.estimate(hh.label), hh.estimate);
  }
  // top(k) comes back in (upper desc, label asc) order.
  const auto top = sketch.top(16);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(top[i - 1].upper > top[i].upper ||
                (top[i - 1].upper == top[i].upper && top[i - 1].label < top[i].label));
  }
  EXPECT_DOUBLE_EQ(sketch.f1(), static_cast<double>(stream.labels.size()));
}

TEST(FreqSketch, MergeTreeInvariantInBytes) {
  const SkewedStream stream(32'000, 5'000, 1.4, 16);
  const FreqConfig config{.depth = 4, .width_log2 = 10, .heavy_capacity = 24, .seed = 17};
  constexpr std::size_t kParts = 8;
  std::vector<FreqSketch> parts(kParts, FreqSketch(config));
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    parts[i % kParts].add(stream.labels[i]);
  }

  FreqSketch fold = parts[0];
  for (std::size_t p = 1; p < kParts; ++p) fold.merge(parts[p]);
  const auto reference = fold.serialize();

  // Pairwise tree, exactly the MergeEngine shape at 4 shards.
  std::vector<FreqSketch> level = parts;
  while (level.size() > 1) {
    std::vector<FreqSketch> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      FreqSketch m = level[i];
      m.merge(level[i + 1]);
      next.push_back(std::move(m));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  EXPECT_EQ(level[0].serialize(), reference);

  FreqSketch reversed = parts[kParts - 1];
  for (std::size_t p = kParts - 1; p-- > 0;) reversed.merge(parts[p]);
  EXPECT_EQ(reversed.serialize(), reference);
}

TEST(FreqSketch, RoundTripAndMismatchRejection) {
  const SkewedStream stream(10'000, 2'000, 1.3, 18);
  const FreqConfig config{.depth = 4, .width_log2 = 10, .heavy_capacity = 16, .seed = 19};
  FreqSketch sketch(config);
  sketch.add_batch(stream.labels);
  const auto bytes = sketch.serialize();
  EXPECT_EQ(FreqSketch::deserialize(bytes).serialize(), bytes);

  FreqSketch wrong_seed(FreqConfig{.depth = 4, .width_log2 = 10, .heavy_capacity = 16, .seed = 20});
  FreqSketch wrong_capacity(FreqConfig{.depth = 4, .width_log2 = 10, .heavy_capacity = 8, .seed = 19});
  EXPECT_FALSE(sketch.can_merge_with(wrong_seed));
  EXPECT_FALSE(sketch.can_merge_with(wrong_capacity));
  EXPECT_THROW(sketch.merge(wrong_seed), InvalidArgument);
}

// The ISSUE acceptance shape in-process: heavy hitters over the UNION of
// many sites, recall >= 0.95 against exact ground truth at Zipf skew.
TEST(FreqSketch, UnionHeavyHitterRecallAtZipfSkew) {
  const SkewedStream stream(128'000, 20'000, 1.5, 21);
  const FreqConfig config{.depth = 4, .width_log2 = 12, .heavy_capacity = 64, .seed = 22};
  constexpr std::size_t kSites = 16;
  std::vector<FreqSketch> sites(kSites, FreqSketch(config));
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    sites[i % kSites].add(stream.labels[i]);
  }
  FreqSketch merged = sites[0];
  for (std::size_t s = 1; s < kSites; ++s) merged.merge(sites[s]);

  constexpr std::size_t kTop = 20;
  const auto truth = stream.true_top(kTop);
  const auto reported = merged.top(2 * kTop);
  std::size_t hits = 0;
  for (std::uint64_t label : truth) {
    for (const auto& hh : reported) {
      if (hh.label == label) {
        ++hits;
        break;
      }
    }
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  EXPECT_GE(recall, 0.95) << hits << "/" << truth.size();
}

// ---------------------------------------------------------------------------
// UniversalSketch

TEST(UniversalSketch, BatchIngestIsBitIdenticalToScalar) {
  const SkewedStream stream(20'000, 4'000, 1.3, 23);
  const UniversalConfig config{.levels = 6, .depth = 4, .width_log2 = 9,
                               .heavy_capacity = 24, .seed = 24};
  UniversalSketch scalar(config), batched(config);
  for (std::uint64_t label : stream.labels) scalar.add(label);
  batched.add_batch(stream.labels);
  EXPECT_EQ(batched.serialize(), scalar.serialize());
}

TEST(UniversalSketch, GSumEstimatesTrackExactMoments) {
  const SkewedStream stream(60'000, 8'000, 1.3, 25);
  UniversalSketch us(UniversalConfig{.levels = 8, .depth = 4, .width_log2 = 11,
                                     .heavy_capacity = 48, .seed = 26});
  us.add_batch(stream.labels);

  double f2 = 0.0, entropy = 0.0;
  const auto f1 = static_cast<double>(stream.labels.size());
  for (const auto& [label, count] : stream.truth) {
    const auto c = static_cast<double>(count);
    f2 += c * c;
    entropy -= (c / f1) * std::log2(c / f1);
  }
  EXPECT_DOUBLE_EQ(us.f1(), f1);
  EXPECT_NEAR(us.f2(), f2, 0.3 * f2);
  EXPECT_NEAR(us.entropy(), entropy, 0.3 * entropy);
}

TEST(UniversalSketch, MergeTreeInvariantInBytes) {
  const SkewedStream stream(24'000, 4'000, 1.4, 27);
  const UniversalConfig config{.levels = 6, .depth = 4, .width_log2 = 9,
                               .heavy_capacity = 16, .seed = 28};
  constexpr std::size_t kParts = 4;
  std::vector<UniversalSketch> parts(kParts, UniversalSketch(config));
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    parts[i % kParts].add(stream.labels[i]);
  }
  UniversalSketch fold = parts[0];
  for (std::size_t p = 1; p < kParts; ++p) fold.merge(parts[p]);
  const auto reference = fold.serialize();

  UniversalSketch tree_left = parts[0], tree_right = parts[2];
  tree_left.merge(parts[1]);
  tree_right.merge(parts[3]);
  tree_left.merge(tree_right);
  EXPECT_EQ(tree_left.serialize(), reference);

  UniversalSketch reversed = parts[3];
  reversed.merge(parts[2]);
  reversed.merge(parts[1]);
  reversed.merge(parts[0]);
  EXPECT_EQ(reversed.serialize(), reference);
}

TEST(UniversalSketch, RoundTripAndMismatchRejection) {
  const SkewedStream stream(12'000, 2'000, 1.3, 29);
  const UniversalConfig config{.levels = 5, .depth = 4, .width_log2 = 9,
                               .heavy_capacity = 16, .seed = 30};
  UniversalSketch us(config);
  us.add_batch(stream.labels);
  const auto bytes = us.serialize();
  EXPECT_EQ(UniversalSketch::deserialize(bytes).serialize(), bytes);

  UniversalSketch wrong_levels(UniversalConfig{.levels = 6, .depth = 4, .width_log2 = 9,
                                               .heavy_capacity = 16, .seed = 30});
  UniversalSketch wrong_seed(UniversalConfig{.levels = 5, .depth = 4, .width_log2 = 9,
                                             .heavy_capacity = 16, .seed = 31});
  EXPECT_FALSE(us.can_merge_with(wrong_levels));
  EXPECT_FALSE(us.can_merge_with(wrong_seed));
  EXPECT_THROW(us.merge(wrong_levels), InvalidArgument);
  EXPECT_THROW(UniversalSketch(UniversalConfig{.levels = 0}), InvalidArgument);
  EXPECT_THROW(UniversalSketch(UniversalConfig{.levels = 17}), InvalidArgument);
}

// All sites carve out identical level sets (the sampling hash rides the
// shared seed): layer j at every site summarizes the same slice of the
// label space, so the merged sketch's per-layer counters and weights are
// EXACTLY the union stream's. (The SpaceSaver component is merge-tree
// invariant over the same parts but intentionally not identical to a
// one-pass summary — its intervals widen under partitioning — so the
// byte-for-byte claim applies to the exact components.)
TEST(UniversalSketch, MergedSitesMatchUnionStreamOnExactComponents) {
  const SkewedStream stream(20'000, 3'000, 1.4, 32);
  const UniversalConfig config{.levels = 6, .depth = 4, .width_log2 = 9,
                               .heavy_capacity = 16, .seed = 33};
  UniversalSketch whole(config), a(config), b(config);
  for (std::size_t i = 0; i < stream.labels.size(); ++i) {
    whole.add(stream.labels[i]);
    ((i % 2 == 0) ? a : b).add(stream.labels[i]);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.f1(), whole.f1());
  for (std::size_t j = 0; j < a.levels(); ++j) {
    // Same level sets + exact counter addition: the count-sketch planes
    // agree to the byte, and each layer saw the same total weight.
    EXPECT_EQ(a.layer(j).count_sketch().serialize(),
              whole.layer(j).count_sketch().serialize())
        << "layer " << j;
    EXPECT_EQ(a.layer(j).items_processed(), whole.layer(j).items_processed())
        << "layer " << j;
  }
}

// ---------------------------------------------------------------------------
// Superspreader frequency fusion

SuperspreaderConfig fusion_config(std::size_t fusion_capacity) {
  SuperspreaderConfig config;
  config.table_capacity = 16;
  config.sampler_capacity = 32;
  config.admission_level = 1;
  config.seed = 0xabcULL;
  config.fusion_capacity = fusion_capacity;
  return config;
}

TEST(SuperspreaderFusion, FusionOffKeepsV1WireBytes) {
  SuperspreaderDetector detector(fusion_config(0));
  Xoshiro256 rng(34);
  for (int i = 0; i < 5'000; ++i) detector.observe(rng.below(64), rng.next());
  const auto bytes = detector.serialize();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 1u);  // the pre-fusion wire version, byte for byte
  EXPECT_EQ(SuperspreaderDetector::deserialize(bytes).serialize(), bytes);
}

TEST(SuperspreaderFusion, FusionOnRoundTripsAndRejectsMixes) {
  SuperspreaderDetector fused(fusion_config(256));
  Xoshiro256 rng(35);
  for (int i = 0; i < 20'000; ++i) {
    fused.observe(rng.below(512), rng.next());
  }
  const auto bytes = fused.serialize();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 2u);
  EXPECT_EQ(SuperspreaderDetector::deserialize(bytes).serialize(), bytes);

  SuperspreaderDetector classic(fusion_config(0));
  EXPECT_FALSE(fused.can_merge_with(classic));
  EXPECT_THROW(fused.merge(classic), InvalidArgument);
}

TEST(SuperspreaderFusion, TailSingletonsStopChurningTheTable) {
  // One true spreader (4k distinct destinations) buried in a huge tail of
  // one-contact sources. With classic one-coin admission every surviving
  // singleton evicts a tracked source; with fusion the singletons rarely
  // reach 2 guaranteed survivals, so the spreader stays tracked.
  const std::uint64_t spreader = 0x5eedULL;
  auto run = [&](std::size_t fusion_capacity) {
    SuperspreaderDetector detector(fusion_config(fusion_capacity));
    Xoshiro256 rng(36);
    for (int i = 0; i < 4'000; ++i) {
      detector.observe(spreader, rng.next());
      // 8 fresh singleton sources between every spreader contact.
      for (int j = 0; j < 8; ++j) detector.observe(rng.next(), rng.next());
    }
    return detector.estimate(spreader);
  };
  const double fused_estimate = run(1024);
  EXPECT_GT(fused_estimate, 1'000.0);  // tracked, with most contacts seen
  // The fused detector must do at least as well as classic admission under
  // this adversarial tail (classic may or may not keep the spreader —
  // that's the churn the fusion stage removes).
  EXPECT_GE(fused_estimate, run(0) * 0.5);
}

TEST(SuperspreaderFusion, MergeCombinesFusedCountsAcrossLinks) {
  // The same spreader split across two links: neither link alone reaches
  // the admission bar, but the merged fusion stage carries the union
  // counts forward, exactly like the per-source samplers do.
  SuperspreaderConfig config = fusion_config(128);
  config.fusion_min_admit = 4;
  SuperspreaderDetector a(config), b(config);
  Xoshiro256 rng(37);
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t destination = rng.next();
    ((i % 2 == 0) ? a : b).observe(0x7eadULL, destination);
  }
  a.merge(b);
  const auto bytes = a.serialize();
  EXPECT_EQ(SuperspreaderDetector::deserialize(bytes).serialize(), bytes);
}

}  // namespace
}  // namespace ustream
