// Failure injection and differential fuzzing:
//   * corrupted wire bytes must raise SerializationError (or decode to a
//     consistent object when the corruption is benign) — never crash;
//   * DenseMap is differentially tested against std::unordered_map under a
//     random operation mix;
//   * random add/merge interleavings keep every sampler invariant intact.
#include <gtest/gtest.h>

#include <unordered_map>

#include "cli/commands.h"
#include "common/dense_map.h"
#include "common/frame.h"
#include "common/random.h"
#include "core/coordinated_sampler.h"
#include "core/distinct_sampler.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "core/range_sampler.h"
#include "core/windowed_sampler.h"
#include "freq/count_sketch.h"
#include "freq/freq_sketch.h"
#include "freq/space_saver.h"
#include "freq/universal_sketch.h"
#include "netmon/superspreader.h"

namespace ustream {
namespace {

template <typename Deserialize>
void corruption_sweep(std::vector<std::uint8_t> bytes, Deserialize deserialize,
                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    auto copy = bytes;
    const int mode = static_cast<int>(rng.below(3));
    if (mode == 0 && !copy.empty()) {
      copy[rng.below(copy.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    } else if (mode == 1) {
      copy.resize(rng.below(copy.size() + 1));  // truncate
    } else {
      const auto extra = 1 + rng.below(8);
      for (std::uint64_t i = 0; i < extra; ++i) {
        copy.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    }
    try {
      deserialize(copy);  // accepting is fine IF it didn't corrupt state...
    } catch (const SerializationError&) {
      // ...rejecting is the common outcome; both are acceptable, crashing
      // or throwing anything else is not.
    }
  }
}

TEST(WireFuzz, CoordinatedSamplerSurvivesCorruption) {
  CoordinatedSampler<PairwiseHash, Unit> s(64, 9);
  Xoshiro256 rng(1);
  for (int i = 0; i < 20'000; ++i) s.add(rng.next());
  corruption_sweep(s.serialize(),
                   [](const std::vector<std::uint8_t>& b) {
                     (void)CoordinatedSampler<PairwiseHash, Unit>::deserialize(b);
                   },
                   11);
}

TEST(WireFuzz, F0EstimatorSurvivesCorruption) {
  F0Estimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 10});
  Xoshiro256 rng(2);
  for (int i = 0; i < 10'000; ++i) est.add(rng.next());
  corruption_sweep(est.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)F0Estimator::deserialize(b); },
                   12);
}

TEST(WireFuzz, RangeSamplerSurvivesCorruption) {
  RangeSampler s(128, 11);
  s.add_range(1000, 5'000'000);
  corruption_sweep(s.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)RangeSampler::deserialize(b); },
                   13);
}

TEST(WireFuzz, BottomKSurvivesCorruption) {
  BottomKSampler s(64, 12);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) s.add(rng.next(), rng.uniform01());
  corruption_sweep(s.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)BottomKSampler::deserialize(b); },
                   14);
}

// The frequency subsystem's deserializers face the same bar: corrupted
// bytes must be rejected or decoded into a consistent object, never crash.
// SpaceSaver and the bundles validate aggressively (sorted labels, bound
// arithmetic), so most corruptions land in SerializationError.
TEST(WireFuzz, CountSketchSurvivesCorruption) {
  CountSketch cs(4, 10, 40);
  Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) cs.add(rng.next());
  corruption_sweep(cs.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)CountSketch::deserialize(b); },
                   41);
}

TEST(WireFuzz, SpaceSaverSurvivesCorruption) {
  SpaceSaver ss(48);
  Xoshiro256 rng(18);
  for (int i = 0; i < 20'000; ++i) ss.add(rng.below(5'000));
  corruption_sweep(ss.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)SpaceSaver::deserialize(b); },
                   42);
}

TEST(WireFuzz, FreqSketchSurvivesCorruption) {
  FreqSketch sketch(FreqConfig{.depth = 4, .width_log2 = 9, .heavy_capacity = 32, .seed = 43});
  Xoshiro256 rng(19);
  for (int i = 0; i < 20'000; ++i) sketch.add(rng.below(5'000));
  corruption_sweep(sketch.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)FreqSketch::deserialize(b); },
                   44);
}

TEST(WireFuzz, UniversalSketchSurvivesCorruption) {
  UniversalSketch us(UniversalConfig{.levels = 5, .depth = 4, .width_log2 = 8,
                                     .heavy_capacity = 16, .seed = 45});
  Xoshiro256 rng(20);
  for (int i = 0; i < 20'000; ++i) us.add(rng.below(5'000));
  corruption_sweep(us.serialize(),
                   [](const std::vector<std::uint8_t>& b) { (void)UniversalSketch::deserialize(b); },
                   46);
}

TEST(WireFuzz, FusedSuperspreaderSurvivesCorruption) {
  SuperspreaderConfig config;
  config.table_capacity = 16;
  config.sampler_capacity = 16;
  config.fusion_capacity = 128;
  SuperspreaderDetector detector(config);
  Xoshiro256 rng(21);
  for (int i = 0; i < 10'000; ++i) detector.observe(rng.below(256), rng.next());
  corruption_sweep(detector.serialize(),
                   [](const std::vector<std::uint8_t>& b) {
                     (void)SuperspreaderDetector::deserialize(
                         std::span<const std::uint8_t>(b));
                   },
                   47);
}

// The frame layer upgrades the corruption contract from "reject or decode
// benignly" to "REJECT, full stop": with a CRC32C over header+payload,
// every truncation and bit-flip of a framed buffer must throw
// SerializationError before any sketch-specific parsing runs. 600 seeded
// corruptions per sketch type; zero undetected corruptions tolerated.
void framed_corruption_sweep(const std::vector<std::uint8_t>& payload, PayloadKind kind,
                             std::uint64_t seed) {
  const auto framed = frame_encode({kind, 1, 1}, payload);
  ASSERT_NO_THROW((void)frame_decode(framed));  // the pristine frame is fine
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < 600; ++trial) {
    auto copy = framed;
    const int mode = static_cast<int>(rng.below(4));
    if (mode == 0) {
      copy[rng.below(copy.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    } else if (mode == 1) {
      copy.resize(rng.below(copy.size()));  // strict truncation
    } else if (mode == 2) {
      const auto extra = 1 + rng.below(16);
      for (std::uint64_t i = 0; i < extra; ++i) {
        copy.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    } else {  // multi-bit burst, the classic CRC stress
      const auto flips = 1 + rng.below(32);
      for (std::uint64_t i = 0; i < flips; ++i) {
        copy[rng.below(copy.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
    }
    ASSERT_THROW((void)frame_decode(copy), SerializationError)
        << "undetected corruption, trial " << trial << " mode " << mode;
  }
}

TEST(WireFuzz, FramedF0EstimatorCorruptionAlwaysDetected) {
  F0Estimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 20});
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) est.add(rng.next());
  framed_corruption_sweep(est.serialize(), PayloadKind::kF0Estimator, 21);
}

TEST(WireFuzz, FramedDistinctSumCorruptionAlwaysDetected) {
  DistinctSumEstimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 22});
  Xoshiro256 rng(8);
  for (int i = 0; i < 10'000; ++i) est.add(rng.next(), rng.uniform01());
  framed_corruption_sweep(est.serialize(), PayloadKind::kDistinctSum, 23);
}

TEST(WireFuzz, FramedRangeSamplerCorruptionAlwaysDetected) {
  RangeSampler s(128, 24);
  s.add_range(1000, 5'000'000);
  framed_corruption_sweep(s.serialize(), PayloadKind::kRangeF0, 25);
}

TEST(WireFuzz, FramedBottomKCorruptionAlwaysDetected) {
  BottomKSampler s(64, 26);
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) s.add(rng.next(), rng.uniform01());
  framed_corruption_sweep(s.serialize(), PayloadKind::kBottomK, 27);
}

TEST(WireFuzz, FramedCoordinatedSamplerCorruptionAlwaysDetected) {
  CoordinatedSampler<PairwiseHash, Unit> s(64, 28);
  Xoshiro256 rng(10);
  for (int i = 0; i < 20'000; ++i) s.add(rng.next());
  framed_corruption_sweep(s.serialize(), PayloadKind::kCoordinatedSampler, 29);
}

TEST(WireFuzz, FramedEmptyPayloadCorruptionAlwaysDetected) {
  framed_corruption_sweep({}, PayloadKind::kOpaque, 30);
}

// The two frequency payload kinds join the framed matrix under the same
// zero-undetected-corruptions bar the referee relies on.
TEST(WireFuzz, FramedFreqSketchCorruptionAlwaysDetected) {
  FreqSketch sketch(FreqConfig{.depth = 4, .width_log2 = 9, .heavy_capacity = 32, .seed = 48});
  Xoshiro256 rng(22);
  for (int i = 0; i < 20'000; ++i) sketch.add(rng.below(5'000));
  framed_corruption_sweep(sketch.serialize(), PayloadKind::kFreqSketch, 49);
}

TEST(WireFuzz, FramedUniversalSketchCorruptionAlwaysDetected) {
  UniversalSketch us(UniversalConfig{.levels = 5, .depth = 4, .width_log2 = 8,
                                     .heavy_capacity = 16, .seed = 50});
  Xoshiro256 rng(23);
  for (int i = 0; i < 20'000; ++i) us.add(rng.below(5'000));
  framed_corruption_sweep(us.serialize(), PayloadKind::kUniversalSketch, 51);
}

// The continuous-mode kinds join the framed matrix: a corrupted delta that
// slipped past the CRC would silently skew the referee's mirror, so the
// zero-undetected-corruptions bar applies to them exactly as to full
// sketches.
TEST(WireFuzz, FramedWindowedF0CorruptionAlwaysDetected) {
  WindowedF0Estimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 31});
  Xoshiro256 rng(11);
  for (std::uint64_t t = 0; t < 10'000; ++t) est.add(rng.next(), t);
  framed_corruption_sweep(est.serialize(), PayloadKind::kWindowedF0, 32);
}

TEST(WireFuzz, FramedF0DeltaCorruptionAlwaysDetected) {
  F0Estimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 33});
  Xoshiro256 rng(12);
  for (int i = 0; i < 5'000; ++i) est.add(rng.next());
  const F0Estimator base = est;
  for (int i = 0; i < 5'000; ++i) est.add(rng.next());
  framed_corruption_sweep(est.serialize_delta(base), PayloadKind::kF0Delta, 34);
}

TEST(WireFuzz, FramedWindowedDeltaCorruptionAlwaysDetected) {
  Xoshiro256 rng(13);
  std::vector<WindowedF0Estimator::Op> ops;
  std::uint64_t t = 500;
  for (int i = 0; i < 2'000; ++i) ops.emplace_back(rng.next(), t++);
  framed_corruption_sweep(WindowedF0Estimator::encode_delta(500, 499, ops),
                          PayloadKind::kWindowedDelta, 35);
}

// Below the frame layer the delta decoders face the weaker contract:
// corrupted payload bytes must raise SerializationError or apply benignly
// — never crash, and for the windowed decoder never mutate the mirror on a
// rejected delta (validate-before-mutate).
TEST(WireFuzz, F0DeltaPayloadSurvivesCorruption) {
  F0Estimator est(EstimatorParams{.capacity = 32, .copies = 5, .seed = 36});
  Xoshiro256 rng(14);
  for (int i = 0; i < 5'000; ++i) est.add(rng.next());
  const F0Estimator base = est;
  for (int i = 0; i < 5'000; ++i) est.add(rng.next());
  corruption_sweep(est.serialize_delta(base),
                   [&base](const std::vector<std::uint8_t>& b) {
                     F0Estimator scratch = base;  // apply may partially mutate
                     scratch.apply_delta(std::span<const std::uint8_t>(b));
                   },
                   37);
}

TEST(WireFuzz, WindowedDeltaPayloadSurvivesCorruptionWithoutMutation) {
  WindowedF0Estimator mirror(EstimatorParams{.capacity = 32, .copies = 5, .seed = 38});
  Xoshiro256 rng(15);
  std::uint64_t t = 0;
  for (int i = 0; i < 3'000; ++i) mirror.add(rng.next(), t++);
  std::vector<WindowedF0Estimator::Op> ops;
  for (int i = 0; i < 1'000; ++i) ops.emplace_back(rng.next(), t++);
  const auto delta =
      WindowedF0Estimator::encode_delta(mirror.sequence(), mirror.last_timestamp(), ops);
  const auto pristine = mirror.serialize();
  Xoshiro256 sweep_rng(16);
  for (int trial = 0; trial < 400; ++trial) {
    auto copy = delta;
    const int mode = static_cast<int>(sweep_rng.below(3));
    if (mode == 0) {
      copy[sweep_rng.below(copy.size())] ^= static_cast<std::uint8_t>(1 + sweep_rng.below(255));
    } else if (mode == 1) {
      copy.resize(sweep_rng.below(copy.size()));
    } else {
      for (std::uint64_t i = 0, n = 1 + sweep_rng.below(8); i < n; ++i) {
        copy.push_back(static_cast<std::uint8_t>(sweep_rng.below(256)));
      }
    }
    try {
      mirror.apply_delta(std::span<const std::uint8_t>(copy));
      // Accepted: state advanced; rebuild the base mirror for the next trial.
      mirror = WindowedF0Estimator::deserialize(std::span<const std::uint8_t>(pristine));
    } catch (const SerializationError&) {
      // Rejected: validate-before-mutate means the mirror is untouched.
      ASSERT_EQ(mirror.serialize(), pristine) << "trial " << trial;
    }
  }
}

TEST(WireFuzz, CliRejectsJunkFiles) {
  const std::string junk_path = ::testing::TempDir() + "/junk.bin";
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(2048));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    {
      std::FILE* f = std::fopen(junk_path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!junk.empty()) std::fwrite(junk.data(), 1, junk.size(), f);
      std::fclose(f);
    }
    std::string out;
    EXPECT_NE(cli::run({"estimate", junk_path}, out), 0);
    std::string out2;
    const int info_code = cli::run({"info", junk_path}, out2);
    // info either classifies it as unrecognized or errors out cleanly.
    EXPECT_TRUE(info_code == 0 || info_code == 1);
  }
  std::remove(junk_path.c_str());
}

TEST(DifferentialFuzz, DenseMapMatchesUnorderedMap) {
  DenseMap<std::uint64_t> dut;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(5);
  for (int op = 0; op < 200'000; ++op) {
    const int kind = static_cast<int>(rng.below(10));
    const std::uint64_t key = rng.below(5000);  // collisions guaranteed
    if (kind < 6) {  // insert-if-absent
      const std::uint64_t value = rng.next();
      dut.try_emplace(key, value);
      ref.try_emplace(key, value);
    } else if (kind < 9) {  // lookup
      const auto* entry = dut.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(entry != nullptr, it != ref.end());
      if (entry) {
        ASSERT_EQ(entry->value, it->second);
      }
    } else {  // bulk filter on a random predicate
      const std::uint64_t keep_mod = 2 + rng.below(5);
      dut.filter([keep_mod](const auto& e) { return e.key % keep_mod != 0; });
      for (auto it = ref.begin(); it != ref.end();) {
        it = (it->first % keep_mod == 0) ? ref.erase(it) : std::next(it);
      }
    }
    if (op % 10'000 == 0) {
      ASSERT_EQ(dut.size(), ref.size());
    }
  }
  ASSERT_EQ(dut.size(), ref.size());
  for (const auto& [key, value] : ref) {
    const auto* entry = dut.find(key);
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->value, value);
  }
}

TEST(InterleavingFuzz, AddMergeInterleavingsKeepInvariants) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t capacity = 8 + rng.below(64);
    const std::uint64_t seed = rng.next();
    std::vector<CoordinatedSampler<PairwiseHash, Unit>> pool(
        4, CoordinatedSampler<PairwiseHash, Unit>(capacity, seed));
    for (int op = 0; op < 3000; ++op) {
      const std::size_t i = rng.below(pool.size());
      if (rng.bernoulli(0.9)) {
        pool[i].add(rng.below(2000));
      } else {
        const std::size_t j = rng.below(pool.size());
        if (i != j) pool[i].merge(pool[j]);
      }
      ASSERT_LE(pool[i].size(), capacity);
      for (auto label : pool[i].sample_labels()) {
        ASSERT_GE(pool[i].level_of(label), pool[i].level());
      }
    }
  }
}

}  // namespace
}  // namespace ustream
