#include "common/bits.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace ustream {
namespace {

TEST(Bits, TrailingZerosBasics) {
  EXPECT_EQ(trailing_zeros(1), 0);
  EXPECT_EQ(trailing_zeros(2), 1);
  EXPECT_EQ(trailing_zeros(3), 0);
  EXPECT_EQ(trailing_zeros(8), 3);
  EXPECT_EQ(trailing_zeros(std::uint64_t{1} << 63), 63);
}

TEST(Bits, TrailingZerosOfZeroIsWidth) {
  EXPECT_EQ(trailing_zeros(0), 64);
  EXPECT_EQ(trailing_zeros(0, 61), 61);
  EXPECT_EQ(trailing_zeros(0, 1), 1);
}

TEST(Bits, TrailingZerosIgnoresHighBitsAboveValue) {
  // Width only matters for the zero case; any set bit dominates.
  EXPECT_EQ(trailing_zeros(4, 61), 2);
}

TEST(Bits, LeadingZeros) {
  EXPECT_EQ(leading_zeros(0), 64);
  EXPECT_EQ(leading_zeros(1), 63);
  EXPECT_EQ(leading_zeros(std::uint64_t{1} << 63), 0);
  EXPECT_EQ(leading_zeros(1, 8), 7);
  EXPECT_EQ(leading_zeros(0x80, 8), 0);
  EXPECT_EQ(leading_zeros(0, 8), 8);
}

TEST(Bits, LsbRank) {
  EXPECT_EQ(lsb_rank(0), 0);
  EXPECT_EQ(lsb_rank(1), 1);
  EXPECT_EQ(lsb_rank(2), 2);
  EXPECT_EQ(lsb_rank(12), 3);
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Bits, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b1, 4), 0b1000u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  EXPECT_EQ(reverse_bits(reverse_bits(0xdeadbeefULL, 64), 64), 0xdeadbeefULL);
}

TEST(Bits, TrailingZerosGeometricLaw) {
  // Over all 16-bit values, exactly 2^(15-l) values have trailing_zeros == l.
  int counts[17] = {};
  for (std::uint64_t v = 0; v < (1u << 16); ++v) {
    ++counts[trailing_zeros(v, 16)];
  }
  for (int l = 0; l < 16; ++l) {
    EXPECT_EQ(counts[l], 1 << (15 - l)) << "level " << l;
  }
  EXPECT_EQ(counts[16], 1);  // only v == 0
}

}  // namespace
}  // namespace ustream
