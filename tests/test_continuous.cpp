// The continuous-monitoring extension: periodic snapshot pushes, including
// behaviour over a faulty transport (drops make the estimate STALE, never
// wrong: it remains a prefix-union estimate that cannot overcount).
#include "distributed/continuous.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "baselines/exact.h"
#include "common/error.h"
#include "common/stats.h"
#include "distributed/faulty_channel.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

TEST(Continuous, EmptyMonitorEstimatesZero) {
  ContinuousUnionMonitor mon(3, 100, EstimatorParams::for_guarantee(0.2, 0.1, 1));
  EXPECT_DOUBLE_EQ(mon.estimate(), 0.0);
}

TEST(Continuous, FlushedEstimateMatchesOneShot) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 2);
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 30'000, .overlap = 0.3, .duplication = 1.5, .seed = 1});
  ContinuousUnionMonitor mon(4, 500, params);
  F0Estimator central(params);
  for (std::size_t s = 0; s < 4; ++s) {
    for (const Item& item : w.site_streams[s]) {
      mon.observe(s, item.label);
      central.add(item.label);
    }
  }
  mon.flush();
  EXPECT_DOUBLE_EQ(mon.estimate(), central.estimate());
}

TEST(Continuous, EstimateNeverExceedsFinalByMuch) {
  // Before the flush, the referee only knows prefixes: the live estimate
  // must track below/at the flushed value (up to estimator noise).
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 3);
  ContinuousUnionMonitor mon(2, 1000, params);
  Xoshiro256 rng(2);
  for (int i = 0; i < 50'000; ++i) mon.observe(static_cast<std::size_t>(i % 2), rng.next());
  const double live = mon.estimate();
  mon.flush();
  const double final_est = mon.estimate();
  EXPECT_LE(live, final_est * 1.15);
  EXPECT_LT(relative_error(final_est, 50'000.0), 0.1);
}

TEST(Continuous, SnapshotCountMatchesInterval) {
  const auto params = EstimatorParams::for_guarantee(0.3, 0.2, 4);
  ContinuousUnionMonitor mon(1, 100, params);
  for (int i = 0; i < 1000; ++i) mon.observe(0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(mon.snapshots_received(), 10u);
  mon.flush();                                  // nothing pending
  EXPECT_EQ(mon.snapshots_received(), 10u);
  mon.observe(0, 9999);
  mon.flush();
  EXPECT_EQ(mon.snapshots_received(), 11u);
}

TEST(Continuous, SmallerIntervalCostsMoreBytes) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 5);
  std::uint64_t bytes_fine = 0, bytes_coarse = 0;
  for (std::uint64_t interval : {std::uint64_t{100}, std::uint64_t{2000}}) {
    ContinuousUnionMonitor mon(2, interval, params);
    Xoshiro256 rng(3);
    for (int i = 0; i < 20'000; ++i) mon.observe(static_cast<std::size_t>(i % 2), rng.next());
    mon.flush();
    (interval == 100 ? bytes_fine : bytes_coarse) = mon.channel_stats().total_bytes;
  }
  EXPECT_GT(bytes_fine, 5 * bytes_coarse);
}

TEST(Continuous, RejectsBadConstruction) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 6);
  EXPECT_THROW(ContinuousUnionMonitor(0, 10, params), InvalidArgument);
  EXPECT_THROW(ContinuousUnionMonitor(2, 0, params), InvalidArgument);
}

TEST(Continuous, ObserveOutOfRangeSiteThrows) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  ContinuousUnionMonitor mon(2, 10, params);
  EXPECT_THROW(mon.observe(5, 1), std::out_of_range);
}

TEST(Continuous, DroppedSnapshotsNeverOvercount) {
  // Under any drop probability the live answer is an estimate of a UNION
  // OF PREFIXES of what was truly observed — so up to estimator noise
  // (eps = 0.1, plus slack) it can never exceed the exact distinct count.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 8);
  for (double p : {0.05, 0.2, 0.5}) {
    ContinuousUnionMonitor mon(
        4, 250, params, std::make_unique<FaultyChannel>(4, FaultSpec::dropping(p), 81));
    ExactDistinctCounter exact;
    Xoshiro256 rng(9);
    for (int i = 0; i < 40'000; ++i) {
      const std::uint64_t label = rng.below(30'000);
      mon.observe(static_cast<std::size_t>(i % 4), label);
      exact.add(label);
      if (i % 5000 == 4999) {
        EXPECT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count()))
            << "p=" << p << " at item " << i;
      }
    }
    EXPECT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count())) << "p=" << p;
  }
}

TEST(Continuous, StalenessGrowsWithDropProbabilityAsPredicted) {
  // With drop probability p and report interval I, the tail of each site's
  // stream waits for a successful push: the referee's lag beyond the
  // no-fault residual is ~ I * p/(1-p) items on average (consecutive
  // dropped pushes are geometric). Check monotonicity and a loose band.
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 10);
  const std::size_t sites = 16;
  const std::uint64_t interval = 200;
  const int items = 60'000;
  double base_mean = 0.0;
  std::vector<double> means;
  for (double p : {0.0, 0.3, 0.6}) {
    ContinuousUnionMonitor mon(
        sites, interval, params,
        std::make_unique<FaultyChannel>(sites, FaultSpec::dropping(p), 82));
    Xoshiro256 rng(11);
    for (int i = 0; i < items; ++i) {
      mon.observe(static_cast<std::size_t>(i) % sites, rng.next());
    }
    const auto lag = mon.staleness();
    const double mean =
        std::accumulate(lag.begin(), lag.end(), 0.0) / static_cast<double>(sites);
    if (p == 0.0) base_mean = mean;
    means.push_back(mean);
    if (p > 0.0) {
      const double predicted_extra = static_cast<double>(interval) * p / (1.0 - p);
      const double extra = mean - base_mean;
      EXPECT_GT(extra, 0.2 * predicted_extra) << "p=" << p;
      EXPECT_LT(extra, 5.0 * predicted_extra) << "p=" << p;
    }
  }
  EXPECT_LT(means[0], means[1]);
  EXPECT_LT(means[1], means[2]);
}

TEST(Continuous, FlushRetriesThroughHeavyDrops) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 12);
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;
  policy.sleep_on_backoff = false;
  ContinuousUnionMonitor faulty(
      3, 500, params, std::make_unique<FaultyChannel>(3, FaultSpec::dropping(0.5), 83),
      policy);
  ContinuousUnionMonitor clean(3, 500, params);
  Xoshiro256 rng(13);
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t label = rng.next();
    faulty.observe(static_cast<std::size_t>(i % 3), label);
    clean.observe(static_cast<std::size_t>(i % 3), label);
  }
  clean.flush();
  const CollectReport& report = faulty.flush();
  EXPECT_TRUE(report.complete()) << report.summary();
  EXPECT_GT(report.retries, 0u);
  // Converged flush == the no-fault answer: retries recovered every drop.
  EXPECT_DOUBLE_EQ(faulty.estimate(), clean.estimate());
  for (auto lag : faulty.staleness()) EXPECT_EQ(lag, 0u);
}

TEST(Continuous, DuplicatedSnapshotsMergeOnce) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 14);
  ContinuousUnionMonitor noisy(
      2, 400, params,
      std::make_unique<FaultyChannel>(2, FaultSpec{.duplicate = 1.0, .reorder = 0.5}, 84));
  ContinuousUnionMonitor clean(2, 400, params);
  Xoshiro256 rng(15);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t label = rng.next();
    noisy.observe(static_cast<std::size_t>(i % 2), label);
    clean.observe(static_cast<std::size_t>(i % 2), label);
  }
  noisy.flush();
  clean.flush();
  EXPECT_DOUBLE_EQ(noisy.estimate(), clean.estimate());
  EXPECT_GT(noisy.status().duplicates_dropped, 0u);
  EXPECT_EQ(noisy.status().frames_quarantined, 0u);
}

TEST(Continuous, CorruptedSnapshotsAreQuarantinedNotMerged) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 16);
  ContinuousUnionMonitor mon(
      2, 300, params,
      std::make_unique<FaultyChannel>(2, FaultSpec::corrupting(0.5), 85));
  ExactDistinctCounter exact;
  Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t label = rng.below(15'000);
    mon.observe(static_cast<std::size_t>(i % 2), label);
    exact.add(label);
  }
  EXPECT_GT(mon.status().frames_quarantined, 0u);
  // Quarantine means the estimate stays a sane prefix-union answer.
  EXPECT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count()));
}

TEST(Continuous, IncrementalEstimateMatchesFullRemergeThroughout) {
  // The query cache folds only sites whose snapshot epoch moved; the answer
  // must equal the copy-everything reference path at EVERY point, not just
  // at the end. Checkpoints interleave queries with pushes so the cache is
  // exercised warm (no change), cold (first fold) and partially dirty.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 18);
  const std::size_t sites = 8;
  ContinuousUnionMonitor mon(sites, 64, params);
  Xoshiro256 rng(19);
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
  for (int i = 0; i < 40'000; ++i) {
    mon.observe(rng.below(sites), rng.below(25'000));
    if (i % 1000 == 999) {
      ASSERT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge()) << "at item " << i;
      // A second query with no new snapshots must serve the cache verbatim.
      ASSERT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge()) << "at item " << i;
    }
  }
  mon.flush();
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
}

TEST(Continuous, IncrementalEstimateMatchesFullRemergeOverFaultyTransport) {
  // Drops, duplicates and corruption shuffle WHICH epochs reach the
  // referee; the epoch-tagged cache must stay exact regardless (stale or
  // quarantined snapshots simply never dirty their site's tag).
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 20);
  const std::size_t sites = 4;
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;
  policy.sleep_on_backoff = false;
  ContinuousUnionMonitor mon(
      sites, 200, params, std::make_unique<FaultyChannel>(sites, FaultSpec::chaos(0.3), 86),
      policy);
  Xoshiro256 rng(21);
  for (int i = 0; i < 30'000; ++i) {
    mon.observe(rng.below(sites), rng.next());
    if (i % 2500 == 2499) {
      ASSERT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge()) << "at item " << i;
    }
  }
  mon.flush();
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
}

// ---------------------------------------------------------------------------
// Delta protocol (DESIGN.md §12): threshold-silent sites, delta frames,
// full-frame resync on chain breaks.

constexpr ContinuousMonitorOptions kDeltaOpts{.delta_protocol = true, .growth = 0.25};

TEST(ContinuousDelta, SessionSendsFullThenDeltasThenResync) {
  DeltaSiteSession session(EstimatorParams::for_guarantee(0.2, 0.1, 30), 0.25);
  // First crossing emits a full frame (no base yet).
  std::uint64_t label = 0;
  while (!session.add(label)) ++label;
  auto first = session.next_update();
  EXPECT_FALSE(first.is_delta);
  EXPECT_EQ(first.epoch, 1u);
  session.delivered();
  EXPECT_FALSE(session.dirty());
  // Next crossing rides the chain as a delta.
  while (!session.add(++label)) {
  }
  auto second = session.next_update();
  EXPECT_TRUE(second.is_delta);
  EXPECT_EQ(second.epoch, 2u);
  session.delivered();
  // A lost transmission breaks the chain: the next update re-bases full.
  while (!session.add(++label)) {
  }
  auto third = session.next_update();
  EXPECT_TRUE(third.is_delta);
  session.lost();
  EXPECT_TRUE(session.needs_full());
  auto resync = session.next_update();
  EXPECT_FALSE(resync.is_delta);
  session.delivered();
  EXPECT_EQ(session.resyncs(), 1u);
  EXPECT_EQ(session.fulls_sent(), 2u);
  EXPECT_EQ(session.deltas_sent(), 2u);
}

TEST(ContinuousDelta, DeltaReconstructionIsBitIdentical) {
  // The referee applying (full, delta, delta, ...) must hold the SAME bytes
  // as a full serialization of the site's sketch at each acked point.
  DeltaSiteSession session(EstimatorParams::for_guarantee(0.15, 0.05, 31), 0.25);
  std::optional<F0Estimator> mirror;
  Xoshiro256 rng(32);
  for (int i = 0; i < 30'000; ++i) {
    if (!session.add(rng.below(20'000))) continue;
    const auto out = session.next_update();
    if (out.is_delta) {
      mirror->apply_delta(std::span<const std::uint8_t>(out.payload));
    } else {
      mirror = F0Estimator::deserialize(std::span<const std::uint8_t>(out.payload));
    }
    session.delivered();
    ASSERT_EQ(mirror->serialize(), session.sketch().serialize()) << "at item " << i;
  }
}

TEST(ContinuousDelta, EstimateMatchesFullRemergeAtEveryCheckpoint) {
  // Satellite property: with the delta protocol on a clean transport the
  // incremental estimate equals the copy-everything reference at every
  // checkpoint, and the flushed answer equals the one-shot central fold.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 33);
  const std::size_t sites = 6;
  ContinuousUnionMonitor mon(sites, 64, params, kDeltaOpts);
  F0Estimator central(params);
  Xoshiro256 rng(34);
  for (int i = 0; i < 40'000; ++i) {
    const std::uint64_t label = rng.below(25'000);
    mon.observe(rng.below(sites), label);
    central.add(label);
    if (i % 1000 == 999) {
      ASSERT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge()) << "at item " << i;
    }
  }
  mon.flush();
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
  EXPECT_DOUBLE_EQ(mon.estimate(), central.estimate());
  EXPECT_GT(mon.deltas_sent(), 0u);
  EXPECT_GT(mon.suppressed_updates(), mon.deltas_sent());
  EXPECT_EQ(mon.delta_resyncs(), 0u);
}

TEST(ContinuousDelta, ChaosNeverOvercountsAndDropsForceResyncs) {
  // Satellite property: under FaultyChannel chaos every broken delta chain
  // falls back to a full-frame resync, the estimate stays a prefix-union
  // answer (never overcounts beyond estimator noise) at EVERY checkpoint,
  // and the incremental path still equals full remerge.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 35);
  const std::size_t sites = 4;
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;
  policy.sleep_on_backoff = false;
  ContinuousUnionMonitor mon(
      sites, 64, params, std::make_unique<FaultyChannel>(sites, FaultSpec::dropping(0.4), 87),
      policy, kDeltaOpts);
  ExactDistinctCounter exact;
  Xoshiro256 rng(36);
  for (int i = 0; i < 40'000; ++i) {
    const std::uint64_t label = rng.below(25'000);
    mon.observe(rng.below(sites), label);
    exact.add(label);
    if (i % 2500 == 2499) {
      ASSERT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge()) << "at item " << i;
      ASSERT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count()))
          << "at item " << i;
    }
  }
  EXPECT_GT(mon.delta_resyncs(), 0u);  // drops really broke chains
  const CollectReport& report = mon.flush();
  EXPECT_TRUE(report.complete()) << report.summary();
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
  EXPECT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count()));
  for (auto lag : mon.staleness()) EXPECT_EQ(lag, 0u);
}

TEST(ContinuousDelta, FlushedDeltaRunMatchesSnapshotProtocol) {
  // Same streams through both protocol variants: after a converged flush
  // the referee state is identical (sampler state is a pure function of
  // the absorbed label set), while the delta variant spends far fewer
  // bytes and messages.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 37);
  const std::size_t sites = 4;
  ContinuousUnionMonitor delta_mon(sites, 64, params, kDeltaOpts);
  ContinuousUnionMonitor snap_mon(sites, 64, params);
  Xoshiro256 rng(38);
  for (int i = 0; i < 60'000; ++i) {
    const std::uint64_t label = rng.below(30'000);
    const auto site = static_cast<std::size_t>(rng.below(sites));
    delta_mon.observe(site, label);
    snap_mon.observe(site, label);
  }
  delta_mon.flush();
  snap_mon.flush();
  EXPECT_DOUBLE_EQ(delta_mon.estimate(), snap_mon.estimate());
  EXPECT_LT(delta_mon.channel_stats().total_bytes, snap_mon.channel_stats().total_bytes / 5);
  EXPECT_LT(delta_mon.channel_stats().messages, snap_mon.channel_stats().messages / 2);
}

TEST(ContinuousDelta, CorruptDeltasQuarantineAndResync) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 39);
  const std::size_t sites = 2;
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;
  policy.sleep_on_backoff = false;
  ContinuousUnionMonitor mon(
      sites, 64, params,
      std::make_unique<FaultyChannel>(sites, FaultSpec::corrupting(0.3), 88), policy,
      kDeltaOpts);
  ExactDistinctCounter exact;
  Xoshiro256 rng(40);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t label = rng.below(15'000);
    mon.observe(static_cast<std::size_t>(i) % sites, label);
    exact.add(label);
  }
  EXPECT_GT(mon.status().frames_quarantined, 0u);
  EXPECT_LE(mon.estimate(), 1.15 * static_cast<double>(exact.count()));
  const CollectReport& report = mon.flush();
  EXPECT_TRUE(report.complete()) << report.summary();
  EXPECT_DOUBLE_EQ(mon.estimate(), mon.estimate_full_remerge());
}

// ---------------------------------------------------------------------------
// Sliding-window continuous protocol (kWindowedDelta op-replay frames).

TEST(ContinuousWindowed, MirrorsTrackSitesBitIdentically) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 41);
  const std::size_t sites = 3;
  ContinuousWindowedMonitor mon(sites, 128, params);
  Xoshiro256 rng(42);
  std::uint64_t t = 0;
  for (int i = 0; i < 30'000; ++i) {
    mon.observe(rng.below(sites), rng.below(10'000), t++);
  }
  mon.flush();
  // After a converged flush the referee answers exactly what a zero-lag
  // union over the live site estimators would, for any window start.
  for (std::uint64_t start : {std::uint64_t{0}, t / 2, t - 500, t}) {
    EXPECT_DOUBLE_EQ(mon.estimate(start), mon.site_estimate(start)) << start;
  }
  EXPECT_GT(mon.deltas_sent(), 0u);
}

TEST(ContinuousWindowed, DropsForceFullResyncAndConverge) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 43);
  const std::size_t sites = 2;
  RetryPolicy policy;
  policy.max_attempts_per_site = 16;
  policy.sleep_on_backoff = false;
  ContinuousWindowedMonitor mon(
      sites, 64, params, std::make_unique<FaultyChannel>(sites, FaultSpec::dropping(0.4), 89),
      policy);
  Xoshiro256 rng(44);
  std::uint64_t t = 0;
  for (int i = 0; i < 20'000; ++i) {
    mon.observe(static_cast<std::size_t>(i) % sites, rng.below(8'000), t++);
  }
  EXPECT_GT(mon.fulls_sent(), sites);  // drops forced at least one resync
  const CollectReport& report = mon.flush();
  EXPECT_TRUE(report.complete()) << report.summary();
  for (std::uint64_t start : {std::uint64_t{0}, t / 2, t}) {
    EXPECT_DOUBLE_EQ(mon.estimate(start), mon.site_estimate(start)) << start;
  }
}

}  // namespace
}  // namespace ustream
