// The continuous-monitoring extension: periodic snapshot pushes.
#include "distributed/continuous.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "stream/partitioner.h"

namespace ustream {
namespace {

TEST(Continuous, EmptyMonitorEstimatesZero) {
  ContinuousUnionMonitor mon(3, 100, EstimatorParams::for_guarantee(0.2, 0.1, 1));
  EXPECT_DOUBLE_EQ(mon.estimate(), 0.0);
}

TEST(Continuous, FlushedEstimateMatchesOneShot) {
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 2);
  const auto w = make_distributed_workload(
      {.sites = 4, .union_distinct = 30'000, .overlap = 0.3, .duplication = 1.5, .seed = 1});
  ContinuousUnionMonitor mon(4, 500, params);
  F0Estimator central(params);
  for (std::size_t s = 0; s < 4; ++s) {
    for (const Item& item : w.site_streams[s]) {
      mon.observe(s, item.label);
      central.add(item.label);
    }
  }
  mon.flush();
  EXPECT_DOUBLE_EQ(mon.estimate(), central.estimate());
}

TEST(Continuous, EstimateNeverExceedsFinalByMuch) {
  // Before the flush, the referee only knows prefixes: the live estimate
  // must track below/at the flushed value (up to estimator noise).
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 3);
  ContinuousUnionMonitor mon(2, 1000, params);
  Xoshiro256 rng(2);
  for (int i = 0; i < 50'000; ++i) mon.observe(static_cast<std::size_t>(i % 2), rng.next());
  const double live = mon.estimate();
  mon.flush();
  const double final_est = mon.estimate();
  EXPECT_LE(live, final_est * 1.15);
  EXPECT_LT(relative_error(final_est, 50'000.0), 0.1);
}

TEST(Continuous, SnapshotCountMatchesInterval) {
  const auto params = EstimatorParams::for_guarantee(0.3, 0.2, 4);
  ContinuousUnionMonitor mon(1, 100, params);
  for (int i = 0; i < 1000; ++i) mon.observe(0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(mon.snapshots_received(), 10u);
  mon.flush();                                  // nothing pending
  EXPECT_EQ(mon.snapshots_received(), 10u);
  mon.observe(0, 9999);
  mon.flush();
  EXPECT_EQ(mon.snapshots_received(), 11u);
}

TEST(Continuous, SmallerIntervalCostsMoreBytes) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 5);
  std::uint64_t bytes_fine = 0, bytes_coarse = 0;
  for (std::uint64_t interval : {std::uint64_t{100}, std::uint64_t{2000}}) {
    ContinuousUnionMonitor mon(2, interval, params);
    Xoshiro256 rng(3);
    for (int i = 0; i < 20'000; ++i) mon.observe(static_cast<std::size_t>(i % 2), rng.next());
    mon.flush();
    (interval == 100 ? bytes_fine : bytes_coarse) = mon.channel_stats().total_bytes;
  }
  EXPECT_GT(bytes_fine, 5 * bytes_coarse);
}

TEST(Continuous, RejectsBadConstruction) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 6);
  EXPECT_THROW(ContinuousUnionMonitor(0, 10, params), InvalidArgument);
  EXPECT_THROW(ContinuousUnionMonitor(2, 0, params), InvalidArgument);
}

TEST(Continuous, ObserveOutOfRangeSiteThrows) {
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 7);
  ContinuousUnionMonitor mon(2, 10, params);
  EXPECT_THROW(mon.observe(5, 1), std::out_of_range);
}

}  // namespace
}  // namespace ustream
