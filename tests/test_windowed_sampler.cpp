// Sliding-window distinct counting (extension E12).
#include "core/windowed_sampler.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/dense_map.h"
#include "common/random.h"

namespace ustream {
namespace {

// Brute-force reference: distinct labels among items with ts >= start.
class ExactWindow {
 public:
  void add(std::uint64_t label, std::uint64_t ts) { items_.push_back({label, ts}); }
  std::size_t distinct_since(std::uint64_t start) const {
    DenseSet s;
    for (const auto& [label, ts] : items_) {
      if (ts >= start) s.insert(label);
    }
    return s.size();
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items_;
};

TEST(WindowedSampler, ExactInSmallRegime) {
  WindowedF0Sampler s(1024, 3);
  ExactWindow exact;
  for (std::uint64_t t = 0; t < 500; ++t) {
    const std::uint64_t label = (t * 7) % 200;  // duplicates within window
    s.add(label, t);
    exact.add(label, t);
  }
  for (std::uint64_t start : {0ull, 100ull, 250ull, 499ull, 500ull}) {
    EXPECT_EQ(s.level_for_window(start), 0) << start;
    EXPECT_DOUBLE_EQ(s.estimate_distinct(start),
                     static_cast<double>(exact.distinct_since(start)))
        << start;
  }
}

TEST(WindowedSampler, ReArrivalRefreshesRecency) {
  WindowedF0Sampler s(1024, 4);
  s.add(42, 10);
  s.add(42, 100);
  // Window starting after the first arrival still contains the label.
  EXPECT_DOUBLE_EQ(s.estimate_distinct(50), 1.0);
  // Window starting after the latest arrival does not.
  EXPECT_DOUBLE_EQ(s.estimate_distinct(101), 0.0);
}

TEST(WindowedSampler, WindowSemanticsUnderEviction) {
  // Small capacity: old windows must fall back to higher levels, recent
  // windows stay near-exact; the estimate is always within the statistical
  // band of the truth.
  constexpr std::size_t kCapacity = 512;
  WindowedF0Sampler s(kCapacity, 5);
  ExactWindow exact;
  Xoshiro256 rng(1);
  constexpr std::uint64_t kItems = 50'000;
  for (std::uint64_t t = 0; t < kItems; ++t) {
    const std::uint64_t label = rng.below(20'000);
    s.add(label, t);
    exact.add(label, t);
  }
  // Recent small window: level 0, exact.
  {
    const std::uint64_t start = kItems - 300;
    EXPECT_EQ(s.level_for_window(start), 0);
    EXPECT_DOUBLE_EQ(s.estimate_distinct(start),
                     static_cast<double>(exact.distinct_since(start)));
  }
  // Large window: higher level, approximate.
  {
    const std::uint64_t start = kItems / 2;
    const double truth = static_cast<double>(exact.distinct_since(start));
    EXPECT_GT(s.level_for_window(start), 0);
    EXPECT_NEAR(s.estimate_distinct(start), truth, 0.35 * truth);
  }
}

TEST(WindowedSampler, LevelStructureInvariants) {
  WindowedF0Sampler s(64, 6);
  Xoshiro256 rng(2);
  for (std::uint64_t t = 0; t < 20'000; ++t) s.add(rng.next(), t);
  for (int l = 0; l <= 12; ++l) {
    ASSERT_LE(s.level_size(l), 64u) << l;
  }
  // Horizons are (weakly) decreasing in level: higher levels see fewer
  // labels, so they evict older material later.
  for (int l = 1; l <= 12; ++l) {
    EXPECT_LE(s.level_horizon(l), s.level_horizon(l - 1)) << l;
  }
}

TEST(WindowedSampler, NonMonotoneTimestampsRejected) {
  WindowedF0Sampler s(16, 7);
  s.add(1, 100);
  EXPECT_THROW(s.add(2, 99), InvalidArgument);
  s.add(3, 100);  // ties are fine
}

TEST(WindowedSampler, WholeStreamWindowMatchesPlainF0Shape) {
  // Window covering everything behaves like ordinary F0 estimation.
  WindowedF0Estimator est(0.15, 0.05, 8);
  Xoshiro256 rng(3);
  constexpr std::size_t kDistinct = 30'000;
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next(), t++);
  EXPECT_NEAR(est.estimate_distinct(0), static_cast<double>(kDistinct), 0.15 * kDistinct);
}

TEST(WindowedSampler, QueryAnyWindowAfterTheFact) {
  // One pass, then many window queries of different sizes — the selling
  // point over one-sketch-per-window designs.
  WindowedF0Estimator est(0.15, 0.05, 9);
  ExactWindow exact;
  Xoshiro256 rng(4);
  constexpr std::uint64_t kItems = 60'000;
  for (std::uint64_t t = 0; t < kItems; ++t) {
    const std::uint64_t label = rng.below(30'000);
    est.add(label, t);
    exact.add(label, t);
  }
  for (std::uint64_t window : {500ull, 5000ull, 20'000ull, 60'000ull}) {
    const std::uint64_t start = kItems - window;
    const double truth = static_cast<double>(exact.distinct_since(start));
    EXPECT_NEAR(est.estimate_distinct(start), truth, 0.2 * truth + 2.0) << window;
  }
}

TEST(WindowedSampler, BytesBoundedByCapacityTimesLevels) {
  WindowedF0Sampler s(256, 10);
  Xoshiro256 rng(5);
  for (std::uint64_t t = 0; t < 200'000; ++t) s.add(rng.next(), t);
  // Generous structural bound: levels * capacity * (node overheads).
  EXPECT_LT(s.bytes_used(),
            static_cast<std::size_t>(WindowedF0Sampler::kMaxLevel + 1) * 256 * 200);
}

TEST(WindowedSampler, RejectsZeroCapacity) {
  EXPECT_THROW(WindowedF0Sampler(0, 1), InvalidArgument);
}

}  // namespace
}  // namespace ustream
