// Sliding-window distinct counting (extension E12).
#include "core/windowed_sampler.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/dense_map.h"
#include "common/random.h"

namespace ustream {
namespace {

// Brute-force reference: distinct labels among items with ts >= start.
class ExactWindow {
 public:
  void add(std::uint64_t label, std::uint64_t ts) { items_.push_back({label, ts}); }
  std::size_t distinct_since(std::uint64_t start) const {
    DenseSet s;
    for (const auto& [label, ts] : items_) {
      if (ts >= start) s.insert(label);
    }
    return s.size();
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items_;
};

TEST(WindowedSampler, ExactInSmallRegime) {
  WindowedF0Sampler s(1024, 3);
  ExactWindow exact;
  for (std::uint64_t t = 0; t < 500; ++t) {
    const std::uint64_t label = (t * 7) % 200;  // duplicates within window
    s.add(label, t);
    exact.add(label, t);
  }
  for (std::uint64_t start : {0ull, 100ull, 250ull, 499ull, 500ull}) {
    EXPECT_EQ(s.level_for_window(start), 0) << start;
    EXPECT_DOUBLE_EQ(s.estimate_distinct(start),
                     static_cast<double>(exact.distinct_since(start)))
        << start;
  }
}

TEST(WindowedSampler, ReArrivalRefreshesRecency) {
  WindowedF0Sampler s(1024, 4);
  s.add(42, 10);
  s.add(42, 100);
  // Window starting after the first arrival still contains the label.
  EXPECT_DOUBLE_EQ(s.estimate_distinct(50), 1.0);
  // Window starting after the latest arrival does not.
  EXPECT_DOUBLE_EQ(s.estimate_distinct(101), 0.0);
}

TEST(WindowedSampler, WindowSemanticsUnderEviction) {
  // Small capacity: old windows must fall back to higher levels, recent
  // windows stay near-exact; the estimate is always within the statistical
  // band of the truth.
  constexpr std::size_t kCapacity = 512;
  WindowedF0Sampler s(kCapacity, 5);
  ExactWindow exact;
  Xoshiro256 rng(1);
  constexpr std::uint64_t kItems = 50'000;
  for (std::uint64_t t = 0; t < kItems; ++t) {
    const std::uint64_t label = rng.below(20'000);
    s.add(label, t);
    exact.add(label, t);
  }
  // Recent small window: level 0, exact.
  {
    const std::uint64_t start = kItems - 300;
    EXPECT_EQ(s.level_for_window(start), 0);
    EXPECT_DOUBLE_EQ(s.estimate_distinct(start),
                     static_cast<double>(exact.distinct_since(start)));
  }
  // Large window: higher level, approximate.
  {
    const std::uint64_t start = kItems / 2;
    const double truth = static_cast<double>(exact.distinct_since(start));
    EXPECT_GT(s.level_for_window(start), 0);
    EXPECT_NEAR(s.estimate_distinct(start), truth, 0.35 * truth);
  }
}

TEST(WindowedSampler, LevelStructureInvariants) {
  WindowedF0Sampler s(64, 6);
  Xoshiro256 rng(2);
  for (std::uint64_t t = 0; t < 20'000; ++t) s.add(rng.next(), t);
  for (int l = 0; l <= 12; ++l) {
    ASSERT_LE(s.level_size(l), 64u) << l;
  }
  // Horizons are (weakly) decreasing in level: higher levels see fewer
  // labels, so they evict older material later.
  for (int l = 1; l <= 12; ++l) {
    EXPECT_LE(s.level_horizon(l), s.level_horizon(l - 1)) << l;
  }
}

TEST(WindowedSampler, NonMonotoneTimestampsRejected) {
  WindowedF0Sampler s(16, 7);
  s.add(1, 100);
  EXPECT_THROW(s.add(2, 99), InvalidArgument);
  s.add(3, 100);  // ties are fine
}

TEST(WindowedSampler, WholeStreamWindowMatchesPlainF0Shape) {
  // Window covering everything behaves like ordinary F0 estimation.
  WindowedF0Estimator est(0.15, 0.05, 8);
  Xoshiro256 rng(3);
  constexpr std::size_t kDistinct = 30'000;
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < kDistinct; ++i) est.add(rng.next(), t++);
  EXPECT_NEAR(est.estimate_distinct(0), static_cast<double>(kDistinct), 0.15 * kDistinct);
}

TEST(WindowedSampler, QueryAnyWindowAfterTheFact) {
  // One pass, then many window queries of different sizes — the selling
  // point over one-sketch-per-window designs.
  WindowedF0Estimator est(0.15, 0.05, 9);
  ExactWindow exact;
  Xoshiro256 rng(4);
  constexpr std::uint64_t kItems = 60'000;
  for (std::uint64_t t = 0; t < kItems; ++t) {
    const std::uint64_t label = rng.below(30'000);
    est.add(label, t);
    exact.add(label, t);
  }
  for (std::uint64_t window : {500ull, 5000ull, 20'000ull, 60'000ull}) {
    const std::uint64_t start = kItems - window;
    const double truth = static_cast<double>(exact.distinct_since(start));
    EXPECT_NEAR(est.estimate_distinct(start), truth, 0.2 * truth + 2.0) << window;
  }
}

TEST(WindowedSampler, BytesBoundedByCapacityTimesLevels) {
  WindowedF0Sampler s(256, 10);
  Xoshiro256 rng(5);
  for (std::uint64_t t = 0; t < 200'000; ++t) s.add(rng.next(), t);
  // Generous structural bound: levels * capacity * (node overheads).
  EXPECT_LT(s.bytes_used(),
            static_cast<std::size_t>(WindowedF0Sampler::kMaxLevel + 1) * 256 * 200);
}

TEST(WindowedSampler, RejectsZeroCapacity) {
  EXPECT_THROW(WindowedF0Sampler(0, 1), InvalidArgument);
}

TEST(WindowedSampler, ExpiryExactlyAtWindowBoundary) {
  // ts >= window_start is IN the window: a label whose latest arrival sits
  // exactly on the boundary counts, one tick earlier does not. Checked in
  // the exact regime and again at each level's eviction horizon, where the
  // boundary window is the oldest one the level can still serve.
  WindowedF0Sampler s(1024, 11);
  s.add(7, 40);
  s.add(8, 50);
  EXPECT_DOUBLE_EQ(s.estimate_distinct(50), 1.0);  // boundary: 8 in, 7 out
  EXPECT_DOUBLE_EQ(s.estimate_distinct(51), 0.0);
  EXPECT_DOUBLE_EQ(s.estimate_distinct(41), 1.0);

  WindowedF0Sampler small(64, 12);
  Xoshiro256 rng(6);
  for (std::uint64_t t = 0; t < 30'000; ++t) small.add(rng.next(), t);
  for (int l = 0; l < WindowedF0Sampler::kMaxLevel; ++l) {
    if (!small.level_ever_evicted(l)) continue;
    // The level evicted material at its horizon, so the oldest window it
    // can still serve starts one past the horizon; the window starting AT
    // the horizon must fall back to a coarser level.
    const std::uint64_t horizon = small.level_horizon(l);
    EXPECT_LE(small.level_for_window(horizon + 1), l) << "level " << l;
    EXPECT_GT(small.level_for_window(horizon), l) << "level " << l;
  }
}

TEST(WindowedSampler, DeltaRoundtripIsBitIdentical) {
  // A mirror that replays the op delta must equal the live estimator BYTE
  // FOR BYTE — the property the continuous windowed protocol rests on.
  WindowedF0Estimator live(0.2, 0.1, 13);
  Xoshiro256 rng(7);
  std::uint64_t t = 0;
  for (int i = 0; i < 5'000; ++i) live.add(rng.below(4'000), t++);

  WindowedF0Estimator mirror =
      WindowedF0Estimator::deserialize(std::span<const std::uint8_t>(live.serialize()));
  const std::uint64_t base_seq = live.sequence();
  const std::uint64_t base_ts = live.last_timestamp();
  std::vector<WindowedF0Estimator::Op> ops;
  for (int i = 0; i < 2'000; ++i) {
    const WindowedF0Estimator::Op op{rng.below(4'000), t++};
    live.add(op.first, op.second);
    ops.push_back(op);
  }
  mirror.apply_delta(std::span<const std::uint8_t>(
      WindowedF0Estimator::encode_delta(base_seq, base_ts, ops)));
  EXPECT_EQ(mirror.serialize(), live.serialize());
  EXPECT_EQ(mirror.sequence(), live.sequence());
}

TEST(WindowedSampler, DeltaRefusesMismatchedBase) {
  WindowedF0Estimator est(0.2, 0.1, 14);
  for (std::uint64_t t = 0; t < 100; ++t) est.add(t, t);
  const std::vector<WindowedF0Estimator::Op> ops{{1, 200}};
  // Wrong base sequence (gap in the chain) and wrong base timestamp both
  // surface BEFORE any mutation.
  const auto before = est.serialize();
  EXPECT_THROW(est.apply_delta(std::span<const std::uint8_t>(
                   WindowedF0Estimator::encode_delta(est.sequence() + 5,
                                                     est.last_timestamp(), ops))),
               SerializationError);
  EXPECT_THROW(est.apply_delta(std::span<const std::uint8_t>(
                   WindowedF0Estimator::encode_delta(est.sequence(),
                                                     est.last_timestamp() + 1, ops))),
               SerializationError);
  EXPECT_EQ(est.serialize(), before);
}

TEST(WindowedSampler, ExpiryThenMergeOrderIndependence) {
  // The cross-site union must not care whether a site's boundary items
  // aged out before or after the other site reported, nor in which order
  // the parts are folded: windowed_union_estimate reads the mirrors
  // non-destructively, so any (expiry, merge) interleaving answers alike.
  const auto params = EstimatorParams::for_guarantee(0.2, 0.1, 15);
  WindowedF0Estimator a(params), b(params);
  ExactWindow exact;
  Xoshiro256 rng(8);
  for (std::uint64_t t = 0; t < 4'000; ++t) {
    const std::uint64_t la = rng.below(3'000), lb = rng.below(3'000);
    a.add(la, t);
    b.add(lb, t);
    exact.add(la, t);
    exact.add(lb, t);
  }
  const std::vector<const WindowedF0Estimator*> ab{&a, &b};
  const std::vector<const WindowedF0Estimator*> ba{&b, &a};
  for (std::uint64_t start : {0ull, 1'000ull, 3'500ull, 4'000ull}) {
    const double u1 = windowed_union_estimate(
        std::span<const WindowedF0Estimator* const>(ab), start);
    const double u2 = windowed_union_estimate(
        std::span<const WindowedF0Estimator* const>(ba), start);
    EXPECT_DOUBLE_EQ(u1, u2) << "window start " << start;
    const double truth = static_cast<double>(exact.distinct_since(start));
    EXPECT_NEAR(u1, truth, 0.3 * truth + 2.0) << "window start " << start;
  }
}

}  // namespace
}  // namespace ustream
