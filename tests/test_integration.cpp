// Cross-module integration: generator -> partitioner -> distributed
// protocol -> referee, plus cross-checks between independent estimator
// implementations (point vs range, sketch vs exact, set ops vs merge).
#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "baselines/factory.h"
#include "common/stats.h"
#include "core/range_sampler.h"
#include "core/set_ops.h"
#include "distributed/protocols.h"
#include "netmon/monitor.h"
#include "netmon/trace_gen.h"
#include "stream/partitioner.h"
#include "stream/trace_io.h"
#include "stream/transforms.h"

namespace ustream {
namespace {

TEST(Integration, SketchTracksExactAcrossGrowth) {
  // Stream grows 10 -> 1M items; at checkpoints the sketch estimate must
  // track the exact counter within epsilon.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.01, 1);
  F0Estimator sketch(params);
  ExactDistinctCounter exact;
  Xoshiro256 rng(1);
  std::size_t next_checkpoint = 10;
  for (std::size_t i = 1; i <= 1'000'000; ++i) {
    // Zipf-ish duplicate structure via bounded random labels.
    const std::uint64_t label = rng.below(400'000);
    sketch.add(label);
    exact.add(label);
    if (i == next_checkpoint) {
      next_checkpoint *= 10;
      EXPECT_LT(relative_error(sketch.estimate(), exact.estimate()), 0.1) << "at " << i;
    }
  }
}

TEST(Integration, PointAndRangeEstimatorsAgree) {
  // The same label set expressed as points (F0Estimator) and as intervals
  // (RangeF0Estimator) must produce estimates that agree on the truth.
  constexpr std::uint64_t kIntervalCount = 300, kWidth = 1000;
  F0Estimator points(0.1, 0.05, 2);
  RangeF0Estimator ranges(0.1, 0.05, 3);
  for (std::uint64_t i = 0; i < kIntervalCount; ++i) {
    const std::uint64_t base = i * 10'000;
    ranges.add_range(base, base + kWidth - 1);
    for (std::uint64_t x = base; x < base + kWidth; ++x) points.add(x);
  }
  const double truth = static_cast<double>(kIntervalCount * kWidth);
  EXPECT_LT(relative_error(points.estimate(), truth), 0.1);
  EXPECT_LT(relative_error(ranges.estimate(), truth), 0.1);
}

TEST(Integration, WorkloadThroughTraceFilesSurvives) {
  // Persist per-site streams, reload, run the protocol: same answer.
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 4);
  auto w = make_distributed_workload(
      {.sites = 3, .union_distinct = 20'000, .overlap = 0.4, .duplication = 2.0, .seed = 2});
  const auto direct = run_f0_union(w, params);
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string path = ::testing::TempDir() + "/site" + std::to_string(s) + ".trace";
    write_trace(path, w.site_streams[s]);
    w.site_streams[s] = read_trace(path);
    std::remove(path.c_str());
  }
  const auto reloaded = run_f0_union(w, params);
  EXPECT_DOUBLE_EQ(direct.estimate, reloaded.estimate);
}

TEST(Integration, NetmonLinksAsSetExpressions) {
  // Two links sharing hosts: estimate the overlap of their flow label sets
  // via coordinated set expressions and compare against exact truth.
  const auto w = make_network_workload(
      {.links = 2, .flows_per_link = 20'000, .link_overlap = 0.5, .seed = 5});
  const auto params = EstimatorParams::for_guarantee(0.08, 0.05, 6);
  F0Estimator a(params), b(params);
  DenseSet sa, sb;
  for (const Packet& p : w.link_traces[0]) {
    const auto label = extract_label(p, NetLabel::kFlow);
    a.add(label);
    sa.insert(label);
  }
  for (const Packet& p : w.link_traces[1]) {
    const auto label = extract_label(p, NetLabel::kFlow);
    b.add(label);
    sb.insert(label);
  }
  std::size_t inter_truth = 0;
  sa.for_each([&](std::uint64_t x) {
    if (sb.contains(x)) ++inter_truth;
  });
  const auto est = estimate_set_expressions(a, b);
  const double union_truth = static_cast<double>(sa.size() + sb.size() - inter_truth);
  EXPECT_LT(relative_error(est.union_size, union_truth), 0.08);
  EXPECT_LT(relative_error(est.intersection_size, static_cast<double>(inter_truth)), 0.3);
}

TEST(Integration, GtBeatsAmsAtEqualIndependence) {
  // The paper's comparison: at the same (pairwise) hashing assumption, GT
  // reaches epsilon = 0.1 while AMS stays a constant-factor estimator.
  constexpr std::size_t kDistinct = 120'000;
  Sample gt_err, ams_err;
  for (int t = 0; t < 6; ++t) {
    auto gt = make_counter_for_epsilon(CounterKind::kGibbonsTirthapura, 0.1,
                                       900 + static_cast<std::uint64_t>(t));
    auto ams = make_counter_for_epsilon(CounterKind::kAmsF0, 0.1,
                                        900 + static_cast<std::uint64_t>(t));
    Xoshiro256 rng(static_cast<std::uint64_t>(t) * 17 + 5);
    for (std::size_t i = 0; i < kDistinct; ++i) {
      const std::uint64_t x = rng.next();
      gt->add(x);
      ams->add(x);
    }
    gt_err.add(relative_error(gt->estimate(), kDistinct));
    ams_err.add(relative_error(ams->estimate(), kDistinct));
  }
  EXPECT_LT(gt_err.max(), 0.1);
  EXPECT_GT(ams_err.mean(), gt_err.mean());
}

TEST(Integration, DuplicationStressAcrossWholePipeline) {
  // 50x duplication through transforms -> distributed protocol: estimate
  // identical to the un-duplicated run (duplicate insensitivity end2end).
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 7);
  auto w = make_distributed_workload(
      {.sites = 3, .union_distinct = 10'000, .overlap = 0.3, .duplication = 1.0, .seed = 8});
  const auto base = run_f0_union(w, params);
  for (auto& stream : w.site_streams) stream = duplicate_stream(stream, 50, 9);
  const auto dup = run_f0_union(w, params);
  EXPECT_DOUBLE_EQ(base.estimate, dup.estimate);
}

TEST(Integration, EndToEndMonitoringScenario) {
  // The abstract's full story: monitors on 6 links, heavy inter-link host
  // sharing plus a scan on one link; HQ asks for union distinct
  // destinations and union distinct flows.
  const auto w = make_network_workload({.links = 6, .flows_per_link = 8000,
                                        .link_overlap = 0.6, .scan_fraction = 0.15,
                                        .seed = 10});
  const auto params = EstimatorParams::for_guarantee(0.1, 0.05, 11);
  std::vector<LinkMonitor> monitors(6, LinkMonitor(params));
  for (std::size_t link = 0; link < 6; ++link) {
    for (const Packet& p : w.link_traces[link]) monitors[link].observe(p);
  }
  MonitoringCenter center(6, params);
  center.collect(monitors);
  for (NetLabel kind : {NetLabel::kDstIp, NetLabel::kFlow}) {
    const auto q = static_cast<std::size_t>(kind);
    const auto ans = center.query(kind);
    EXPECT_LT(relative_error(ans.union_estimate,
                             static_cast<double>(w.truth.union_distinct[q])),
              0.1)
        << to_string(kind);
  }
  // Total communication: 6 reports of 4 sketches, each O(eps^-2 log n).
  EXPECT_EQ(center.channel_stats().messages, 6u);
}

}  // namespace
}  // namespace ustream
