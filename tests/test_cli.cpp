// The CLI end to end, driven in-process: generate -> sketch per site ->
// merge -> estimate, plus error handling.
#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cli/args.h"
#include "common/error.h"
#include "common/serialize.h"

namespace ustream::cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir();
  std::vector<std::string> files_;

  std::string path(const std::string& name) {
    files_.push_back(dir_ + "/" + name);
    return files_.back();
  }

  void TearDown() override {
    for (const auto& f : files_) std::remove(f.c_str());
  }

  static std::pair<int, std::string> invoke(const std::vector<std::string>& argv) {
    std::string out;
    const int code = run(argv, out);
    return {code, out};
  }
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  auto [code, out] = invoke({"help"});
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  auto [code2, out2] = invoke({"frobnicate"});
  EXPECT_EQ(code2, 2);
  EXPECT_NE(out2.find("unknown command"), std::string::npos);
  auto [code3, out3] = invoke({});
  EXPECT_EQ(code3, 2);
}

TEST_F(CliTest, FullPipelineMatchesExact) {
  const auto t0 = path("site0.trace");
  const auto t1 = path("site1.trace");
  const auto s0 = path("site0.sk");
  const auto s1 = path("site1.sk");
  const auto merged = path("union.sk");

  for (const auto& [trace, seed] : {std::pair{t0, "1"}, std::pair{t1, "2"}}) {
    auto [code, out] = invoke({"generate", "--distinct", "20000", "--items", "60000",
                               "--seed", seed, "--out", trace});
    ASSERT_EQ(code, 0) << out;
  }
  for (const auto& [trace, sketch] : {std::pair{t0, s0}, std::pair{t1, s1}}) {
    auto [code, out] = invoke({"sketch", "--in", trace, "--eps", "0.1", "--delta", "0.05",
                               "--seed", "42", "--out", sketch});
    ASSERT_EQ(code, 0) << out;
  }
  auto [mcode, mout] = invoke({"merge", "--out", merged, s0, s1});
  ASSERT_EQ(mcode, 0) << mout;

  auto [ecode, eout] = invoke({"estimate", merged});
  ASSERT_EQ(ecode, 0) << eout;

  // Streams were generated with independent random64 label pools: union
  // truth ~ 40000 (collision probability over 2^64 negligible).
  const F0Estimator est = read_sketch_file(merged);
  EXPECT_NEAR(est.estimate(), 40'000.0, 4000.0);

  auto [xcode, xout] = invoke({"exact", "--in", t0});
  EXPECT_EQ(xcode, 0);
  EXPECT_NE(xout.find("20000 distinct"), std::string::npos) << xout;
}

TEST_F(CliTest, InfoIdentifiesFileKinds) {
  const auto trace = path("x.trace");
  const auto sketch = path("x.sk");
  invoke({"generate", "--distinct", "100", "--items", "100", "--out", trace});
  invoke({"sketch", "--in", trace, "--out", sketch});
  auto [code, out] = invoke({"info", trace, sketch});
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("trace"), std::string::npos);
  EXPECT_NE(out.find("sketch"), std::string::npos);
}

TEST_F(CliTest, MergeRejectsMismatchedSeeds) {
  const auto trace = path("y.trace");
  const auto a = path("a.sk");
  const auto b = path("b.sk");
  const auto merged = path("m.sk");
  invoke({"generate", "--distinct", "1000", "--items", "1000", "--out", trace});
  invoke({"sketch", "--in", trace, "--seed", "1", "--out", a});
  invoke({"sketch", "--in", trace, "--seed", "2", "--out", b});
  auto [code, out] = invoke({"merge", "--out", merged, a, b});
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReportedNotThrown) {
  auto [code, out] = invoke({"sketch", "--in", dir_ + "/missing.trace", "--out", path("z.sk")});
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  auto [code2, out2] = invoke({"generate", "--distinct", "abc", "--out", path("w.trace")});
  EXPECT_EQ(code2, 1);
  auto [code3, out3] = invoke({"generate", "--distnict", "10", "--out", path("v.trace")});
  EXPECT_EQ(code3, 1);  // typo caught by reject_unknown
  EXPECT_NE(out3.find("--distnict"), std::string::npos);
}

TEST_F(CliTest, InfoShowsFrameMetadataForSketchFiles) {
  F0Estimator est(EstimatorParams{.capacity = 64, .copies = 3, .seed = 5});
  est.add(1);
  const auto file = path("framed.sk");
  write_sketch_file(file, est);
  auto [code, out] = invoke({"info", file});
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("framed sketch"), std::string::npos) << out;
  EXPECT_NE(out.find("crc ok"), std::string::npos) << out;
  EXPECT_NE(out.find("f0-estimator"), std::string::npos) << out;
}

TEST_F(CliTest, LegacyV0SketchFilesStayReadable) {
  // Files written before the framed format (bare "USKE" magic + payload,
  // no checksum) must keep working: the version-bump path is additive.
  F0Estimator est(EstimatorParams{.capacity = 64, .copies = 3, .seed = 6});
  for (std::uint64_t x = 0; x < 500; ++x) est.add(x);
  const auto file = path("legacy.sk");
  {
    ByteWriter w;
    w.u32(0x454b5355);  // legacy "USKE"
    est.serialize(w);
    const auto& bytes = w.data();
    std::FILE* f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  const F0Estimator back = read_sketch_file(file);
  EXPECT_DOUBLE_EQ(back.estimate(), est.estimate());
  auto [code, out] = invoke({"info", file});
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("legacy (v0) sketch"), std::string::npos) << out;
  auto [ecode, eout] = invoke({"estimate", file});
  EXPECT_EQ(ecode, 0) << eout;
}

TEST_F(CliTest, CorruptedSketchFileIsRejectedByChecksum) {
  F0Estimator est(EstimatorParams{.capacity = 64, .copies = 3, .seed = 7});
  est.add(1);
  const auto file = path("corrupt.sk");
  write_sketch_file(file, est);
  {
    std::FILE* f = std::fopen(file.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 30, SEEK_SET);  // inside the payload
    const char x = 0x7F;
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_sketch_file(file), SerializationError);
  auto [code, out] = invoke({"estimate", file});
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST_F(CliTest, CollectCommandReportsRecovery) {
  // Clean transport: complete, no retries.
  auto [code, out] = invoke({"collect", "--sites", "4", "--distinct", "20000", "--seed", "3"});
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("union estimate"), std::string::npos) << out;
  EXPECT_NE(out.find("collected 4/4 sites"), std::string::npos) << out;
  EXPECT_NE(out.find("0 retries"), std::string::npos) << out;

  // Lossy transport: still complete (exit 0), but via retries.
  auto [fcode, fout] = invoke({"collect", "--sites", "4", "--distinct", "20000", "--seed", "3",
                               "--drop", "0.5", "--attempts", "16"});
  EXPECT_EQ(fcode, 0) << fout;
  EXPECT_NE(fout.find("collected 4/4 sites"), std::string::npos) << fout;
  EXPECT_NE(fout.find("dropped"), std::string::npos) << fout;

  // Dead transport: degraded lower bound, distinct exit code.
  auto [dcode, dout] = invoke({"collect", "--sites", "4", "--distinct", "20000", "--seed", "3",
                               "--drop", "1.0", "--attempts", "2"});
  EXPECT_EQ(dcode, 3) << dout;
  EXPECT_NE(dout.find("DEGRADED"), std::string::npos) << dout;
  EXPECT_NE(dout.find("missing sites"), std::string::npos) << dout;
}

TEST_F(CliTest, SketchFileRoundtripHelpers) {
  F0Estimator est(EstimatorParams{.capacity = 64, .copies = 3, .seed = 5});
  for (std::uint64_t x = 0; x < 1000; ++x) est.add(x);
  const auto file = path("direct.sk");
  write_sketch_file(file, est);
  const F0Estimator back = read_sketch_file(file);
  EXPECT_DOUBLE_EQ(back.estimate(), est.estimate());
  EXPECT_THROW(read_sketch_file(dir_ + "/nope.sk"), InvalidArgument);
}

TEST(CliArgs, ParsingBasics) {
  // Flags greedily take the following token as their value; a flag at the
  // end of the line is boolean.
  Args args({"--a", "1", "--b", "hello", "pos1", "pos2", "--c"});
  EXPECT_EQ(args.u64("a", 0), 1u);
  EXPECT_EQ(args.str("b", ""), "hello");
  EXPECT_TRUE(args.has("c"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
  EXPECT_EQ(args.u64("missing", 9), 9u);
  EXPECT_THROW(args.required_str("missing"), InvalidArgument);
}

TEST(CliArgs, BooleanFlagsDoNotSwallowPositionals) {
  // --json/--stats/--health never take a value, so `push --stats s0.sk`
  // keeps s0.sk as the positional sketch file.
  Args args({"--stats", "s0.sk", "--json", "u.sk", "--health", "h.sk"});
  EXPECT_TRUE(args.has("stats"));
  EXPECT_TRUE(args.has("json"));
  EXPECT_TRUE(args.has("health"));
  ASSERT_EQ(args.positional().size(), 3u);
  EXPECT_EQ(args.positional()[0], "s0.sk");
  EXPECT_EQ(args.positional()[1], "u.sk");
  EXPECT_EQ(args.positional()[2], "h.sk");
}

TEST(CliArgs, TypeErrors) {
  Args args({"--n", "12x", "--f", "oops"});
  EXPECT_THROW(args.u64("n", 0), InvalidArgument);
  EXPECT_THROW(args.f64("f", 0.0), InvalidArgument);
}

}  // namespace
}  // namespace ustream::cli
