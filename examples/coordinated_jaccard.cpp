// Coordinated samples support more than the union: because every sketch
// flips the SAME per-label coins, two sketches are comparable element-wise,
// giving intersection / difference / Jaccard estimates between streams that
// never met. (This is the trick modern theta sketches inherit from
// coordinated sampling.)
//
// Scenario: audience overlap between two ad campaigns, measured from
// per-campaign impression streams at two different servers.
#include <cstdio>

#include "common/random.h"
#include "core/set_ops.h"

int main() {
  using namespace ustream;

  // Both servers agree on parameters once (seed is the coordination).
  const EstimatorParams params = EstimatorParams::for_guarantee(0.05, 0.01, 1618);

  // Campaign A reaches 1.2M users, campaign B 0.9M; 300k saw both.
  constexpr std::uint64_t kOnlyA = 900'000, kOnlyB = 600'000, kBoth = 300'000;
  F0Estimator campaign_a(params), campaign_b(params);
  Xoshiro256 rng(5);
  for (std::uint64_t i = 0; i < kBoth; ++i) {
    const std::uint64_t user = rng.next();
    campaign_a.add(user);
    campaign_b.add(user);
  }
  for (std::uint64_t i = 0; i < kOnlyA; ++i) campaign_a.add(rng.next());
  for (std::uint64_t i = 0; i < kOnlyB; ++i) campaign_b.add(rng.next());

  const auto est = estimate_set_expressions(campaign_a, campaign_b);
  const double union_truth = kOnlyA + kOnlyB + kBoth;
  const double jaccard_truth = static_cast<double>(kBoth) / union_truth;

  std::printf("%-22s %12s %12s\n", "quantity", "truth", "estimate");
  std::printf("%-22s %12.0f %12.0f\n", "|A| (reach A)", double(kOnlyA + kBoth),
              campaign_a.estimate());
  std::printf("%-22s %12.0f %12.0f\n", "|B| (reach B)", double(kOnlyB + kBoth),
              campaign_b.estimate());
  std::printf("%-22s %12.0f %12.0f\n", "|A u B| (total reach)", union_truth, est.union_size);
  std::printf("%-22s %12.0f %12.0f\n", "|A n B| (overlap)", double(kBoth),
              est.intersection_size);
  std::printf("%-22s %12.0f %12.0f\n", "|A \\ B|", double(kOnlyA), est.difference_a_minus_b);
  std::printf("%-22s %12.4f %12.4f\n", "Jaccard", jaccard_truth, est.jaccard);
  std::printf("\nsketch memory per server: %zu bytes\n", campaign_a.bytes_used());
  return 0;
}
