// SumDistinct in the wild: metering distinct provisioned resources.
//
// A fleet of edge gateways reports (resource_id, monthly_price) records.
// Records are heavily RE-TRANSMITTED (at-least-once delivery) and the same
// resource is seen by several gateways, so adding up record values
// overbills massively. The right number is the sum of price over DISTINCT
// resource ids across the union of all gateway streams — exactly the
// paper's "aggregate function over the distinct labels".
#include <cstdio>
#include <vector>

#include "core/params.h"
#include "distributed/protocols.h"
#include "stream/partitioner.h"

int main() {
  using namespace ustream;

  // 400k distinct resources spread over 8 gateways; 30% of resources are
  // multi-homed (seen by more than one gateway); each gateway re-sends
  // records ~4x with a heavy-tailed retry distribution.
  const DistributedConfig config{.sites = 8,
                                 .union_distinct = 400'000,
                                 .overlap = 0.3,
                                 .duplication = 4.0,
                                 .zipf_alpha = 1.2,
                                 .seed = 314,
                                 .value_lo = 0.50,   // cheapest SKU, $/month
                                 .value_hi = 40.0};  // priciest SKU
  std::printf("generating %zu gateway streams ...\n", config.sites);
  const DistributedWorkload workload = make_distributed_workload(config);

  // What naive aggregation would bill (sum over all records).
  double naive_total = 0.0;
  std::size_t records = 0;
  for (const auto& stream : workload.site_streams) {
    for (const Item& record : stream) {
      naive_total += record.value;
      ++records;
    }
  }

  // The sketch-based pipeline: each gateway keeps one DistinctSumEstimator,
  // ships it once, the billing service merges.
  const EstimatorParams params = EstimatorParams::for_guarantee(0.05, 0.01, 2718);
  DistinctSumUnionProtocol protocol(config.sites, params);
  for (std::size_t site = 0; site < config.sites; ++site) {
    for (const Item& record : workload.site_streams[site]) {
      protocol.observe(site, record.label, record.value);
    }
  }

  const double estimate = protocol.estimate_sum();
  const double truth = workload.union_sum_distinct;
  std::printf("\nrecords processed        : %zu\n", records);
  std::printf("naive record-sum billing : $%.2f   (%.1fx overbilled)\n", naive_total,
              naive_total / truth);
  std::printf("true distinct-sum        : $%.2f\n", truth);
  std::printf("sketch estimate          : $%.2f   (%.2f%% off)\n", estimate,
              100.0 * (estimate - truth) / truth);
  std::printf("distinct resources       : %.0f (est) vs %zu (true)\n",
              protocol.estimate_distinct(), workload.union_distinct);
  const auto comm = protocol.channel_stats();
  std::printf("communication            : %llu bytes across %llu messages\n",
              static_cast<unsigned long long>(comm.total_bytes),
              static_cast<unsigned long long>(comm.messages));
  return 0;
}
