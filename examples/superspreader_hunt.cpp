// Superspreader hunt: which sources are touching abnormally many DISTINCT
// destinations across the whole network? Each link runs a small
// SuperspreaderDetector; the security console merges the per-link states
// (coordinated seeds make the merge sound) and reports the heavy tail.
#include <cstdio>
#include <vector>

#include "netmon/superspreader.h"
#include "netmon/trace_gen.h"

int main() {
  using namespace ustream;

  // Traffic on 4 links with a scan episode (one source probing thousands
  // of destinations once each) hidden inside normal flows.
  const NetworkWorkload net = make_network_workload({.links = 4, .flows_per_link = 15'000,
                                                     .link_overlap = 0.4,
                                                     .scan_fraction = 0.08, .seed = 555});
  std::printf("traffic: %zu packets over 4 links\n", net.total_packets);

  SuperspreaderConfig config;
  config.table_capacity = 512;
  config.sampler_capacity = 256;
  config.admission_level = 4;  // ignore sources below ~16 distinct contacts
  config.seed = 0xc0ffee;

  std::vector<SuperspreaderDetector> links(4, SuperspreaderDetector(config));
  for (std::size_t link = 0; link < 4; ++link) {
    for (const Packet& p : net.link_traces[link]) {
      links[link].observe(p.src_ip, p.dst_ip);
    }
  }

  // Console side: merge the per-link detectors.
  SuperspreaderDetector console = links[0];
  for (std::size_t link = 1; link < 4; ++link) console.merge(links[link]);

  const auto reports = console.report(/*threshold=*/200.0);
  std::printf("\nsources contacting >= 200 distinct destinations (network-wide):\n");
  std::printf("%-16s %s\n", "source", "distinct destinations (est)");
  for (const auto& r : reports) {
    std::printf("%-16llx %.0f\n", static_cast<unsigned long long>(r.source),
                r.distinct_destinations);
  }
  std::printf("\ntracked sources : %zu of ~%zu seen (admission filter)\n",
              console.tracked_sources(), net.truth.union_distinct[1]);
  std::printf("detector memory : %zu bytes per link\n", links[0].bytes_used());
  return 0;
}
