// Range-efficient counting (the E11 extension): streams whose items are
// whole INTERVALS of labels, processed in polylog time per interval.
//
// Scenario: firewalls log blocked address RANGES (CIDR blocks). How many
// distinct addresses were blocked across all firewalls? Intervals overlap
// heavily; a naive expansion would touch billions of addresses.
#include <cstdio>

#include "common/random.h"
#include "common/timer.h"
#include "core/range_sampler.h"

int main() {
  using namespace ustream;

  const EstimatorParams params = EstimatorParams::for_guarantee(0.05, 0.05, 424242);
  RangeF0Estimator fw1(params), fw2(params);

  // Two firewalls block ranges inside a shared /16-ish region so the
  // overlap is substantial, plus private disjoint blocks each.
  Xoshiro256 rng(12);
  std::uint64_t intervals = 0;
  WallTimer timer;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t base = 0x0a000000ull + rng.below(1 << 22);
    const std::uint64_t width = 1 + rng.below(1 << 12);
    fw1.add_range(base, base + width);
    ++intervals;
  }
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t base = 0x0a000000ull + rng.below(1 << 22);  // same region
    const std::uint64_t width = 1 + rng.below(1 << 12);
    fw2.add_range(base, base + width);
    ++intervals;
  }
  // Each firewall also blocks a big private block.
  fw1.add_range(0x20000000ull, 0x20000000ull + 5'000'000);
  fw2.add_range(0x30000000ull, 0x30000000ull + 5'000'000);
  intervals += 2;
  const double seconds = timer.seconds();

  // Union across firewalls = merge, as always.
  RangeF0Estimator merged = fw1;
  merged.merge(fw2);

  std::printf("intervals processed : %llu in %.3fs (%.1f us/interval incl. %zu copies)\n",
              static_cast<unsigned long long>(intervals), seconds,
              1e6 * seconds / static_cast<double>(intervals), params.copies);
  std::printf("firewall 1 estimate : %.3e distinct blocked addresses\n", fw1.estimate());
  std::printf("firewall 2 estimate : %.3e\n", fw2.estimate());
  std::printf("union estimate      : %.3e\n", merged.estimate());
  std::printf("sketch memory       : %zu bytes per firewall\n", fw1.bytes_used());
  std::printf("\n(the widest interval covered 5e6 addresses; the sketch never \n"
              " enumerated more than its capacity of %zu survivors per copy)\n",
              params.capacity);
  return 0;
}
