// Quickstart: estimate the number of distinct labels in a stream with the
// Gibbons-Tirthapura coordinated sampler, in three steps:
//   1. build an F0Estimator with an (epsilon, delta) guarantee;
//   2. feed it labels (duplicates are free);
//   3. read the estimate — and merge estimators built with the same seed.
#include <cstdio>

#include "common/random.h"
#include "core/f0_estimator.h"

int main() {
  using namespace ustream;

  // 1. A (10%, 5%) estimator: relative error <= 0.10 with probability 0.95.
  //    All parties that ever want to merge must share the same params/seed.
  const EstimatorParams params = EstimatorParams::for_guarantee(0.10, 0.05, /*seed=*/42);
  F0Estimator estimator(params);

  // 2. Stream 2 million items over 300k distinct labels (so every label
  //    appears ~6-7 times on average).
  Xoshiro256 rng(7);
  constexpr std::uint64_t kDistinct = 300'000;
  for (int i = 0; i < 2'000'000; ++i) {
    estimator.add(rng.below(kDistinct) * 0x9e3779b97f4a7c15ULL);
  }

  // 3. Query. The sketch held at most params.capacity labels per copy the
  //    whole time, no matter how long the stream ran.
  std::printf("true distinct : ~%llu\n", static_cast<unsigned long long>(kDistinct));
  std::printf("estimate      : %.0f\n", estimator.estimate());
  std::printf("sketch memory : %zu bytes (%zu copies x capacity %zu)\n",
              estimator.bytes_used(), params.copies, params.capacity);

  // Bonus: a second party (same params!) sees a different stream; merging
  // the two sketches answers for the union of both streams.
  F0Estimator other_party(params);
  for (std::uint64_t x = 0; x < 100'000; ++x) {
    other_party.add((x + kDistinct) * 0x9e3779b97f4a7c15ULL);  // fresh labels
  }
  estimator.merge(other_party);
  std::printf("union estimate: %.0f  (truth ~%llu)\n", estimator.estimate(),
              static_cast<unsigned long long>(kDistinct + 100'000));
  return 0;
}
