// Sliding-window monitoring: "how many distinct source IPs did we see in
// the last N packets?" — with N chosen AT QUERY TIME, from a single pass.
//
// A burst of fresh sources (e.g. a DDoS ramp-up) shows up immediately in
// short-window distinct counts while long-window counts stay calm; one
// WindowedF0Estimator answers both.
#include <cstdio>

#include "common/random.h"
#include "core/windowed_sampler.h"

int main() {
  using namespace ustream;

  WindowedF0Estimator monitor(EstimatorParams{.capacity = 2048, .copies = 9, .seed = 7});

  Xoshiro256 rng(1);
  std::uint64_t t = 0;

  // Phase 1: steady state — 50k packets from a pool of 2000 regular sources.
  for (int i = 0; i < 50'000; ++i) {
    monitor.add(rng.below(2000), t++);
  }
  std::printf("steady state (t = %llu):\n", static_cast<unsigned long long>(t));
  for (std::uint64_t window : {1'000ull, 10'000ull, 50'000ull}) {
    std::printf("  distinct sources in last %6llu packets: %8.0f\n",
                static_cast<unsigned long long>(window),
                monitor.estimate_distinct(t - window));
  }

  // Phase 2: attack — 10k packets, 80% from spoofed (fresh) sources.
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t src = rng.bernoulli(0.8) ? rng.next() : rng.below(2000);
    monitor.add(src, t++);
  }
  std::printf("\nafter a spoofed burst (t = %llu):\n", static_cast<unsigned long long>(t));
  for (std::uint64_t window : {1'000ull, 10'000ull, 60'000ull}) {
    std::printf("  distinct sources in last %6llu packets: %8.0f\n",
                static_cast<unsigned long long>(window),
                monitor.estimate_distinct(t - window));
  }
  std::printf("\n(one pass, every window size answered at query time: the 10k\n"
              " window jumps ~5x on the burst while packet VOLUME rose only 20%%\n"
              " — the signature a byte counter cannot see; memory: %zu bytes)\n",
              monitor.bytes_used());
  return 0;
}
