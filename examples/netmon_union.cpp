// The paper's motivating scenario end to end: network monitors on several
// links, each keeping log-space coordinated sketches of its own traffic;
// headquarters collects one small report per link and answers queries on
// the UNION of all links — something per-link counters cannot do, because
// the same hosts/flows appear on many links.
//
// Run: ./netmon_union [links] [flows_per_link] [overlap]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/params.h"
#include "netmon/monitor.h"
#include "netmon/trace_gen.h"

int main(int argc, char** argv) {
  using namespace ustream;

  NetworkConfig config;
  config.links = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  config.flows_per_link = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20'000;
  config.link_overlap = argc > 3 ? std::atof(argv[3]) : 0.5;
  config.scan_fraction = 0.10;  // one link hosts a port scan
  config.seed = 2026;

  std::printf("generating traffic: %zu links, %zu flows/link, overlap %.2f ...\n",
              config.links, config.flows_per_link, config.link_overlap);
  const NetworkWorkload workload = make_network_workload(config);
  std::printf("total packets: %zu\n\n", workload.total_packets);

  // Every monitor is built from the same parameters — that is the entire
  // coordination protocol. Monitors never talk to each other.
  const EstimatorParams params = EstimatorParams::for_guarantee(0.08, 0.05, 97);
  std::vector<LinkMonitor> monitors(config.links, LinkMonitor(params));
  for (std::size_t link = 0; link < config.links; ++link) {
    for (const Packet& p : workload.link_traces[link]) monitors[link].observe(p);
  }

  // One report per link to headquarters.
  MonitoringCenter hq(config.links, params);
  hq.collect(monitors);
  const auto comm = hq.channel_stats();

  std::printf("%-14s %14s %14s %14s %9s\n", "query", "union truth", "union est",
              "naive sum", "naive x");
  for (NetLabel kind : {NetLabel::kDstIp, NetLabel::kSrcIp, NetLabel::kFlow,
                        NetLabel::kSrcDstPair}) {
    const auto q = static_cast<std::size_t>(kind);
    const auto ans = hq.query(kind);
    const auto truth = static_cast<double>(workload.truth.union_distinct[q]);
    std::printf("%-14s %14.0f %14.0f %14.0f %8.2fx\n", to_string(kind).c_str(), truth,
                ans.union_estimate, ans.naive_sum, ans.naive_sum / truth);
  }
  std::printf("\ncommunication: %llu messages, %llu bytes total (%.0f bytes/link)\n",
              static_cast<unsigned long long>(comm.messages),
              static_cast<unsigned long long>(comm.total_bytes), comm.mean_message_bytes());
  std::printf("(each link ships 4 sketches once, after observing its whole stream)\n");
  return 0;
}
