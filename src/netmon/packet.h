// Packet records and label extraction for the motivating application:
// network monitors, one per link, estimating distinct-counts over the
// union of the traffic they observe (the abstract's "set-up in current
// network monitoring products").
#pragma once

#include <cstdint>
#include <string>

#include "hash/mix.h"

namespace ustream {

struct Packet {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP by default
  std::uint16_t size_bytes = 0;
  std::uint64_t timestamp = 0;

  friend bool operator==(const Packet&, const Packet&) = default;
};

// Which identity a distinct-count query is over.
enum class NetLabel {
  kDstIp,       // distinct destinations (DDoS / scan exposure)
  kSrcIp,       // distinct sources (botnet fan-in)
  kFlow,        // distinct 5-tuple flows
  kSrcDstPair,  // distinct communicating pairs
};

std::string to_string(NetLabel label);

// Maps a packet to the 64-bit label for the given query. Pair and flow
// labels are full-avalanche folds of the tuple; at realistic cardinalities
// (<< 2^32) the collision contribution is negligible next to sketch error.
inline std::uint64_t extract_label(const Packet& p, NetLabel kind) noexcept {
  switch (kind) {
    case NetLabel::kDstIp:
      return p.dst_ip;
    case NetLabel::kSrcIp:
      return p.src_ip;
    case NetLabel::kSrcDstPair:
      return (static_cast<std::uint64_t>(p.src_ip) << 32) | p.dst_ip;
    case NetLabel::kFlow: {
      std::uint64_t h = (static_cast<std::uint64_t>(p.src_ip) << 32) | p.dst_ip;
      h = murmur_mix64(h);
      h ^= (static_cast<std::uint64_t>(p.src_port) << 24) ^
           (static_cast<std::uint64_t>(p.dst_port) << 8) ^ p.protocol;
      return murmur_mix64(h);
    }
  }
  return 0;
}

}  // namespace ustream
