#include "netmon/superspreader.h"

#include <algorithm>

#include "common/random.h"
#include "hash/level.h"
#include "hash/mix.h"

namespace ustream {

SuperspreaderDetector::SuperspreaderDetector(const SuperspreaderConfig& config)
    : config_(config),
      admission_hash_(SeedSequence(config.seed).child(0xad)),
      table_(config.table_capacity + 1) {
  USTREAM_REQUIRE(config.table_capacity >= 1, "table capacity must be >= 1");
  USTREAM_REQUIRE(config.sampler_capacity >= 1, "sampler capacity must be >= 1");
  USTREAM_REQUIRE(config.admission_level >= 0 && config.admission_level < 32,
                  "admission level out of range");
  if (config.fusion_capacity > 0) {
    USTREAM_REQUIRE(config.fusion_min_admit >= 1, "fusion min-admit must be >= 1");
    fusion_.emplace(config.fusion_capacity);
  }
  samplers_.reserve(config.table_capacity);
  slot_source_.reserve(config.table_capacity);
}

SuperspreaderDetector::Sampler SuperspreaderDetector::make_sampler() const {
  // One shared seed for every per-source sampler across all monitors: the
  // coordination that makes cross-link merges exact.
  return Sampler(config_.sampler_capacity, SeedSequence(config_.seed).child(0x5a));
}

void SuperspreaderDetector::evict_smallest() {
  std::size_t victim = 0;
  double victim_estimate = -1.0;
  for (std::size_t slot = 0; slot < samplers_.size(); ++slot) {
    if (slot_source_[slot] == ~std::uint64_t{0}) continue;  // already free
    const double est = samplers_[slot].estimate_distinct();
    if (victim_estimate < 0.0 || est < victim_estimate) {
      victim_estimate = est;
      victim = slot;
    }
  }
  USTREAM_REQUIRE(victim_estimate >= 0.0, "evict from empty table");
  table_.filter([&](const auto& e) { return e.value != victim; });
  slot_source_[victim] = ~std::uint64_t{0};
  free_slots_.push_back(static_cast<std::uint32_t>(victim));
}

void SuperspreaderDetector::admit(std::uint64_t source, std::uint64_t destination) {
  if (table_.size() >= config_.table_capacity) evict_smallest();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    samplers_[slot] = make_sampler();
    slot_source_[slot] = source;
  } else {
    slot = static_cast<std::uint32_t>(samplers_.size());
    samplers_.push_back(make_sampler());
    slot_source_.push_back(source);
  }
  table_.try_emplace(source, slot);
  samplers_[slot].add(destination);
}

void SuperspreaderDetector::observe(std::uint64_t source, std::uint64_t destination) {
  if (auto* entry = table_.find(source)) {
    samplers_[entry->value].add(destination);
    return;
  }
  // Admission: a deterministic coordinated coin on the (source, dst) pair —
  // duplicates re-flip the SAME coin, so only distinct contacts count.
  const std::uint64_t pair_key = murmur_mix64(source) ^ destination;
  if (hash_level(admission_hash_(pair_key), PairwiseHash::kBits) <
      config_.admission_level) {
    return;
  }
  if (!fusion_.has_value()) {
    admit(source, destination);
    return;
  }
  // Fused admission: a surviving coin counts once toward the source's
  // SpaceSaver entry; the table only opens when the GUARANTEED survival
  // count reaches the bar, so single-contact tail sources (one surviving
  // pair at most) stop churning the table under heavy skew.
  fusion_->add(source);
  if (fusion_->estimate(source).lower >= config_.fusion_min_admit) {
    admit(source, destination);
  }
}

double SuperspreaderDetector::estimate(std::uint64_t source) const {
  const auto* entry = table_.find(source);
  return entry == nullptr ? 0.0 : samplers_[entry->value].estimate_distinct();
}

std::vector<SuperspreaderReport> SuperspreaderDetector::report(double threshold) const {
  std::vector<SuperspreaderReport> out;
  for (const auto& e : table_) {
    const double est = samplers_[e.value].estimate_distinct();
    if (est >= threshold) out.push_back({e.key, est});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.distinct_destinations > b.distinct_destinations;
  });
  return out;
}

std::size_t SuperspreaderDetector::bytes_used() const noexcept {
  std::size_t bytes = sizeof(*this) + table_.bytes_used() +
                      slot_source_.capacity() * sizeof(std::uint64_t) +
                      free_slots_.capacity() * sizeof(std::uint32_t);
  for (const auto& s : samplers_) bytes += s.bytes_used();
  return bytes;
}

void SuperspreaderDetector::merge(const SuperspreaderDetector& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires detectors with identical seed and sampler config");
  if (fusion_.has_value()) fusion_->merge(*other.fusion_);
  for (const auto& e : other.table_) {
    const Sampler& theirs = other.samplers_[e.value];
    if (auto* mine = table_.find(e.key)) {
      samplers_[mine->value].merge(theirs);
    } else {
      if (table_.size() >= config_.table_capacity) evict_smallest();
      std::uint32_t slot;
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        samplers_[slot] = theirs;
        slot_source_[slot] = e.key;
      } else {
        slot = static_cast<std::uint32_t>(samplers_.size());
        samplers_.push_back(theirs);
        slot_source_.push_back(e.key);
      }
      table_.try_emplace(e.key, slot);
    }
  }
}

void SuperspreaderDetector::serialize(ByteWriter& w) const {
  // Fusion-off detectors emit the v1 layout byte for byte, so every
  // pre-fusion artifact and decoder stays compatible.
  w.u8(fusion_.has_value() ? kWireVersionFusion : kWireVersion);
  w.u64(config_.seed);
  w.varint(config_.table_capacity);
  w.varint(config_.sampler_capacity);
  w.u8(static_cast<std::uint8_t>(config_.admission_level));
  if (fusion_.has_value()) {
    w.varint(config_.fusion_capacity);
    w.varint(config_.fusion_min_admit);
    fusion_->serialize(w);
  }
  w.varint(table_.size());
  for (const auto& e : table_) {
    w.varint(e.key);
    samplers_[e.value].serialize(w);
  }
}

std::vector<std::uint8_t> SuperspreaderDetector::serialize() const {
  ByteWriter w;
  serialize(w);
  return w.take();
}

SuperspreaderDetector SuperspreaderDetector::deserialize(ByteReader& r) {
  const std::uint8_t version = r.u8();
  if (version < kWireVersion || version > kWireVersionFusion) {
    throw SerializationError("bad superspreader version");
  }
  SuperspreaderConfig config;
  config.seed = r.u64();
  config.table_capacity = r.varint();
  config.sampler_capacity = r.varint();
  config.admission_level = r.u8();
  if (config.table_capacity == 0 || config.admission_level >= 32) {
    throw SerializationError("bad superspreader config");
  }
  std::optional<SpaceSaver> fused;
  if (version == kWireVersionFusion) {
    config.fusion_capacity = r.varint();
    config.fusion_min_admit = r.varint();
    if (config.fusion_capacity == 0 || config.fusion_min_admit == 0) {
      throw SerializationError("v2 superspreader without a fusion stage");
    }
    fused = SpaceSaver::deserialize(r);
    if (fused->capacity() != config.fusion_capacity) {
      throw SerializationError("superspreader fusion capacity mismatch");
    }
  }
  SuperspreaderDetector d(config);
  if (fused.has_value()) d.fusion_ = std::move(*fused);
  const std::uint64_t count = r.varint();
  if (count > config.table_capacity) throw SerializationError("superspreader table overfull");
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t source = r.varint();
    Sampler sampler = Sampler::deserialize(r);
    if (!sampler.can_merge_with(d.make_sampler())) {
      throw SerializationError("superspreader sampler config mismatch");
    }
    const auto slot = static_cast<std::uint32_t>(d.samplers_.size());
    d.samplers_.push_back(std::move(sampler));
    d.slot_source_.push_back(source);
    if (!d.table_.try_emplace(source, slot).second) {
      throw SerializationError("duplicate source in superspreader table");
    }
  }
  return d;
}

SuperspreaderDetector SuperspreaderDetector::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto d = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after superspreader");
  return d;
}

}  // namespace ustream
