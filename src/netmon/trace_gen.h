// Synthetic packet-trace generation (substitution for proprietary traffic
// traces; see DESIGN.md). Produces per-link traces with:
//   * a flow population whose packet counts follow a zipf law (the
//     canonical heavy-tailed flow-size behaviour of Internet traffic),
//   * host populations shared across links with controllable overlap
//     (the same server is seen on many links -> naive per-link addition
//     overcounts, the union estimate must not),
//   * optional scan episodes: one source touching many destinations once
//     each — high distinct-count impact at negligible volume, which is
//     what makes F0-type monitoring operationally interesting.
// Ground truth (exact distinct counts per link and for the union, per
// label kind) is computed during generation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netmon/packet.h"

namespace ustream {

struct NetworkConfig {
  std::size_t links = 4;
  std::size_t flows_per_link = 20'000;
  double packets_per_flow = 5.0;     // mean; zipf-skewed across flows
  double flow_zipf_alpha = 1.1;      // flow-size skew
  std::size_t host_population = 50'000;
  double link_overlap = 0.3;         // probability a flow's hosts repeat across links
  double scan_fraction = 0.0;        // fraction of packets that are scan probes
  std::uint64_t seed = 42;
};

struct NetworkTruth {
  // Indexed by static_cast<size_t>(NetLabel).
  std::array<std::uint64_t, 4> union_distinct{};
  std::vector<std::array<std::uint64_t, 4>> per_link_distinct;
  // Sum over links of per-link distinct (what naive addition reports).
  std::array<std::uint64_t, 4> naive_sum{};
};

struct NetworkWorkload {
  std::vector<std::vector<Packet>> link_traces;
  NetworkTruth truth;
  std::size_t total_packets = 0;
};

NetworkWorkload make_network_workload(const NetworkConfig& config);

}  // namespace ustream
