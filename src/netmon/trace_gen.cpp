#include "netmon/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/random.h"
#include "stream/zipf.h"

namespace ustream {

std::string to_string(NetLabel label) {
  switch (label) {
    case NetLabel::kDstIp: return "dst-ip";
    case NetLabel::kSrcIp: return "src-ip";
    case NetLabel::kFlow: return "flow";
    case NetLabel::kSrcDstPair: return "src-dst-pair";
  }
  return "unknown";
}

namespace {

constexpr std::array<NetLabel, 4> kAllLabels = {NetLabel::kDstIp, NetLabel::kSrcIp,
                                                NetLabel::kFlow, NetLabel::kSrcDstPair};

struct FlowSpec {
  Packet prototype;
  std::uint64_t packets;
};

std::uint32_t pick_host(Xoshiro256& rng, std::size_t population) {
  // Hosts are drawn from a mixed RFC1918-ish space; identity only matters
  // up to distinctness, so a dense index mapped through a mixer suffices.
  const auto idx = rng.below(population);
  return static_cast<std::uint32_t>(murmur_mix64(idx) >> 32) | 0x0a000000u;
}

}  // namespace

NetworkWorkload make_network_workload(const NetworkConfig& config) {
  USTREAM_REQUIRE(config.links >= 1, "need at least one link");
  USTREAM_REQUIRE(config.flows_per_link >= 1, "need at least one flow per link");
  USTREAM_REQUIRE(config.packets_per_flow >= 1.0, "need at least one packet per flow");
  USTREAM_REQUIRE(config.link_overlap >= 0.0 && config.link_overlap <= 1.0,
                  "overlap must be in [0,1]");
  USTREAM_REQUIRE(config.scan_fraction >= 0.0 && config.scan_fraction < 1.0,
                  "scan_fraction must be in [0,1)");

  Xoshiro256 rng(SplitMix64::mix(config.seed ^ 0x6e65746d6f6eULL));
  NetworkWorkload out;
  out.link_traces.resize(config.links);
  out.truth.per_link_distinct.assign(config.links, {});

  // Exact truth accumulators.
  std::array<DenseSet, 4> union_sets;
  std::vector<std::array<DenseSet, 4>> link_sets(config.links);

  // Shared flow pool for overlap: flows generated for one link are re-used
  // on other links with probability link_overlap.
  std::vector<FlowSpec> shared_pool;

  const ZipfDistribution size_zipf(1000, config.flow_zipf_alpha);
  const double mean_zipf =
      [&] {  // empirical mean of the size law, to scale to packets_per_flow
        Xoshiro256 r(1);
        double s = 0;
        constexpr int kProbe = 4096;
        for (int i = 0; i < kProbe; ++i) s += static_cast<double>(size_zipf.sample(r));
        return s / kProbe;
      }();

  std::uint64_t timestamp = 0;
  for (std::size_t link = 0; link < config.links; ++link) {
    auto& trace = out.link_traces[link];
    std::vector<FlowSpec> flows;
    flows.reserve(config.flows_per_link);
    for (std::size_t f = 0; f < config.flows_per_link; ++f) {
      if (!shared_pool.empty() && rng.bernoulli(config.link_overlap)) {
        flows.push_back(shared_pool[rng.below(shared_pool.size())]);
        continue;
      }
      FlowSpec spec;
      spec.prototype.src_ip = pick_host(rng, config.host_population);
      spec.prototype.dst_ip = pick_host(rng, config.host_population);
      spec.prototype.src_port = static_cast<std::uint16_t>(1024 + rng.below(64511));
      spec.prototype.dst_port =
          rng.bernoulli(0.7) ? static_cast<std::uint16_t>(rng.bernoulli(0.5) ? 443 : 80)
                             : static_cast<std::uint16_t>(rng.below(65536));
      spec.prototype.protocol = rng.bernoulli(0.9) ? std::uint8_t{6} : std::uint8_t{17};
      const double raw = static_cast<double>(size_zipf.sample(rng));
      spec.packets = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(raw / mean_zipf * config.packets_per_flow)));
      flows.push_back(spec);
      shared_pool.push_back(spec);
    }

    // Emit the flows' packets.
    for (const FlowSpec& spec : flows) {
      for (std::uint64_t k = 0; k < spec.packets; ++k) {
        Packet p = spec.prototype;
        p.size_bytes = static_cast<std::uint16_t>(64 + rng.below(1436));
        p.timestamp = timestamp++;
        trace.push_back(p);
      }
    }

    // Scan episodes: single source, one SYN-sized probe per random dst.
    if (config.scan_fraction > 0.0) {
      const auto scan_packets = static_cast<std::size_t>(
          std::ceil(static_cast<double>(trace.size()) * config.scan_fraction /
                    (1.0 - config.scan_fraction)));
      const std::uint32_t scanner = pick_host(rng, config.host_population);
      for (std::size_t k = 0; k < scan_packets; ++k) {
        Packet p;
        p.src_ip = scanner;
        // Scan targets beyond the normal host population (fresh dsts).
        p.dst_ip = static_cast<std::uint32_t>(murmur_mix64(rng.next()) | 0xc0000000u);
        p.src_port = static_cast<std::uint16_t>(1024 + rng.below(64511));
        p.dst_port = static_cast<std::uint16_t>(rng.below(1024));
        p.protocol = 6;
        p.size_bytes = 60;
        p.timestamp = timestamp++;
        trace.push_back(p);
      }
    }

    // Shuffle the link's packets (flows interleave on the wire).
    for (std::size_t i = trace.size(); i > 1; --i) {
      std::swap(trace[i - 1], trace[rng.below(i)]);
    }

    // Truth accounting.
    for (const Packet& p : trace) {
      for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
        const std::uint64_t label = extract_label(p, kAllLabels[q]);
        union_sets[q].insert(label);
        link_sets[link][q].insert(label);
      }
    }
    out.total_packets += trace.size();
  }

  for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
    out.truth.union_distinct[q] = union_sets[q].size();
    for (std::size_t link = 0; link < config.links; ++link) {
      out.truth.per_link_distinct[link][q] = link_sets[link][q].size();
      out.truth.naive_sum[q] += link_sets[link][q].size();
    }
  }
  return out;
}

}  // namespace ustream
