#include "netmon/monitor.h"

#include <algorithm>

#include "common/error.h"
#include "common/frame.h"
#include "common/serialize.h"

namespace ustream {

namespace {
constexpr std::array<NetLabel, 4> kAllLabels = {NetLabel::kDstIp, NetLabel::kSrcIp,
                                                NetLabel::kFlow, NetLabel::kSrcDstPair};
constexpr std::uint8_t kReportVersion = 1;
}  // namespace

LinkMonitor::LinkMonitor(const EstimatorParams& params)
    : sketches_{F0Estimator(params), F0Estimator(params), F0Estimator(params),
                F0Estimator(params)} {}

void LinkMonitor::observe(const Packet& packet) {
  ++packets_;
  for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
    sketches_[q].add(extract_label(packet, kAllLabels[q]));
  }
}

void LinkMonitor::observe_batch(std::span<const Packet> packets) {
  packets_ += packets.size();
  constexpr std::size_t kBlock = 256;
  std::uint64_t labels[kBlock];
  // Kind-outer: one pass per query kind, so each sketch ingests one dense
  // label block at a time instead of four interleaved scalar adds per
  // packet.
  for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
    F0Estimator& sketch = sketches_[q];
    const NetLabel kind = kAllLabels[q];
    for (std::size_t i = 0; i < packets.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, packets.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        labels[j] = extract_label(packets[i + j], kind);
      }
      sketch.add_batch(std::span<const std::uint64_t>(labels, n));
    }
  }
}

double LinkMonitor::estimate(NetLabel kind) const {
  return sketches_[static_cast<std::size_t>(kind)].estimate();
}

const F0Estimator& LinkMonitor::sketch(NetLabel kind) const {
  return sketches_[static_cast<std::size_t>(kind)];
}

std::vector<std::uint8_t> LinkMonitor::report(std::uint32_t link, std::uint32_t epoch) const {
  ByteWriter w;
  w.u8(kReportVersion);
  for (const auto& s : sketches_) s.serialize(w);
  return frame_encode({PayloadKind::kMonitorReport, link, epoch}, w.data());
}

MonitoringCenter::MonitoringCenter(std::size_t links, const EstimatorParams& params)
    : params_(params),
      merged_{F0Estimator(params), F0Estimator(params), F0Estimator(params),
              F0Estimator(params)},
      seen_epoch_(links),
      channel_(links) {}

void MonitoringCenter::receive(std::size_t link, const std::vector<std::uint8_t>& report_bytes) {
  channel_.send(link, report_bytes);
  for (const auto& message : channel_.drain()) {
    // Frame first: corruption is detected by CRC before any sketch parsing.
    const Frame frame = frame_decode(std::span<const std::uint8_t>(message));
    if (frame.header.kind != PayloadKind::kMonitorReport) {
      throw SerializationError("frame is not a monitor report");
    }
    if (frame.header.site != link) {
      throw SerializationError("monitor report frame from link " +
                               std::to_string(frame.header.site) + " arrived on link " +
                               std::to_string(link));
    }
    // Retransmit of an already-merged report: drop, never double-merge.
    if (seen_epoch_[link].has_value() && *seen_epoch_[link] == frame.header.epoch) {
      ++duplicates_dropped_;
      continue;
    }
    ByteReader r{std::span<const std::uint8_t>{frame.payload}};
    if (r.u8() != kReportVersion) throw SerializationError("bad monitor report version");
    for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
      F0Estimator sketch = F0Estimator::deserialize(r);
      naive_sum_[q] += sketch.estimate();
      merged_[q].merge(sketch);
    }
    if (!r.done()) throw SerializationError("trailing bytes in monitor report");
    seen_epoch_[link] = frame.header.epoch;
    ++reports_received_;
  }
}

void MonitoringCenter::collect(const std::vector<LinkMonitor>& monitors) {
  for (std::size_t link = 0; link < monitors.size(); ++link) {
    receive(link, monitors[link].report(static_cast<std::uint32_t>(link)));
  }
}

UnionQueryAnswer MonitoringCenter::query(NetLabel kind) const {
  const auto q = static_cast<std::size_t>(kind);
  return UnionQueryAnswer{merged_[q].estimate(), naive_sum_[q]};
}

}  // namespace ustream
