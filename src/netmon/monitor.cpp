#include "netmon/monitor.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"

namespace ustream {

namespace {
constexpr std::array<NetLabel, 4> kAllLabels = {NetLabel::kDstIp, NetLabel::kSrcIp,
                                                NetLabel::kFlow, NetLabel::kSrcDstPair};
constexpr std::uint8_t kReportVersion = 1;
}  // namespace

LinkMonitor::LinkMonitor(const EstimatorParams& params)
    : sketches_{F0Estimator(params), F0Estimator(params), F0Estimator(params),
                F0Estimator(params)} {}

void LinkMonitor::observe(const Packet& packet) {
  ++packets_;
  for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
    sketches_[q].add(extract_label(packet, kAllLabels[q]));
  }
}

void LinkMonitor::observe_batch(std::span<const Packet> packets) {
  packets_ += packets.size();
  constexpr std::size_t kBlock = 256;
  std::uint64_t labels[kBlock];
  // Kind-outer: one pass per query kind, so each sketch ingests one dense
  // label block at a time instead of four interleaved scalar adds per
  // packet.
  for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
    F0Estimator& sketch = sketches_[q];
    const NetLabel kind = kAllLabels[q];
    for (std::size_t i = 0; i < packets.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, packets.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        labels[j] = extract_label(packets[i + j], kind);
      }
      sketch.add_batch(std::span<const std::uint64_t>(labels, n));
    }
  }
}

double LinkMonitor::estimate(NetLabel kind) const {
  return sketches_[static_cast<std::size_t>(kind)].estimate();
}

const F0Estimator& LinkMonitor::sketch(NetLabel kind) const {
  return sketches_[static_cast<std::size_t>(kind)];
}

std::vector<std::uint8_t> LinkMonitor::report() const {
  ByteWriter w;
  w.u8(kReportVersion);
  for (const auto& s : sketches_) s.serialize(w);
  return w.take();
}

MonitoringCenter::MonitoringCenter(std::size_t links, const EstimatorParams& params)
    : params_(params),
      merged_{F0Estimator(params), F0Estimator(params), F0Estimator(params),
              F0Estimator(params)},
      channel_(links) {}

void MonitoringCenter::receive(std::size_t link, const std::vector<std::uint8_t>& report_bytes) {
  channel_.send(link, report_bytes);
  for (const auto& payload : channel_.drain()) {
    ByteReader r{std::span<const std::uint8_t>{payload}};
    if (r.u8() != kReportVersion) throw SerializationError("bad monitor report version");
    for (std::size_t q = 0; q < kAllLabels.size(); ++q) {
      F0Estimator sketch = F0Estimator::deserialize(r);
      naive_sum_[q] += sketch.estimate();
      merged_[q].merge(sketch);
    }
    if (!r.done()) throw SerializationError("trailing bytes in monitor report");
  }
  ++reports_received_;
}

void MonitoringCenter::collect(const std::vector<LinkMonitor>& monitors) {
  for (std::size_t link = 0; link < monitors.size(); ++link) {
    receive(link, monitors[link].report());
  }
}

UnionQueryAnswer MonitoringCenter::query(NetLabel kind) const {
  const auto q = static_cast<std::size_t>(kind);
  return UnionQueryAnswer{merged_[q].estimate(), naive_sum_[q]};
}

}  // namespace ustream
