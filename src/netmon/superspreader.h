// Superspreader detection: find sources that contact MANY DISTINCT
// destinations (scanners, worms, crawlers) — the per-source version of the
// paper's distinct counting, and a classic application of small-space F0
// sketches in network monitoring.
//
// Design: a bounded table of per-source coordinated samplers.
//   * Admission: a source gets a tracked sampler only once it has been
//     seen with >= `admit_after` distinct-ish contacts, approximated by a
//     shared coordinated admission test (hash(source, dst) level >= a):
//     heavy sources pass quickly, one-destination chatter mostly never
//     allocates state. False negatives below the report threshold are the
//     accepted trade (we only need the heavy tail to be right).
//   * Per-source distinct-destination counts come from small
//     CoordinatedSamplers (shared seed!), so per-source states from many
//     LINKS merge — the detector works over the union of links exactly
//     like the scalar estimators do.
//   * Capacity bound: if the table is full, new sources are admitted only
//     by evicting the tracked source with the smallest current estimate
//     (min-replacement, space-saving style).
//   * Frequency fusion (fusion_capacity > 0): under heavy Zipf skew the
//     single admission coin lets a long tail of one-destination sources
//     through at rate 2^-a, and each one evicts a tracked source — the
//     heavy tail churns out of the table. Fusion interposes a SpaceSaver
//     between the coin and the table: a surviving coin only INCREMENTS the
//     source's fused counter, and the source is admitted once its
//     guaranteed lower bound reaches fusion_min_admit surviving distinct
//     contacts. Tail singletons almost never reach 2 survivals, so they
//     stop evicting real spreaders; a true spreader with d distinct
//     contacts expects d * 2^-a survivals and passes almost immediately.
//     Fusion off (the default) is byte- and behavior-identical to v1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/serialize.h"
#include "core/coordinated_sampler.h"
#include "freq/space_saver.h"
#include "hash/pairwise.h"

namespace ustream {

struct SuperspreaderConfig {
  std::size_t table_capacity = 1024;   // max sources tracked
  std::size_t sampler_capacity = 64;   // per-source F0 sampler capacity
  int admission_level = 3;             // admit after ~2^level distinct contacts
  std::uint64_t seed = 0xfeedULL;      // shared across all monitors
  // Frequency fusion: 0 = classic one-coin admission (v1 wire bytes);
  // > 0 = SpaceSaver-gated admission with this many fused counters.
  std::size_t fusion_capacity = 0;
  std::uint64_t fusion_min_admit = 2;  // guaranteed survivals before admit
};

struct SuperspreaderReport {
  std::uint64_t source = 0;
  double distinct_destinations = 0.0;
};

class SuperspreaderDetector {
 public:
  explicit SuperspreaderDetector(const SuperspreaderConfig& config);

  void observe(std::uint64_t source, std::uint64_t destination);

  // Sources whose estimated distinct-destination count is >= threshold,
  // sorted descending by estimate.
  std::vector<SuperspreaderReport> report(double threshold) const;

  // Estimated distinct destinations for one source (0 if not tracked).
  double estimate(std::uint64_t source) const;

  std::size_t tracked_sources() const noexcept { return table_.size(); }
  const SuperspreaderConfig& config() const noexcept { return config_; }
  std::size_t bytes_used() const noexcept;

  // Merge another detector (same config/seed): per-source samplers merge
  // coordinately; the table is re-trimmed to capacity by estimate.
  void merge(const SuperspreaderDetector& other);
  bool can_merge_with(const SuperspreaderDetector& other) const noexcept {
    return config_.seed == other.config_.seed &&
           config_.sampler_capacity == other.config_.sampler_capacity &&
           config_.admission_level == other.config_.admission_level &&
           config_.fusion_capacity == other.config_.fusion_capacity &&
           config_.fusion_min_admit == other.config_.fusion_min_admit;
  }

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static SuperspreaderDetector deserialize(ByteReader& r);
  static SuperspreaderDetector deserialize(std::span<const std::uint8_t> bytes);

 private:
  // v1: classic detector. v2: adds the fused admission SpaceSaver; only
  // emitted when fusion is on, so fusion-off detectors keep v1 bytes.
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::uint8_t kWireVersionFusion = 2;
  using Sampler = CoordinatedSampler<PairwiseHash, Unit>;

  Sampler make_sampler() const;
  void admit(std::uint64_t source, std::uint64_t destination);
  void evict_smallest();

  SuperspreaderConfig config_;
  PairwiseHash admission_hash_;
  std::optional<SpaceSaver> fusion_;  // surviving-coin counts per source
  // source -> index into samplers_ (stable storage; freed slots reused).
  DenseMap<std::uint32_t> table_;
  std::vector<Sampler> samplers_;
  std::vector<std::uint64_t> slot_source_;  // reverse map
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ustream
