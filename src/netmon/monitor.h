// Per-link monitors and the central collector: the application layer that
// the paper's abstract describes. Each LinkMonitor keeps one coordinated
// F0 sketch per query kind while observing only its own link; the
// MonitoringCenter collects the (serialized) sketches once and answers
// union queries — alongside the naive per-link-sum answer whose overcount
// the union estimate corrects.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/channel.h"
#include "netmon/packet.h"
#include "netmon/trace_gen.h"

namespace ustream {

class LinkMonitor {
 public:
  explicit LinkMonitor(const EstimatorParams& params);

  void observe(const Packet& packet);

  // Batched observation: extracts each query kind's labels into a
  // contiguous block and feeds the sketches through the batch API.
  // State-identical to calling observe() per packet in order.
  void observe_batch(std::span<const Packet> packets);

  // Per-link estimate for a query kind.
  double estimate(NetLabel kind) const;
  const F0Estimator& sketch(NetLabel kind) const;

  // Serialized bundle of all four sketches (one report message).
  std::vector<std::uint8_t> report() const;

  std::uint64_t packets_observed() const noexcept { return packets_; }

 private:
  std::array<F0Estimator, 4> sketches_;
  std::uint64_t packets_ = 0;
};

struct UnionQueryAnswer {
  double union_estimate = 0.0;
  double naive_sum = 0.0;  // sum of per-link estimates (the wrong answer)
};

class MonitoringCenter {
 public:
  MonitoringCenter(std::size_t links, const EstimatorParams& params);

  // Ingest one link's report (consumes channel-accounted bytes).
  void receive(std::size_t link, const std::vector<std::uint8_t>& report_bytes);

  // Convenience: collect every monitor in one pass.
  void collect(const std::vector<LinkMonitor>& monitors);

  UnionQueryAnswer query(NetLabel kind) const;
  ChannelStats channel_stats() const { return channel_.stats(); }

 private:
  EstimatorParams params_;
  std::array<F0Estimator, 4> merged_;
  std::array<double, 4> naive_sum_{};
  std::size_t reports_received_ = 0;
  Channel channel_;
};

}  // namespace ustream
