// Per-link monitors and the central collector: the application layer that
// the paper's abstract describes. Each LinkMonitor keeps one coordinated
// F0 sketch per query kind while observing only its own link; the
// MonitoringCenter collects the (serialized) sketches once and answers
// union queries — alongside the naive per-link-sum answer whose overcount
// the union estimate corrects.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/channel.h"
#include "netmon/packet.h"
#include "netmon/trace_gen.h"

namespace ustream {

class LinkMonitor {
 public:
  explicit LinkMonitor(const EstimatorParams& params);

  void observe(const Packet& packet);

  // Batched observation: extracts each query kind's labels into a
  // contiguous block and feeds the sketches through the batch API.
  // State-identical to calling observe() per packet in order.
  void observe_batch(std::span<const Packet> packets);

  // Per-link estimate for a query kind.
  double estimate(NetLabel kind) const;
  const F0Estimator& sketch(NetLabel kind) const;

  // Serialized bundle of all four sketches (one report message), wrapped
  // in a checksummed wire frame tagged with the sending link and a report
  // epoch (for retransmit dedup at the center).
  std::vector<std::uint8_t> report(std::uint32_t link = 0, std::uint32_t epoch = 0) const;

  std::uint64_t packets_observed() const noexcept { return packets_; }

 private:
  std::array<F0Estimator, 4> sketches_;
  std::uint64_t packets_ = 0;
};

struct UnionQueryAnswer {
  double union_estimate = 0.0;
  double naive_sum = 0.0;  // sum of per-link estimates (the wrong answer)
};

class MonitoringCenter {
 public:
  MonitoringCenter(std::size_t links, const EstimatorParams& params);

  // Ingest one link's framed report (consumes channel-accounted bytes).
  // Throws SerializationError on a corrupt/truncated/mistagged frame; a
  // retransmitted report (same link+epoch as one already merged) is
  // dropped silently and counted in duplicates_dropped().
  void receive(std::size_t link, const std::vector<std::uint8_t>& report_bytes);

  // Convenience: collect every monitor in one pass.
  void collect(const std::vector<LinkMonitor>& monitors);

  UnionQueryAnswer query(NetLabel kind) const;
  ChannelStats channel_stats() const { return channel_.stats(); }
  std::size_t reports_received() const noexcept { return reports_received_; }
  std::uint64_t duplicates_dropped() const noexcept { return duplicates_dropped_; }

 private:
  EstimatorParams params_;
  std::array<F0Estimator, 4> merged_;
  std::array<double, 4> naive_sum_{};
  std::size_t reports_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::vector<std::optional<std::uint32_t>> seen_epoch_;  // per link
  Channel channel_;
};

}  // namespace ustream
