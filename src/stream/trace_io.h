// Binary trace files: persistent streams for reproducible cross-run
// experiments and for feeding the examples from saved data.
//
// Format: magic "USTR", u8 version, varint item count, then per item a
// delta-unfriendly raw encoding (varint label XOR-folded against the
// previous label to exploit clustered label spaces, f64 value).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/item.h"

namespace ustream {

void write_trace(const std::string& path, const std::vector<Item>& items);
std::vector<Item> read_trace(const std::string& path);

}  // namespace ustream
