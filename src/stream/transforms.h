// Stream transforms used by robustness experiments: duplication (tests
// duplicate-insensitivity), shuffling (tests order-insensitivity), and
// adversarial orderings (sorted / reverse-sorted by label).
#pragma once

#include <cstdint>
#include <vector>

#include "stream/item.h"

namespace ustream {

// Returns the stream with every item repeated `factor` times, interleaved
// pseudo-randomly. factor >= 1.
std::vector<Item> duplicate_stream(const std::vector<Item>& stream, std::size_t factor,
                                   std::uint64_t seed);

// Fisher-Yates shuffle.
std::vector<Item> shuffle_stream(std::vector<Item> stream, std::uint64_t seed);

// Sorted ascending / descending by label (adversarial arrival orders).
std::vector<Item> sort_stream(std::vector<Item> stream, bool ascending);

// Interleaves several streams round-robin into one (what a single central
// observer of all links would see) — used by exactness tests comparing a
// merged distributed sketch against a single sketch of the concatenation.
std::vector<Item> interleave_streams(const std::vector<std::vector<Item>>& streams);

}  // namespace ustream
