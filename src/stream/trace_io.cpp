#include "stream/trace_io.h"

#include <cstdio>
#include <memory>

#include "common/error.h"
#include "common/serialize.h"

namespace ustream {

namespace {
constexpr std::uint8_t kTraceVersion = 1;
constexpr std::uint32_t kMagic = 0x52545355;  // "USTR" little-endian

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

void write_trace(const std::string& path, const std::vector<Item>& items) {
  ByteWriter w(16 + items.size() * 10);
  w.u32(kMagic);
  w.u8(kTraceVersion);
  w.varint(items.size());
  std::uint64_t prev = 0;
  for (const Item& item : items) {
    w.varint(item.label ^ prev);
    prev = item.label;
    w.f64(item.value);
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  USTREAM_REQUIRE(f != nullptr, "cannot open trace file for writing: " + path);
  const auto& buf = w.data();
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    throw SerializationError("short write to trace file: " + path);
  }
}

std::vector<Item> read_trace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  USTREAM_REQUIRE(f != nullptr, "cannot open trace file for reading: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  USTREAM_REQUIRE(size >= 0, "cannot stat trace file: " + path);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    throw SerializationError("short read from trace file: " + path);
  }
  ByteReader r(buf);
  if (r.u32() != kMagic) throw SerializationError("not a ustream trace: " + path);
  if (r.u8() != kTraceVersion) throw SerializationError("unsupported trace version");
  const std::uint64_t count = r.varint();
  std::vector<Item> items;
  items.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t label = r.varint() ^ prev;
    prev = label;
    const double value = r.f64();
    items.push_back(Item{label, value});
  }
  if (!r.done()) throw SerializationError("trailing bytes in trace file");
  return items;
}

}  // namespace ustream
