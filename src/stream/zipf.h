// Bounded Zipf (zeta) distribution: Pr[k] proportional to 1/k^alpha over
// k in {1..n}, sampled in O(1) expected time by rejection from the
// continuous envelope (Devroye, Non-Uniform Random Variate Generation).
// alpha = 0 degenerates to uniform; alpha >~ 1 is the heavy skew typical of
// network flow-size and popularity distributions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/random.h"

namespace ustream {

class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  // Samples k in [1, n].
  std::size_t sample(Xoshiro256& rng) const;

  std::size_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

 private:
  std::size_t n_;
  double alpha_;
  // Precomputed envelope constants (Devroye's method):
  double t_;  // total envelope mass
  double one_minus_alpha_;
  double inv_one_minus_alpha_;
};

}  // namespace ustream
