// The unit of data in a stream: a label (the identity that distinct-count
// semantics care about) plus an optional per-label numeric attribute used
// by SumDistinct-style aggregates.
#pragma once

#include <cstdint>

namespace ustream {

struct Item {
  std::uint64_t label = 0;
  double value = 0.0;

  friend bool operator==(const Item&, const Item&) = default;
};

}  // namespace ustream
