#include "stream/generators.h"

#include <algorithm>

#include "common/dense_map.h"
#include "common/error.h"
#include "hash/mix.h"

namespace ustream {

double label_value(std::uint64_t label, std::uint64_t value_seed, double lo, double hi) {
  const std::uint64_t h = murmur_mix64_seeded(label, value_seed);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo + (hi - lo) * u;
}

std::vector<std::uint64_t> make_label_pool(std::size_t count, LabelKind kind,
                                           std::uint64_t seed) {
  std::vector<std::uint64_t> pool;
  pool.reserve(count);
  Xoshiro256 rng(seed);
  switch (kind) {
    case LabelKind::kRandom64: {
      DenseSet seen(count);
      while (pool.size() < count) {
        const std::uint64_t label = rng.next();
        if (seen.insert(label)) pool.push_back(label);
      }
      break;
    }
    case LabelKind::kSequential: {
      for (std::size_t i = 0; i < count; ++i) pool.push_back(i);
      break;
    }
    case LabelKind::kClustered: {
      // Runs of 256 consecutive labels around random bases, mimicking
      // address blocks. Bases are spaced so runs never collide.
      constexpr std::uint64_t kRun = 256;
      DenseSet bases(count / kRun + 2);
      std::uint64_t base = 0;
      std::size_t in_run = kRun;  // force a fresh base on first iteration
      while (pool.size() < count) {
        if (in_run == kRun) {
          do {
            base = (rng.next() << 8);  // aligned to run size
          } while (!bases.insert(base));
          in_run = 0;
        }
        pool.push_back(base + in_run);
        ++in_run;
      }
      break;
    }
  }
  return pool;
}

SyntheticStream::SyntheticStream(const StreamConfig& config)
    : config_(config),
      pool_(make_label_pool(config.distinct, config.label_kind, config.seed)),
      zipf_(config.distinct, config.zipf_alpha),
      rng_(SplitMix64::mix(config.seed ^ 0x9d2c5680a7c83b11ULL)),
      value_seed_(SplitMix64::mix(config.seed ^ 0x2545f4914f6cdd1dULL)) {
  USTREAM_REQUIRE(config.distinct >= 1, "stream needs at least one distinct label");
  USTREAM_REQUIRE(config.total_items >= config.distinct,
                  "total_items must cover every distinct label at least once");
  USTREAM_REQUIRE(config.value_hi >= config.value_lo, "value range must be nonempty");
  for (std::uint64_t label : pool_) {
    true_sum_ += label_value(label, value_seed_, config.value_lo, config.value_hi);
  }
  // Randomize pool order so the guaranteed-coverage prefix isn't sorted by
  // construction kind.
  for (std::size_t i = pool_.size(); i > 1; --i) {
    std::swap(pool_[i - 1], pool_[rng_.below(i)]);
  }
}

Item SyntheticStream::item_for(std::uint64_t label) const {
  return Item{label, label_value(label, value_seed_, config_.value_lo, config_.value_hi)};
}

Item SyntheticStream::next() {
  USTREAM_REQUIRE(!done(), "stream exhausted");
  std::uint64_t label;
  if (emitted_ < pool_.size()) {
    label = pool_[emitted_];  // coverage prefix: every label at least once
  } else {
    label = pool_[zipf_.sample(rng_) - 1];
  }
  ++emitted_;
  return item_for(label);
}

void SyntheticStream::reset() {
  // Re-derive the occurrence RNG so replays are identical.
  rng_ = Xoshiro256(SplitMix64::mix(config_.seed ^ 0x9d2c5680a7c83b11ULL));
  // Note: the pool shuffle consumed RNG draws at construction; replay them.
  std::vector<std::uint64_t> scratch(pool_.size());
  for (std::size_t i = scratch.size(); i > 1; --i) (void)rng_.below(i);
  emitted_ = 0;
}

std::vector<Item> SyntheticStream::to_vector() {
  reset();
  std::vector<Item> out;
  out.reserve(size());
  while (!done()) out.push_back(next());
  reset();
  return out;
}

}  // namespace ustream
