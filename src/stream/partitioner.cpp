#include "stream/partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace ustream {

DistributedWorkload make_distributed_workload(const DistributedConfig& config) {
  USTREAM_REQUIRE(config.sites >= 1, "need at least one site");
  USTREAM_REQUIRE(config.overlap >= 0.0 && config.overlap <= 1.0, "overlap must be in [0,1]");
  USTREAM_REQUIRE(config.duplication >= 1.0, "duplication must be >= 1");
  USTREAM_REQUIRE(config.union_distinct >= 1, "need at least one label");

  const auto pool = make_label_pool(config.union_distinct, config.label_kind, config.seed);
  Xoshiro256 rng(SplitMix64::mix(config.seed ^ 0xd1b54a32d192ed03ULL));
  const std::uint64_t value_seed = SplitMix64::mix(config.seed ^ 0x2545f4914f6cdd1dULL);

  DistributedWorkload out;
  out.site_streams.resize(config.sites);
  out.site_distinct.assign(config.sites, 0);
  out.union_distinct = pool.size();

  // Assign each label to a home site plus overlap replicas; collect each
  // site's distinct label list.
  std::vector<std::vector<std::uint64_t>> site_labels(config.sites);
  for (std::uint64_t label : pool) {
    out.union_sum_distinct += label_value(label, value_seed, config.value_lo, config.value_hi);
    const std::size_t home = static_cast<std::size_t>(rng.below(config.sites));
    site_labels[home].push_back(label);
    if (config.overlap > 0.0) {
      for (std::size_t s = 0; s < config.sites; ++s) {
        if (s != home && rng.bernoulli(config.overlap)) site_labels[s].push_back(label);
      }
    }
  }

  // Emit each site's stream: full coverage pass + skewed re-draws, shuffled.
  for (std::size_t s = 0; s < config.sites; ++s) {
    auto& labels = site_labels[s];
    out.site_distinct[s] = labels.size();
    if (labels.empty()) continue;
    auto& stream = out.site_streams[s];
    const auto total =
        static_cast<std::size_t>(std::ceil(static_cast<double>(labels.size()) * config.duplication));
    stream.reserve(total);
    for (std::uint64_t label : labels) {
      stream.push_back(
          Item{label, label_value(label, value_seed, config.value_lo, config.value_hi)});
    }
    if (total > labels.size()) {
      ZipfDistribution zipf(labels.size(), config.zipf_alpha);
      for (std::size_t i = labels.size(); i < total; ++i) {
        const std::uint64_t label = labels[zipf.sample(rng) - 1];
        stream.push_back(
            Item{label, label_value(label, value_seed, config.value_lo, config.value_hi)});
      }
    }
    // Shuffle so coverage items and duplicates interleave.
    for (std::size_t i = stream.size(); i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.below(i)]);
    }
    out.total_items += stream.size();
  }
  return out;
}

}  // namespace ustream
