// Distributed workload construction: split a logical label population
// across t sites with controllable overlap, producing one physical stream
// per site plus exact ground truth for the union (and per-site truths).
//
// Overlap is the parameter that makes the union problem interesting:
//   overlap = 0    -> sites see disjoint label sets; the union's F0 is the
//                     sum of per-site F0s and naive addition would work;
//   overlap = 1    -> every label is seen by every site; naive addition
//                     overcounts by a factor of t while the union estimate
//                     must stay flat. (E4 sweeps exactly this.)
// Each label is assigned to one home site plus each other site
// independently with probability `overlap`.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/generators.h"
#include "stream/item.h"

namespace ustream {

struct DistributedConfig {
  std::size_t sites = 4;
  std::size_t union_distinct = 100'000;  // ground-truth F0 of the union
  double overlap = 0.0;                  // in [0, 1]
  // Total emitted items per site = (distinct at site) * duplication.
  double duplication = 2.0;  // >= 1
  double zipf_alpha = 0.0;   // multiplicity skew within each site
  LabelKind label_kind = LabelKind::kRandom64;
  std::uint64_t seed = 7;
  double value_lo = 0.0;
  double value_hi = 1.0;
};

struct DistributedWorkload {
  std::vector<std::vector<Item>> site_streams;  // one stream per site
  std::vector<std::size_t> site_distinct;       // ground truth per site
  std::size_t union_distinct = 0;               // ground truth for the union
  double union_sum_distinct = 0.0;              // SumDistinct over the union
  std::size_t total_items = 0;
};

DistributedWorkload make_distributed_workload(const DistributedConfig& config);

}  // namespace ustream
