#include "stream/zipf.h"

#include <cmath>

#include "common/error.h"

namespace ustream {

// Rejection sampler with the continuous envelope t^-alpha on
// [1/2, n + 1/2]. For the convex decreasing envelope, the bucket
// [k-1/2, k+1/2] carries at least k^-alpha mass (midpoint rule), so
// accepting x with probability (2/3)^alpha * (x/k)^alpha — which is <= 1
// because x/k <= (k+1/2)/k <= 3/2 — leaves every integer k with accepted
// mass exactly proportional to k^-alpha.

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha) : n_(n), alpha_(alpha) {
  USTREAM_REQUIRE(n >= 1, "zipf needs n >= 1");
  USTREAM_REQUIRE(alpha >= 0.0, "zipf needs alpha >= 0");
  one_minus_alpha_ = 1.0 - alpha_;
  inv_one_minus_alpha_ = one_minus_alpha_ != 0.0 ? 1.0 / one_minus_alpha_ : 0.0;
  const double hi = static_cast<double>(n_) + 0.5;
  if (alpha_ == 1.0) {
    t_ = std::log(2.0 * hi);  // F(x) = ln(2x)
  } else {
    // F(x) = (x^(1-a) - (1/2)^(1-a)) / (1-a); t_ = F(n + 1/2).
    t_ = (std::pow(hi, one_minus_alpha_) - std::pow(0.5, one_minus_alpha_)) *
         inv_one_minus_alpha_;
  }
}

std::size_t ZipfDistribution::sample(Xoshiro256& rng) const {
  if (n_ == 1) return 1;
  const double accept_scale = std::pow(2.0 / 3.0, alpha_);
  while (true) {
    const double u = rng.uniform01() * t_;
    double x;
    if (alpha_ == 1.0) {
      x = 0.5 * std::exp(u);
    } else {
      x = std::pow(std::pow(0.5, one_minus_alpha_) + u * one_minus_alpha_,
                   inv_one_minus_alpha_);
    }
    auto k = static_cast<std::size_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double r = accept_scale * std::pow(x / static_cast<double>(k), alpha_);
    if (rng.uniform01() <= r) return k;
  }
}

}  // namespace ustream
