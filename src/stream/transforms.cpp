#include "stream/transforms.h"

#include <algorithm>

#include "common/error.h"
#include "common/random.h"

namespace ustream {

std::vector<Item> duplicate_stream(const std::vector<Item>& stream, std::size_t factor,
                                   std::uint64_t seed) {
  USTREAM_REQUIRE(factor >= 1, "duplication factor must be >= 1");
  std::vector<Item> out;
  out.reserve(stream.size() * factor);
  for (std::size_t f = 0; f < factor; ++f) {
    out.insert(out.end(), stream.begin(), stream.end());
  }
  return shuffle_stream(std::move(out), seed);
}

std::vector<Item> shuffle_stream(std::vector<Item> stream, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }
  return stream;
}

std::vector<Item> sort_stream(std::vector<Item> stream, bool ascending) {
  if (ascending) {
    std::sort(stream.begin(), stream.end(),
              [](const Item& a, const Item& b) { return a.label < b.label; });
  } else {
    std::sort(stream.begin(), stream.end(),
              [](const Item& a, const Item& b) { return a.label > b.label; });
  }
  return stream;
}

std::vector<Item> interleave_streams(const std::vector<std::vector<Item>>& streams) {
  std::vector<Item> out;
  std::size_t total = 0, longest = 0;
  for (const auto& s : streams) {
    total += s.size();
    longest = std::max(longest, s.size());
  }
  out.reserve(total);
  for (std::size_t i = 0; i < longest; ++i) {
    for (const auto& s : streams) {
      if (i < s.size()) out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace ustream
