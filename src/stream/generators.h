// Synthetic stream generators with KNOWN ground truth.
//
// Accuracy experiments need the true answer: every generator first fixes an
// explicit set of distinct labels (the ground truth for F0 / SumDistinct),
// then emits a stream in which those labels occur with a configurable
// multiplicity profile (uniform duplication, zipf skew, exactly-once).
// Since all estimators in the library are duplicate-insensitive by design,
// the multiplicity profile is exactly the knob experiment E7 turns.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "stream/item.h"
#include "stream/zipf.h"

namespace ustream {

// How the ground-truth distinct labels are chosen from the 64-bit universe.
enum class LabelKind {
  kRandom64,    // uniform random 64-bit labels (generic)
  kSequential,  // 0,1,2,... (worst case for weak hashes: dense low entropy)
  kClustered,   // runs of consecutive labels around random bases (CIDR-like)
};

// Deterministic per-label attribute in [lo, hi): the same label always
// carries the same value, as the SumDistinct model requires.
double label_value(std::uint64_t label, std::uint64_t value_seed, double lo, double hi);

// Generates `count` distinct labels of the given kind.
std::vector<std::uint64_t> make_label_pool(std::size_t count, LabelKind kind,
                                           std::uint64_t seed);

struct StreamConfig {
  std::size_t distinct = 10'000;     // ground-truth F0
  std::size_t total_items = 50'000;  // stream length (>= distinct)
  double zipf_alpha = 0.0;           // skew of the multiplicity profile
  LabelKind label_kind = LabelKind::kRandom64;
  std::uint64_t seed = 1;
  double value_lo = 0.0;  // per-label value range (SumDistinct workloads)
  double value_hi = 1.0;
};

// A fully materializable synthetic stream: the first `distinct` emissions
// cover the pool once (so the ground truth is exact), the remaining
// `total_items - distinct` emissions re-draw labels from the pool with the
// configured zipf skew. Emission order is pseudo-random.
class SyntheticStream {
 public:
  explicit SyntheticStream(const StreamConfig& config);

  // Emits the next item; wraps the occurrence pattern deterministically.
  // Streams are conceptually finite: callers should stop at size().
  Item next();

  bool done() const noexcept { return emitted_ >= config_.total_items; }
  std::size_t size() const noexcept { return config_.total_items; }
  void reset();

  // Ground truth.
  const std::vector<std::uint64_t>& labels() const noexcept { return pool_; }
  std::size_t true_distinct() const noexcept { return pool_.size(); }
  double true_sum_distinct() const noexcept { return true_sum_; }

  const StreamConfig& config() const noexcept { return config_; }

  // Materialize the whole stream (tests and small experiments).
  std::vector<Item> to_vector();

 private:
  Item item_for(std::uint64_t label) const;

  StreamConfig config_;
  std::vector<std::uint64_t> pool_;
  ZipfDistribution zipf_;
  Xoshiro256 rng_;
  std::size_t emitted_ = 0;
  double true_sum_ = 0.0;
  std::uint64_t value_seed_ = 0;
};

}  // namespace ustream
