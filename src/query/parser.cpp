#include "query/parser.h"

#include <cctype>
#include <limits>

namespace ustream::query {
namespace {

enum class Tok : std::uint8_t {
  kLParen, kRParen, kPipe, kAmp, kDiff, kBang, kIdent, kNumber, kColon, kEnd,
};

const char* tok_name(Tok t) noexcept {
  switch (t) {
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kPipe: return "'|'";
    case Tok::kAmp: return "'&'";
    case Tok::kDiff: return "'\\'";
    case Tok::kBang: return "'!'";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kColon: return "':'";
    case Tok::kEnd: return "end of input";
  }
  return "?";
}

struct Token {
  Tok kind = Tok::kEnd;
  std::size_t pos = 0;
  std::string_view text;  // ident / number lexeme
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
    current_.pos = at_;
    current_.text = {};
    if (at_ >= text_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    const char c = text_[at_];
    switch (c) {
      case '(': current_.kind = Tok::kLParen; ++at_; return;
      case ')': current_.kind = Tok::kRParen; ++at_; return;
      case '|': current_.kind = Tok::kPipe; ++at_; return;
      case '&': current_.kind = Tok::kAmp; ++at_; return;
      case '\\':
      case '-': current_.kind = Tok::kDiff; ++at_; return;
      case '!': current_.kind = Tok::kBang; ++at_; return;
      case ':': current_.kind = Tok::kColon; ++at_; return;
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = at_;
      while (at_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
      current_.kind = Tok::kNumber;
      current_.text = text_.substr(start, at_ - start);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = at_;
      while (at_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[at_])) ||
              text_[at_] == '_')) {
        ++at_;
      }
      current_.kind = Tok::kIdent;
      current_.text = text_.substr(start, at_ - start);
      return;
    }
    throw QueryError(at_, std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t at_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  ExprPtr run() {
    ExprPtr e = parse_union();
    const Token& t = lex_.peek();
    if (t.kind != Tok::kEnd) {
      throw QueryError(t.pos, std::string("unexpected ") + tok_name(t.kind) +
                                  " after expression");
    }
    return e;
  }

 private:
  ExprPtr parse_union() {
    ExprPtr left = parse_diff();
    while (lex_.peek().kind == Tok::kPipe) {
      const Token op = lex_.take();
      left = make_binary(ExprKind::kUnion, op.pos, std::move(left), parse_diff());
    }
    return left;
  }

  ExprPtr parse_diff() {
    ExprPtr left = parse_inter();
    while (lex_.peek().kind == Tok::kDiff) {
      const Token op = lex_.take();
      left = make_binary(ExprKind::kDifference, op.pos, std::move(left),
                         parse_inter());
    }
    return left;
  }

  ExprPtr parse_inter() {
    ExprPtr left = parse_unary();
    while (lex_.peek().kind == Tok::kAmp) {
      const Token op = lex_.take();
      left = make_binary(ExprKind::kIntersect, op.pos, std::move(left),
                         parse_unary());
    }
    return left;
  }

  ExprPtr parse_unary() {
    if (lex_.peek().kind == Tok::kBang) {
      const Token op = lex_.take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kComplement;
      e->pos = op.pos;
      e->left = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case Tok::kLParen: {
        lex_.take();
        ExprPtr inner = parse_union();
        const Token& close = lex_.peek();
        if (close.kind != Tok::kRParen) {
          throw QueryError(close.pos, std::string("expected ')' but found ") +
                                          tok_name(close.kind));
        }
        lex_.take();
        return inner;
      }
      case Tok::kIdent: return parse_operand();
      default:
        throw QueryError(t.pos, std::string("expected operand or '(' but found ") +
                                    tok_name(t.kind));
    }
  }

  ExprPtr parse_operand() {
    const Token ident = lex_.take();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kOperand;
    e->pos = ident.pos;
    if (lex_.peek().kind != Tok::kColon) {
      e->operand = OperandKind::kName;
      e->name.assign(ident.text);
      return e;
    }
    lex_.take();  // ':'
    const Token& num = lex_.peek();
    if (num.kind != Tok::kNumber) {
      throw QueryError(num.pos, std::string("expected number after '") +
                                    std::string(ident.text) + ":' but found " +
                                    tok_name(num.kind));
    }
    if (ident.text == "site") {
      e->operand = OperandKind::kSite;
      e->id = parse_id(lex_.take(), std::numeric_limits<std::uint32_t>::max());
    } else if (ident.text == "group") {
      // Group ids travel in a u16 wire field (frame.h v2).
      e->operand = OperandKind::kGroup;
      e->id = parse_id(lex_.take(), std::numeric_limits<std::uint16_t>::max());
    } else {
      throw QueryError(ident.pos, "unknown operand namespace '" +
                                      std::string(ident.text) +
                                      "' (expected site: or group:)");
    }
    return e;
  }

  static std::uint32_t parse_id(const Token& num, std::uint32_t max) {
    std::uint64_t v = 0;
    for (char c : num.text) {
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > max) {
        throw QueryError(num.pos, "operand id " + std::string(num.text) +
                                      " out of range (max " +
                                      std::to_string(max) + ")");
      }
    }
    return static_cast<std::uint32_t>(v);
  }

  static ExprPtr make_binary(ExprKind kind, std::size_t pos, ExprPtr left,
                             ExprPtr right) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->pos = pos;
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  Lexer lex_;
};

}  // namespace

ExprPtr parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ustream::query
