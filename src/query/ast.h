// Expression AST for set-expression queries over coordinated samples.
//
// A query names sketches as operands — `site:3` (one collected site's
// sketch), `group:7` (the merged sketch of every site tagged with group 7),
// or a bare identifier resolved by the caller — and combines them with
//
//   |   union          lowest precedence, left-associative
//   \   difference     (also spelled -), left-associative
//   &   intersection
//   !   complement     highest precedence, prefix
//
// so `(site:0 | site:1) & !site:2` is "labels on link 0 or 1 but not 2".
// The AST is deliberately dumb — five node kinds, no annotations — because
// the two consumers want different things from it: the printer wants
// structure (minimal-paren round trip, tests/test_query.cpp pins
// parse(print(E)) == E), and the evaluator wants membership logic (a
// candidate label's per-operand bitmask is pushed through the tree).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ustream::query {

enum class ExprKind : std::uint8_t {
  kOperand,
  kUnion,       // left | right
  kIntersect,   // left & right
  kDifference,  // left \ right
  kComplement,  // !left
};

enum class OperandKind : std::uint8_t { kSite, kGroup, kName };

struct Expr {
  ExprKind kind = ExprKind::kOperand;
  std::size_t pos = 0;  // byte offset of this node's first token (errors)

  // kOperand only:
  OperandKind operand = OperandKind::kName;
  std::uint32_t id = 0;  // site:N / group:N
  std::string name;      // bare-identifier operand

  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;  // null for kComplement
};

using ExprPtr = std::unique_ptr<Expr>;

// Canonical spelling of an operand leaf: "site:3", "group:7", or the name.
// Two leaves with equal keys denote the same set.
std::string operand_key(const Expr& e);

// Minimal-parenthesis printer. parse(to_string(e)) is structurally
// identical to e (the fuzzer's round-trip invariant): associativity is
// preserved by parenthesizing a right child of its own precedence, e.g.
// Union(a, Union(b, c)) prints "a | (b | c)" while Union(Union(a, b), c)
// prints "a | b | c".
std::string to_string(const Expr& e);

bool structurally_equal(const Expr& a, const Expr& b);

// Distinct operand leaves (by operand_key) in first-appearance order; the
// evaluator assigns candidate-bitmask bits in this order.
std::vector<const Expr*> collect_operands(const Expr& e);

// True iff support(e) is guaranteed to be a subset of the union of e's
// operand sets — the condition under which enumerating candidates from the
// operands' samples is sound. Complement alone is unbounded ("everything
// not in A" needs a universe); intersection launders it (`a & !b` is
// bounded by a), union and the right side of a difference don't.
bool is_bounded(const Expr& e);

}  // namespace ustream::query
