#include "query/ast.h"

#include <algorithm>

namespace ustream::query {
namespace {

// Higher binds tighter. Operand/complement never need parens as children.
int precedence(ExprKind k) noexcept {
  switch (k) {
    case ExprKind::kUnion: return 1;
    case ExprKind::kDifference: return 2;
    case ExprKind::kIntersect: return 3;
    case ExprKind::kComplement: return 4;
    case ExprKind::kOperand: return 5;
  }
  return 5;
}

const char* infix_token(ExprKind k) noexcept {
  switch (k) {
    case ExprKind::kUnion: return " | ";
    case ExprKind::kDifference: return " \\ ";
    case ExprKind::kIntersect: return " & ";
    default: return "";
  }
}

void print_rec(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kOperand:
      out += operand_key(e);
      return;
    case ExprKind::kComplement: {
      out += '!';
      const bool parens = precedence(e.left->kind) < precedence(e.kind);
      if (parens) out += '(';
      print_rec(*e.left, out);
      if (parens) out += ')';
      return;
    }
    default: {
      // Left child: parens only when strictly looser. Right child: parens
      // also at EQUAL precedence, so right-nested same-operator trees
      // survive the parser's left-associativity (round-trip identity).
      const int p = precedence(e.kind);
      const bool lparens = precedence(e.left->kind) < p;
      if (lparens) out += '(';
      print_rec(*e.left, out);
      if (lparens) out += ')';
      out += infix_token(e.kind);
      const bool rparens = precedence(e.right->kind) <= p;
      if (rparens) out += '(';
      print_rec(*e.right, out);
      if (rparens) out += ')';
      return;
    }
  }
}

void collect_rec(const Expr& e, std::vector<const Expr*>& out,
                 std::vector<std::string>& seen) {
  if (e.kind == ExprKind::kOperand) {
    std::string key = operand_key(e);
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(std::move(key));
      out.push_back(&e);
    }
    return;
  }
  collect_rec(*e.left, out, seen);
  if (e.right) collect_rec(*e.right, out, seen);
}

}  // namespace

std::string operand_key(const Expr& e) {
  switch (e.operand) {
    case OperandKind::kSite: return "site:" + std::to_string(e.id);
    case OperandKind::kGroup: return "group:" + std::to_string(e.id);
    case OperandKind::kName: return e.name;
  }
  return e.name;
}

std::string to_string(const Expr& e) {
  std::string out;
  print_rec(e, out);
  return out;
}

bool structurally_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == ExprKind::kOperand) {
    return a.operand == b.operand && a.id == b.id && a.name == b.name;
  }
  if (!structurally_equal(*a.left, *b.left)) return false;
  if ((a.right == nullptr) != (b.right == nullptr)) return false;
  return a.right == nullptr || structurally_equal(*a.right, *b.right);
}

std::vector<const Expr*> collect_operands(const Expr& e) {
  std::vector<const Expr*> out;
  std::vector<std::string> seen;
  collect_rec(e, out, seen);
  return out;
}

bool is_bounded(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kOperand: return true;
    case ExprKind::kComplement: return false;
    case ExprKind::kUnion: return is_bounded(*e.left) && is_bounded(*e.right);
    case ExprKind::kIntersect: return is_bounded(*e.left) || is_bounded(*e.right);
    case ExprKind::kDifference: return is_bounded(*e.left);
  }
  return false;
}

}  // namespace ustream::query
