// Tokenizer + recursive-descent parser for the query grammar (ast.h).
//
//   union  := diff  ( '|' diff  )*
//   diff   := inter ( ('\' | '-') inter )*
//   inter  := unary ( '&' unary )*
//   unary  := '!' unary | primary
//   primary:= '(' union ')' | operand
//   operand:= 'site' ':' NUMBER | 'group' ':' NUMBER | IDENT
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*, numbers are decimal digits.
// Every error carries the byte offset of the offending token so the CLI
// can point at it; the offset is also exposed programmatically via
// QueryError::pos() for the error-position tests.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "query/ast.h"

namespace ustream::query {

// Malformed query text (or a semantic error like an unbounded expression).
// what() already embeds the offset: "query error at offset 12: ...".
class QueryError : public std::runtime_error {
 public:
  QueryError(std::size_t pos, const std::string& msg)
      : std::runtime_error("query error at offset " + std::to_string(pos) +
                           ": " + msg),
        pos_(pos) {}
  std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t pos_;
};

// Parses `text` into an AST; throws QueryError on any malformation.
ExprPtr parse(std::string_view text);

}  // namespace ustream::query
