#include "query/service.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream::query {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

QueryResult run_query(const std::string& text, const ResolveSketch& resolve) {
  USTREAM_TRACE_SPAN("ustream_query_latency_ns");
  USTREAM_COUNTER_ADD("ustream_queries_total", 1);
  ExprPtr expr = parse(text);
  QueryResult result = evaluate<F0Estimator>(*expr, resolve);
  USTREAM_HISTOGRAM_OBSERVE("ustream_query_operands", result.operands);
  return result;
}

std::string format_query_text(const std::string& text, const QueryResult& r) {
  std::string out = "query: " + text + "\n";
  out += "estimate: " + fmt_double(r.estimate) + " (± " + fmt_double(r.std_error) +
         " @1σ)\n";
  out += "level: " + std::to_string(r.level) + ", operands: " +
         std::to_string(r.operands) + ", candidates: " +
         std::to_string(r.candidates) + "\n";
  return out;
}

std::string format_query_json(const std::string& text, const QueryResult& r) {
  std::string out = "{\"query\":\"" + json_escape(text) + "\"";
  out += ",\"estimate\":" + fmt_double(r.estimate);
  out += ",\"std_error\":" + fmt_double(r.std_error);
  out += ",\"level\":" + std::to_string(r.level);
  out += ",\"operands\":" + std::to_string(r.operands);
  out += ",\"candidates\":" + std::to_string(r.candidates);
  out += "}\n";
  return out;
}

std::string percent_encode(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == ':' || c == '~' || c == '-';
    if (safe) {
      out += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    }
  }
  return out;
}

std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= s.size()) {
        throw QueryError(i, "truncated percent escape");
      }
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        throw QueryError(i, "malformed percent escape '" +
                                std::string(s.substr(i, 3)) + "'");
      }
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace ustream::query
