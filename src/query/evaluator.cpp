#include "query/evaluator.h"

namespace ustream::query {

double exact_evaluate(
    const Expr& expr,
    const std::function<const std::vector<std::uint64_t>*(const Expr&)>& resolve) {
  const OperandTable table(expr);
  std::vector<const std::vector<std::uint64_t>*> sets;
  sets.reserve(table.size());
  for (const Expr* leaf : table.leaves()) {
    const auto* set = resolve(*leaf);
    if (set == nullptr) {
      throw QueryError(leaf->pos, "unknown operand '" + operand_key(*leaf) + "'");
    }
    sets.push_back(set);
  }
  CompiledExpr compiled(expr, [&](const Expr& leaf) { return table.bit_of(leaf); });
  DenseMap<std::uint64_t> mask(256);
  for (std::size_t j = 0; j < sets.size(); ++j) {
    const std::uint64_t bit = 1ull << j;
    for (std::uint64_t label : *sets[j]) {
      auto [slot, inserted] = mask.try_emplace(label, 0);
      (void)inserted;
      slot->value |= bit;
    }
  }
  std::size_t count = 0;
  for (const auto& e : mask) {
    if (compiled.eval(e.value)) ++count;
  }
  return static_cast<double>(count);
}

}  // namespace ustream::query
