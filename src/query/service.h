// The deployment-facing face of the query engine: parse + evaluate + obs
// metrics in one call, plus the text/JSON renderings and the %xx decoding
// shared by `ustream query` and the referee's `GET /query?e=...` admin
// route. Kept concrete (F0Estimator) so the CLI and server don't each
// instantiate the evaluator template.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "core/f0_estimator.h"
#include "query/evaluator.h"

namespace ustream::query {

using ResolveSketch = std::function<const F0Estimator*(const Expr&)>;

// Parses `text` and evaluates it against the sketches `resolve` names.
// Records ustream_queries_total, the ustream_query_latency_ns histogram,
// and the ustream_query_operands histogram. Throws QueryError on parse or
// resolution failure (after counting the query as received).
QueryResult run_query(const std::string& text, const ResolveSketch& resolve);

// "query: ...\nestimate: ... (± ... @1σ)\n..." — one fact per line.
std::string format_query_text(const std::string& text, const QueryResult& r);
std::string format_query_json(const std::string& text, const QueryResult& r);

// Decodes %xx escapes (and '+' as space) for the admin query route.
// Malformed escapes throw QueryError at the offending offset.
std::string percent_decode(std::string_view s);

// Inverse for clients: escapes everything outside [A-Za-z0-9_.:~-] so an
// expression survives the one-line admin request format.
std::string percent_encode(std::string_view s);

}  // namespace ustream::query
