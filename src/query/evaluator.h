// DLRT-style expression evaluation over coordinated samples.
//
// Generalizes core/set_ops.h from two operands to arbitrary expressions,
// following "A Framework for Estimating Stream Expression Cardinalities"
// (Dasgupta–Lang–Rhodes–Thaler; PAPERS.md): because every operand sketch
// flips the SAME per-label coins (shared hash), restricting every sample
// to the common threshold level L = max over operands of level_j makes the
// samples comparable — S_j^L is exactly {x in set_j : level(x) >= L}. The
// candidate set C = union of the S_j^L then contains every sampled label of
// every bounded expression's support, each candidate's per-operand
// membership bitmask is exact, and
//
//   |E|  ~  2^L * |{x in C : x satisfies E}|
//
// with the count Binomial(|E|, 2^-L), giving the plug-in variance bound
//   Var = |E| * (2^L - 1)   =>   SE ~ sqrt(est * (2^L - 1)).
//
// Per copy, that's one scan over the operands' retained entries; the
// estimator's copies are medianed exactly like plain F0, and the reported
// SE is the median copy's plug-in. Accuracy degrades with the ratio
// |union of operands| / |E| — small intersections need capacity — which
// EXPERIMENTS.md E19 quantifies against exact ground truth.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/dense_map.h"
#include "query/ast.h"
#include "query/parser.h"

namespace ustream::query {

struct QueryResult {
  double estimate = 0.0;
  double std_error = 0.0;     // plug-in SE: sqrt(estimate * (2^L - 1))
  int level = 0;              // common threshold level of the median copy
  std::size_t operands = 0;   // distinct operand leaves in the expression
  std::size_t candidates = 0; // candidate labels at level L (median copy)
};

// Postfix compilation of an Expr for fast per-candidate membership tests:
// one pass over the tree at build time, then eval(mask) runs a tiny stack
// machine per candidate (no pointer chasing, no allocation after reserve).
class CompiledExpr {
 public:
  // `bit_of` maps an operand leaf to its bitmask bit (its index in
  // collect_operands order, deduplicated by operand_key).
  CompiledExpr(const Expr& e,
               const std::function<unsigned(const Expr&)>& bit_of) {
    compile(e, bit_of);
    stack_.reserve(prog_.size());
  }

  bool eval(std::uint64_t mask) {
    stack_.clear();
    for (const Inst& inst : prog_) {
      switch (inst.op) {
        case Op::kLeaf:
          stack_.push_back((mask >> inst.bit) & 1u);
          break;
        case Op::kComplement:
          stack_.back() ^= 1u;
          break;
        default: {
          const std::uint8_t rhs = stack_.back();
          stack_.pop_back();
          std::uint8_t& lhs = stack_.back();
          if (inst.op == Op::kUnion) lhs = lhs | rhs;
          else if (inst.op == Op::kIntersect) lhs = lhs & rhs;
          else lhs = lhs & static_cast<std::uint8_t>(rhs ^ 1u);  // difference
          break;
        }
      }
    }
    return stack_.back() != 0;
  }

 private:
  enum class Op : std::uint8_t { kLeaf, kUnion, kIntersect, kDifference, kComplement };
  struct Inst {
    Op op = Op::kLeaf;
    unsigned bit = 0;
  };

  void compile(const Expr& e, const std::function<unsigned(const Expr&)>& bit_of) {
    if (e.kind == ExprKind::kOperand) {
      prog_.push_back({Op::kLeaf, bit_of(e)});
      return;
    }
    compile(*e.left, bit_of);
    if (e.right) compile(*e.right, bit_of);
    switch (e.kind) {
      case ExprKind::kUnion: prog_.push_back({Op::kUnion, 0}); break;
      case ExprKind::kIntersect: prog_.push_back({Op::kIntersect, 0}); break;
      case ExprKind::kDifference: prog_.push_back({Op::kDifference, 0}); break;
      default: prog_.push_back({Op::kComplement, 0}); break;
    }
  }

  std::vector<Inst> prog_;
  std::vector<std::uint8_t> stack_;
};

// Maps each distinct operand leaf to its bit index; shared by the sketch
// and exact evaluators so their membership logic is identical by
// construction. Throws QueryError for >64 distinct operands or an
// unbounded expression.
class OperandTable {
 public:
  explicit OperandTable(const Expr& expr) : leaves_(collect_operands(expr)) {
    if (leaves_.size() > 64) {
      throw QueryError(expr.pos, "too many distinct operands (" +
                                     std::to_string(leaves_.size()) +
                                     ", max 64)");
    }
    if (!is_bounded(expr)) {
      throw QueryError(expr.pos,
                       "unbounded expression (complement without an "
                       "intersecting bounded operand): rewrite as e.g. "
                       "site:0 & !site:1");
    }
    for (const Expr* leaf : leaves_) keys_.push_back(operand_key(*leaf));
  }

  const std::vector<const Expr*>& leaves() const noexcept { return leaves_; }
  std::size_t size() const noexcept { return leaves_.size(); }

  unsigned bit_of(const Expr& leaf) const {
    const std::string key = operand_key(leaf);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return static_cast<unsigned>(i);
    }
    throw QueryError(leaf.pos, "operand '" + key + "' missing from table");
  }

 private:
  std::vector<const Expr*> leaves_;
  std::vector<std::string> keys_;
};

// Evaluates `expr` over sketches named by its operands. `resolve` returns
// the estimator for an operand leaf, or nullptr for an unknown name (which
// becomes a QueryError at that leaf's position). All resolved estimators
// must be pairwise mergeable (same params + seed — i.e. coordinated).
template <typename Est>
QueryResult evaluate(const Expr& expr,
                     const std::function<const Est*(const Expr&)>& resolve) {
  const OperandTable table(expr);
  std::vector<const Est*> ops;
  ops.reserve(table.size());
  for (const Expr* leaf : table.leaves()) {
    const Est* est = resolve(*leaf);
    if (est == nullptr) {
      throw QueryError(leaf->pos, "unknown operand '" + operand_key(*leaf) + "'");
    }
    if (!ops.empty() && !ops.front()->can_merge_with(*est)) {
      throw QueryError(leaf->pos, "operand '" + operand_key(*leaf) +
                                      "' is not coordinated with '" +
                                      operand_key(*table.leaves().front()) +
                                      "' (different parameters or seed)");
    }
    ops.push_back(est);
  }
  CompiledExpr compiled(expr, [&](const Expr& leaf) { return table.bit_of(leaf); });

  const std::size_t copies = ops.front()->num_copies();
  struct CopyOutcome {
    double est = 0.0;
    int level = 0;
    std::size_t candidates = 0;
  };
  std::vector<CopyOutcome> outcomes(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    int level = 0;
    for (const Est* op : ops) level = std::max(level, op->copy(i).level());
    // label -> membership bitmask over operands, at the common level.
    DenseMap<std::uint64_t> mask(64);
    for (std::size_t j = 0; j < ops.size(); ++j) {
      const std::uint64_t bit = 1ull << j;
      for (const auto& e : ops[j]->copy(i).entries()) {
        if (e.value.level < level) continue;
        auto [slot, inserted] = mask.try_emplace(e.key, 0);
        (void)inserted;
        slot->value |= bit;
      }
    }
    std::size_t count = 0;
    for (const auto& e : mask) {
      if (compiled.eval(e.value)) ++count;
    }
    outcomes[i] = {std::ldexp(static_cast<double>(count), level), level,
                   mask.size()};
  }
  // Median copy by estimate (lower middle for even copy counts, so the
  // reported level/candidates always come from a concrete copy).
  std::vector<std::size_t> order(copies);
  for (std::size_t i = 0; i < copies; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return outcomes[a].est < outcomes[b].est;
  });
  const CopyOutcome& med = outcomes[order[(copies - 1) / 2]];

  QueryResult result;
  result.estimate = med.est;
  result.std_error =
      std::sqrt(med.est * (std::ldexp(1.0, med.level) - 1.0));
  result.level = med.level;
  result.operands = table.size();
  result.candidates = med.candidates;
  return result;
}

// Exact reference evaluator: operands resolve to full label sets. Same
// candidate/bitmask machinery, no sampling — tests compare evaluate()
// against this within the DLRT error envelope.
double exact_evaluate(
    const Expr& expr,
    const std::function<const std::vector<std::uint64_t>*(const Expr&)>& resolve);

}  // namespace ustream::query
