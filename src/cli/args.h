// Minimal argument parser for the ustream CLI: --key value flags and
// positional arguments, with typed accessors and helpful errors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace ustream::cli {

class Args {
 public:
  // argv-style input, excluding the program and subcommand names.
  explicit Args(const std::vector<std::string>& argv);

  bool has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const;
  std::string required_str(const std::string& key) const;
  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const;
  double f64(const std::string& key, double fallback) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  // Throws if any --flag was provided but never read (typo protection).
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace ustream::cli
