// ustream — command-line front end for the library: generate traces,
// sketch them, merge sketches across "sites", estimate the union.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  const int code = ustream::cli::run(args, out);
  std::fputs(out.c_str(), code == 0 ? stdout : stderr);
  return code;
}
