// The ustream command-line tool, as a library so tests can drive it.
//
// Workflow it supports (mirroring the distributed model on files):
//   ustream generate --distinct 100000 --items 500000 --out site0.trace
//   ustream sketch   --in site0.trace --eps 0.1 --delta 0.05 --out site0.sk
//   ustream merge    --out union.sk site0.sk site1.sk site2.sk
//   ustream estimate union.sk
//   ustream exact    --in site0.trace
//   ustream info     site0.trace union.sk
//
// and the same protocol as separate PROCESSES over TCP (src/net/):
//   ustream serve --port 7070 --sites 2 --out union.sk     # referee
//   ustream push  --to 127.0.0.1:7070 --site 0 site0.sk    # one per site
//   ustream push  --to 127.0.0.1:7070 --site 1 site1.sk
//
// `estimate` and `info` take --json for one machine-readable line per file.
// Sketch files carry a magic header; all sketches to be merged must have
// been built with the same --eps/--delta/--seed (the coordination rule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/f0_estimator.h"

namespace ustream::cli {

// Runs one CLI invocation; argv excludes the program name (argv[0] is the
// subcommand). Output lines go to `out`. Returns the process exit code.
int run(const std::vector<std::string>& argv, std::string& out);

// Sketch-file helpers (exposed for tests). `group` tags the frame with a
// group id (frame.h v2); 0 keeps the ungrouped v1 layout.
void write_sketch_file(const std::string& path, const F0Estimator& estimator,
                       std::uint16_t group = 0);
F0Estimator read_sketch_file(const std::string& path);

std::string usage();

}  // namespace ustream::cli
