#include "cli/commands.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>

#include "common/random.h"

#include "baselines/exact.h"
#include "cli/args.h"
#include "common/frame.h"
#include "common/serialize.h"
#include "core/params.h"
#include "distributed/continuous.h"
#include "distributed/faulty_channel.h"
#include "distributed/runtime.h"
#include "durability/recovery.h"
#include "freq/freq_sketch.h"
#include "freq/universal_sketch.h"
#include "net/referee_server.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "query/service.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "stream/trace_io.h"

namespace ustream::cli {

namespace {

// Pre-frame sketch files ("USKE" + bare estimator, wire v0) are still
// readable; new files are CRC32C-framed (common/frame.h).
constexpr std::uint32_t kLegacySketchMagic = 0x454b5355;  // "USKE"

void append(std::string& out, const char* format, ...) {
  char buf[4096];  // --json lines carry per-copy byte arrays; keep headroom
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
  out += '\n';
}

// Minimal JSON string escaping for the --json output lines (paths are the
// only free-form strings we emit).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Consumes the boolean --json flag (so reject_unknown stays quiet) and
// reports whether machine-readable output was requested.
bool json_requested(const Args& args) {
  const bool json = args.has("json");
  if (json) args.str("json", "");
  return json;
}

// Same idiom for the boolean --stats flag on serve/push: dump this
// process's metrics registry as one JSON line on exit.
bool stats_requested(const Args& args) {
  const bool stats = args.has("stats");
  if (stats) args.str("stats", "");
  return stats;
}

// "HOST:PORT" as used by --to/--from/--upstream. The flag name is only for
// the error message.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& flag,
                                                      const std::string& value) {
  const auto colon = value.rfind(':');
  USTREAM_REQUIRE(colon != std::string::npos && colon > 0 && colon + 1 < value.size(),
                  flag + " expects host:port, got '" + value + "'");
  const std::uint64_t port = std::strtoull(value.c_str() + colon + 1, nullptr, 10);
  USTREAM_REQUIRE(port >= 1 && port <= 0xffff, flag + " port out of range in '" + value + "'");
  return {value.substr(0, colon), static_cast<std::uint16_t>(port)};
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  USTREAM_REQUIRE(f != nullptr, "cannot open file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size < 0 ? 0 : size));
  const bool ok = buf.empty() || std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) throw SerializationError("short read: " + path);
  return buf;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  USTREAM_REQUIRE(f != nullptr, "cannot open file for writing: " + path);
  const bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) throw SerializationError("short write: " + path);
}

int cmd_generate(const Args& args, std::string& out) {
  StreamConfig config;
  config.distinct = args.u64("distinct", 100'000);
  config.total_items = args.u64("items", config.distinct * 3);
  config.zipf_alpha = args.f64("alpha", 1.0);
  config.seed = args.u64("seed", 1);
  config.value_lo = args.f64("value-lo", 0.0);
  config.value_hi = args.f64("value-hi", 1.0);
  const std::string kind = args.str("labels", "random");
  config.label_kind = kind == "sequential" ? LabelKind::kSequential
                      : kind == "clustered" ? LabelKind::kClustered
                                            : LabelKind::kRandom64;
  const std::string path = args.required_str("out");
  args.reject_unknown();
  SyntheticStream stream(config);
  write_trace(path, stream.to_vector());
  append(out, "wrote %zu items (%zu distinct, alpha %.2f) to %s", config.total_items,
         config.distinct, config.zipf_alpha, path.c_str());
  return 0;
}

// Framed freq/universal sketch files share the F0 file shape: one CRC
// frame whose kind tags the payload; site/epoch are 0 for files at rest.
void write_framed_payload(const std::string& path, PayloadKind kind,
                          const std::vector<std::uint8_t>& payload,
                          std::uint16_t group = 0) {
  write_file(path, frame_encode({kind, 0, 0, group}, payload));
}

// Kind of a file for dispatch: the frame header's tag, or kF0Estimator for
// legacy (v0) unframed sketch files.
PayloadKind framed_kind_of(const std::string& path) {
  const auto bytes = read_file(path);
  if (!looks_like_frame(bytes)) return PayloadKind::kF0Estimator;
  return frame_decode(bytes).header.kind;
}

Frame read_framed_kind(const std::string& path, PayloadKind kind) {
  const auto bytes = read_file(path);
  if (!looks_like_frame(bytes)) {
    throw SerializationError(std::string("not a framed ") + payload_kind_name(kind) +
                             " file: " + path);
  }
  Frame frame = frame_decode(bytes);
  if (frame.header.kind != kind) {
    throw SerializationError(std::string("sketch file ") + path + " carries a " +
                             payload_kind_name(frame.header.kind) + " frame, expected " +
                             payload_kind_name(kind));
  }
  return frame;
}

FreqSketch read_freq_file(const std::string& path) {
  const Frame frame = read_framed_kind(path, PayloadKind::kFreqSketch);
  return FreqSketch::deserialize(std::span<const std::uint8_t>(frame.payload));
}

UniversalSketch read_universal_file(const std::string& path) {
  const Frame frame = read_framed_kind(path, PayloadKind::kUniversalSketch);
  return UniversalSketch::deserialize(std::span<const std::uint8_t>(frame.payload));
}

// `top(K)` / `freq(LABEL)` — the frequency query surface. Returns false
// when `text` is not a call of that name; throws InvalidArgument on a
// malformed argument.
bool parse_freq_call(const std::string& text, const char* name, std::uint64_t& value) {
  const std::string prefix = std::string(name) + "(";
  if (text.rfind(prefix, 0) != 0) return false;
  USTREAM_REQUIRE(text.size() > prefix.size() + 1 && text.back() == ')',
                  std::string(name) + " expects " + name + "(N)");
  const std::string num = text.substr(prefix.size(), text.size() - prefix.size() - 1);
  char* end = nullptr;
  value = std::strtoull(num.c_str(), &end, 10);
  USTREAM_REQUIRE(end != nullptr && *end == '\0' && !num.empty(),
                  std::string(name) + " expects a non-negative integer, got '" + num + "'");
  return true;
}

// Answers a top(k)/freq(label) expression against one (already merged)
// freq sketch — shared by `query` over files and the freq referee's admin
// /query endpoint.
std::string freq_query_answer(const FreqSketch& sketch, const std::string& text,
                              bool as_json) {
  std::string out;
  std::uint64_t arg = 0;
  if (parse_freq_call(text, "top", arg)) {
    const auto hitters = sketch.top(static_cast<std::size_t>(arg));
    if (as_json) {
      out += "{\"query\":\"" + json_escape(text) + "\",\"f1\":" +
             std::to_string(static_cast<unsigned long long>(sketch.items_processed())) +
             ",\"hitters\":[";
      for (std::size_t i = 0; i < hitters.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"label\":%llu,\"estimate\":%llu,\"lower\":%llu,\"upper\":%llu}",
                      i > 0 ? "," : "",
                      static_cast<unsigned long long>(hitters[i].label),
                      static_cast<unsigned long long>(hitters[i].estimate),
                      static_cast<unsigned long long>(hitters[i].lower),
                      static_cast<unsigned long long>(hitters[i].upper));
        out += buf;
      }
      out += "]}\n";
    } else {
      append(out, "%s: %zu heavy hitters over %llu items", text.c_str(), hitters.size(),
             static_cast<unsigned long long>(sketch.items_processed()));
      for (const auto& hh : hitters) {
        append(out, "  label %llu: ~%llu in [%llu, %llu]",
               static_cast<unsigned long long>(hh.label),
               static_cast<unsigned long long>(hh.estimate),
               static_cast<unsigned long long>(hh.lower),
               static_cast<unsigned long long>(hh.upper));
      }
    }
    return out;
  }
  if (parse_freq_call(text, "freq", arg)) {
    const auto bound = sketch.bound(arg);
    const std::uint64_t estimate = sketch.estimate(arg);
    if (as_json) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "{\"query\":\"%s\",\"label\":%llu,\"estimate\":%llu,"
                    "\"lower\":%llu,\"upper\":%llu,\"tracked\":%s}\n",
                    json_escape(text).c_str(), static_cast<unsigned long long>(arg),
                    static_cast<unsigned long long>(estimate),
                    static_cast<unsigned long long>(bound.lower),
                    static_cast<unsigned long long>(bound.upper),
                    sketch.heavy().contains(arg) ? "true" : "false");
      out += buf;
    } else {
      append(out, "%s: ~%llu in [%llu, %llu]%s", text.c_str(),
             static_cast<unsigned long long>(estimate),
             static_cast<unsigned long long>(bound.lower),
             static_cast<unsigned long long>(bound.upper),
             sketch.heavy().contains(arg) ? "" : " (untracked: upper is the absent bound)");
    }
    return out;
  }
  throw InvalidArgument("freq queries are top(K) or freq(LABEL), got '" + text + "'");
}

// `sketch --kind freq|universal`: frequency summaries over the trace,
// written under their own PayloadKinds. Batched ingest end to end.
int cmd_sketch_freq(const Args& args, bool universal, std::string& out) {
  const std::string in = args.required_str("in");
  const std::string out_path = args.required_str("out");
  const std::uint64_t seed = args.u64("seed", 0x5eed0123456789abULL);
  const std::uint64_t group_raw = args.u64("group", 0);
  USTREAM_REQUIRE(group_raw <= 0xffff, "--group out of range (max 65535)");
  const auto group = static_cast<std::uint16_t>(group_raw);
  const std::size_t depth = args.u64("depth", 4);
  const std::size_t width_log2 = args.u64("width-log2", universal ? 10 : 12);
  const std::size_t heavy = args.u64("heavy", universal ? 32 : 64);
  const std::size_t levels = args.u64("levels", 8);
  args.reject_unknown();
  const auto items = read_trace(in);
  std::vector<std::uint64_t> labels;
  labels.reserve(items.size());
  for (const Item& item : items) labels.push_back(item.label);
  if (universal) {
    UniversalConfig config;
    config.levels = levels;
    config.depth = depth;
    config.width_log2 = width_log2;
    config.heavy_capacity = heavy;
    config.seed = seed;
    UniversalSketch sketch(config);
    sketch.add_batch(labels);
    write_framed_payload(out_path, PayloadKind::kUniversalSketch, sketch.serialize(), group);
    append(out,
           "sketched %zu items from %s -> %s (%zu bytes, %zu levels, f1 %.0f, "
           "f2 %.4g, entropy %.3f bits)",
           items.size(), in.c_str(), out_path.c_str(), read_file(out_path).size(),
           sketch.levels(), sketch.f1(), sketch.f2(), sketch.entropy());
  } else {
    FreqConfig config;
    config.depth = depth;
    config.width_log2 = width_log2;
    config.heavy_capacity = heavy;
    config.seed = seed;
    FreqSketch sketch(config);
    sketch.add_batch(labels);
    write_framed_payload(out_path, PayloadKind::kFreqSketch, sketch.serialize(), group);
    append(out,
           "sketched %zu items from %s -> %s (%zu bytes, %zux%zu counters, "
           "%zu tracked heavy labels, f2 %.4g)",
           items.size(), in.c_str(), out_path.c_str(), read_file(out_path).size(),
           sketch.count_sketch().depth(), sketch.count_sketch().width(),
           sketch.heavy().size(), sketch.f2());
  }
  return 0;
}

int cmd_sketch(const Args& args, std::string& out) {
  const std::string sketch_kind = args.str("kind", "f0");
  if (sketch_kind == "freq" || sketch_kind == "universal") {
    return cmd_sketch_freq(args, sketch_kind == "universal", out);
  }
  USTREAM_REQUIRE(sketch_kind == "f0", "--kind must be f0, freq, or universal");
  const std::string in = args.required_str("in");
  const std::string out_path = args.required_str("out");
  const double eps = args.f64("eps", 0.1);
  const double delta = args.f64("delta", 0.05);
  const std::uint64_t seed = args.u64("seed", 0x5eed0123456789abULL);
  const std::uint64_t group_raw = args.u64("group", 0);
  USTREAM_REQUIRE(group_raw <= 0xffff, "--group out of range (max 65535)");
  const auto group = static_cast<std::uint16_t>(group_raw);
  args.reject_unknown();
  F0Estimator estimator(EstimatorParams::for_guarantee(eps, delta, seed));
  const auto items = read_trace(in);
  for (const Item& item : items) estimator.add(item.label);
  write_sketch_file(out_path, estimator, group);
  append(out, "sketched %zu items from %s -> %s (%zu bytes, estimate %.0f)", items.size(),
         in.c_str(), out_path.c_str(), read_file(out_path).size(), estimator.estimate());
  return 0;
}

// Pre-scan framed inputs for a payload-kind mismatch so a mixed batch
// fails with ONE line naming both kinds ("a.sk is f0-estimator, b.sk is
// bottom-k") instead of the generic per-file decode error a user has to
// cross-reference by hand. Unframed/corrupt files are skipped here — they
// produce their own precise error when actually read.
void require_uniform_kinds(const std::vector<std::string>& paths) {
  std::optional<PayloadKind> first_kind;
  std::string first_path;
  for (const auto& path : paths) {
    PayloadKind kind;
    try {
      const auto bytes = read_file(path);
      if (!looks_like_frame(bytes)) continue;
      kind = frame_decode(bytes).header.kind;
    } catch (const std::exception&) {
      continue;
    }
    if (!first_kind.has_value()) {
      first_kind = kind;
      first_path = path;
    } else if (kind != *first_kind) {
      throw InvalidArgument("inputs mix payload kinds: " + first_path + " is " +
                            payload_kind_name(*first_kind) + ", " + path + " is " +
                            payload_kind_name(kind));
    }
  }
}

int cmd_merge(const Args& args, std::string& out) {
  const std::string out_path = args.required_str("out");
  args.reject_unknown();
  const auto& inputs = args.positional();
  USTREAM_REQUIRE(!inputs.empty(), "merge needs at least one input sketch");
  require_uniform_kinds(inputs);
  const PayloadKind kind = framed_kind_of(inputs[0]);
  if (kind == PayloadKind::kFreqSketch) {
    FreqSketch merged = read_freq_file(inputs[0]);
    for (std::size_t i = 1; i < inputs.size(); ++i) merged.merge(read_freq_file(inputs[i]));
    write_framed_payload(out_path, PayloadKind::kFreqSketch, merged.serialize());
    append(out, "merged %zu freq sketches -> %s (%llu items, %zu tracked heavy labels)",
           inputs.size(), out_path.c_str(),
           static_cast<unsigned long long>(merged.items_processed()),
           merged.heavy().size());
    return 0;
  }
  if (kind == PayloadKind::kUniversalSketch) {
    UniversalSketch merged = read_universal_file(inputs[0]);
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      merged.merge(read_universal_file(inputs[i]));
    }
    write_framed_payload(out_path, PayloadKind::kUniversalSketch, merged.serialize());
    append(out, "merged %zu universal sketches -> %s (f1 %.0f, f2 %.4g, entropy %.3f bits)",
           inputs.size(), out_path.c_str(), merged.f1(), merged.f2(), merged.entropy());
    return 0;
  }
  F0Estimator merged = read_sketch_file(inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    merged.merge(read_sketch_file(inputs[i]));
  }
  write_sketch_file(out_path, merged);
  append(out, "merged %zu sketches -> %s (union estimate %.0f)", inputs.size(),
         out_path.c_str(), merged.estimate());
  return 0;
}

int cmd_estimate(const Args& args, std::string& out) {
  const bool json = json_requested(args);
  args.reject_unknown();
  USTREAM_REQUIRE(!args.positional().empty(), "estimate needs a sketch file");
  require_uniform_kinds(args.positional());
  for (const auto& path : args.positional()) {
    const PayloadKind kind = framed_kind_of(path);
    if (kind == PayloadKind::kFreqSketch) {
      const FreqSketch est = read_freq_file(path);
      if (json) {
        append(out,
               "{\"file\":\"%s\",\"f1\":%llu,\"f2\":%.17g,\"tracked\":%zu,"
               "\"absent_bound\":%llu}",
               json_escape(path).c_str(),
               static_cast<unsigned long long>(est.items_processed()), est.f2(),
               est.heavy().size(),
               static_cast<unsigned long long>(est.heavy().absent_bound()));
      } else {
        append(out, "%s: %llu items, f2 %.4g, %zu tracked heavy labels (absent bound %llu)",
               path.c_str(), static_cast<unsigned long long>(est.items_processed()),
               est.f2(), est.heavy().size(),
               static_cast<unsigned long long>(est.heavy().absent_bound()));
      }
      continue;
    }
    if (kind == PayloadKind::kUniversalSketch) {
      const UniversalSketch est = read_universal_file(path);
      if (json) {
        append(out,
               "{\"file\":\"%s\",\"f1\":%.17g,\"f2\":%.17g,\"entropy\":%.17g,"
               "\"levels\":%zu}",
               json_escape(path).c_str(), est.f1(), est.f2(), est.entropy(), est.levels());
      } else {
        append(out, "%s: f1 %.0f, f2 %.4g, entropy %.3f bits (%zu levels)", path.c_str(),
               est.f1(), est.f2(), est.entropy(), est.levels());
      }
      continue;
    }
    const F0Estimator est = read_sketch_file(path);
    if (json) {
      // One machine-readable line per file; scripts parse this instead of
      // scraping the prose output.
      append(out, "{\"file\":\"%s\",\"estimate\":%.17g,\"copies\":%zu,\"capacity\":%zu}",
             json_escape(path).c_str(), est.estimate(), est.params().copies,
             est.params().capacity);
    } else {
      append(out, "%s: distinct ~= %.0f", path.c_str(), est.estimate());
    }
  }
  return 0;
}

int cmd_exact(const Args& args, std::string& out) {
  const std::string in = args.required_str("in");
  args.reject_unknown();
  ExactDistinctCounter exact;
  const auto items = read_trace(in);
  for (const Item& item : items) exact.add(item.label);
  append(out, "%s: %zu items, %llu distinct (exact)", in.c_str(), items.size(),
         static_cast<unsigned long long>(exact.count()));
  return 0;
}

// Per-structure byte footprint for --json info output: serialized size of
// the whole estimator, per-copy serialized sampler sizes, and the live
// in-memory footprint — capacity planning without a debugger.
std::string footprint_json(const F0Estimator& est) {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"state_bytes\":%zu,\"memory_bytes\":%zu,\"copy_bytes\":[",
                est.serialize().size(), est.bytes_used());
  out += buf;
  for (std::size_t i = 0; i < est.num_copies(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof(buf), "%zu", est.copy(i).serialize().size());
    out += buf;
  }
  out += ']';
  return out;
}

int cmd_info(const Args& args, std::string& out) {
  const bool json = json_requested(args);
  args.reject_unknown();
  USTREAM_REQUIRE(!args.positional().empty(), "info needs at least one file");
  for (const auto& path : args.positional()) {
    const auto bytes = read_file(path);
    if (looks_like_frame(bytes)) {
      const Frame frame = frame_decode(bytes);  // validates CRC before parsing
      if (frame.header.kind == PayloadKind::kFreqSketch) {
        const FreqSketch est =
            FreqSketch::deserialize(std::span<const std::uint8_t>(frame.payload));
        if (json) {
          append(out,
                 "{\"file\":\"%s\",\"format\":\"framed-sketch\",\"kind\":\"%s\","
                 "\"site\":%u,\"epoch\":%u,\"bytes\":%zu,\"payload_bytes\":%zu,"
                 "\"depth\":%zu,\"width\":%zu,\"heavy_capacity\":%zu,"
                 "\"tracked\":%zu,\"seed\":%llu}",
                 json_escape(path).c_str(), payload_kind_name(frame.header.kind),
                 frame.header.site, frame.header.epoch, bytes.size(), frame.payload.size(),
                 est.count_sketch().depth(), est.count_sketch().width(),
                 est.heavy().capacity(), est.heavy().size(),
                 static_cast<unsigned long long>(est.config().seed));
        } else {
          append(out,
                 "%s: framed sketch (%s, site %u, epoch %u, crc ok), %zu bytes "
                 "(%zu payload), %zux%zu counters + %zu/%zu heavy slots, seed %llu",
                 path.c_str(), payload_kind_name(frame.header.kind), frame.header.site,
                 frame.header.epoch, bytes.size(), frame.payload.size(),
                 est.count_sketch().depth(), est.count_sketch().width(),
                 est.heavy().size(), est.heavy().capacity(),
                 static_cast<unsigned long long>(est.config().seed));
        }
        continue;
      }
      if (frame.header.kind == PayloadKind::kUniversalSketch) {
        const UniversalSketch est =
            UniversalSketch::deserialize(std::span<const std::uint8_t>(frame.payload));
        if (json) {
          append(out,
                 "{\"file\":\"%s\",\"format\":\"framed-sketch\",\"kind\":\"%s\","
                 "\"site\":%u,\"epoch\":%u,\"bytes\":%zu,\"payload_bytes\":%zu,"
                 "\"levels\":%zu,\"depth\":%zu,\"width\":%zu,\"heavy_capacity\":%zu,"
                 "\"seed\":%llu}",
                 json_escape(path).c_str(), payload_kind_name(frame.header.kind),
                 frame.header.site, frame.header.epoch, bytes.size(), frame.payload.size(),
                 est.levels(), est.config().depth,
                 std::size_t{1} << est.config().width_log2, est.config().heavy_capacity,
                 static_cast<unsigned long long>(est.config().seed));
        } else {
          append(out,
                 "%s: framed sketch (%s, site %u, epoch %u, crc ok), %zu bytes "
                 "(%zu payload), %zu levels of %zux%zu counters + %zu heavy slots, "
                 "seed %llu",
                 path.c_str(), payload_kind_name(frame.header.kind), frame.header.site,
                 frame.header.epoch, bytes.size(), frame.payload.size(), est.levels(),
                 est.config().depth, std::size_t{1} << est.config().width_log2,
                 est.config().heavy_capacity,
                 static_cast<unsigned long long>(est.config().seed));
        }
        continue;
      }
      const F0Estimator est = read_sketch_file(path);
      if (json) {
        append(out,
               "{\"file\":\"%s\",\"format\":\"framed-sketch\",\"kind\":\"%s\","
               "\"site\":%u,\"epoch\":%u,\"bytes\":%zu,\"payload_bytes\":%zu,"
               "\"copies\":%zu,\"capacity\":%zu,\"seed\":%llu,%s}",
               json_escape(path).c_str(), payload_kind_name(frame.header.kind),
               frame.header.site, frame.header.epoch, bytes.size(), frame.payload.size(),
               est.params().copies, est.params().capacity,
               static_cast<unsigned long long>(est.params().seed),
               footprint_json(est).c_str());
      } else {
        append(out,
               "%s: framed sketch (%s, site %u, epoch %u, crc ok), %zu bytes "
               "(%zu payload), %zu copies x capacity %zu, seed %llu",
               path.c_str(), payload_kind_name(frame.header.kind), frame.header.site,
               frame.header.epoch, bytes.size(), frame.payload.size(), est.params().copies,
               est.params().capacity, static_cast<unsigned long long>(est.params().seed));
      }
      continue;
    }
    if (bytes.size() >= 4) {
      ByteReader r(bytes);
      const std::uint32_t magic = r.u32();
      if (magic == kLegacySketchMagic) {
        const F0Estimator est = read_sketch_file(path);
        if (json) {
          append(out,
                 "{\"file\":\"%s\",\"format\":\"legacy-sketch\",\"bytes\":%zu,"
                 "\"copies\":%zu,\"capacity\":%zu,\"seed\":%llu,%s}",
                 json_escape(path).c_str(), bytes.size(), est.params().copies,
                 est.params().capacity, static_cast<unsigned long long>(est.params().seed),
                 footprint_json(est).c_str());
        } else {
          append(out, "%s: legacy (v0) sketch, %zu bytes, %zu copies x capacity %zu, seed %llu",
                 path.c_str(), bytes.size(), est.params().copies, est.params().capacity,
                 static_cast<unsigned long long>(est.params().seed));
        }
        continue;
      }
      if (magic == 0x52545355) {  // "USTR"
        const auto items = read_trace(path);
        if (json) {
          append(out, "{\"file\":\"%s\",\"format\":\"trace\",\"bytes\":%zu,\"items\":%zu}",
                 json_escape(path).c_str(), bytes.size(), items.size());
        } else {
          append(out, "%s: trace, %zu bytes, %zu items", path.c_str(), bytes.size(),
                 items.size());
        }
        continue;
      }
    }
    if (json) {
      append(out, "{\"file\":\"%s\",\"format\":\"unknown\",\"bytes\":%zu}",
             json_escape(path).c_str(), bytes.size());
    } else {
      append(out, "%s: unrecognized format (%zu bytes)", path.c_str(), bytes.size());
    }
  }
  return 0;
}

// Runs the fault-tolerant distributed collection end to end on a synthetic
// workload: t sites sketch their partitions, ship framed sketches through a
// FaultyChannel with the requested drop/duplicate/reorder/corrupt mix, and
// the referee retries/dedups/quarantines — then prints the union estimate
// next to ground truth and the full CollectReport.
int cmd_collect(const Args& args, std::string& out) {
  DistributedConfig config;
  config.sites = args.u64("sites", 8);
  config.union_distinct = args.u64("distinct", 100'000);
  config.overlap = args.f64("overlap", 0.3);
  config.seed = args.u64("seed", 1);
  FaultSpec faults;
  faults.drop = args.f64("drop", 0.0);
  faults.duplicate = args.f64("duplicate", 0.0);
  faults.reorder = args.f64("reorder", 0.0);
  const double corrupt = args.f64("corrupt", 0.0);
  faults.truncate = corrupt / 2;
  faults.bit_flip = corrupt / 2;
  RetryPolicy policy;
  policy.max_attempts_per_site = static_cast<std::uint32_t>(args.u64("attempts", 6));
  const double eps = args.f64("eps", 0.1);
  const double delta = args.f64("delta", 0.05);
  args.reject_unknown();

  const auto workload = make_distributed_workload(config);
  const auto params = EstimatorParams::for_guarantee(eps, delta, config.seed);
  auto channel =
      std::make_unique<FaultyChannel>(config.sites, faults, SplitMix64::mix(config.seed));
  FaultyChannel* channel_view = channel.get();
  DistributedRun<F0Estimator> run(config.sites, [&params] { return F0Estimator(params); },
                                  std::move(channel));
  for (std::size_t s = 0; s < config.sites; ++s) {
    for (const Item& item : workload.site_streams[s]) run.site(s).add(item.label);
  }
  const double estimate = run.collect(policy).estimate();
  const CollectReport& report = run.collect_report();
  const FaultStats fstats = channel_view->fault_stats();
  const ChannelStats cstats = run.channel_stats();

  append(out, "union estimate %.0f (truth %zu, rel.err %.4f)%s", estimate,
         workload.union_distinct,
         std::abs(estimate - static_cast<double>(workload.union_distinct)) /
             static_cast<double>(workload.union_distinct),
         report.degraded() ? " [DEGRADED: lower bound]" : "");
  out += report.summary();
  out += '\n';
  append(out, "transport: %llu sends, %llu bytes (mean %.0f/frame)",
         static_cast<unsigned long long>(cstats.messages),
         static_cast<unsigned long long>(cstats.total_bytes), cstats.mean_message_bytes());
  append(out,
         "faults injected: %llu dropped, %llu duplicated, %llu reordered, "
         "%llu truncated, %llu bit-flipped",
         static_cast<unsigned long long>(fstats.dropped),
         static_cast<unsigned long long>(fstats.duplicated),
         static_cast<unsigned long long>(fstats.reordered),
         static_cast<unsigned long long>(fstats.truncated),
         static_cast<unsigned long long>(fstats.bit_flipped));
  return report.complete() ? 0 : 3;
}

// The referee as a real server: bind a TCP port, collect one framed sketch
// per site (retry/dedup/quarantine via CollectState, exactly as in-process
// collection), merge on the parallel MergeEngine and report the union
// estimate. This is the first half of the multi-process deployment of the
// paper's protocol; `ustream push` is the other half.
// `serve --kind freq`: the same TCP referee, collecting one kFreqSketch
// frame per site. The union summary is the componentwise merge (counter
// addition + interval-sum space-saver union); because that merge is
// associative, 1-shard and 4-shard collections of the same site set are
// byte-identical. The admin /query endpoint answers top(K)/freq(LABEL)
// against the live store, and the report carries a heavy-hitter table.
int cmd_serve_freq(const Args& args, std::string& out) {
  net::RefereeServerConfig config;
  config.bind_host = args.str("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.u64("port", 0));
  config.sites = args.u64("sites", 1);
  config.shards = args.u64("shards", 1);
  config.timeout = std::chrono::milliseconds(args.u64("timeout-ms", 0));
  config.expected_kind = PayloadKind::kFreqSketch;
  USTREAM_REQUIRE(!args.has("continuous") && !args.has("relay"),
                  "serve --kind freq does not support --continuous or --relay");
  const std::uint64_t top_k = args.u64("top", 10);
  const std::string out_path = args.str("out", "");
  const std::string port_file = args.str("port-file", "");
  if (args.has("admin-port")) {
    config.admin_port = static_cast<std::uint16_t>(args.u64("admin-port", 0));
  }
  const std::string admin_port_file = args.str("admin-port-file", "");
  if (!admin_port_file.empty() && !config.admin_port.has_value()) {
    config.admin_port = 0;  // asking for the file implies the endpoint
  }
  const std::string wal_dir = args.str("wal-dir", "");
  const std::string fsync_name = args.str("fsync", "interval");
  const std::uint64_t fsync_interval_ms = args.u64("fsync-interval-ms", 50);
  const std::uint64_t snapshot_every = args.u64("snapshot-every", 0);
  const std::uint64_t segment_mb = args.u64("segment-mb", 64);
  const bool recover = args.has("recover");
  if (recover) args.str("recover", "");
  USTREAM_REQUIRE(!recover || !wal_dir.empty(), "--recover needs --wal-dir DIR");
  if (!wal_dir.empty()) {
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = durability::parse_fsync_policy(fsync_name);
    wal.fsync_interval = std::chrono::milliseconds(fsync_interval_ms);
    wal.snapshot_every = snapshot_every;
    wal.segment_bytes = segment_mb << 20;
    wal.recover = recover;
    config.wal = wal;
  }
  const bool json = json_requested(args);
  const bool stats = stats_requested(args);
  args.reject_unknown();

  struct FreqStore {
    std::mutex mu;
    std::vector<std::optional<FreqSketch>> sketches;
  } store;
  store.sketches.resize(config.sites);
  config.query_handler = [&store](const std::string& raw, bool as_json) {
    const std::string text = query::percent_decode(raw);
    std::lock_guard<std::mutex> lock(store.mu);
    std::optional<FreqSketch> merged;
    for (const auto& s : store.sketches) {
      if (!s.has_value()) continue;
      if (!merged.has_value()) {
        merged = *s;
      } else {
        merged->merge(*s);
      }
    }
    USTREAM_REQUIRE(merged.has_value(), "no freq sketches collected yet");
    return freq_query_answer(*merged, text, as_json);
  };

  net::RefereeServer server(std::move(config));
  if (!port_file.empty()) {
    const std::string port_text = std::to_string(server.port()) + "\n";
    write_file(port_file, std::vector<std::uint8_t>(port_text.begin(), port_text.end()));
  }
  if (!admin_port_file.empty()) {
    const std::string port_text = std::to_string(*server.admin_port()) + "\n";
    write_file(admin_port_file,
               std::vector<std::uint8_t>(port_text.begin(), port_text.end()));
  }
  net::RefereeServer::Result res = server.run(
      [&store](std::size_t site, std::uint32_t, std::uint16_t, PayloadKind /*kind*/,
               std::vector<std::uint8_t>&& payload) {
        try {
          FreqSketch est = FreqSketch::deserialize(std::span<const std::uint8_t>(payload));
          std::lock_guard<std::mutex> lock(store.mu);
          for (const auto& m : store.sketches) {
            if (m.has_value() && !m->can_merge_with(est)) return false;
          }
          store.sketches[site] = std::move(est);
          return true;
        } catch (const SerializationError&) {
          return false;
        }
      });
  std::optional<FreqSketch> merged;
  {
    std::lock_guard<std::mutex> lock(store.mu);
    merged = MergeEngine::shared().reduce(std::move(store.sketches));
  }
  const CollectReport& report = res.report;
  std::vector<FreqSketch::HeavyHitter> hitters;
  if (merged.has_value()) hitters = merged->top(static_cast<std::size_t>(top_k));
  if (!out_path.empty() && merged.has_value()) {
    write_framed_payload(out_path, PayloadKind::kFreqSketch, merged->serialize());
  }
  if (json) {
    std::string hitters_json = "[";
    for (std::size_t i = 0; i < hitters.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"label\":%llu,\"estimate\":%llu,\"lower\":%llu,\"upper\":%llu}",
                    i > 0 ? "," : "", static_cast<unsigned long long>(hitters[i].label),
                    static_cast<unsigned long long>(hitters[i].estimate),
                    static_cast<unsigned long long>(hitters[i].lower),
                    static_cast<unsigned long long>(hitters[i].upper));
      hitters_json += buf;
    }
    hitters_json += ']';
    std::string wal_json;
    if (res.durability.enabled) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"wal\":{\"records\":%llu,\"bytes\":%llu,\"fsyncs\":%llu,"
                    "\"snapshots\":%llu,\"recovered_sites\":%zu,"
                    "\"frames_replayed\":%llu}",
                    static_cast<unsigned long long>(res.durability.records_logged),
                    static_cast<unsigned long long>(res.durability.bytes_logged),
                    static_cast<unsigned long long>(res.durability.fsyncs),
                    static_cast<unsigned long long>(res.durability.snapshots),
                    res.durability.sites_recovered,
                    static_cast<unsigned long long>(res.durability.frames_replayed));
      wal_json = buf;
    }
    append(out,
           "{\"port\":%u,\"admin_port\":%u,\"kind\":\"freq-sketch\","
           "\"sites_total\":%zu,\"sites_reported\":%zu,\"degraded\":%s,"
           "\"timed_out\":%s,\"f1\":%llu,\"f2\":%.17g,\"tracked\":%zu,"
           "\"absent_bound\":%llu,\"heavy_hitters\":%s,"
           "\"wire_frames\":%llu,\"wire_bytes\":%llu%s}",
           server.port(), server.admin_port().value_or(0), report.sites_total,
           report.sites_reported, report.degraded() ? "true" : "false",
           res.timed_out ? "true" : "false",
           static_cast<unsigned long long>(merged ? merged->items_processed() : 0),
           merged ? merged->f2() : 0.0, merged ? merged->heavy().size() : 0,
           static_cast<unsigned long long>(merged ? merged->heavy().absent_bound() : 0),
           hitters_json.c_str(), static_cast<unsigned long long>(res.wire.messages),
           static_cast<unsigned long long>(res.wire.total_bytes), wal_json.c_str());
  } else {
    append(out, "listening on %s:%u for %zu freq sites (%zu shard%s)",
           args.str("bind", "127.0.0.1").c_str(), server.port(), report.sites_total,
           server.shards(), server.shards() == 1 ? "" : "s");
    out += report.summary();
    out += '\n';
    if (merged.has_value()) {
      append(out, "union: %llu items, f2 %.4g, %zu tracked heavy labels%s",
             static_cast<unsigned long long>(merged->items_processed()), merged->f2(),
             merged->heavy().size(), report.degraded() ? " [DEGRADED: lower bound]" : "");
      for (const auto& hh : hitters) {
        append(out, "  label %llu: ~%llu in [%llu, %llu]",
               static_cast<unsigned long long>(hh.label),
               static_cast<unsigned long long>(hh.estimate),
               static_cast<unsigned long long>(hh.lower),
               static_cast<unsigned long long>(hh.upper));
      }
    } else {
      append(out, "union: no freq sketches collected");
    }
    if (res.durability.enabled) {
      if (recover) append(out, "%s", res.durability.recovery_summary.c_str());
      append(out, "wal: %llu records, %llu bytes, %llu fsyncs, %llu snapshots "
                  "(fsync %s) in %s",
             static_cast<unsigned long long>(res.durability.records_logged),
             static_cast<unsigned long long>(res.durability.bytes_logged),
             static_cast<unsigned long long>(res.durability.fsyncs),
             static_cast<unsigned long long>(res.durability.snapshots),
             fsync_name.c_str(), wal_dir.c_str());
    }
    if (!out_path.empty() && merged.has_value()) {
      append(out, "wrote union freq sketch to %s", out_path.c_str());
    }
  }
  if (stats) out += obs::render_json(obs::default_registry().snapshot()) + "\n";
  return report.complete() ? 0 : 3;
}

int cmd_serve(const Args& args, std::string& out) {
  const std::string serve_kind = args.str("kind", "f0");
  if (serve_kind == "freq") return cmd_serve_freq(args, out);
  USTREAM_REQUIRE(serve_kind == "f0", "serve --kind must be f0 or freq");
  net::RefereeServerConfig config;
  config.bind_host = args.str("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.u64("port", 0));
  config.sites = args.u64("sites", 1);
  config.shards = args.u64("shards", 1);
  config.timeout = std::chrono::milliseconds(args.u64("timeout-ms", 0));
  // Continuous mode (DESIGN.md §12): latest-wins collection that accepts
  // kF0Delta chain frames, keeps a live per-site mirror set, and exports
  // the running union estimate as the ustream_referee_live_estimate gauge
  // (watch it move with `ustream stats --watch`). The server runs to the
  // deadline — completion never ends a continuous collection.
  const bool continuous = args.has("continuous");
  if (continuous) {
    args.str("continuous", "");
    USTREAM_REQUIRE(config.timeout.count() > 0,
                    "--continuous needs --timeout-ms N (the run ends at the deadline)");
    config.dedup = DedupMode::kLatestWins;
    config.delta_kind = PayloadKind::kF0Delta;
    config.continuous = true;
  }
  // Relay mode (DESIGN.md §10.3): this referee collects a SUBTREE of sites,
  // merges locally, and pushes the one merged sketch frame upstream —
  // composing referees into a fan-in tree. The upstream referee sees this
  // whole subtree as a single site (--relay-site) with --relay-epoch.
  const bool relay = args.has("relay");
  if (relay) args.str("relay", "");
  const std::string upstream = args.str("upstream", "");
  const std::size_t relay_site = args.u64("relay-site", 0);
  const auto relay_epoch = static_cast<std::uint32_t>(args.u64("relay-epoch", 0));
  USTREAM_REQUIRE(!relay || !upstream.empty(), "--relay needs --upstream HOST:PORT");
  // eps/delta/seed shape the EMPTY referee for a fully degraded run (and
  // nothing else — accepted sketches carry their own parameters).
  const double eps = args.f64("eps", 0.1);
  const double delta = args.f64("delta", 0.05);
  const std::uint64_t seed = args.u64("seed", 0x5eed0123456789abULL);
  const std::string out_path = args.str("out", "");
  const std::string port_file = args.str("port-file", "");
  if (args.has("admin-port")) {
    config.admin_port = static_cast<std::uint16_t>(args.u64("admin-port", 0));
  }
  const std::string admin_port_file = args.str("admin-port-file", "");
  if (!admin_port_file.empty() && !config.admin_port.has_value()) {
    config.admin_port = 0;  // asking for the file implies the endpoint
  }
  // Durability (DESIGN.md §11): --wal-dir turns on the write-ahead frame
  // log (acked implies logged); --recover replays that dir first so a
  // killed referee resumes instead of starting over.
  const std::string wal_dir = args.str("wal-dir", "");
  const std::string fsync_name = args.str("fsync", "interval");
  const std::uint64_t fsync_interval_ms = args.u64("fsync-interval-ms", 50);
  const std::uint64_t snapshot_every = args.u64("snapshot-every", 0);
  const std::uint64_t segment_mb = args.u64("segment-mb", 64);
  const bool recover = args.has("recover");
  if (recover) args.str("recover", "");
  USTREAM_REQUIRE(!recover || !wal_dir.empty(), "--recover needs --wal-dir DIR");
  if (!wal_dir.empty()) {
    net::RefereeServerConfig::Durability wal;
    wal.dir = wal_dir;
    wal.fsync = durability::parse_fsync_policy(fsync_name);
    wal.fsync_interval = std::chrono::milliseconds(fsync_interval_ms);
    wal.snapshot_every = snapshot_every;
    wal.segment_bytes = segment_mb << 20;
    wal.recover = recover;
    config.wal = wal;
  }
  const bool json = json_requested(args);
  const bool stats = stats_requested(args);
  args.reject_unknown();

  // Live per-site sketch store: the payload sink fills it under the shared
  // arbiter mutex while the admin /query handler reads it from shard 0's
  // event loop thread, so every access takes the store mutex. Group tags
  // ride along so `group:G` operands and the per-group report can bucket
  // sites by tenant.
  struct QueryStore {
    std::mutex mu;
    std::vector<std::optional<F0Estimator>> sketches;
    std::vector<std::uint16_t> groups;
  } store;
  store.sketches.resize(config.sites);
  store.groups.resize(config.sites, 0);
  config.query_handler = [&store](const std::string& raw, bool as_json) {
    const std::string text = query::percent_decode(raw);
    std::lock_guard<std::mutex> lock(store.mu);
    std::map<std::uint32_t, F0Estimator> group_cache;  // node-stable addresses
    query::ResolveSketch resolve = [&](const query::Expr& leaf) -> const F0Estimator* {
      if (leaf.operand == query::OperandKind::kSite) {
        if (leaf.id >= store.sketches.size() || !store.sketches[leaf.id].has_value()) {
          return nullptr;
        }
        return &*store.sketches[leaf.id];
      }
      if (leaf.operand != query::OperandKind::kGroup) return nullptr;
      auto it = group_cache.find(leaf.id);
      if (it == group_cache.end()) {
        std::optional<F0Estimator> merged;
        for (std::size_t s = 0; s < store.sketches.size(); ++s) {
          if (!store.sketches[s].has_value() ||
              store.groups[s] != static_cast<std::uint16_t>(leaf.id)) {
            continue;
          }
          if (!merged.has_value()) {
            merged = *store.sketches[s];
          } else {
            merged->merge(*store.sketches[s]);
          }
        }
        if (!merged.has_value()) return nullptr;
        it = group_cache.emplace(leaf.id, std::move(*merged)).first;
      }
      return &it->second;
    };
    const query::QueryResult r = query::run_query(text, resolve);
    return as_json ? query::format_query_json(text, r) : query::format_query_text(text, r);
  };

  net::RefereeServer server(std::move(config));
  if (!port_file.empty()) {
    // Written after bind, before the event loop: a script that waits for
    // this file can start pushing immediately.
    const std::string port_text = std::to_string(server.port()) + "\n";
    write_file(port_file, std::vector<std::uint8_t>(port_text.begin(), port_text.end()));
  }
  if (!admin_port_file.empty()) {
    const std::string port_text = std::to_string(*server.admin_port()) + "\n";
    write_file(admin_port_file,
               std::vector<std::uint8_t>(port_text.begin(), port_text.end()));
  }
  net::NetCollectResult<F0Estimator> result;
  if (continuous) {
    obs::Gauge& live = obs::default_registry().gauge("ustream_referee_live_estimate");
    net::RefereeServer::Result res = server.run(
        [&store, &live](std::size_t site, std::uint32_t, std::uint16_t group,
                        PayloadKind kind, std::vector<std::uint8_t>&& payload) {
          std::lock_guard<std::mutex> lock(store.mu);
          auto& mirrors = store.sketches;
          try {
            if (kind == PayloadKind::kF0Delta) {
              // Transactional apply: patch a copy, swap on success, so a
              // failed delta leaves the mirror intact (the server demotes
              // the acceptance to a resync).
              if (!mirrors[site].has_value()) return false;
              F0Estimator next = *mirrors[site];
              next.apply_delta(std::span<const std::uint8_t>(payload));
              mirrors[site] = std::move(next);
            } else {
              F0Estimator full =
                  F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
              // A site configured with different (eps, seed) parameters
              // ships a sketch that can never join this union. Reject its
              // frame (quarantine + resync verdict) instead of letting the
              // merge below throw and take the whole referee down while
              // the well-configured sites are still streaming.
              for (const auto& m : mirrors) {
                if (m.has_value() && !m->can_merge_with(full)) return false;
              }
              mirrors[site] = std::move(full);
            }
          } catch (const SerializationError&) {
            return false;
          }
          store.groups[site] = group;
          std::optional<F0Estimator> merged;
          for (const auto& m : mirrors) {
            if (!m.has_value()) continue;
            if (!merged.has_value()) {
              merged = *m;
            } else {
              merged->merge(*m);
            }
          }
          live.set(static_cast<std::int64_t>(merged ? merged->estimate() : 0.0));
          return true;
        });
    result.report = std::move(res.report);
    result.wire = std::move(res.wire);
    result.timed_out = res.timed_out;
    result.shards = std::move(res.shards);
    result.durability = std::move(res.durability);
  } else {
    net::RefereeServer::Result res = server.run(
        [&store](std::size_t site, std::uint32_t, std::uint16_t group,
                 PayloadKind /*kind*/, std::vector<std::uint8_t>&& payload) {
          try {
            F0Estimator est =
                F0Estimator::deserialize(std::span<const std::uint8_t>(payload));
            std::lock_guard<std::mutex> lock(store.mu);
            for (const auto& m : store.sketches) {
              if (m.has_value() && !m->can_merge_with(est)) return false;
            }
            store.sketches[site] = std::move(est);
            store.groups[site] = group;
            return true;
          } catch (const SerializationError&) {
            return false;
          }
        });
    result.report = std::move(res.report);
    result.wire = std::move(res.wire);
    result.timed_out = res.timed_out;
    result.shards = std::move(res.shards);
    result.durability = std::move(res.durability);
  }
  // Per-group union sketches for the report (the site ledger already knows
  // each site's tag); only surfaced when some accepted frame was grouped.
  std::vector<GroupSketch<F0Estimator>> group_sketches;
  {
    std::lock_guard<std::mutex> lock(store.mu);
    bool grouped = false;
    for (const auto& st : result.report.per_site) {
      grouped = grouped || (st.reported && st.group != 0);
    }
    if (grouped) {
      auto copies = store.sketches;
      group_sketches = reduce_groups<F0Estimator>(result.report, std::move(copies));
    }
    result.union_sketch = MergeEngine::shared().reduce(std::move(store.sketches));
  }
  F0Estimator referee = result.union_sketch
                            ? std::move(*result.union_sketch)
                            : F0Estimator(EstimatorParams::for_guarantee(eps, delta, seed));
  if (!out_path.empty()) write_sketch_file(out_path, referee);

  // Relay step: one framed push of the merged subtree sketch to the
  // upstream referee, with the same ack/retry client the sites use. A
  // degraded subtree still relays — its union is a valid lower bound and
  // the upstream referee's ledger shows this subtree as reported.
  const char* relay_ack = "";
  std::size_t relay_bytes = 0;
  if (relay) {
    const auto [up_host, up_port] = parse_host_port("--upstream", upstream);
    net::TcpTransportConfig up_config;
    up_config.host = up_host;
    up_config.port = up_port;
    const auto frame = frame_encode(
        {PayloadKind::kF0Estimator, static_cast<std::uint32_t>(relay_site), relay_epoch},
        referee.serialize());
    net::TcpTransport transport(relay_site + 1, up_config);
    relay_ack = net::push_ack_name(transport.send_with_ack(relay_site, frame));
    relay_bytes = frame.size();
  }

  const CollectReport& report = result.report;
  if (json) {
    std::string shards_json = "[";
    for (std::size_t k = 0; k < result.shards.size(); ++k) {
      const auto& shard = result.shards[k];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"sites_reported\":%zu,\"wire_frames\":%llu,\"wire_bytes\":%llu}",
                    k > 0 ? "," : "", shard.report.sites_reported,
                    static_cast<unsigned long long>(shard.wire.messages),
                    static_cast<unsigned long long>(shard.wire.total_bytes));
      shards_json += buf;
    }
    shards_json += ']';
    std::string groups_json;
    if (!group_sketches.empty()) {
      groups_json = ",\"groups\":[";
      for (std::size_t k = 0; k < group_sketches.size(); ++k) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s{\"group\":%u,\"sites\":%zu,\"estimate\":%.17g}",
                      k > 0 ? "," : "", group_sketches[k].group,
                      group_sketches[k].sites.size(), group_sketches[k].sketch.estimate());
        groups_json += buf;
      }
      groups_json += ']';
    }
    std::string wal_json;
    if (result.durability.enabled) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"wal\":{\"records\":%llu,\"bytes\":%llu,\"fsyncs\":%llu,"
                    "\"snapshots\":%llu,\"recovered_sites\":%zu,"
                    "\"frames_replayed\":%llu}",
                    static_cast<unsigned long long>(result.durability.records_logged),
                    static_cast<unsigned long long>(result.durability.bytes_logged),
                    static_cast<unsigned long long>(result.durability.fsyncs),
                    static_cast<unsigned long long>(result.durability.snapshots),
                    result.durability.sites_recovered,
                    static_cast<unsigned long long>(result.durability.frames_replayed));
      wal_json = buf;
    }
    append(out,
           "{\"port\":%u,\"admin_port\":%u,\"sites_total\":%zu,\"sites_reported\":%zu,"
           "\"degraded\":%s,\"timed_out\":%s,\"estimate\":%.17g,"
           "\"attempts\":%llu,\"retries\":%llu,\"frames_quarantined\":%llu,"
           "\"duplicates_dropped\":%llu,\"stale_dropped\":%llu,"
           "\"deltas_applied\":%llu,\"resyncs\":%llu,"
           "\"wire_frames\":%llu,\"wire_bytes\":%llu,"
           "\"shards\":%s%s%s%s%s%s}",
           server.port(), server.admin_port().value_or(0), report.sites_total,
           report.sites_reported,
           report.degraded() ? "true" : "false", result.timed_out ? "true" : "false",
           referee.estimate(), static_cast<unsigned long long>(report.total_attempts()),
           static_cast<unsigned long long>(report.retries),
           static_cast<unsigned long long>(report.frames_quarantined),
           static_cast<unsigned long long>(report.duplicates_dropped),
           static_cast<unsigned long long>(report.stale_dropped),
           static_cast<unsigned long long>(report.deltas_applied),
           static_cast<unsigned long long>(report.resyncs),
           static_cast<unsigned long long>(result.wire.messages),
           static_cast<unsigned long long>(result.wire.total_bytes),
           shards_json.c_str(), groups_json.c_str(), wal_json.c_str(),
           relay ? ",\"relay_ack\":\"" : "", relay_ack, relay ? "\"" : "");
  } else {
    append(out, "listening on %s:%u for %zu sites (%zu shard%s)",
           args.str("bind", "127.0.0.1").c_str(), server.port(), report.sites_total,
           server.shards(), server.shards() == 1 ? "" : "s");
    out += report.summary();
    out += '\n';
    append(out, "union estimate %.0f%s", referee.estimate(),
           report.degraded() ? " [DEGRADED: lower bound]" : "");
    append(out, "wire: %llu frames, %llu bytes (mean %.0f/frame)",
           static_cast<unsigned long long>(result.wire.messages),
           static_cast<unsigned long long>(result.wire.total_bytes),
           result.wire.mean_message_bytes());
    if (server.shards() > 1) {
      for (std::size_t k = 0; k < result.shards.size(); ++k) {
        const auto& shard = result.shards[k];
        append(out, "shard %zu: %zu sites, %llu frames, %llu bytes", k,
               shard.report.sites_reported,
               static_cast<unsigned long long>(shard.wire.messages),
               static_cast<unsigned long long>(shard.wire.total_bytes));
      }
    }
    for (const auto& g : group_sketches) {
      append(out, "group %u: %zu site%s, estimate %.0f", g.group, g.sites.size(),
             g.sites.size() == 1 ? "" : "s", g.sketch.estimate());
    }
    if (result.durability.enabled) {
      if (recover) append(out, "%s", result.durability.recovery_summary.c_str());
      append(out, "wal: %llu records, %llu bytes, %llu fsyncs, %llu snapshots "
                  "(fsync %s) in %s",
             static_cast<unsigned long long>(result.durability.records_logged),
             static_cast<unsigned long long>(result.durability.bytes_logged),
             static_cast<unsigned long long>(result.durability.fsyncs),
             static_cast<unsigned long long>(result.durability.snapshots),
             fsync_name.c_str(), wal_dir.c_str());
    }
    if (relay) {
      append(out, "relayed to %s as site %zu epoch %u: %s (%zu-byte frame)",
             upstream.c_str(), relay_site, relay_epoch, relay_ack, relay_bytes);
    }
    if (!out_path.empty()) append(out, "wrote union sketch to %s", out_path.c_str());
  }
  if (stats) out += obs::render_json(obs::default_registry().snapshot()) + "\n";
  return report.complete() ? 0 : 3;
}

// The site half of continuous mode (DESIGN.md §12): feed a deterministic
// synthetic stream through a DeltaSiteSession and transmit only on
// threshold crossings — deltas while the chain holds, a full re-base
// whenever the referee acks 'R' (resync) or the frame is lost.
int cmd_push_continuous(const Args& args, const std::string& to,
                        net::TcpTransportConfig config, std::size_t site,
                        std::uint16_t group, std::string& out) {
  const std::uint64_t items = args.u64("items", 100000);
  const std::uint64_t distinct = args.u64("distinct", 50000);
  const double growth = args.f64("growth", 0.5);
  const double eps = args.f64("eps", 0.1);
  const double fail = args.f64("delta", 0.05);
  const std::uint64_t seed = args.u64("seed", 1);
  const bool json = json_requested(args);
  const bool want_stats = stats_requested(args);
  args.reject_unknown();
  USTREAM_REQUIRE(args.positional().empty(),
                  "push --continuous generates its own stream; no sketch file");
  USTREAM_REQUIRE(distinct > 0, "--distinct must be positive");

  // Every site must share the hash seed for coordinated sampling, so the
  // estimator seed is fixed by --seed alone; only the label stream below
  // is decorrelated per site.
  DeltaSiteSession session(EstimatorParams::for_guarantee(eps, fail, seed), growth);
  net::TcpTransport transport(site + 1, config);

  auto transmit = [&](const DeltaSiteSession::Outgoing& msg) {
    const auto frame = frame_encode(
        {msg.is_delta ? PayloadKind::kF0Delta : PayloadKind::kF0Estimator,
         static_cast<std::uint32_t>(site), msg.epoch, group},
        msg.payload);
    return transport.send_with_ack(site, frame);
  };
  auto settle = [&](net::PushAck ack) {
    if (ack == net::PushAck::kAccepted || ack == net::PushAck::kDuplicate) {
      session.delivered();
      return true;
    }
    session.lost();
    return false;
  };

  SplitMix64 gen(seed ^ (0x9e3779b97f4a7c15ULL * (site + 1)));
  for (std::uint64_t i = 0; i < items; ++i) {
    if (!session.add(gen.next() % distinct)) continue;
    if (!settle(transmit(session.next_update()))) {
      // Chain broken: re-base immediately — next_update() now owes a full
      // frame, so the referee's mirror catches up in one message.
      settle(transmit(session.next_update()));
    }
  }
  // End-of-stream flush: whatever the thresholds suppressed goes out as a
  // final full frame so the referee's mirror matches the local tail.
  bool flushed = !session.dirty();
  for (std::uint32_t attempt = 0;
       !flushed && attempt < config.max_send_attempts; ++attempt) {
    flushed = settle(transmit(session.next_full()));
  }

  const ChannelStats wire = transport.stats();
  if (json) {
    append(out,
           "{\"site\":%zu,\"items\":%llu,\"estimate\":%.17g,"
           "\"deltas\":%llu,\"full_frames\":%llu,\"resyncs\":%llu,"
           "\"suppressed\":%llu,\"flushed\":%s,"
           "\"wire_frames\":%llu,\"wire_bytes\":%llu}",
           site, static_cast<unsigned long long>(items),
           session.sketch().estimate(),
           static_cast<unsigned long long>(session.deltas_sent()),
           static_cast<unsigned long long>(session.fulls_sent()),
           static_cast<unsigned long long>(session.resyncs()),
           static_cast<unsigned long long>(session.suppressed()),
           flushed ? "true" : "false",
           static_cast<unsigned long long>(wire.messages),
           static_cast<unsigned long long>(wire.total_bytes));
  } else {
    append(out,
           "site %zu streamed %llu items to %s: %llu deltas + %llu full "
           "frames (%llu resyncs, %llu updates suppressed), %llu bytes on "
           "the wire, local estimate %.0f%s",
           site, static_cast<unsigned long long>(items), to.c_str(),
           static_cast<unsigned long long>(session.deltas_sent()),
           static_cast<unsigned long long>(session.fulls_sent()),
           static_cast<unsigned long long>(session.resyncs()),
           static_cast<unsigned long long>(session.suppressed()),
           static_cast<unsigned long long>(wire.total_bytes),
           session.sketch().estimate(),
           flushed ? "" : " [FLUSH FAILED: referee mirror is behind]");
  }
  if (want_stats) out += obs::render_json(obs::default_registry().snapshot()) + "\n";
  return flushed ? 0 : 3;
}

// Ships one site's sketch file to a running `ustream serve` referee: the
// site half of the multi-process protocol. The file's payload is re-framed
// with the given site id / epoch, pushed over TcpTransport (connect with
// capped-exponential backoff, retransmit on connection loss or quarantine
// ack), and the referee's frame-layer verdict is reported.
int cmd_push(const Args& args, std::string& out) {
  const std::string to = args.required_str("to");
  net::TcpTransportConfig config;
  std::tie(config.host, config.port) = parse_host_port("--to", to);
  const std::size_t site = args.u64("site", 0);
  config.max_send_attempts = static_cast<std::uint32_t>(args.u64("attempts", 4));
  config.max_connect_attempts =
      static_cast<std::uint32_t>(args.u64("connect-attempts", 10));
  const std::uint64_t group_raw = args.u64("group", 0);
  USTREAM_REQUIRE(group_raw <= 0xffff, "--group out of range (max 65535)");
  const auto group = static_cast<std::uint16_t>(group_raw);
  if (args.has("continuous")) {
    args.str("continuous", "");
    return cmd_push_continuous(args, to, config, site, group, out);
  }
  const auto epoch = static_cast<std::uint32_t>(args.u64("epoch", 0));
  const bool json = json_requested(args);
  const bool want_stats = stats_requested(args);
  args.reject_unknown();
  USTREAM_REQUIRE(args.positional().size() == 1, "push needs exactly one sketch file");
  const std::string& path = args.positional()[0];

  // Round-trip through the matching sketch type so legacy (v0) files push
  // fine and a corrupt file fails HERE, not at the referee. The frame kind
  // follows the file: freq/universal files push under their own kinds.
  PayloadKind push_kind = framed_kind_of(path);
  std::vector<std::uint8_t> payload;
  if (push_kind == PayloadKind::kFreqSketch) {
    payload = read_freq_file(path).serialize();
  } else if (push_kind == PayloadKind::kUniversalSketch) {
    payload = read_universal_file(path).serialize();
  } else {
    push_kind = PayloadKind::kF0Estimator;
    payload = read_sketch_file(path).serialize();
  }
  const auto frame = frame_encode(
      {push_kind, static_cast<std::uint32_t>(site), epoch, group}, payload);

  net::TcpTransport transport(site + 1, config);
  const net::PushAck ack = transport.send_with_ack(site, frame);
  const ChannelStats stats = transport.stats();
  if (json) {
    append(out,
           "{\"file\":\"%s\",\"site\":%zu,\"epoch\":%u,\"ack\":\"%s\","
           "\"attempts\":%llu,\"connects\":%llu,\"frame_bytes\":%zu}",
           json_escape(path).c_str(), site, epoch, net::push_ack_name(ack),
           static_cast<unsigned long long>(stats.messages),
           static_cast<unsigned long long>(transport.connect_attempts()), frame.size());
  } else {
    append(out, "pushed %s as site %zu epoch %u to %s: %s (%llu attempts, %zu-byte frame)",
           path.c_str(), site, epoch, to.c_str(), net::push_ack_name(ack),
           static_cast<unsigned long long>(stats.messages), frame.size());
  }
  if (want_stats) out += obs::render_json(obs::default_registry().snapshot()) + "\n";
  return 0;
}

// Queries a running referee's admin endpoint (serve --admin-port) and
// prints the live metrics snapshot: Prometheus text by default, the
// one-line JSON with --json, or a liveness check with --health.
// One admin round-trip: connect, send the one-line request, read the
// response until EOF (the admin protocol is response-then-close).
std::string admin_fetch(const std::string& host, std::uint16_t port,
                        const std::string& request, std::chrono::milliseconds timeout) {
  net::Socket sock = net::connect_tcp(host, port, timeout, timeout);
  net::send_all(sock, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(request.data()),
                          request.size()));
  std::string response;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw net::TransportError("admin endpoint read failed (timeout?)");
    break;
  }
  USTREAM_REQUIRE(!response.empty(), "admin endpoint closed without a response");
  return response;
}

int cmd_stats(const Args& args, std::string& out) {
  const std::string from = args.required_str("from");
  const auto [host, port] = parse_host_port("--from", from);
  const auto timeout = std::chrono::milliseconds(args.u64("timeout-ms", 5000));
  const bool json = json_requested(args);
  const bool health = args.has("health");
  if (health) args.str("health", "");
  // --watch SECS: re-poll the endpoint every SECS seconds and redraw until
  // the referee goes away (its exit closes the admin port, which ends the
  // watch cleanly) or --count snapshots have been printed. Snapshots are
  // written straight to stdout as they arrive — this is a live view, not a
  // buffered report.
  const bool watch = args.has("watch");
  const double watch_secs = watch ? args.f64("watch", 2.0) : 0.0;
  const std::uint64_t watch_count = args.u64("count", 0);
  USTREAM_REQUIRE(!watch || watch_secs > 0, "--watch needs a positive interval");
  args.reject_unknown();

  const std::string request =
      health ? "GET /health\n" : (json ? "GET /metrics.json\n" : "GET /metrics\n");
  if (!watch) {
    out += admin_fetch(host, port, request, timeout);
    return 0;
  }

  const bool tty = ::isatty(::fileno(stdout)) != 0;
  for (std::uint64_t n = 0; watch_count == 0 || n < watch_count; ++n) {
    std::string snapshot;
    try {
      snapshot = admin_fetch(host, port, request, timeout);
    } catch (const net::TransportError&) {
      if (n == 0) throw;  // never reachable: report it as an error
      append(out, "watch: %s is gone after %llu snapshot%s", from.c_str(),
             static_cast<unsigned long long>(n), n == 1 ? "" : "s");
      return 0;
    }
    if (tty) {
      std::fputs("\033[2J\033[H", stdout);  // clear + home: redraw in place
    } else if (n > 0) {
      std::fputc('\n', stdout);  // piped: separate snapshots with a blank line
    }
    std::fwrite(snapshot.data(), 1, snapshot.size(), stdout);
    std::fflush(stdout);
    if (watch_count != 0 && n + 1 == watch_count) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_secs));
  }
  return 0;
}

// Set-expression cardinalities (DESIGN.md §13): parse EXPR over site:N /
// group:G operands and evaluate the common-threshold estimator, either
// against sketch FILES on disk (site:N = Nth file, 0-based; group:G = union
// of the files whose frame header carries group tag G) or against a LIVE
// referee through its admin endpoint (--from HOST:PORT with serve
// --admin-port), where the referee's own ledger supplies the operands.
int cmd_query(const Args& args, std::string& out) {
  const bool json = json_requested(args);
  const std::string from = args.str("from", "");
  const auto timeout = std::chrono::milliseconds(args.u64("timeout-ms", 5000));
  args.reject_unknown();
  USTREAM_REQUIRE(!args.positional().empty(),
                  "query needs an expression, e.g. "
                  "ustream query '(site:0 | site:1) & !site:2' FILES...");
  const std::string expr_text = args.positional()[0];
  const std::vector<std::string> files(args.positional().begin() + 1,
                                       args.positional().end());
  if (!from.empty()) {
    USTREAM_REQUIRE(files.empty(), "--from queries a live referee; drop the sketch files");
    const auto [host, port] = parse_host_port("--from", from);
    const std::string request = std::string("GET /query") + (json ? "" : ".txt") +
                                "?e=" + query::percent_encode(expr_text) + "\n";
    const std::string body = admin_fetch(host, port, request, timeout);
    out += body;
    return body.rfind("error:", 0) == 0 ? 1 : 0;
  }
  USTREAM_REQUIRE(!files.empty(), "query needs sketch files or --from HOST:PORT");
  // Frequency route: top(K)/freq(LABEL) over freq sketch files (the --from
  // path above already reaches a freq referee's admin handler verbatim).
  if (expr_text.rfind("top(", 0) == 0 || expr_text.rfind("freq(", 0) == 0) {
    require_uniform_kinds(files);
    FreqSketch merged = read_freq_file(files[0]);
    for (std::size_t i = 1; i < files.size(); ++i) merged.merge(read_freq_file(files[i]));
    out += freq_query_answer(merged, expr_text, json);
    return 0;
  }
  std::vector<F0Estimator> sketches;
  std::vector<std::uint16_t> groups;
  sketches.reserve(files.size());
  for (const auto& path : files) {
    const auto bytes = read_file(path);
    std::uint16_t group = 0;  // legacy v0 files are ungrouped
    if (looks_like_frame(bytes)) group = frame_decode(bytes).header.group;
    sketches.push_back(read_sketch_file(path));
    groups.push_back(group);
  }
  std::map<std::uint32_t, F0Estimator> group_cache;  // node-stable addresses
  query::ResolveSketch resolve = [&](const query::Expr& leaf) -> const F0Estimator* {
    if (leaf.operand == query::OperandKind::kSite) {
      return leaf.id < sketches.size() ? &sketches[leaf.id] : nullptr;
    }
    if (leaf.operand != query::OperandKind::kGroup) return nullptr;
    auto it = group_cache.find(leaf.id);
    if (it == group_cache.end()) {
      std::optional<F0Estimator> merged;
      for (std::size_t i = 0; i < sketches.size(); ++i) {
        if (groups[i] != static_cast<std::uint16_t>(leaf.id)) continue;
        if (!merged.has_value()) {
          merged = sketches[i];
        } else {
          merged->merge(sketches[i]);
        }
      }
      if (!merged.has_value()) return nullptr;
      it = group_cache.emplace(leaf.id, std::move(*merged)).first;
    }
    return &it->second;
  };
  const query::QueryResult r = query::run_query(expr_text, resolve);
  out += json ? query::format_query_json(expr_text, r)
              : query::format_query_text(expr_text, r);
  return 0;
}

// Offline inspection of a WAL dir — the debugging face of the durability
// subsystem. `inspect` shows the segment/snapshot inventory (headers,
// sizes, torn tails); `dump` walks every record and decodes its frame
// header so an operator can see exactly which (site, epoch) frames a
// recovery would replay, without starting a server.
int cmd_wal(const Args& args, std::string& out) {
  const auto& positional = args.positional();
  USTREAM_REQUIRE(positional.size() == 1 &&
                      (positional[0] == "inspect" || positional[0] == "dump"),
                  "usage: ustream wal inspect|dump --dir DIR [--json]");
  const bool dump = positional[0] == "dump";
  const std::string dir = args.required_str("dir");
  const bool json = json_requested(args);
  args.reject_unknown();

  const auto segments = durability::scan_wal_segments(dir);
  const auto snapshots = durability::scan_snapshots(dir);
  if (json) {
    out += "{\"dir\":\"" + json_escape(dir) + "\",\"segments\":[";
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const auto& seg = segments[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"path\":\"%s\",\"shard\":%u,\"seq\":%u,"
                    "\"watermark\":%u,\"bytes\":%llu,\"valid\":%s%s%s}",
                    i > 0 ? "," : "", json_escape(seg.path).c_str(), seg.shard,
                    seg.seq, seg.watermark,
                    static_cast<unsigned long long>(seg.file_bytes),
                    seg.header_valid ? "true" : "false",
                    seg.header_valid ? "" : ",\"error\":\"",
                    seg.header_valid ? "" : (json_escape(seg.error) + "\"").c_str());
      out += buf;
    }
    out += "],\"snapshots\":[";
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      const auto& snap = snapshots[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"path\":\"%s\",\"seq\":%u,\"bytes\":%llu,\"valid\":%s}",
                    i > 0 ? "," : "", json_escape(snap.path).c_str(), snap.seq,
                    static_cast<unsigned long long>(snap.file_bytes),
                    snap.valid ? "true" : "false");
      out += buf;
    }
    out += "]";
  } else {
    append(out, "%s: %zu segment(s), %zu snapshot(s)", dir.c_str(),
           segments.size(), snapshots.size());
    for (const auto& snap : snapshots) {
      append(out, "snapshot %s: seq %u, %llu bytes%s%s", snap.path.c_str(),
             snap.seq, static_cast<unsigned long long>(snap.file_bytes),
             snap.valid ? "" : " INVALID: ", snap.valid ? "" : snap.error.c_str());
    }
    for (const auto& seg : segments) {
      if (!seg.header_valid) {
        append(out, "segment %s: INVALID: %s", seg.path.c_str(), seg.error.c_str());
        continue;
      }
      append(out, "segment %s: shard %u seq %u watermark %u, %llu bytes",
             seg.path.c_str(), seg.shard, seg.seq, seg.watermark,
             static_cast<unsigned long long>(seg.file_bytes));
    }
  }

  // dump: walk every record of every readable segment and snapshot,
  // decoding each frame the way recovery would.
  std::uint64_t torn = 0;
  if (dump) {
    if (json) out += ",\"records\":[";
    bool first_record = true;
    auto dump_file = [&](const std::string& path) {
      durability::SegmentReader reader(path);
      while (auto record = reader.next()) {
        std::string verdict = "ok";
        std::uint32_t site = 0, epoch = 0;
        const char* kind = "?";
        try {
          const Frame frame = frame_decode(*record);
          site = frame.header.site;
          epoch = frame.header.epoch;
          kind = payload_kind_name(frame.header.kind);
        } catch (const SerializationError&) {
          verdict = "corrupt";
        }
        if (json) {
          char buf[512];
          std::snprintf(buf, sizeof(buf),
                        "%s{\"file\":\"%s\",\"site\":%u,\"epoch\":%u,"
                        "\"kind\":\"%s\",\"bytes\":%zu,\"verdict\":\"%s\"}",
                        first_record ? "" : ",", json_escape(path).c_str(), site,
                        epoch, kind, record->size(), verdict.c_str());
          out += buf;
          first_record = false;
        } else {
          append(out, "  %s: site %u epoch %u %s (%zu bytes) %s", path.c_str(),
                 site, epoch, kind, record->size(), verdict.c_str());
        }
      }
      if (reader.torn_tail()) {
        torn += 1;
        if (!json) {
          append(out, "  %s: TORN TAIL after %llu record(s), %llu bytes stranded",
                 path.c_str(),
                 static_cast<unsigned long long>(reader.records_read()),
                 static_cast<unsigned long long>(reader.stranded_bytes()));
        }
      }
    };
    for (const auto& snap : snapshots) {
      if (snap.valid) dump_file(snap.path);
    }
    for (const auto& seg : segments) {
      if (seg.header_valid) dump_file(seg.path);
    }
    if (json) {
      out += "],\"torn_tails\":" + std::to_string(torn);
    }
  }
  if (json) out += "}\n";
  return 0;
}

}  // namespace

void write_sketch_file(const std::string& path, const F0Estimator& estimator,
                       std::uint16_t group) {
  write_file(path,
             frame_encode({PayloadKind::kF0Estimator, 0, 0, group}, estimator.serialize()));
}

F0Estimator read_sketch_file(const std::string& path) {
  const auto bytes = read_file(path);
  if (looks_like_frame(bytes)) {
    const Frame frame = frame_decode(bytes);
    if (frame.header.kind != PayloadKind::kF0Estimator) {
      throw SerializationError(std::string("sketch file ") + path + " carries a " +
                               payload_kind_name(frame.header.kind) + " frame");
    }
    return F0Estimator::deserialize(std::span<const std::uint8_t>(frame.payload));
  }
  // Legacy v0 layout: bare magic + estimator, no checksum.
  ByteReader r(bytes);
  if (r.remaining() < 4 || r.u32() != kLegacySketchMagic) {
    throw SerializationError("not a ustream sketch file: " + path);
  }
  F0Estimator est = F0Estimator::deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes in sketch file: " + path);
  return est;
}

std::string usage() {
  return "usage: ustream <command> [flags]\n"
         "  generate --out FILE [--distinct N] [--items M] [--alpha A]\n"
         "           [--labels random|sequential|clustered] [--seed S]\n"
         "  sketch   --in TRACE --out SKETCH [--eps E] [--delta D] [--seed S]\n"
         "           [--group G]  (tag the sketch frame with group id G)\n"
         "           [--kind f0|freq|universal]  (freq: count-sketch + space-saver\n"
         "            heavy hitters, --depth D --width-log2 W --heavy K;\n"
         "            universal: layered G-sum sketch, adds --levels L)\n"
         "  merge    --out SKETCH IN1 IN2 ...\n"
         "  estimate [--json] SKETCH...\n"
         "  exact    --in TRACE\n"
         "  info     [--json] FILE...\n"
         "  collect  [--sites T] [--distinct N] [--overlap F] [--seed S]\n"
         "           [--drop P] [--duplicate P] [--reorder P] [--corrupt P]\n"
         "           [--attempts K] [--eps E] [--delta D]\n"
         "           (fault-injected distributed collection demo; exit 3 if degraded)\n"
         "  serve    [--port P] [--bind H] [--sites T] [--shards N] [--timeout-ms N]\n"
         "           [--out SKETCH] [--port-file FILE] [--admin-port P]\n"
         "           [--admin-port-file FILE] [--relay --upstream HOST:PORT\n"
         "            [--relay-site I] [--relay-epoch E]]\n"
         "           [--wal-dir DIR [--fsync always|interval|never]\n"
         "            [--fsync-interval-ms N] [--snapshot-every N] [--segment-mb N]\n"
         "            [--recover]]\n"
         "           [--continuous] [--eps E] [--delta D] [--seed S] [--json] [--stats]\n"
         "           (TCP referee: collect one sketch per site, merge, estimate;\n"
         "            port 0 picks a free port; exit 3 if degraded; --shards N runs\n"
         "            N SO_REUSEPORT event loops; --admin-port serves live metrics\n"
         "            mid-collection and GET /query?e=EXPR set-expression\n"
         "            queries; --relay pushes the merged sketch upstream;\n"
         "            --bind 0.0.0.0 accepts sites from other machines;\n"
         "            --wal-dir logs accepted frames before acking so\n"
         "            --recover resumes a killed referee with identical state;\n"
         "            --continuous accepts delta chains until --timeout-ms and\n"
         "            exports the live union estimate via --admin-port)\n"
         "  serve    --kind freq [--top K] [...common serve flags]\n"
         "           (collect one freq sketch per site, merge into the union\n"
         "            heavy-hitter table; admin /query answers top(K) and\n"
         "            freq(LABEL); sharding and WAL recovery work unchanged)\n"
         "  push     --to HOST:PORT [--site I] [--epoch E] [--group G]\n"
         "           [--attempts K] [--connect-attempts K] [--json] [--stats] SKETCH\n"
         "           (ship a sketch file to a running serve referee; --group\n"
         "            tags the frame so the referee buckets this site)\n"
         "  push     --to HOST:PORT --continuous [--site I] [--items M]\n"
         "           [--distinct N] [--growth G] [--eps E] [--delta D] [--seed S]\n"
         "           [--attempts K] [--connect-attempts K] [--json] [--stats]\n"
         "           (stream a synthetic site continuously: send delta frames on\n"
         "            threshold crossings, re-base on 'R' resync acks)\n"
         "  stats    --from HOST:PORT [--json] [--health] [--timeout-ms N]\n"
         "           [--watch SECS [--count N]]\n"
         "           (query a serve --admin-port endpoint for live metrics;\n"
         "            --watch re-polls and redraws until the referee exits)\n"
         "  query    EXPR [SKETCH...] [--from HOST:PORT] [--timeout-ms N] [--json]\n"
         "           (set-expression cardinality over coordinated sketches:\n"
         "            operands site:N (Nth file / referee site) and group:G,\n"
         "            operators | & \\ ! with parens, e.g.\n"
         "            '(site:0 | site:1) & !site:2'; --from asks a live\n"
         "            serve --admin-port referee instead of reading files;\n"
         "            freq expressions top(K) and freq(LABEL) run over freq\n"
         "            sketch files or a serve --kind freq referee)\n"
         "  wal      inspect|dump --dir DIR [--json]\n"
         "           (offline WAL dir inspection: segment/snapshot inventory,\n"
         "            per-record frame decode, torn-tail detection)\n";
}

int run(const std::vector<std::string>& argv, std::string& out) {
  try {
    if (argv.empty() || argv[0] == "help" || argv[0] == "--help") {
      out += usage();
      return argv.empty() ? 2 : 0;
    }
    const std::string command = argv[0];
    const Args args(std::vector<std::string>(argv.begin() + 1, argv.end()));
    if (command == "generate") return cmd_generate(args, out);
    if (command == "sketch") return cmd_sketch(args, out);
    if (command == "merge") return cmd_merge(args, out);
    if (command == "estimate") return cmd_estimate(args, out);
    if (command == "exact") return cmd_exact(args, out);
    if (command == "info") return cmd_info(args, out);
    if (command == "collect") return cmd_collect(args, out);
    if (command == "serve") return cmd_serve(args, out);
    if (command == "push") return cmd_push(args, out);
    if (command == "stats") return cmd_stats(args, out);
    if (command == "query") return cmd_query(args, out);
    if (command == "wal") return cmd_wal(args, out);
    out += "unknown command: " + command + "\n" + usage();
    return 2;
  } catch (const std::exception& e) {
    out += std::string("error: ") + e.what() + "\n";
    return 1;
  }
}

}  // namespace ustream::cli
