#include "cli/commands.h"

#include <cstdarg>
#include <cstdio>
#include <exception>
#include <memory>

#include "baselines/exact.h"
#include "cli/args.h"
#include "common/serialize.h"
#include "core/params.h"
#include "stream/generators.h"
#include "stream/trace_io.h"

namespace ustream::cli {

namespace {

constexpr std::uint32_t kSketchMagic = 0x454b5355;  // "USKE"

void append(std::string& out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
  out += '\n';
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  USTREAM_REQUIRE(f != nullptr, "cannot open file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size < 0 ? 0 : size));
  const bool ok = buf.empty() || std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) throw SerializationError("short read: " + path);
  return buf;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  USTREAM_REQUIRE(f != nullptr, "cannot open file for writing: " + path);
  const bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) throw SerializationError("short write: " + path);
}

int cmd_generate(const Args& args, std::string& out) {
  StreamConfig config;
  config.distinct = args.u64("distinct", 100'000);
  config.total_items = args.u64("items", config.distinct * 3);
  config.zipf_alpha = args.f64("alpha", 1.0);
  config.seed = args.u64("seed", 1);
  config.value_lo = args.f64("value-lo", 0.0);
  config.value_hi = args.f64("value-hi", 1.0);
  const std::string kind = args.str("labels", "random");
  config.label_kind = kind == "sequential" ? LabelKind::kSequential
                      : kind == "clustered" ? LabelKind::kClustered
                                            : LabelKind::kRandom64;
  const std::string path = args.required_str("out");
  args.reject_unknown();
  SyntheticStream stream(config);
  write_trace(path, stream.to_vector());
  append(out, "wrote %zu items (%zu distinct, alpha %.2f) to %s", config.total_items,
         config.distinct, config.zipf_alpha, path.c_str());
  return 0;
}

int cmd_sketch(const Args& args, std::string& out) {
  const std::string in = args.required_str("in");
  const std::string out_path = args.required_str("out");
  const double eps = args.f64("eps", 0.1);
  const double delta = args.f64("delta", 0.05);
  const std::uint64_t seed = args.u64("seed", 0x5eed0123456789abULL);
  args.reject_unknown();
  F0Estimator estimator(EstimatorParams::for_guarantee(eps, delta, seed));
  const auto items = read_trace(in);
  for (const Item& item : items) estimator.add(item.label);
  write_sketch_file(out_path, estimator);
  append(out, "sketched %zu items from %s -> %s (%zu bytes, estimate %.0f)", items.size(),
         in.c_str(), out_path.c_str(), read_file(out_path).size(), estimator.estimate());
  return 0;
}

int cmd_merge(const Args& args, std::string& out) {
  const std::string out_path = args.required_str("out");
  args.reject_unknown();
  const auto& inputs = args.positional();
  USTREAM_REQUIRE(!inputs.empty(), "merge needs at least one input sketch");
  F0Estimator merged = read_sketch_file(inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    merged.merge(read_sketch_file(inputs[i]));
  }
  write_sketch_file(out_path, merged);
  append(out, "merged %zu sketches -> %s (union estimate %.0f)", inputs.size(),
         out_path.c_str(), merged.estimate());
  return 0;
}

int cmd_estimate(const Args& args, std::string& out) {
  args.reject_unknown();
  USTREAM_REQUIRE(!args.positional().empty(), "estimate needs a sketch file");
  for (const auto& path : args.positional()) {
    const F0Estimator est = read_sketch_file(path);
    append(out, "%s: distinct ~= %.0f", path.c_str(), est.estimate());
  }
  return 0;
}

int cmd_exact(const Args& args, std::string& out) {
  const std::string in = args.required_str("in");
  args.reject_unknown();
  ExactDistinctCounter exact;
  const auto items = read_trace(in);
  for (const Item& item : items) exact.add(item.label);
  append(out, "%s: %zu items, %llu distinct (exact)", in.c_str(), items.size(),
         static_cast<unsigned long long>(exact.count()));
  return 0;
}

int cmd_info(const Args& args, std::string& out) {
  args.reject_unknown();
  USTREAM_REQUIRE(!args.positional().empty(), "info needs at least one file");
  for (const auto& path : args.positional()) {
    const auto bytes = read_file(path);
    if (bytes.size() >= 4) {
      ByteReader r(bytes);
      const std::uint32_t magic = r.u32();
      if (magic == kSketchMagic) {
        const F0Estimator est = read_sketch_file(path);
        append(out, "%s: sketch, %zu bytes, %zu copies x capacity %zu, seed %llu",
               path.c_str(), bytes.size(), est.params().copies, est.params().capacity,
               static_cast<unsigned long long>(est.params().seed));
        continue;
      }
      if (magic == 0x52545355) {  // "USTR"
        const auto items = read_trace(path);
        append(out, "%s: trace, %zu bytes, %zu items", path.c_str(), bytes.size(),
               items.size());
        continue;
      }
    }
    append(out, "%s: unrecognized format (%zu bytes)", path.c_str(), bytes.size());
  }
  return 0;
}

}  // namespace

void write_sketch_file(const std::string& path, const F0Estimator& estimator) {
  ByteWriter w;
  w.u32(kSketchMagic);
  estimator.serialize(w);
  write_file(path, w.data());
}

F0Estimator read_sketch_file(const std::string& path) {
  const auto bytes = read_file(path);
  ByteReader r(bytes);
  if (r.remaining() < 4 || r.u32() != kSketchMagic) {
    throw SerializationError("not a ustream sketch file: " + path);
  }
  F0Estimator est = F0Estimator::deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes in sketch file: " + path);
  return est;
}

std::string usage() {
  return "usage: ustream <command> [flags]\n"
         "  generate --out FILE [--distinct N] [--items M] [--alpha A]\n"
         "           [--labels random|sequential|clustered] [--seed S]\n"
         "  sketch   --in TRACE --out SKETCH [--eps E] [--delta D] [--seed S]\n"
         "  merge    --out SKETCH IN1 IN2 ...\n"
         "  estimate SKETCH...\n"
         "  exact    --in TRACE\n"
         "  info     FILE...\n";
}

int run(const std::vector<std::string>& argv, std::string& out) {
  try {
    if (argv.empty() || argv[0] == "help" || argv[0] == "--help") {
      out += usage();
      return argv.empty() ? 2 : 0;
    }
    const std::string command = argv[0];
    const Args args(std::vector<std::string>(argv.begin() + 1, argv.end()));
    if (command == "generate") return cmd_generate(args, out);
    if (command == "sketch") return cmd_sketch(args, out);
    if (command == "merge") return cmd_merge(args, out);
    if (command == "estimate") return cmd_estimate(args, out);
    if (command == "exact") return cmd_exact(args, out);
    if (command == "info") return cmd_info(args, out);
    out += "unknown command: " + command + "\n" + usage();
    return 2;
  } catch (const std::exception& e) {
    out += std::string("error: ") + e.what() + "\n";
    return 1;
  }
}

}  // namespace ustream::cli
