#include "cli/args.h"

#include <cstdlib>

namespace ustream::cli {

namespace {

// Flags that never take a value, so `--json file.sk` does not swallow the
// positional that follows. Everything else stays greedy.
bool is_boolean_flag(const std::string& key) {
  return key == "json" || key == "stats" || key == "health";
}

}  // namespace

Args::Args(const std::vector<std::string>& argv) {
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      USTREAM_REQUIRE(!key.empty(), "empty flag name");
      if (!is_boolean_flag(key) && i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
        flags_[key] = argv[++i];
      } else {
        flags_[key] = "";  // boolean flag
      }
      consumed_[key] = false;
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Args::str(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

std::string Args::required_str(const std::string& key) const {
  auto it = flags_.find(key);
  USTREAM_REQUIRE(it != flags_.end(), "missing required flag --" + key);
  consumed_[key] = true;
  return it->second;
}

std::uint64_t Args::u64(const std::string& key, std::uint64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_[key] = true;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  USTREAM_REQUIRE(end && *end == '\0' && !it->second.empty(),
                  "flag --" + key + " expects an unsigned integer, got '" + it->second + "'");
  return v;
}

double Args::f64(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  consumed_[key] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  USTREAM_REQUIRE(end && *end == '\0' && !it->second.empty(),
                  "flag --" + key + " expects a number, got '" + it->second + "'");
  return v;
}

void Args::reject_unknown() const {
  for (const auto& [key, used] : consumed_) {
    USTREAM_REQUIRE(used, "unknown flag --" + key);
  }
}

}  // namespace ustream::cli
