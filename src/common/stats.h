// Streaming/offline summary statistics used by the benchmark harnesses and
// the accuracy experiments (E1-E11): mean, variance, quantiles, relative
// error aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ustream {

// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  // Merge another accumulator into this one (Chan et al. parallel update).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Offline sample that answers arbitrary quantiles. Stores all observations;
// intended for experiment harnesses (thousands of trials), not data paths.
class Sample {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const noexcept { return xs_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  // q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  // Fraction of observations with value > threshold (used to measure the
  // empirical failure probability Pr[relative error > epsilon]).
  double fraction_above(double threshold) const noexcept;

  const std::vector<double>& values() const noexcept { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Relative error |est - truth| / truth; truth must be nonzero.
double relative_error(double estimate, double truth) noexcept;

// Signed relative error (est - truth) / truth; truth must be nonzero.
double signed_relative_error(double estimate, double truth) noexcept;

// Median of a (small) vector, destructive partial sort. Used for
// median-of-copies estimator boosting.
double median_of(std::vector<double> xs);
std::uint64_t median_of_u64(std::vector<std::uint64_t> xs);

}  // namespace ustream
