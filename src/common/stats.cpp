#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ustream {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Sample::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sample::stddev() const noexcept {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Sample::quantile(double q) const {
  USTREAM_REQUIRE(!xs_.empty(), "quantile of empty sample");
  USTREAM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double Sample::fraction_above(double threshold) const noexcept {
  if (xs_.empty()) return 0.0;
  std::size_t k = 0;
  for (double x : xs_) {
    if (x > threshold) ++k;
  }
  return static_cast<double>(k) / static_cast<double>(xs_.size());
}

double relative_error(double estimate, double truth) noexcept {
  return std::abs(estimate - truth) / std::abs(truth);
}

double signed_relative_error(double estimate, double truth) noexcept {
  return (estimate - truth) / truth;
}

double median_of(std::vector<double> xs) {
  USTREAM_REQUIRE(!xs.empty(), "median of empty vector");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

std::uint64_t median_of_u64(std::vector<std::uint64_t> xs) {
  USTREAM_REQUIRE(!xs.empty(), "median of empty vector");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  return xs[mid];
}

}  // namespace ustream
