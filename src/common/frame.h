// The wire frame every serialized sketch travels in.
//
// The paper's model charges for ONE message per party; this frame is that
// message's envelope. A sketch payload on its own is only parseable by the
// sketch-specific deserializer, which cannot distinguish "truncated in
// flight" from "attacker-shaped garbage" until it is knee-deep in varints.
// The frame makes corruption a *frame-layer* verdict: magic, version,
// payload-kind tag, site id, epoch, payload length, and a CRC32C over
// header+payload are all checked before any sketch bytes are touched.
//
// Layout (little-endian, fixed 24-byte header):
//
//   offset  size  field
//        0     4  magic        "USFR" (0x52465355)
//        4     1  version      kFrameVersion (bump on incompatible change)
//        5     1  kind         PayloadKind tag of the payload
//        6     2  group        v2: sender's group/tenant id (v1: reserved, 0)
//        8     4  site         sender's site/link id
//       12     4  epoch        snapshot sequence number (0 = one-shot)
//       16     4  payload_len  byte length of the payload
//       20     4  crc          CRC32C over bytes [0,20) ++ payload
//       24     …  payload      sketch-specific bytes (ByteWriter format)
//
// Version-bump path: decoders accept kFrameVersionMin..kFrameVersion.
// To change the wire format, add the new layout under version N+1, keep
// decoding N during the transition, then raise kFrameVersionMin once no
// N-framed artifacts remain (DESIGN.md "Fault-tolerant collection").
//
// Version 2 (grouped collection, DESIGN.md §13) reuses the two reserved
// bytes at offset 6 as a little-endian u16 group id, so a referee can
// retain per-group sketches ("which labels are on link A but not B" needs
// A and B kept apart). The encoder stays backward compatible the same way
// the v0->v1 CLI transition did: a frame whose group is 0 is emitted as a
// byte-identical version-1 frame, so every pre-group artifact (WAL
// segments, sketch files, checked-in soak digests) and every v1-only
// decoder keeps working; only frames that actually carry a nonzero group
// use the version-2 layout. Decoders accept both and map v1 to group 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ustream {

enum class PayloadKind : std::uint8_t {
  kF0Estimator = 1,
  kDistinctSum = 2,
  kRangeF0 = 3,
  kBottomK = 4,
  kCoordinatedSampler = 5,
  kMonitorReport = 6,  // netmon bundle: four F0 sketches
  kOpaque = 7,         // framed bytes with no registered sketch type
  kWindowedF0 = 8,     // full WindowedF0Estimator snapshot (continuous resync)
  kF0Delta = 9,        // F0Estimator delta vs the last acked epoch
  kWindowedDelta = 10, // windowed op-replay delta vs the last acked epoch
  kFreqSketch = 11,    // freq bundle: count-sketch + space-saver
  kUniversalSketch = 12,  // layered universal sketch (G-sums over the union)
};

const char* payload_kind_name(PayloadKind kind) noexcept;

inline constexpr std::uint32_t kFrameMagic = 0x52465355u;  // "USFR"
inline constexpr std::uint8_t kFrameVersion = 1;        // emitted when group == 0
inline constexpr std::uint8_t kFrameVersionGroup = 2;   // emitted when group != 0
inline constexpr std::uint8_t kFrameVersionMin = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

struct FrameHeader {
  PayloadKind kind = PayloadKind::kOpaque;
  std::uint32_t site = 0;
  std::uint32_t epoch = 0;  // per-site snapshot sequence; 0 for one-shot sends
  std::uint16_t group = 0;  // tenant/group id; 0 = ungrouped (v1 wire layout)
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// Wraps `payload` in a checksummed frame.
std::vector<std::uint8_t> frame_encode(const FrameHeader& header,
                                       std::span<const std::uint8_t> payload);

// Validates and unwraps a frame; throws SerializationError on short input,
// bad magic, unsupported version, nonzero reserved bits, unknown kind,
// length mismatch, or CRC failure — before any payload parsing.
Frame frame_decode(std::span<const std::uint8_t> bytes);

// Cheap dispatch probe (magic only) — does NOT validate the frame.
bool looks_like_frame(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace ustream
