// Wall-clock timing helper for the table-style benchmark harnesses
// (google-benchmark handles the microbenchmarks; this covers end-to-end
// experiment loops that print paper-style rows).
#pragma once

#include <chrono>
#include <cstdint>

namespace ustream {

class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ustream
