#include "common/random.h"

namespace ustream {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace ustream
