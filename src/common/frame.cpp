#include "common/frame.h"

#include <string>

#include "common/crc32c.h"
#include "common/error.h"
#include "obs/trace.h"

namespace ustream {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

bool valid_kind(std::uint8_t k) noexcept {
  return k >= static_cast<std::uint8_t>(PayloadKind::kF0Estimator) &&
         k <= static_cast<std::uint8_t>(PayloadKind::kUniversalSketch);
}

}  // namespace

const char* payload_kind_name(PayloadKind kind) noexcept {
  switch (kind) {
    case PayloadKind::kF0Estimator: return "f0-estimator";
    case PayloadKind::kDistinctSum: return "distinct-sum";
    case PayloadKind::kRangeF0: return "range-f0";
    case PayloadKind::kBottomK: return "bottom-k";
    case PayloadKind::kCoordinatedSampler: return "coordinated-sampler";
    case PayloadKind::kMonitorReport: return "monitor-report";
    case PayloadKind::kOpaque: return "opaque";
    case PayloadKind::kWindowedF0: return "windowed-f0";
    case PayloadKind::kF0Delta: return "f0-delta";
    case PayloadKind::kWindowedDelta: return "windowed-delta";
    case PayloadKind::kFreqSketch: return "freq-sketch";
    case PayloadKind::kUniversalSketch: return "universal-sketch";
  }
  return "unknown";
}

std::vector<std::uint8_t> frame_encode(const FrameHeader& header,
                                       std::span<const std::uint8_t> payload) {
  USTREAM_TRACE_SPAN("ustream_frame_encode_ns");
  if (payload.size() > 0xFFFFFFFFull) {
    throw SerializationError("frame payload exceeds 4 GiB");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  // Group 0 stays on the v1 layout so ungrouped frames are byte-identical
  // to every pre-group artifact; a nonzero group needs the v2 layout.
  out.push_back(header.group == 0 ? kFrameVersion : kFrameVersionGroup);
  out.push_back(static_cast<std::uint8_t>(header.kind));
  out.push_back(static_cast<std::uint8_t>(header.group));
  out.push_back(static_cast<std::uint8_t>(header.group >> 8));
  put_u32(out, header.site);
  put_u32(out, header.epoch);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // CRC covers the header prefix [0,20) plus the payload; the crc field
  // itself is the only byte range outside its own protection.
  std::uint32_t crc = crc32c(std::span<const std::uint8_t>(out.data(), out.size()));
  crc = crc32c(payload, crc);
  put_u32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Frame frame_decode(std::span<const std::uint8_t> bytes) {
  USTREAM_TRACE_SPAN("ustream_frame_decode_ns");
  if (bytes.size() < kFrameHeaderBytes) {
    throw SerializationError("frame too short: " + std::to_string(bytes.size()) + " bytes");
  }
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kFrameMagic) throw SerializationError("bad frame magic");
  const std::uint8_t version = p[4];
  if (version < kFrameVersionMin || version > kFrameVersionGroup) {
    throw SerializationError("unsupported frame version " + std::to_string(version) +
                             " (supported: " + std::to_string(kFrameVersionMin) + ".." +
                             std::to_string(kFrameVersionGroup) + ")");
  }
  if (!valid_kind(p[5])) {
    throw SerializationError("unknown frame payload kind " + std::to_string(p[5]));
  }
  // v1 keeps bytes 6..8 as reserved-must-be-zero; v2 carries the group id
  // there. A v2 frame with group 0 is rejected too — group 0 must travel
  // as v1 so each (header, payload) pair has exactly one wire encoding.
  if (p[6] == 0 && p[7] == 0) {
    if (version == kFrameVersionGroup) {
      throw SerializationError("v2 frame with zero group (must be encoded as v1)");
    }
  } else if (version < kFrameVersionGroup) {
    throw SerializationError("nonzero reserved frame bits");
  }
  const std::uint32_t payload_len = get_u32(p + 16);
  if (bytes.size() - kFrameHeaderBytes != payload_len) {
    throw SerializationError("frame length mismatch: header says " +
                             std::to_string(payload_len) + ", buffer carries " +
                             std::to_string(bytes.size() - kFrameHeaderBytes));
  }
  std::uint32_t crc = crc32c(bytes.subspan(0, 20));
  crc = crc32c(bytes.subspan(kFrameHeaderBytes), crc);
  if (crc != get_u32(p + 20)) throw SerializationError("frame CRC32C mismatch");
  Frame f;
  f.header.kind = static_cast<PayloadKind>(p[5]);
  f.header.site = get_u32(p + 8);
  f.header.epoch = get_u32(p + 12);
  f.header.group = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(p[6]) | (static_cast<std::uint16_t>(p[7]) << 8));
  f.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
                   bytes.end());
  return f;
}

bool looks_like_frame(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= 4 && get_u32(bytes.data()) == kFrameMagic;
}

}  // namespace ustream
