// Small bit-manipulation helpers used by the hash and sketch layers.
#pragma once

#include <bit>
#include <cstdint>

namespace ustream {

// Number of trailing zero bits of v, with tzcnt(0) defined as `width`.
// Used to compute the geometric "level" of a hashed label: if v is uniform
// on [0, 2^width), then Pr[tzcnt(v) >= l] = 2^-l for l <= width.
constexpr int trailing_zeros(std::uint64_t v, int width = 64) noexcept {
  if (v == 0) return width;
  return std::countr_zero(v);
}

// Number of leading zero bits within the low `width` bits of v
// (v must fit in `width` bits). lzcnt of 0 is `width`.
constexpr int leading_zeros(std::uint64_t v, int width = 64) noexcept {
  if (v == 0) return width;
  return std::countl_zero(v) - (64 - width);
}

// Position (1-based) of the least significant set bit; 0 if v == 0.
// This is Flajolet-Martin's rho function shifted by one.
constexpr int lsb_rank(std::uint64_t v) noexcept {
  return v == 0 ? 0 : std::countr_zero(v) + 1;
}

// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

constexpr bool is_pow2(std::uint64_t v) noexcept { return std::has_single_bit(v); }

// floor(log2(v)) for v >= 1.
constexpr int floor_log2(std::uint64_t v) noexcept { return 63 - std::countl_zero(v); }

// ceil(log2(v)) for v >= 1.
constexpr int ceil_log2(std::uint64_t v) noexcept {
  return v <= 1 ? 0 : 64 - std::countl_zero(v - 1);
}

// Reverse the low `width` bits of v.
constexpr std::uint64_t reverse_bits(std::uint64_t v, int width = 64) noexcept {
  std::uint64_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

}  // namespace ustream
