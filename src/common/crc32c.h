// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every wire frame. Chosen over plain CRC32 for its
// better error-detection properties on short messages and because it is
// the checksum real storage/transport systems standardize on (iSCSI,
// ext4, RocksDB, Akumuli's block store), so captured frames stay
// checkable by off-the-shelf tooling.
//
// Software slicing-by-8 implementation: ~1 byte/cycle, no ISA
// assumptions — frame checksumming is not on the sketch hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ustream {

// CRC of `data` continuing from `crc` (pass 0 to start). The running value
// is pre/post-inverted internally, so composing calls chains correctly:
//   crc32c(b, crc32c(a)) == crc32c(ab).
std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc = 0) noexcept;

}  // namespace ustream
