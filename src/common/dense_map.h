// DenseMap: open-addressing hash map from uint64 labels to a small value
// type, with dense entry storage.
//
// Tailored to the access pattern of level-based samplers:
//   * insert-if-absent and lookup are the hot operations;
//   * deletion only ever happens in bulk ("drop every entry below level l"),
//     implemented as an in-place filter + index rebuild, so the probe table
//     needs no tombstones;
//   * iteration over live entries must be cache-friendly (dense vector).
//
// The probe table stores 1-based indices into the entry vector; 0 = empty.
// Table placement uses a fixed avalanche mix of the label — independent of
// any sampler hash, so pathological inputs for the sampler's pairwise hash
// cannot also degrade the table.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/error.h"

namespace ustream {

namespace detail {
constexpr std::uint64_t dense_map_mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 32;
  return x;
}
}  // namespace detail

template <typename V>
class DenseMap {
 public:
  struct Entry {
    std::uint64_t key;
    V value;
  };

  DenseMap() { rebuild(kMinSlots); }
  explicit DenseMap(std::size_t expected_size) {
    rebuild(table_size_for(expected_size));
    entries_.reserve(expected_size);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  // Inserts (key, value) if key is absent. Returns {pointer to entry,
  // inserted?}. Pointers are invalidated by any mutating call.
  std::pair<Entry*, bool> try_emplace(std::uint64_t key, V value) {
    if ((entries_.size() + 1) * 8 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = detail::dense_map_mix(key) & mask;
    while (true) {
      const std::uint32_t slot = slots_[pos];
      if (slot == 0) {
        entries_.push_back(Entry{key, std::move(value)});
        slots_[pos] = static_cast<std::uint32_t>(entries_.size());
        return {&entries_.back(), true};
      }
      Entry& e = entries_[slot - 1];
      if (e.key == key) return {&e, false};
      pos = (pos + 1) & mask;
    }
  }

  Entry* find(std::uint64_t key) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = detail::dense_map_mix(key) & mask;
    while (true) {
      const std::uint32_t slot = slots_[pos];
      if (slot == 0) return nullptr;
      Entry& e = entries_[slot - 1];
      if (e.key == key) return &e;
      pos = (pos + 1) & mask;
    }
  }

  const Entry* find(std::uint64_t key) const noexcept {
    return const_cast<DenseMap*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const noexcept { return find(key) != nullptr; }

  // Keeps exactly the entries for which pred(entry) is true; single pass,
  // then rebuilds the probe table. This is the bulk "raise the level"
  // eviction used by samplers.
  template <typename Pred>
  void filter(Pred pred) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < entries_.size(); ++r) {
      if (pred(static_cast<const Entry&>(entries_[r]))) {
        if (w != r) entries_[w] = std::move(entries_[r]);
        ++w;
      }
    }
    entries_.resize(w);
    reindex();
  }

  void clear() {
    entries_.clear();
    rebuild(kMinSlots);
  }

  // Dense iteration over live entries, in insertion(-ish) order.
  auto begin() noexcept { return entries_.begin(); }
  auto end() noexcept { return entries_.end(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  // Memory footprint in bytes (entries + probe table), for space accounting.
  std::size_t bytes_used() const noexcept {
    return entries_.capacity() * sizeof(Entry) + slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::size_t kMinSlots = 16;

  static std::size_t table_size_for(std::size_t n) {
    // Keep load factor under 7/8.
    std::size_t want = ceil_pow2(n + n / 4 + kMinSlots);
    return want < kMinSlots ? kMinSlots : want;
  }

  void rebuild(std::size_t slot_count) {
    slots_.assign(slot_count, 0);
    reindex_into_current();
  }

  void reindex() { rebuild(table_size_for(entries_.size())); }

  void grow() {
    slots_.assign(slots_.size() * 2, 0);
    reindex_into_current();
  }

  void reindex_into_current() noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t pos = detail::dense_map_mix(entries_[i].key) & mask;
      while (slots_[pos] != 0) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<std::uint32_t>(i + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> slots_;
};

// A set of uint64 keys built on DenseMap; used by the exact baseline.
class DenseSet {
 public:
  DenseSet() = default;
  explicit DenseSet(std::size_t expected) : map_(expected) {}

  // Returns true if the key was newly inserted.
  bool insert(std::uint64_t key) { return map_.try_emplace(key, Empty{}).second; }
  bool contains(std::uint64_t key) const noexcept { return map_.contains(key); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t bytes_used() const noexcept { return map_.bytes_used(); }
  void clear() { map_.clear(); }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const auto& e : map_) fn(e.key);
  }

 private:
  struct Empty {};
  DenseMap<Empty> map_;
};

}  // namespace ustream
