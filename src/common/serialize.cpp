#include "common/serialize.h"

#include <bit>
#include <cstring>

namespace ustream {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(const std::string& s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64) throw SerializationError("varint too long");
    if (shift == 63 && (b & 0x7f) > 1) throw SerializationError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace ustream
