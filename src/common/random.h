// Deterministic, seedable PRNGs used throughout the library.
//
// We deliberately do not use std::mt19937 in library code: sketch seeds must
// be cheap to split (every independent estimator copy draws its own hash
// coefficients) and reproducible across platforms. SplitMix64 is used as a
// seed sequencer / mixer, xoshiro256** as the general-purpose generator.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ustream {

// SplitMix64 (Steele, Lea, Flood). Passes BigCrush when used as a stream;
// its main role here is turning an arbitrary 64-bit seed into a sequence of
// well-mixed 64-bit words for seeding other generators and hash families.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Stateless mix: a single SplitMix64 round applied to x. A good cheap
  // finalizer with full avalanche; used to decorrelate derived seeds.
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** (Blackman, Vigna). Fast, high-quality 256-bit state PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  // Uniform in [0, bound); bound > 0. Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform01(); }

  // Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Jump ahead by 2^128 steps: yields non-overlapping subsequences for
  // parallel sites driven from a single seed.
  void jump() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

// A tiny helper that hands out decorrelated child seeds from one root seed.
// Child k of seed s is independent of child j != k for all practical
// purposes (full-avalanche mixing of the pair).
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t root) noexcept : root_(root) {}

  constexpr std::uint64_t child(std::uint64_t index) const noexcept {
    return SplitMix64::mix(root_ ^ SplitMix64::mix(index + 0x51ed2701a4ull));
  }

  constexpr std::uint64_t root() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace ustream
