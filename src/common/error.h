// Error types shared across the ustream library.
//
// The library throws exceptions only on programmer error (bad parameters,
// corrupt serialized state). Hot paths (sketch updates) never throw.
#pragma once

#include <stdexcept>
#include <string>

namespace ustream {

// Thrown when a caller passes an invalid parameter (epsilon out of range,
// zero capacity, mismatched merge seeds, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

// Thrown when deserializing a buffer that is truncated or structurally
// inconsistent with the expected wire format.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by the distributed runtime on protocol misuse (e.g. querying a
// referee before all sites reported).
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

#define USTREAM_REQUIRE(cond, msg)                  \
  do {                                              \
    if (!(cond)) throw ::ustream::InvalidArgument(msg); \
  } while (0)

}  // namespace ustream
