// Fixed-bin and log-scale histograms for experiment harnesses
// (error distributions, level distributions, message-size distributions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ustream {

// Linear-bin histogram over [lo, hi); out-of-range values land in
// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
  double bin_low(std::size_t i) const noexcept;
  double bin_high(std::size_t i) const noexcept { return bin_low(i + 1); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  // Multi-line ASCII rendering (used by bench harness --verbose output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// Power-of-two bucketed histogram for nonnegative integers (level counts,
// byte sizes). Bucket i holds values in [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  void add(std::uint64_t x) noexcept;
  std::uint64_t bucket(int i) const noexcept;
  int max_bucket() const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::string render(std::size_t width = 50) const;

 private:
  std::vector<std::uint64_t> counts_;  // index 0 => value 0, index i => [2^(i-1), 2^i)
  std::uint64_t total_ = 0;
};

}  // namespace ustream
