// Fixed-bin and log-scale histograms for experiment harnesses
// (error distributions, level distributions, message-size distributions).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ustream {

// Shared bucket rule for every power-of-two histogram in the tree (the
// experiment-harness Log2Histogram below and the lock-free latency
// histograms in obs/metrics.h): index 0 holds the value 0, index i >= 1
// holds [2^(i-1), 2^i).
constexpr std::size_t log2_bucket_index(std::uint64_t x) noexcept {
  return x == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(x));
}

// Inclusive upper bound of bucket i under log2_bucket_index (used for
// Prometheus-style `le` labels): 0 for bucket 0, 2^i - 1 for i >= 1.
constexpr std::uint64_t log2_bucket_upper(std::size_t i) noexcept {
  return i == 0 ? 0 : (i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1);
}

// Linear-bin histogram over [lo, hi); out-of-range values land in
// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
  double bin_low(std::size_t i) const noexcept;
  double bin_high(std::size_t i) const noexcept { return bin_low(i + 1); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  // Multi-line ASCII rendering (used by bench harness --verbose output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// Power-of-two bucketed histogram for nonnegative integers (level counts,
// byte sizes). Bucket i holds values in [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  void add(std::uint64_t x) noexcept;
  std::uint64_t bucket(int i) const noexcept;
  int max_bucket() const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::string render(std::size_t width = 50) const;

 private:
  std::vector<std::uint64_t> counts_;  // index 0 => value 0, index i => [2^(i-1), 2^i)
  std::uint64_t total_ = 0;
};

}  // namespace ustream
