// Byte-level serialization for sketches and distributed messages.
//
// The wire format is what the distributed-streams model charges for: each
// party ships exactly one serialized sketch to the referee (E4 measures
// these bytes). Format: little-endian fixed-width integers plus LEB128
// varints for counts and deltas. Explicitly versioned per message type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace ustream {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  // Unsigned LEB128 variable-length integer (1-10 bytes).
  void varint(std::uint64_t v);
  // ZigZag-encoded signed varint.
  void svarint(std::int64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t varint();
  std::int64_t svarint();
  std::vector<std::uint8_t> bytes(std::size_t n);
  std::string str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw SerializationError("truncated buffer");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ustream
