#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/bits.h"
#include "common/error.h"

namespace ustream {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  USTREAM_REQUIRE(hi > lo, "histogram range must be nonempty");
  USTREAM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[idx];
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * bin_width_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8llu |", bin_low(i), bin_high(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ || overflow_) {
    std::snprintf(line, sizeof(line), "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

void Log2Histogram::add(std::uint64_t x) noexcept {
  const std::size_t idx = log2_bucket_index(x);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  ++total_;
}

std::uint64_t Log2Histogram::bucket(int i) const noexcept {
  const auto idx = static_cast<std::size_t>(i);
  return idx < counts_.size() ? counts_[idx] : 0;
}

int Log2Histogram::max_bucket() const noexcept {
  return counts_.empty() ? -1 : static_cast<int>(counts_.size()) - 1;
}

std::string Log2Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t lo = (i == 0) ? 0 : (1ULL << (i - 1));
    const auto bar = static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof(line), "[%12llu, ...) %8llu |", static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace ustream
