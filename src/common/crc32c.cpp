#include "common/crc32c.h"

#include <array>

namespace ustream {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC contribution of byte b when it sits k bytes away from
  // the end of an 8-byte block (slicing-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) noexcept {
  const auto& t = kTables.t;
  std::uint32_t c = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][(c >> 24) & 0xFFu] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFFu];
  }
  return ~c;
}

}  // namespace ustream
