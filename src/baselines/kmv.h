// KMV (k-minimum values) distinct counter (Bar-Yossef et al. 2002 lineage;
// the direct descendant of coordinated sampling and the core of Apache
// DataSketches' theta sketch). Keeps the k smallest hash values seen;
// estimate is (k-1) / v_k normalized to the hash range. Mergeable by
// keeping the k smallest of the union.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/distinct_counter.h"
#include "common/dense_map.h"

namespace ustream {

class KmvCounter final : public DistinctCounter {
 public:
  KmvCounter(std::size_t k, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "kmv"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  std::size_t k() const noexcept { return k_; }
  std::size_t held() const noexcept { return heap_.size(); }

 private:
  void push(std::uint64_t hash_value);
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::size_t k_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> heap_;  // max-heap of the k smallest hash values
  DenseSet members_;                 // dedup: hash values currently held
};

}  // namespace ustream
