#include "baselines/bjkst.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "hash/level.h"

namespace ustream {

BjkstCounter::BjkstCounter(std::size_t capacity, std::uint64_t seed)
    : level_hash_(SeedSequence(seed).child(0)),
      fingerprint_hash_(SeedSequence(seed).child(1)),
      seed_(seed),
      capacity_(capacity),
      map_(capacity + 1) {
  USTREAM_REQUIRE(capacity >= 1, "BJKST capacity must be >= 1");
}

void BjkstCounter::add(std::uint64_t label) {
  const int lvl = hash_level(level_hash_(label), PairwiseHash::kBits);
  if (lvl < level_) return;
  // Fingerprint width: the analysis needs O(capacity^2) range to keep the
  // collision probability within the sketch's error budget; we keep 32 bits
  // of the pairwise fingerprint hash, comfortably above that for every
  // capacity this library instantiates.
  const std::uint64_t fp = fingerprint_hash_(label) & 0xffffffffULL;
  map_.try_emplace(fp, static_cast<std::uint8_t>(lvl));
  if (map_.size() > capacity_) raise_level();
}

void BjkstCounter::add_batch(std::span<const std::uint64_t> labels) {
  constexpr std::size_t kBlock = 32;
  std::uint64_t h[kBlock];
  const PairwiseHash hash = level_hash_;
  for (std::size_t i = 0; i < labels.size(); i += kBlock) {
    const std::size_t n = std::min(kBlock, labels.size() - i);
    for (std::size_t j = 0; j < n; ++j) h[j] = hash(labels[i + j]);
    for (std::size_t j = 0; j < n; ++j) {
      // Threshold-form reject (mask recomputed from level_ each item, so a
      // mid-block raise is honored): equivalent to hash_level(h) >= level_.
      if ((h[j] & ((std::uint64_t{1} << level_) - 1)) != 0) continue;
      const int lvl = hash_level(h[j], PairwiseHash::kBits);
      const std::uint64_t fp = fingerprint_hash_(labels[i + j]) & 0xffffffffULL;
      map_.try_emplace(fp, static_cast<std::uint8_t>(lvl));
      if (map_.size() > capacity_) raise_level();
    }
  }
}

void BjkstCounter::raise_level() {
  while (map_.size() > capacity_) {
    ++level_;
    map_.filter([this](const auto& e) { return e.value >= level_; });
    if (level_ >= PairwiseHash::kBits) break;
  }
}

double BjkstCounter::estimate() const {
  return static_cast<double>(map_.size()) * std::ldexp(1.0, level_);
}

void BjkstCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const BjkstCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->capacity_ == capacity_ && o->seed_ == seed_,
                  "merge requires a BJKST counter with identical parameters");
  if (o->level_ > level_) {
    level_ = o->level_;
    map_.filter([this](const auto& e) { return e.value >= level_; });
  }
  for (const auto& e : o->map_) {
    if (e.value < level_) continue;
    map_.try_emplace(e.key, e.value);
    if (map_.size() > capacity_) raise_level();
  }
}

std::size_t BjkstCounter::bytes_used() const { return sizeof(*this) + map_.bytes_used(); }

std::unique_ptr<DistinctCounter> BjkstCounter::clone_empty() const {
  return std::make_unique<BjkstCounter>(capacity_, seed_);
}

}  // namespace ustream
