#include "baselines/kmv.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "hash/mix.h"

namespace ustream {

KmvCounter::KmvCounter(std::size_t k, std::uint64_t seed)
    : k_(k), seed_(seed), members_(k + 1) {
  USTREAM_REQUIRE(k >= 2, "KMV needs k >= 2");
  heap_.reserve(k);
}

void KmvCounter::sift_up(std::size_t i) noexcept {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent] >= heap_[i]) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void KmvCounter::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t largest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[l] > heap_[largest]) largest = l;
    if (r < n && heap_[r] > heap_[largest]) largest = r;
    if (largest == i) return;
    std::swap(heap_[i], heap_[largest]);
    i = largest;
  }
}

void KmvCounter::push(std::uint64_t hv) {
  if (heap_.size() < k_) {
    if (!members_.insert(hv)) return;  // duplicate hash value (same label)
    heap_.push_back(hv);
    sift_up(heap_.size() - 1);
    return;
  }
  if (hv >= heap_.front()) return;  // not among the k smallest
  if (!members_.insert(hv)) return;
  // Replace the maximum. The evicted value stays in `members_` as a
  // harmless tombstone — a re-arrival of it would be >= heap max anyway.
  heap_.front() = hv;
  sift_down(0);
}

void KmvCounter::add(std::uint64_t label) { push(murmur_mix64_seeded(label, seed_)); }

void KmvCounter::add_batch(std::span<const std::uint64_t> labels) {
  constexpr std::size_t kBlock = 32;
  std::uint64_t h[kBlock];
  const std::uint64_t seed = seed_;
  for (std::size_t i = 0; i < labels.size(); i += kBlock) {
    const std::size_t n = std::min(kBlock, labels.size() - i);
    for (std::size_t j = 0; j < n; ++j) h[j] = murmur_mix64_seeded(labels[i + j], seed);
    for (std::size_t j = 0; j < n; ++j) {
      // Once the sketch is warm, one compare against the k-th minimum
      // rejects without touching the heap or the membership set.
      if (heap_.size() == k_ && h[j] >= heap_.front()) continue;
      push(h[j]);
    }
  }
}

double KmvCounter::estimate() const {
  if (heap_.size() < k_) return static_cast<double>(heap_.size());  // exact regime
  // v_k = k-th smallest normalized to (0,1]; estimate (k-1)/v_k.
  const double vk = (static_cast<double>(heap_.front()) + 1.0) * 0x1.0p-64;
  return static_cast<double>(k_ - 1) / vk;
}

void KmvCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const KmvCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->k_ == k_ && o->seed_ == seed_,
                  "merge requires a KMV counter with identical parameters");
  for (std::uint64_t hv : o->heap_) push(hv);
}

std::size_t KmvCounter::bytes_used() const {
  return sizeof(*this) + heap_.capacity() * sizeof(std::uint64_t) + members_.bytes_used();
}

std::unique_ptr<DistinctCounter> KmvCounter::clone_empty() const {
  return std::make_unique<KmvCounter>(k_, seed_);
}

}  // namespace ustream
