#include "baselines/fm_pcsa.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "hash/mix.h"

namespace ustream {

namespace {
constexpr double kPhi = 0.77351;  // Flajolet-Martin magic constant
}

FmPcsaCounter::FmPcsaCounter(std::size_t num_bitmaps, std::uint64_t seed)
    : bitmaps_(num_bitmaps, 0), seed_(seed), index_bits_(ceil_log2(num_bitmaps)) {
  USTREAM_REQUIRE(num_bitmaps >= 1 && is_pow2(num_bitmaps),
                  "PCSA bitmap count must be a power of two");
}

void FmPcsaCounter::add(std::uint64_t label) {
  const std::uint64_t h = murmur_mix64_seeded(label, seed_);
  const std::size_t bucket = h & (bitmaps_.size() - 1);
  const std::uint64_t rest = h >> index_bits_;
  const int rho = trailing_zeros(rest, 64 - index_bits_);
  bitmaps_[bucket] |= (std::uint64_t{1} << rho);
}

void FmPcsaCounter::add_batch(std::span<const std::uint64_t> labels) {
  constexpr std::size_t kBlock = 32;
  std::uint64_t h[kBlock];
  const std::uint64_t seed = seed_;
  const std::uint64_t bucket_mask = bitmaps_.size() - 1;
  for (std::size_t i = 0; i < labels.size(); i += kBlock) {
    const std::size_t n = std::min(kBlock, labels.size() - i);
    for (std::size_t j = 0; j < n; ++j) h[j] = murmur_mix64_seeded(labels[i + j], seed);
    for (std::size_t j = 0; j < n; ++j) {
      const auto bucket = static_cast<std::size_t>(h[j] & bucket_mask);
      const std::uint64_t rest = h[j] >> index_bits_;
      const int rho = trailing_zeros(rest, 64 - index_bits_);
      bitmaps_[bucket] |= (std::uint64_t{1} << rho);
    }
  }
}

double FmPcsaCounter::estimate() const {
  // Mean index of the lowest unset bit across bitmaps. (The raw FM formula
  // reports m/phi on an all-empty sketch; report 0 instead.)
  double sum_r = 0.0;
  bool any = false;
  for (std::uint64_t bm : bitmaps_) {
    any = any || bm != 0;
    sum_r += static_cast<double>(trailing_zeros(~bm, 64));
  }
  if (!any) return 0.0;
  const auto m = static_cast<double>(bitmaps_.size());
  return (m / kPhi) * std::pow(2.0, sum_r / m);
}

void FmPcsaCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const FmPcsaCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->bitmaps_.size() == bitmaps_.size() && o->seed_ == seed_,
                  "merge requires a PCSA counter with identical parameters");
  for (std::size_t i = 0; i < bitmaps_.size(); ++i) bitmaps_[i] |= o->bitmaps_[i];
}

std::size_t FmPcsaCounter::bytes_used() const {
  return sizeof(*this) + bitmaps_.capacity() * sizeof(std::uint64_t);
}

std::unique_ptr<DistinctCounter> FmPcsaCounter::clone_empty() const {
  return std::make_unique<FmPcsaCounter>(bitmaps_.size(), seed_);
}

}  // namespace ustream
