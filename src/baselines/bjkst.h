// BJKST distinct counter (Bar-Yossef, Jayram, Kumar, Sivakumar, Trevisan,
// RANDOM 2002) — the successor refinement of level-based sampling published
// the year after the paper reproduced here. Structurally it is the
// Gibbons-Tirthapura sampler with one space optimization: instead of the
// labels themselves it stores short FINGERPRINTS g(x) of the sampled
// labels, shaving the per-entry cost from log(n) to log(capacity) bits at
// the price of fingerprint collisions (and of losing every label-level
// query the coordinated sample supports). Included as the natural
// "what came next" baseline.
#pragma once

#include <cstdint>
#include <memory>

#include "baselines/distinct_counter.h"
#include "common/dense_map.h"
#include "hash/pairwise.h"

namespace ustream {

class BjkstCounter final : public DistinctCounter {
 public:
  BjkstCounter(std::size_t capacity, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "bjkst"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  int level() const noexcept { return level_; }
  std::size_t size() const noexcept { return map_.size(); }

 private:
  void raise_level();

  PairwiseHash level_hash_;        // shared-style level hash
  PairwiseHash fingerprint_hash_;  // second hash: label -> fingerprint
  std::uint64_t seed_;
  std::size_t capacity_;
  int level_ = 0;
  DenseMap<std::uint8_t> map_;  // fingerprint -> level of its label
};

}  // namespace ustream
