// Flajolet-Martin Probabilistic Counting with Stochastic Averaging (PCSA,
// 1985) — the classical baseline the paper improves on. Its analysis
// assumes an idealized (fully random) hash; deployed implementations use a
// strong mixer, which is what we do (murmur finalizer). The coordinated
// sampler needs only pairwise independence for the SAME guarantee — that
// contrast is experiment E6/E9.
//
// m bitmaps; each item is routed to one bitmap by the low bits of its hash
// and sets bit rho(remaining bits). Estimate: (m / phi) * 2^(mean lowest
// unset bit index), phi ~= 0.77351.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/distinct_counter.h"

namespace ustream {

class FmPcsaCounter final : public DistinctCounter {
 public:
  // num_bitmaps must be a power of two.
  FmPcsaCounter(std::size_t num_bitmaps, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "fm-pcsa"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  std::size_t num_bitmaps() const noexcept { return bitmaps_.size(); }
  std::uint64_t bitmap(std::size_t i) const { return bitmaps_.at(i); }

 private:
  std::vector<std::uint64_t> bitmaps_;
  std::uint64_t seed_;
  int index_bits_;
};

}  // namespace ustream
