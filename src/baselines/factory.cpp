#include "baselines/factory.h"

#include <algorithm>
#include <cmath>

#include "baselines/ams_f0.h"
#include "baselines/bjkst.h"
#include "baselines/exact.h"
#include "baselines/fm_pcsa.h"
#include "baselines/hyperloglog.h"
#include "baselines/kmv.h"
#include "baselines/linear_counting.h"
#include "common/bits.h"
#include "common/error.h"

namespace ustream {

std::string to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kExact: return "exact";
    case CounterKind::kGibbonsTirthapura: return "gibbons-tirthapura";
    case CounterKind::kFmPcsa: return "fm-pcsa";
    case CounterKind::kAmsF0: return "ams-f0";
    case CounterKind::kBjkst: return "bjkst";
    case CounterKind::kKmv: return "kmv";
    case CounterKind::kLinearCounting: return "linear-counting";
    case CounterKind::kHyperLogLog: return "hyperloglog";
  }
  return "unknown";
}

const std::vector<CounterKind>& all_sketch_kinds() {
  static const std::vector<CounterKind> kinds = {
      CounterKind::kGibbonsTirthapura, CounterKind::kFmPcsa,         CounterKind::kAmsF0,
      CounterKind::kBjkst,             CounterKind::kKmv,            CounterKind::kLinearCounting,
      CounterKind::kHyperLogLog,
  };
  return kinds;
}

void GtCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const GtCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr, "merge requires another GT counter");
  est_.merge(o->est_);
}

std::unique_ptr<DistinctCounter> make_counter_for_epsilon(CounterKind kind, double epsilon,
                                                          std::uint64_t seed,
                                                          std::size_t expected_max_f0) {
  USTREAM_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  constexpr double kDelta = 0.05;
  switch (kind) {
    case CounterKind::kExact:
      return std::make_unique<ExactDistinctCounter>();
    case CounterKind::kGibbonsTirthapura:
      return std::make_unique<GtCounter>(EstimatorParams::for_guarantee(epsilon, kDelta, seed));
    case CounterKind::kFmPcsa: {
      // PCSA standard error ~0.78/sqrt(m).
      const double m = 0.78 * 0.78 / (epsilon * epsilon);
      return std::make_unique<FmPcsaCounter>(
          ceil_pow2(static_cast<std::uint64_t>(std::ceil(std::max(m, 2.0)))), seed);
    }
    case CounterKind::kAmsF0:
      // Constant-factor regardless of epsilon; copies only tighten delta.
      return std::make_unique<AmsF0Counter>(EstimatorParams::copies_for_delta(kDelta), seed);
    case CounterKind::kBjkst:
      return std::make_unique<BjkstCounter>(EstimatorParams::capacity_for_epsilon(epsilon),
                                            seed);
    case CounterKind::kKmv: {
      // KMV standard error ~1/sqrt(k-2).
      const auto k = static_cast<std::size_t>(std::ceil(1.0 / (epsilon * epsilon))) + 2;
      return std::make_unique<KmvCounter>(k, seed);
    }
    case CounterKind::kLinearCounting: {
      // Load factor ~ n/m; keep m comparable to the largest cardinality the
      // experiment will feed it (bitmap must not saturate).
      const std::size_t bits = std::max<std::size_t>(expected_max_f0 * 2, 1024);
      return std::make_unique<LinearCountingCounter>(bits, seed);
    }
    case CounterKind::kHyperLogLog: {
      // HLL standard error ~1.04/sqrt(m) => m = (1.04/eps)^2.
      const double m = 1.04 * 1.04 / (epsilon * epsilon);
      int p = ceil_log2(static_cast<std::uint64_t>(std::ceil(std::max(m, 16.0))));
      p = std::clamp(p, 4, 18);
      return std::make_unique<HyperLogLogCounter>(p, seed);
    }
  }
  throw InvalidArgument("unknown counter kind");
}

std::unique_ptr<DistinctCounter> make_counter_for_space(CounterKind kind, std::size_t bytes,
                                                        std::uint64_t seed) {
  USTREAM_REQUIRE(bytes >= 256, "space budget must be at least 256 bytes");
  switch (kind) {
    case CounterKind::kExact:
      return std::make_unique<ExactDistinctCounter>();
    case CounterKind::kGibbonsTirthapura: {
      // State is dominated by `copies` DenseMaps of `capacity` entries;
      // an entry (label + slot + probe share) is ~16 bytes. Use 5 copies
      // for a mild median boost and give the rest to capacity.
      EstimatorParams p;
      p.copies = 5;
      p.capacity = std::max<std::size_t>(bytes / (p.copies * 16), 4);
      p.seed = seed;
      return std::make_unique<GtCounter>(p);
    }
    case CounterKind::kFmPcsa:
      return std::make_unique<FmPcsaCounter>(std::max<std::uint64_t>(ceil_pow2(bytes / 8), 2),
                                             seed);
    case CounterKind::kAmsF0:
      return std::make_unique<AmsF0Counter>(std::max<std::size_t>(bytes / 24, 1), seed);
    case CounterKind::kBjkst:
      // Fingerprint entries are ~8 bytes of map state.
      return std::make_unique<BjkstCounter>(std::max<std::size_t>(bytes / 8, 4), seed);
    case CounterKind::kKmv:
      return std::make_unique<KmvCounter>(std::max<std::size_t>(bytes / 16, 2), seed);
    case CounterKind::kLinearCounting:
      return std::make_unique<LinearCountingCounter>(std::max<std::size_t>(bytes * 8, 64),
                                                     seed);
    case CounterKind::kHyperLogLog: {
      int p = floor_log2(std::max<std::uint64_t>(bytes, 16));
      p = std::clamp(p, 4, 18);
      return std::make_unique<HyperLogLogCounter>(p, seed);
    }
  }
  throw InvalidArgument("unknown counter kind");
}

}  // namespace ustream
