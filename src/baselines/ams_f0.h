// Alon-Matias-Szegedy F0 estimator (1996) — the other baseline the paper
// names. AMS showed that with only pairwise-independent hashing, tracking
// R = max rho(h(x)) and outputting 2^R approximates F0 to within a CONSTANT
// factor (with constant probability); it cannot be tuned to arbitrary
// epsilon. The Gibbons-Tirthapura contribution is precisely removing that
// limitation at the same independence assumption. E6 exhibits the constant-
// factor error floor empirically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/distinct_counter.h"
#include "hash/pairwise.h"

namespace ustream {

class AmsF0Counter final : public DistinctCounter {
 public:
  // `copies` independent pairwise hashes; the estimate is the median of the
  // per-copy values 2^(R_i + 1/2).
  AmsF0Counter(std::size_t copies, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "ams-f0"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  int max_rho(std::size_t copy) const { return rho_[copy]; }
  std::size_t copies() const noexcept { return rho_.size(); }

 private:
  std::vector<PairwiseHash> hashes_;
  std::vector<int> rho_;  // max trailing-zero count seen per copy
  std::uint64_t seed_;
};

}  // namespace ustream
