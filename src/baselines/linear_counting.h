// Linear counting (Whang et al. 1990): an m-bit bitmap; item x sets bit
// h(x) mod m; estimate m * ln(m / empty_bits). Accurate while the bitmap
// is sparse-to-moderately loaded, but space is LINEAR in F0 for fixed
// relative error — the contrast with logarithmic-space sketches that E6's
// space column makes visible.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/distinct_counter.h"

namespace ustream {

class LinearCountingCounter final : public DistinctCounter {
 public:
  LinearCountingCounter(std::size_t bits, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "linear-counting"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t bits_set() const noexcept { return set_bits_; }

 private:
  std::size_t bits_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> words_;
  std::size_t set_bits_ = 0;
};

}  // namespace ustream
