// Common interface for distinct-counting sketches, so experiment E6 can run
// the Gibbons-Tirthapura estimator and every baseline through one harness.
//
// The interface is deliberately the lowest common denominator (add /
// estimate / merge / bytes): several baselines cannot do what the
// coordinated sample can (per-label predicates, SumDistinct, coordinated
// set expressions) — that asymmetry is part of the paper's point and is
// discussed in EXPERIMENTS.md rather than papered over here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace ustream {

class DistinctCounter {
 public:
  virtual ~DistinctCounter() = default;

  virtual void add(std::uint64_t label) = 0;

  // Batched ingestion: must be observably identical to calling add() per
  // label in order (same estimate, same internal state). The default just
  // loops; concrete counters override with hash-block implementations so
  // the throughput harness can compare every sketch on the same API.
  virtual void add_batch(std::span<const std::uint64_t> labels) {
    for (const std::uint64_t label : labels) add(label);
  }

  virtual double estimate() const = 0;

  // Folds `other` (which must be the same concrete type, built with the
  // same parameters/seed) into this counter. Throws InvalidArgument
  // otherwise. Exact/PCSA/LC/HLL/KMV and the coordinated sampler are all
  // mergeable; merge is the backbone of the distributed experiments.
  virtual void merge(const DistinctCounter& other) = 0;

  // In-memory footprint for space-accuracy tradeoff tables.
  virtual std::size_t bytes_used() const = 0;

  virtual std::string name() const = 0;

  // Fresh counter with identical parameters and seed (for per-site sketches
  // in distributed runs).
  virtual std::unique_ptr<DistinctCounter> clone_empty() const = 0;
};

}  // namespace ustream
