// HyperLogLog (Flajolet et al. 2007): the modern production descendant of
// FM sketching. 2^p six-bit registers (stored as bytes here), harmonic-mean
// estimate with the alpha_m bias constant and linear-counting small-range
// correction. Included to situate the 2001 coordinated sampler against
// what practice eventually adopted: HLL wins on space-per-accuracy for
// plain F0, but (like PCSA) relies on empirically-strong hashing and
// supports none of the coordinated sample's label-level queries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/distinct_counter.h"

namespace ustream {

class HyperLogLogCounter final : public DistinctCounter {
 public:
  // precision p in [4, 18]: 2^p registers.
  HyperLogLogCounter(int precision, std::uint64_t seed);

  void add(std::uint64_t label) override;
  void add_batch(std::span<const std::uint64_t> labels) override;
  double estimate() const override;
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override;
  std::string name() const override { return "hyperloglog"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override;

  int precision() const noexcept { return precision_; }
  std::uint8_t register_at(std::size_t i) const { return registers_.at(i); }

 private:
  int precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace ustream
