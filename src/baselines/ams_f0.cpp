#include "baselines/ams_f0.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "common/stats.h"
#include "hash/level.h"

namespace ustream {

AmsF0Counter::AmsF0Counter(std::size_t copies, std::uint64_t seed)
    : rho_(copies, -1), seed_(seed) {
  USTREAM_REQUIRE(copies >= 1, "AMS needs at least one copy");
  SeedSequence seeds(seed);
  hashes_.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) hashes_.emplace_back(seeds.child(i));
}

void AmsF0Counter::add(std::uint64_t label) {
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    const int rho = hash_level(hashes_[i](label), PairwiseHash::kBits);
    rho_[i] = std::max(rho_[i], rho);
  }
}

void AmsF0Counter::add_batch(std::span<const std::uint64_t> labels) {
  // Copies-outer: each copy scans the block with its hash coefficients and
  // running max in registers; the single writeback replaces a read-modify-
  // write of rho_[i] per item.
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    const PairwiseHash hash = hashes_[i];
    int r = rho_[i];
    for (const std::uint64_t label : labels) {
      r = std::max(r, hash_level(hash(label), PairwiseHash::kBits));
    }
    rho_[i] = r;
  }
}

double AmsF0Counter::estimate() const {
  std::vector<double> ests;
  ests.reserve(rho_.size());
  for (int r : rho_) {
    // No items yet -> estimate 0; otherwise 2^(R + 1/2) (the 1/2 centers
    // the geometric rounding).
    ests.push_back(r < 0 ? 0.0 : std::pow(2.0, static_cast<double>(r) + 0.5));
  }
  return median_of(std::move(ests));
}

void AmsF0Counter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const AmsF0Counter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->rho_.size() == rho_.size() && o->seed_ == seed_,
                  "merge requires an AMS counter with identical parameters");
  for (std::size_t i = 0; i < rho_.size(); ++i) rho_[i] = std::max(rho_[i], o->rho_[i]);
}

std::size_t AmsF0Counter::bytes_used() const {
  return sizeof(*this) + hashes_.capacity() * sizeof(PairwiseHash) +
         rho_.capacity() * sizeof(int);
}

std::unique_ptr<DistinctCounter> AmsF0Counter::clone_empty() const {
  return std::make_unique<AmsF0Counter>(rho_.size(), seed_);
}

}  // namespace ustream
