// Construction helpers for the baseline-comparison experiments (E6):
// build any counter either (a) sized by its own theory for a target
// epsilon, or (b) sized to a common byte budget for an equal-space shootout.
// Also provides the adapter exposing the Gibbons-Tirthapura estimator
// through the DistinctCounter interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/distinct_counter.h"
#include "core/f0_estimator.h"

namespace ustream {

enum class CounterKind {
  kExact,
  kGibbonsTirthapura,
  kFmPcsa,
  kAmsF0,
  kBjkst,
  kKmv,
  kLinearCounting,
  kHyperLogLog,
};

std::string to_string(CounterKind kind);
// All sketch kinds (excludes kExact), in presentation order.
const std::vector<CounterKind>& all_sketch_kinds();

// Adapter: the paper's estimator behind the common interface.
class GtCounter final : public DistinctCounter {
 public:
  explicit GtCounter(const EstimatorParams& params) : est_(params) {}

  void add(std::uint64_t label) override { est_.add(label); }
  void add_batch(std::span<const std::uint64_t> labels) override {
    est_.add_batch(labels);
  }
  double estimate() const override { return est_.estimate(); }
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override { return est_.bytes_used(); }
  std::string name() const override { return "gibbons-tirthapura"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override {
    return std::make_unique<GtCounter>(est_.params());
  }

  const F0Estimator& estimator() const noexcept { return est_; }

 private:
  F0Estimator est_;
};

// Counter sized by its own published analysis for relative error ~epsilon
// (delta fixed at a conventional value where the sketch has a delta knob).
// kAmsF0 ignores epsilon (constant-factor by design); kLinearCounting
// sizes its bitmap for the given expected maximum cardinality.
std::unique_ptr<DistinctCounter> make_counter_for_epsilon(CounterKind kind, double epsilon,
                                                          std::uint64_t seed,
                                                          std::size_t expected_max_f0 = 1 << 24);

// Counter sized to approximately `bytes` of state (equal-space shootout).
std::unique_ptr<DistinctCounter> make_counter_for_space(CounterKind kind, std::size_t bytes,
                                                        std::uint64_t seed);

}  // namespace ustream
