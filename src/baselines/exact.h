// Exact distinct counter: a hash set of every label seen. Linear space —
// the thing every sketch in this repository exists to avoid — but the
// source of ground truth whenever the workload generator can't supply it.
#pragma once

#include <memory>

#include "baselines/distinct_counter.h"
#include "common/dense_map.h"

namespace ustream {

class ExactDistinctCounter final : public DistinctCounter {
 public:
  ExactDistinctCounter() = default;

  void add(std::uint64_t label) override { set_.insert(label); }
  // No hashing to batch here — the override only skips the virtual call
  // per label.
  void add_batch(std::span<const std::uint64_t> labels) override {
    for (const std::uint64_t label : labels) set_.insert(label);
  }
  double estimate() const override { return static_cast<double>(set_.size()); }
  void merge(const DistinctCounter& other) override;
  std::size_t bytes_used() const override { return sizeof(*this) + set_.bytes_used(); }
  std::string name() const override { return "exact"; }
  std::unique_ptr<DistinctCounter> clone_empty() const override {
    return std::make_unique<ExactDistinctCounter>();
  }

  std::uint64_t count() const noexcept { return set_.size(); }
  bool contains(std::uint64_t label) const noexcept { return set_.contains(label); }

 private:
  DenseSet set_;
};

}  // namespace ustream
