#include "baselines/exact.h"

#include "common/error.h"

namespace ustream {

void ExactDistinctCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const ExactDistinctCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr, "merge requires another ExactDistinctCounter");
  o->set_.for_each([this](std::uint64_t label) { set_.insert(label); });
}

}  // namespace ustream
