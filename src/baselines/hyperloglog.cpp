#include "baselines/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "hash/mix.h"

namespace ustream {

HyperLogLogCounter::HyperLogLogCounter(int precision, std::uint64_t seed)
    : precision_(precision), seed_(seed),
      registers_(std::size_t{1} << precision, 0) {
  USTREAM_REQUIRE(precision >= 4 && precision <= 18, "HLL precision must be in [4,18]");
}

void HyperLogLogCounter::add(std::uint64_t label) {
  const std::uint64_t h = murmur_mix64_seeded(label, seed_);
  const std::size_t bucket = h >> (64 - precision_);
  const std::uint64_t rest = h << precision_;
  // rho = 1 + number of leading zeros of the remaining bits.
  const int rho = rest == 0 ? (64 - precision_ + 1) : std::countl_zero(rest) + 1;
  registers_[bucket] = std::max(registers_[bucket], static_cast<std::uint8_t>(rho));
}

void HyperLogLogCounter::add_batch(std::span<const std::uint64_t> labels) {
  constexpr std::size_t kBlock = 32;
  std::uint64_t h[kBlock];
  const std::uint64_t seed = seed_;
  const int precision = precision_;
  for (std::size_t i = 0; i < labels.size(); i += kBlock) {
    const std::size_t n = std::min(kBlock, labels.size() - i);
    for (std::size_t j = 0; j < n; ++j) h[j] = murmur_mix64_seeded(labels[i + j], seed);
    for (std::size_t j = 0; j < n; ++j) {
      const auto bucket = static_cast<std::size_t>(h[j] >> (64 - precision));
      const std::uint64_t rest = h[j] << precision;
      const int rho = rest == 0 ? (64 - precision + 1) : std::countl_zero(rest) + 1;
      registers_[bucket] = std::max(registers_[bucket], static_cast<std::uint8_t>(rho));
    }
  }
}

double HyperLogLogCounter::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double alpha;
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);
  const double raw = alpha * m * m / inv_sum;
  // Small-range correction: fall back to linear counting.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLogCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const HyperLogLogCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->precision_ == precision_ && o->seed_ == seed_,
                  "merge requires an HLL counter with identical parameters");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], o->registers_[i]);
  }
}

std::size_t HyperLogLogCounter::bytes_used() const {
  return sizeof(*this) + registers_.capacity();
}

std::unique_ptr<DistinctCounter> HyperLogLogCounter::clone_empty() const {
  return std::make_unique<HyperLogLogCounter>(precision_, seed_);
}

}  // namespace ustream
