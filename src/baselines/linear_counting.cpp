#include "baselines/linear_counting.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"
#include "hash/mix.h"

namespace ustream {

LinearCountingCounter::LinearCountingCounter(std::size_t bits, std::uint64_t seed)
    : bits_(bits), seed_(seed), words_((bits + 63) / 64, 0) {
  USTREAM_REQUIRE(bits >= 64, "linear counting needs at least 64 bits");
}

void LinearCountingCounter::add(std::uint64_t label) {
  const std::uint64_t h = murmur_mix64_seeded(label, seed_) % bits_;
  const std::uint64_t mask = std::uint64_t{1} << (h & 63);
  std::uint64_t& word = words_[h >> 6];
  if (!(word & mask)) {
    word |= mask;
    ++set_bits_;
  }
}

void LinearCountingCounter::add_batch(std::span<const std::uint64_t> labels) {
  constexpr std::size_t kBlock = 32;
  std::uint64_t h[kBlock];
  const std::uint64_t seed = seed_;
  const std::uint64_t bits = bits_;
  for (std::size_t i = 0; i < labels.size(); i += kBlock) {
    const std::size_t n = std::min(kBlock, labels.size() - i);
    for (std::size_t j = 0; j < n; ++j) {
      h[j] = murmur_mix64_seeded(labels[i + j], seed) % bits;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t mask = std::uint64_t{1} << (h[j] & 63);
      std::uint64_t& word = words_[h[j] >> 6];
      if (!(word & mask)) {
        word |= mask;
        ++set_bits_;
      }
    }
  }
}

double LinearCountingCounter::estimate() const {
  const auto m = static_cast<double>(bits_);
  const auto empty = static_cast<double>(bits_ - set_bits_);
  if (empty <= 0.0) {
    // Bitmap saturated: report the (divergent) upper end of the range.
    return m * std::log(m);
  }
  return m * std::log(m / empty);
}

void LinearCountingCounter::merge(const DistinctCounter& other) {
  const auto* o = dynamic_cast<const LinearCountingCounter*>(&other);
  USTREAM_REQUIRE(o != nullptr && o->bits_ == bits_ && o->seed_ == seed_,
                  "merge requires a linear-counting counter with identical parameters");
  set_bits_ = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= o->words_[i];
    set_bits_ += static_cast<std::size_t>(std::popcount(words_[i]));
  }
}

std::size_t LinearCountingCounter::bytes_used() const {
  return sizeof(*this) + words_.capacity() * sizeof(std::uint64_t);
}

std::unique_ptr<DistinctCounter> LinearCountingCounter::clone_empty() const {
  return std::make_unique<LinearCountingCounter>(bits_, seed_);
}

}  // namespace ustream
