// FaultyChannel — the in-process mailbox with a hostile network inside.
//
// Same Transport interface as Channel, but every send() rolls seeded,
// per-site-configurable dice and may drop, duplicate, reorder, truncate or
// bit-flip the message before it reaches the referee's mailbox. All
// randomness comes from one Xoshiro256 seeded at construction, so a soak
// run is exactly reproducible from (workload seed, fault seed).
//
// Accounting: ChannelStats counts every send() attempt (what the model
// pays); FaultStats counts what the "network" did to those attempts. A
// message can suffer several faults at once (truncated AND reordered); each
// injected fault increments its own counter.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "distributed/transport.h"

namespace ustream {

// Independent per-fault probabilities, each in [0, 1].
struct FaultSpec {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // a second copy is delivered
  double reorder = 0.0;    // delivered at a random mailbox position
  double truncate = 0.0;   // delivered with a random-length tail cut off
  double bit_flip = 0.0;   // delivered with 1..8 random bits flipped

  // Uniform corruption-style shorthand used by the soak matrix.
  static FaultSpec dropping(double p) { return {.drop = p}; }
  static FaultSpec duplicating(double p) { return {.duplicate = p}; }
  static FaultSpec corrupting(double p) { return {.truncate = p / 2, .bit_flip = p / 2}; }
  static FaultSpec chaos(double p) {
    return {.drop = p, .duplicate = p, .reorder = p, .truncate = p / 2, .bit_flip = p / 2};
  }
};

struct FaultStats {
  std::uint64_t sends = 0;       // attempts observed
  std::uint64_t delivered = 0;   // copies that reached the mailbox (incl. duplicates)
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
  std::uint64_t bit_flipped = 0;

  std::uint64_t injected() const noexcept {
    return dropped + duplicated + reordered + truncated + bit_flipped;
  }
  std::uint64_t corrupted() const noexcept { return truncated + bit_flipped; }
};

class FaultyChannel final : public Transport {
 public:
  FaultyChannel(std::size_t sites, const FaultSpec& spec, std::uint64_t seed);

  // Overrides the fault mix for one site (e.g. one flaky monitor in an
  // otherwise healthy fleet).
  void set_site_faults(std::size_t site, const FaultSpec& spec);

  void send(std::size_t from_site, std::vector<std::uint8_t> payload) override;
  std::vector<std::vector<std::uint8_t>> drain() override;
  ChannelStats stats() const override;
  std::size_t num_sites() const noexcept override { return site_specs_.size(); }

  FaultStats fault_stats() const;

 private:
  void deliver(std::vector<std::uint8_t> payload, bool reordered);

  mutable std::mutex mu_;
  std::vector<FaultSpec> site_specs_;
  Xoshiro256 rng_;
  std::vector<std::vector<std::uint8_t>> mailbox_;
  ChannelStats stats_;
  FaultStats faults_;
};

}  // namespace ustream
