// Transport — the seam between the protocol layer and whatever carries the
// bytes. The referee-side protocols (DistributedRun, ContinuousUnionMonitor)
// talk only to this interface; Channel is the perfect in-process mailbox the
// paper's model assumes, FaultyChannel is the same mailbox with seeded
// drop/duplicate/reorder/truncate/bit-flip faults for soak testing.
//
// Stats account every send() ATTEMPT (a retry is a real transmission the
// model must pay for), so E4's "message cost per party" stays honest under
// retransmission.
#pragma once

#include <cstdint>
#include <vector>

namespace ustream {

struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t max_message_bytes = 0;
  std::vector<std::uint64_t> bytes_per_site;

  double mean_message_bytes() const noexcept {
    return messages == 0 ? 0.0
                         : static_cast<double>(total_bytes) / static_cast<double>(messages);
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Site -> referee. Thread-safe: sites may finish concurrently. Throws
  // ProtocolError if from_site is not a registered site.
  virtual void send(std::size_t from_site, std::vector<std::uint8_t> message) = 0;

  // Referee side: take all pending messages.
  virtual std::vector<std::vector<std::uint8_t>> drain() = 0;

  virtual ChannelStats stats() const = 0;
  virtual std::size_t num_sites() const noexcept = 0;
};

}  // namespace ustream
