// DistributedRun — the end-to-end shape of the paper's model for any
// mergeable, serializable sketch:
//
//   1. each of t sites owns a private sketch built from the SAME root seed
//      (the coordination contract) and observes only its own stream;
//   2. when a site's stream ends, it serializes its sketch and sends the
//      bytes to the referee over the accounted Channel — one message per
//      site, nothing before that;
//   3. the referee deserializes and merges all t sketches and answers
//      queries about the UNION of the streams.
//
// Sketch requirements (concept UnionSketch): add-like mutators (left to the
// caller), serialize() -> bytes, static deserialize(span), merge(Sketch).
// F0Estimator, DistinctSumEstimator and RangeF0Estimator all satisfy it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/error.h"
#include "distributed/channel.h"

namespace ustream {

template <typename S>
concept UnionSketch = requires(S s, const S cs, std::span<const std::uint8_t> bytes) {
  { cs.serialize() } -> std::convertible_to<std::vector<std::uint8_t>>;
  { S::deserialize(bytes) } -> std::convertible_to<S>;
  s.merge(cs);
};

template <UnionSketch Sketch>
class DistributedRun {
 public:
  // `make_sketch` must produce identically-parameterized sketches (same
  // root seed) — sites clone the referee's configuration, never invent
  // their own, mirroring how a deployment ships one config to all monitors.
  DistributedRun(std::size_t sites, const std::function<Sketch()>& make_sketch)
      : channel_(sites) {
    USTREAM_REQUIRE(sites >= 1, "need at least one site");
    sites_.reserve(sites);
    for (std::size_t i = 0; i < sites; ++i) sites_.push_back(make_sketch());
  }

  std::size_t num_sites() const noexcept { return sites_.size(); }

  // Mutable access to site i's sketch during the observation phase.
  Sketch& site(std::size_t i) {
    USTREAM_REQUIRE(!collected_, "observation phase is over");
    return sites_.at(i);
  }

  // Ends the observation phase: every site ships its sketch; the referee
  // merges. Idempotent via the collected_ latch.
  const Sketch& collect() {
    if (!collected_) {
      for (std::size_t i = 0; i < sites_.size(); ++i) {
        channel_.send(i, sites_[i].serialize());
      }
      for (auto& payload : channel_.drain()) {
        Sketch s = Sketch::deserialize(std::span<const std::uint8_t>(payload));
        if (!referee_) {
          referee_.emplace(std::move(s));
        } else {
          referee_->merge(s);
        }
      }
      collected_ = true;
    }
    return *referee_;
  }

  bool collected() const noexcept { return collected_; }
  ChannelStats channel_stats() const { return channel_.stats(); }

 private:
  std::vector<Sketch> sites_;
  Channel channel_;
  std::optional<Sketch> referee_;
  bool collected_ = false;
};

// Feeds per-site workloads concurrently, one thread per site — each site's
// sketch is touched only by its own thread, exactly the isolation the model
// prescribes. `feed(site_index, sketch)` must only touch that sketch.
template <UnionSketch Sketch>
void observe_in_parallel(DistributedRun<Sketch>& run,
                         const std::function<void(std::size_t, Sketch&)>& feed) {
  std::vector<std::thread> threads;
  threads.reserve(run.num_sites());
  for (std::size_t i = 0; i < run.num_sites(); ++i) {
    threads.emplace_back([&run, &feed, i] { feed(i, run.site(i)); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace ustream
