// DistributedRun — the end-to-end shape of the paper's model for any
// mergeable, serializable sketch:
//
//   1. each of t sites owns a private sketch built from the SAME root seed
//      (the coordination contract) and observes only its own stream;
//   2. when a site's stream ends, it serializes its sketch, wraps it in a
//      checksummed wire frame (common/frame.h) and sends it to the referee
//      over the Transport — one LOGICAL message per site; the transport may
//      require retransmissions, and the referee dedups by (site, epoch) so
//      each site is merged exactly once;
//   3. the referee validates frames (quarantining any that fail CRC or
//      decode), merges the accepted sketches in site order, and answers
//      queries about the UNION of the streams. If some sites never get a
//      frame through within the retry budget, the merge proceeds without
//      them: the estimate is then a certified lower bound and the
//      CollectReport says exactly which prefixes are missing.
//
// Sketch requirements (concept UnionSketch): add-like mutators (left to the
// caller), serialize() -> bytes, static deserialize(span), merge(Sketch).
// F0Estimator, DistinctSumEstimator and RangeF0Estimator all satisfy it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/frame.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "distributed/channel.h"
#include "distributed/collect.h"
#include "distributed/transport.h"

namespace ustream {

template <typename S>
concept UnionSketch = requires(S s, const S cs, std::span<const std::uint8_t> bytes) {
  { cs.serialize() } -> std::convertible_to<std::vector<std::uint8_t>>;
  { S::deserialize(bytes) } -> std::convertible_to<S>;
  s.merge(cs);
};

// Frame-layer type tag for a sketch, so a frame of one protocol cannot be
// fed to another even when both payloads happen to parse. Unregistered
// sketch types travel as kOpaque (still CRC-protected, just untyped).
template <typename Sketch>
struct FrameKindOf {
  static constexpr PayloadKind value = PayloadKind::kOpaque;
};
template <typename Hash>
struct FrameKindOf<BasicF0Estimator<Hash>> {
  static constexpr PayloadKind value = PayloadKind::kF0Estimator;
};
template <typename Hash, typename V>
struct FrameKindOf<BasicDistinctSumEstimator<Hash, V>> {
  static constexpr PayloadKind value = PayloadKind::kDistinctSum;
};

template <UnionSketch Sketch>
class DistributedRun {
 public:
  // `make_sketch` must produce identically-parameterized sketches (same
  // root seed) — sites clone the referee's configuration, never invent
  // their own, mirroring how a deployment ships one config to all monitors.
  // The default transport is the perfect in-process Channel; pass a
  // FaultyChannel to soak the collection protocol.
  DistributedRun(std::size_t sites, const std::function<Sketch()>& make_sketch,
                 std::unique_ptr<Transport> transport = nullptr)
      : make_sketch_(make_sketch),
        transport_(transport ? std::move(transport) : std::make_unique<Channel>(sites)) {
    USTREAM_REQUIRE(sites >= 1, "need at least one site");
    USTREAM_REQUIRE(transport_->num_sites() == sites,
                    "transport site count does not match the run");
    sites_.reserve(sites);
    for (std::size_t i = 0; i < sites; ++i) sites_.push_back(make_sketch_());
  }

  std::size_t num_sites() const noexcept { return sites_.size(); }

  // Mutable access to site i's sketch during the observation phase.
  Sketch& site(std::size_t i) {
    if (collected_) {
      throw ProtocolError("observation phase is over: site sketches are sealed after collect()");
    }
    return sites_.at(i);
  }

  // Ends the observation phase: every site ships its framed sketch; the
  // referee retries per policy, dedups by (site, epoch), quarantines
  // corrupt frames and merges whatever arrived in site order — on the
  // merge engine's pool (tree reduction, byte-identical to the sequential
  // fold; pass an engine to control pool size). Idempotent via the
  // collected_ latch (the report of the first collect() stands).
  const Sketch& collect(const RetryPolicy& policy = RetryPolicy{},
                        MergeEngine* engine = nullptr) {
    if (collected_) return *referee_;
    CollectState state(sites_.size(), FrameKindOf<Sketch>::value, DedupMode::kExactlyOnce);
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(sites_.size());
    for (const Sketch& s : sites_) payloads.push_back(s.serialize());
    std::vector<std::optional<Sketch>> accepted(sites_.size());
    const auto ingest_drained = [&] {
      for (const auto& message : transport_->drain()) {
        auto acc = state.ingest(message);
        if (!acc) continue;
        try {
          accepted[acc->site].emplace(
              Sketch::deserialize(std::span<const std::uint8_t>(acc->payload)));
        } catch (const SerializationError&) {
          // CRC passed but the payload would not parse (a 2^-32 CRC
          // collision on a corrupted frame): quarantine and let the retry
          // loop reopen the site rather than poisoning the merge.
          state.reject_accepted(acc->site);
        }
      }
    };

    for (std::uint32_t round = 0; round < policy.max_attempts_per_site; ++round) {
      if (round > 0) apply_backoff(policy, round);
      bool sent_any = false;
      for (std::size_t i = 0; i < sites_.size(); ++i) {
        if (state.site_reported(i)) continue;
        state.record_send(i);
        transport_->send(i, frame_encode({FrameKindOf<Sketch>::value,
                                          static_cast<std::uint32_t>(i), /*epoch=*/0},
                                         payloads[i]));
        sent_any = true;
      }
      if (!sent_any) break;
      ingest_drained();
      if (state.all_reported()) break;
    }
    state.finalize(policy.max_attempts_per_site);

    // Tree-reduce in site order on the engine's pool: bit-identical to
    // the sequential site-order fold regardless of delivery order, pool
    // size or scheduling (merge_engine.h).
    referee_ = state.finish(std::move(accepted),
                            engine ? *engine : MergeEngine::shared());
    // Total loss still yields a queryable (empty) referee — maximally
    // degraded, and the report says so.
    if (!referee_) referee_.emplace(make_sketch_());
    report_ = std::move(state.report());
    collected_ = true;
    return *referee_;
  }

  // The merged union sketch; referee state only exists after collect().
  const Sketch& referee() const {
    if (!collected_) {
      throw ProtocolError("referee queried before collection: call collect() first");
    }
    return *referee_;
  }

  // How collection went: reported/missing sites, retries, quarantined and
  // deduplicated frames. Only meaningful after collect().
  const CollectReport& collect_report() const {
    if (!collected_) {
      throw ProtocolError("collect report requested before collection");
    }
    return report_;
  }

  bool collected() const noexcept { return collected_; }
  ChannelStats channel_stats() const { return transport_->stats(); }
  Transport& transport() noexcept { return *transport_; }

 private:
  std::function<Sketch()> make_sketch_;
  std::vector<Sketch> sites_;
  std::unique_ptr<Transport> transport_;
  std::optional<Sketch> referee_;
  CollectReport report_;
  bool collected_ = false;
};

// Feeds per-site workloads concurrently, one thread per site — each site's
// sketch is touched only by its own thread, exactly the isolation the model
// prescribes. `feed(site_index, sketch)` must only touch that sketch.
template <UnionSketch Sketch>
void observe_in_parallel(DistributedRun<Sketch>& run,
                         const std::function<void(std::size_t, Sketch&)>& feed) {
  std::vector<std::thread> threads;
  threads.reserve(run.num_sites());
  for (std::size_t i = 0; i < run.num_sites(); ++i) {
    threads.emplace_back([&run, &feed, i] { feed(i, run.site(i)); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace ustream
