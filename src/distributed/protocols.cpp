#include "distributed/protocols.h"

#include "common/stats.h"

namespace ustream {

UnionRunResult run_f0_union(const DistributedWorkload& workload, const EstimatorParams& params,
                            bool parallel_sites) {
  DistributedRun<F0Estimator> run(workload.site_streams.size(),
                                  [&params] { return F0Estimator(params); });
  const auto feed = [&workload](std::size_t site, F0Estimator& sketch) {
    for (const Item& item : workload.site_streams[site]) sketch.add(item.label);
  };
  if (parallel_sites) {
    observe_in_parallel<F0Estimator>(run, feed);
  } else {
    for (std::size_t s = 0; s < run.num_sites(); ++s) feed(s, run.site(s));
  }
  UnionRunResult out;
  out.estimate = run.collect().estimate();
  out.truth = static_cast<double>(workload.union_distinct);
  out.relative_error = relative_error(out.estimate, out.truth);
  out.channel = run.channel_stats();
  return out;
}

UnionRunResult run_distinct_sum_union(const DistributedWorkload& workload,
                                      const EstimatorParams& params, bool parallel_sites) {
  DistributedRun<DistinctSumEstimator> run(workload.site_streams.size(),
                                           [&params] { return DistinctSumEstimator(params); });
  const auto feed = [&workload](std::size_t site, DistinctSumEstimator& sketch) {
    for (const Item& item : workload.site_streams[site]) sketch.add(item.label, item.value);
  };
  if (parallel_sites) {
    observe_in_parallel<DistinctSumEstimator>(run, feed);
  } else {
    for (std::size_t s = 0; s < run.num_sites(); ++s) feed(s, run.site(s));
  }
  UnionRunResult out;
  out.estimate = run.collect().estimate_sum();
  out.truth = workload.union_sum_distinct;
  out.relative_error = relative_error(out.estimate, out.truth);
  out.channel = run.channel_stats();
  return out;
}

}  // namespace ustream
