// The communication substrate of the distributed-streams model.
//
// The model's only resource besides per-site memory is communication:
// after observing its entire stream, each party sends ONE message (its
// serialized sketch) to the referee. The Channel is an in-process stand-in
// for the network that charges exactly those bytes — E4's "message cost per
// party" column reads ChannelStats. (Substitution note in DESIGN.md: a real
// monitor deployment is replaced by this accounted in-process transport,
// which preserves the model's observable: message count and size.)
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace ustream {

struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t max_message_bytes = 0;
  std::vector<std::uint64_t> bytes_per_site;

  double mean_message_bytes() const noexcept {
    return messages == 0 ? 0.0
                         : static_cast<double>(total_bytes) / static_cast<double>(messages);
  }
};

class Channel {
 public:
  explicit Channel(std::size_t sites) { stats_.bytes_per_site.assign(sites, 0); }

  // Site -> referee. Thread-safe: sites may finish concurrently.
  void send(std::size_t from_site, std::vector<std::uint8_t> payload) {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.messages += 1;
    stats_.total_bytes += payload.size();
    if (payload.size() > stats_.max_message_bytes) stats_.max_message_bytes = payload.size();
    if (from_site < stats_.bytes_per_site.size()) {
      stats_.bytes_per_site[from_site] += payload.size();
    }
    mailbox_.push_back(std::move(payload));
  }

  // Referee side: take all pending messages.
  std::vector<std::vector<std::uint8_t>> drain() {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(mailbox_, {});
  }

  ChannelStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> mailbox_;
  ChannelStats stats_;
};

}  // namespace ustream
