// The communication substrate of the distributed-streams model.
//
// The model's only resource besides per-site memory is communication:
// after observing its entire stream, each party sends ONE message (its
// serialized sketch) to the referee. The Channel is an in-process stand-in
// for the network that charges exactly those bytes — E4's "message cost per
// party" column reads ChannelStats. (Substitution note in DESIGN.md: a real
// monitor deployment is replaced by this accounted in-process transport,
// which preserves the model's observable: message count and size.)
//
// Channel delivers perfectly and in order. For a transport that drops,
// duplicates, reorders and corrupts, see distributed/faulty_channel.h —
// both implement the Transport interface the protocols are written against.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "distributed/transport.h"

namespace ustream {

class Channel : public Transport {
 public:
  explicit Channel(std::size_t sites) { stats_.bytes_per_site.assign(sites, 0); }

  // Site -> referee. Thread-safe: sites may finish concurrently. A sender
  // outside the registered site set is a protocol violation — rejecting it
  // keeps per-site byte attribution exact instead of silently counting the
  // bytes against nobody.
  void send(std::size_t from_site, std::vector<std::uint8_t> payload) override {
    const std::lock_guard<std::mutex> lock(mu_);
    if (from_site >= stats_.bytes_per_site.size()) {
      throw ProtocolError("send from unregistered site " + std::to_string(from_site) +
                          " (channel has " + std::to_string(stats_.bytes_per_site.size()) +
                          " sites)");
    }
    stats_.messages += 1;
    stats_.total_bytes += payload.size();
    if (payload.size() > stats_.max_message_bytes) stats_.max_message_bytes = payload.size();
    stats_.bytes_per_site[from_site] += payload.size();
    mailbox_.push_back(std::move(payload));
  }

  // Referee side: take all pending messages.
  std::vector<std::vector<std::uint8_t>> drain() override {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(mailbox_, {});
  }

  ChannelStats stats() const override {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t num_sites() const noexcept override { return stats_.bytes_per_site.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> mailbox_;
  ChannelStats stats_;
};

}  // namespace ustream
