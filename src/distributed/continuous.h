// ContinuousUnionMonitor — an extension beyond the paper's one-shot model.
//
// The SPAA'01 model has parties communicate only once, after their streams
// end. Real monitoring products also want a LIVE union estimate. The
// mergeable-sketch property makes the obvious periodic protocol sound:
// every site pushes a fresh snapshot of its sketch after each
// `report_interval` items; the referee keeps the latest snapshot per site
// and answers queries by merging the snapshots it has. The answer is then
// an estimate of the union of the observed PREFIXES — never an overcount —
// and the communication/staleness tradeoff is exactly report_interval.
// (This is the direction later formalized in the continuous distributed
// monitoring literature; here it is the natural corollary of mergeability.)
//
// Fault tolerance: snapshots travel as checksummed frames tagged with
// (site, epoch), epoch increasing per site. The referee quarantines frames
// that fail CRC or decode, drops duplicates, and ignores snapshots older
// than the one it holds (latest-wins), so a dropping/duplicating/reordering
// transport only ever makes the estimate STALER, never wrong: the answer
// stays a prefix-union estimate, and staleness() quantifies the lag.
// flush() adds ack/retry with capped backoff so end-of-stream state
// converges even through a lossy transport.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/channel.h"
#include "distributed/collect.h"
#include "distributed/transport.h"

namespace ustream {

class ContinuousUnionMonitor {
 public:
  // Perfect in-process transport (the original model).
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params);
  // Custom transport (e.g. FaultyChannel) and retry policy for flush().
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params, std::unique_ptr<Transport> transport,
                         const RetryPolicy& policy = RetryPolicy{});

  // Site observes one label; may trigger a snapshot push.
  void observe(std::size_t site, std::uint64_t label);

  // Force every site to push its current state (end-of-stream flush) and
  // retry per policy until each site's final snapshot is acked or its
  // attempt budget is exhausted. Returns the collection status.
  const CollectReport& flush();

  // Union estimate from the snapshots currently at the referee.
  //
  // Incremental: the referee keeps a cached merged union tagged with the
  // epoch of each site's folded snapshot, and a query only re-merges the
  // sites whose snapshot epoch changed since the last call — typically
  // zero or a handful — instead of copying and merging all t snapshots.
  // Folding a site's NEWER snapshot over its older one already in the
  // cache is exact: the older snapshot covers a prefix of the newer one's
  // stream, and sampler state is a duplicate-insensitive pure function of
  // the absorbed label set (DESIGN.md §7), so old ∪ new == new. Verified
  // against estimate_full_remerge() in tests.
  double estimate() const;

  // The non-incremental reference path: copy-and-merge every snapshot on
  // each call. Kept for the equivalence tests and the E8 bench row that
  // measures what the incremental cache saves.
  double estimate_full_remerge() const;

  // Per-site lag: items observed at the site but not yet reflected in the
  // snapshot the referee holds. Grows with drop probability.
  std::vector<std::uint64_t> staleness() const;

  // Live collection status: which sites have a snapshot at the referee,
  // their epochs, quarantine/duplicate/stale counters.
  const CollectReport& status() const noexcept { return state_.report(); }

  ChannelStats channel_stats() const { return transport_->stats(); }
  std::uint64_t snapshots_received() const noexcept { return snapshots_; }

 private:
  void push(std::size_t site);
  void drain_into_referee();
  void accept(std::size_t site, std::uint32_t epoch, std::span<const std::uint8_t> payload);

  EstimatorParams params_;
  std::uint64_t report_interval_;
  RetryPolicy policy_;
  std::vector<F0Estimator> site_sketches_;
  std::vector<std::uint64_t> since_report_;
  std::vector<std::uint64_t> observed_;   // items seen per site
  std::vector<std::uint32_t> epoch_;      // last pushed epoch per site
  // (epoch, items-observed-at-push) per site, pruned once acked: lets
  // staleness() attribute an accepted epoch to the prefix it covered.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> pending_items_;
  std::vector<std::uint64_t> acked_items_;  // items covered by referee snapshot
  std::vector<std::optional<F0Estimator>> referee_snapshots_;
  std::vector<std::uint32_t> referee_epoch_;  // epoch of each held snapshot (0 = none)
  // Incremental query cache (mutable: estimate() is logically const).
  // cached_union_ holds the merge of the snapshots tagged in cached_epoch_;
  // cached_estimate_ is its estimate, recomputed only when a fold happens.
  mutable std::optional<F0Estimator> cached_union_;
  mutable std::vector<std::uint32_t> cached_epoch_;
  mutable double cached_estimate_ = 0.0;
  std::unique_ptr<Transport> transport_;
  CollectState state_;
  std::uint64_t snapshots_ = 0;
};

}  // namespace ustream
