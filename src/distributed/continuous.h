// ContinuousUnionMonitor — an extension beyond the paper's one-shot model.
//
// The SPAA'01 model has parties communicate only once, after their streams
// end. Real monitoring products also want a LIVE union estimate. The
// mergeable-sketch property makes the obvious periodic protocol sound:
// every site pushes a fresh snapshot of its sketch after each
// `report_interval` items; the referee keeps the latest snapshot per site
// and answers queries by merging the snapshots it has. The answer is then
// an estimate of the union of the observed PREFIXES — never an overcount —
// and the communication/staleness tradeoff is exactly report_interval.
// (This is the direction later formalized in the continuous distributed
// monitoring literature; here it is the natural corollary of mergeability.)
//
// Fault tolerance: snapshots travel as checksummed frames tagged with
// (site, epoch), epoch increasing per site. The referee quarantines frames
// that fail CRC or decode, drops duplicates, and ignores snapshots older
// than the one it holds (latest-wins), so a dropping/duplicating/reordering
// transport only ever makes the estimate STALER, never wrong: the answer
// stays a prefix-union estimate, and staleness() quantifies the lag.
// flush() adds ack/retry with capped backoff so end-of-stream state
// converges even through a lossy transport.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "core/windowed_sampler.h"
#include "distributed/channel.h"
#include "distributed/collect.h"
#include "distributed/transport.h"

namespace ustream {

// Site-side state machine of the delta protocol (DESIGN.md §12). Tracks one
// site's estimator against the referee's last-acked mirror and stays SILENT
// until a threshold crossing — any copy raising its level, or any copy's
// sampled set growing by a (1+growth) factor since the last transmission
// (the paper-adjacent trigger: between crossings the referee's copy of the
// site is within (1+growth) of the live one, so the live union estimate
// keeps a multiplicative envelope at all times). When an update is due it
// emits a DELTA against the acked base (PayloadKind::kF0Delta) while the
// chain is intact, and a full frame (kF0Estimator) on first contact or
// after any loss — the resync that re-bases the chain.
//
// Transport-agnostic: callers frame and send the payload, learn the
// verdict (in-process drain, TCP ack byte), and report it back through
// delivered()/lost().
class DeltaSiteSession {
 public:
  DeltaSiteSession(const EstimatorParams& params, double growth);

  // Observes one label. Returns true when the send threshold is crossed —
  // the caller should then transmit next_update(). Non-triggering adds are
  // counted as suppressed updates (the communication the thresholds save).
  bool add(std::uint64_t label);

  struct Outgoing {
    std::vector<std::uint8_t> payload;
    std::uint32_t epoch = 0;
    bool is_delta = false;
  };

  // Builds the next transmission at a fresh epoch: a delta against the
  // acked base when the chain is intact, else a full frame.
  Outgoing next_update();
  // Forces a full frame at a fresh epoch (end-of-stream flush / resync).
  Outgoing next_full();
  // Re-encodes the in-flight full frame at the same epoch (flush retries;
  // the latest-wins referee dedups the retransmissions).
  Outgoing resend();

  // Verdict on the in-flight transmission: delivered() advances the acked
  // base to the state that was sent; lost() pends a full-frame resync.
  void delivered();
  void lost();

  const F0Estimator& sketch() const noexcept { return sketch_; }
  std::uint32_t epoch() const noexcept { return epoch_; }
  // True while the referee's acked base lags the live sketch.
  bool dirty() const noexcept { return !base_.has_value() || items_ != base_items_; }
  bool needs_full() const noexcept { return !base_.has_value() || need_full_; }

  std::uint64_t deltas_sent() const noexcept { return deltas_sent_; }
  std::uint64_t fulls_sent() const noexcept { return fulls_sent_; }
  std::uint64_t resyncs() const noexcept { return resyncs_; }
  std::uint64_t suppressed() const noexcept { return suppressed_; }

 private:
  bool update_due() const;
  std::vector<std::pair<int, std::size_t>> signature() const;

  double growth_;
  F0Estimator sketch_;
  std::optional<F0Estimator> base_;     // the referee's last-acked mirror
  std::optional<F0Estimator> pending_;  // state captured at the in-flight send
  bool pending_full_ = false;
  bool need_full_ = false;
  std::uint32_t epoch_ = 0;
  std::uint64_t items_ = 0;
  std::uint64_t base_items_ = 0;
  std::uint64_t pending_items_count_ = 0;
  // Per-copy (level, size) at the last transmission: the thresholds.
  std::vector<std::pair<int, std::size_t>> sent_sig_;
  std::uint64_t deltas_sent_ = 0;
  std::uint64_t fulls_sent_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t suppressed_ = 0;
};

// Selects the continuous protocol variant.
struct ContinuousMonitorOptions {
  // false: the original periodic full-snapshot protocol (every
  // report_interval items). true: threshold-silent sites sending delta
  // frames, full frames only for resync — communication sublinear in
  // stream length (ROADMAP item 2).
  bool delta_protocol = false;
  // (1+growth) sampled-set growth trigger; the live estimate then stays
  // within a [(1-eps)/(1+growth), (1+eps)] envelope of the exact prefix
  // union (DESIGN.md §12.3). The ISSUE's eps/2 shape: growth = eps/2.
  double growth = 0.5;
};

class ContinuousUnionMonitor {
 public:
  // Perfect in-process transport (the original model).
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params);
  // In-process transport with explicit protocol options.
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params,
                         const ContinuousMonitorOptions& options);
  // Custom transport (e.g. FaultyChannel) and retry policy for flush().
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params, std::unique_ptr<Transport> transport,
                         const RetryPolicy& policy = RetryPolicy{},
                         const ContinuousMonitorOptions& options = ContinuousMonitorOptions{});

  // Site observes one label; may trigger a snapshot push.
  void observe(std::size_t site, std::uint64_t label);

  // Force every site to push its current state (end-of-stream flush) and
  // retry per policy until each site's final snapshot is acked or its
  // attempt budget is exhausted. Returns the collection status.
  const CollectReport& flush();

  // Union estimate from the snapshots currently at the referee.
  //
  // Incremental: the referee keeps a cached merged union tagged with the
  // epoch of each site's folded snapshot, and a query only re-merges the
  // sites whose snapshot epoch changed since the last call — typically
  // zero or a handful — instead of copying and merging all t snapshots.
  // Folding a site's NEWER snapshot over its older one already in the
  // cache is exact: the older snapshot covers a prefix of the newer one's
  // stream, and sampler state is a duplicate-insensitive pure function of
  // the absorbed label set (DESIGN.md §7), so old ∪ new == new. Verified
  // against estimate_full_remerge() in tests.
  double estimate() const;

  // The non-incremental reference path: copy-and-merge every snapshot on
  // each call. Kept for the equivalence tests and the E8 bench row that
  // measures what the incremental cache saves.
  double estimate_full_remerge() const;

  // Per-site lag: items observed at the site but not yet reflected in the
  // snapshot the referee holds. Grows with drop probability.
  std::vector<std::uint64_t> staleness() const;

  // Live collection status: which sites have a snapshot at the referee,
  // their epochs, quarantine/duplicate/stale counters.
  const CollectReport& status() const noexcept { return state_.report(); }

  ChannelStats channel_stats() const { return transport_->stats(); }
  std::uint64_t snapshots_received() const noexcept { return snapshots_; }

  // Delta-protocol telemetry, aggregated over sites (zero in snapshot mode).
  std::uint64_t deltas_sent() const noexcept;
  std::uint64_t fulls_sent() const noexcept;
  std::uint64_t delta_resyncs() const noexcept;
  std::uint64_t suppressed_updates() const noexcept;

 private:
  void push(std::size_t site);
  void push_delta(std::size_t site, const DeltaSiteSession::Outgoing& out);
  void settle_delta(std::size_t site);
  void drain_into_referee();
  void accept(std::size_t site, std::uint32_t epoch, PayloadKind kind,
              std::span<const std::uint8_t> payload);
  const CollectReport& flush_delta();

  EstimatorParams params_;
  std::uint64_t report_interval_;
  RetryPolicy policy_;
  ContinuousMonitorOptions options_;
  std::vector<F0Estimator> site_sketches_;
  std::vector<DeltaSiteSession> sessions_;  // delta mode only
  std::vector<std::uint64_t> since_report_;
  std::vector<std::uint64_t> observed_;   // items seen per site
  std::vector<std::uint32_t> epoch_;      // last pushed epoch per site
  // (epoch, items-observed-at-push) per site, pruned once acked: lets
  // staleness() attribute an accepted epoch to the prefix it covered.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> pending_items_;
  std::vector<std::uint64_t> acked_items_;  // items covered by referee snapshot
  std::vector<std::optional<F0Estimator>> referee_snapshots_;
  std::vector<std::uint32_t> referee_epoch_;  // epoch of each held snapshot (0 = none)
  // Incremental query cache (mutable: estimate() is logically const).
  // cached_union_ holds the merge of the snapshots tagged in cached_epoch_;
  // cached_estimate_ is its estimate, recomputed only when a fold happens.
  mutable std::optional<F0Estimator> cached_union_;
  mutable std::vector<std::uint32_t> cached_epoch_;
  mutable double cached_estimate_ = 0.0;
  std::unique_ptr<Transport> transport_;
  CollectState state_;
  std::uint64_t snapshots_ = 0;
};

// The delta protocol extended to sliding-window union estimates. Each site
// runs a WindowedF0Estimator and ships its ops as kWindowedDelta op-replay
// frames every `ops_per_delta` observations (expiry is driven by the op
// timestamps, so replaying the ops replays the expiries); the referee
// replays them into bit-identical per-site mirrors and answers
// estimate(window_start) with windowed_union_estimate over the mirrors —
// non-destructive, so any window start stays queryable. Chain breaks fall
// back to a full kWindowedF0 resync exactly as in the prefix protocol.
class ContinuousWindowedMonitor {
 public:
  ContinuousWindowedMonitor(std::size_t sites, std::uint64_t ops_per_delta,
                            const EstimatorParams& params,
                            std::unique_ptr<Transport> transport = nullptr,
                            const RetryPolicy& policy = RetryPolicy{});

  // Site observes one (label, timestamp); timestamps are per-site
  // non-decreasing. May trigger a delta push.
  void observe(std::size_t site, std::uint64_t label, std::uint64_t timestamp);

  // Pushes every site's outstanding state (full frames) with ack/retry.
  const CollectReport& flush();

  // Sliding-window union estimate from the referee's mirrors.
  double estimate(std::uint64_t window_start) const;
  // Reference: the same union computed from the live site estimators —
  // what a zero-lag referee would answer. Equal to estimate() after a
  // converged flush (the mirrors are bit-identical).
  double site_estimate(std::uint64_t window_start) const;

  const CollectReport& status() const noexcept { return state_.report(); }
  ChannelStats channel_stats() const { return transport_->stats(); }
  std::uint64_t deltas_sent() const noexcept { return deltas_sent_; }
  std::uint64_t fulls_sent() const noexcept { return fulls_sent_; }

 private:
  void push(std::size_t site);
  void send_full(std::size_t site, bool fresh);
  void drain_into_referee();
  void accept(std::size_t site, std::uint32_t epoch, PayloadKind kind,
              std::span<const std::uint8_t> payload);

  EstimatorParams params_;
  std::uint64_t ops_per_delta_;
  RetryPolicy policy_;
  std::vector<WindowedF0Estimator> site_sketches_;
  // Ops accumulated since the mirror's acked base (cleared on every send:
  // a delivered delta advances the base past them; a lost one forces a
  // full-frame resync that carries the whole state anyway).
  std::vector<std::vector<WindowedF0Estimator::Op>> op_log_;
  std::vector<std::uint64_t> acked_seq_;
  std::vector<std::uint64_t> acked_ts_;
  std::vector<bool> need_full_;
  std::vector<bool> based_;  // mirror established at least once
  std::vector<std::uint32_t> epoch_;
  std::vector<std::optional<WindowedF0Estimator>> mirrors_;
  std::unique_ptr<Transport> transport_;
  CollectState state_;
  std::uint64_t deltas_sent_ = 0;
  std::uint64_t fulls_sent_ = 0;
};

}  // namespace ustream
