// ContinuousUnionMonitor — an extension beyond the paper's one-shot model.
//
// The SPAA'01 model has parties communicate only once, after their streams
// end. Real monitoring products also want a LIVE union estimate. The
// mergeable-sketch property makes the obvious periodic protocol sound:
// every site pushes a fresh snapshot of its sketch after each
// `report_interval` items; the referee keeps the latest snapshot per site
// and answers queries by merging the snapshots it has. The answer is then
// an estimate of the union of the observed PREFIXES — never an overcount —
// and the communication/staleness tradeoff is exactly report_interval.
// (This is the direction later formalized in the continuous distributed
// monitoring literature; here it is the natural corollary of mergeability.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/channel.h"

namespace ustream {

class ContinuousUnionMonitor {
 public:
  ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                         const EstimatorParams& params);

  // Site observes one label; may trigger a snapshot push.
  void observe(std::size_t site, std::uint64_t label);

  // Force every site to push its current state (end-of-stream flush).
  void flush();

  // Union estimate from the snapshots currently at the referee.
  double estimate() const;

  ChannelStats channel_stats() const { return channel_.stats(); }
  std::uint64_t snapshots_received() const noexcept { return snapshots_; }

 private:
  void push(std::size_t site);

  EstimatorParams params_;
  std::uint64_t report_interval_;
  std::vector<F0Estimator> site_sketches_;
  std::vector<std::uint64_t> since_report_;
  std::vector<std::optional<F0Estimator>> referee_snapshots_;
  Channel channel_;
  std::uint64_t snapshots_ = 0;
};

}  // namespace ustream
