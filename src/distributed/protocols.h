// Concrete end-of-stream union protocols (Theorem T2's setting) for the
// estimators the library ships, plus one-call helpers that run a whole
// DistributedWorkload and report estimate + communication cost.
#pragma once

#include <cstdint>

#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "distributed/runtime.h"
#include "stream/partitioner.h"

namespace ustream {

// Distributed distinct-count over the union of t streams.
class F0UnionProtocol {
 public:
  F0UnionProtocol(std::size_t sites, const EstimatorParams& params)
      : run_(sites, [&params] { return F0Estimator(params); }) {}

  void observe(std::size_t site, std::uint64_t label) { run_.site(site).add(label); }

  // Ends observation (first call) and returns the union estimate.
  double estimate() { return run_.collect().estimate(); }

  const F0Estimator& referee_sketch() { return run_.collect(); }
  ChannelStats channel_stats() const { return run_.channel_stats(); }
  std::size_t num_sites() const noexcept { return run_.num_sites(); }
  DistributedRun<F0Estimator>& run() noexcept { return run_; }

 private:
  DistributedRun<F0Estimator> run_;
};

// Distributed SumDistinct over the union of t streams.
class DistinctSumUnionProtocol {
 public:
  DistinctSumUnionProtocol(std::size_t sites, const EstimatorParams& params)
      : run_(sites, [&params] { return DistinctSumEstimator(params); }) {}

  void observe(std::size_t site, std::uint64_t label, double value) {
    run_.site(site).add(label, value);
  }

  double estimate_sum() { return run_.collect().estimate_sum(); }
  double estimate_distinct() { return run_.collect().estimate_distinct(); }

  ChannelStats channel_stats() const { return run_.channel_stats(); }
  std::size_t num_sites() const noexcept { return run_.num_sites(); }
  DistributedRun<DistinctSumEstimator>& run() noexcept { return run_; }

 private:
  DistributedRun<DistinctSumEstimator> run_;
};

// One-call experiment drivers.
struct UnionRunResult {
  double estimate = 0.0;
  double truth = 0.0;
  double relative_error = 0.0;
  ChannelStats channel;
};

// Runs the F0-union protocol over a generated workload (optionally feeding
// sites from concurrent threads) and reports accuracy + message cost.
UnionRunResult run_f0_union(const DistributedWorkload& workload, const EstimatorParams& params,
                            bool parallel_sites = false);

// Same for SumDistinct over the union.
UnionRunResult run_distinct_sum_union(const DistributedWorkload& workload,
                                      const EstimatorParams& params,
                                      bool parallel_sites = false);

}  // namespace ustream
