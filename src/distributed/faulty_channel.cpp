#include "distributed/faulty_channel.h"

#include <string>
#include <utility>

#include "common/error.h"

namespace ustream {

FaultyChannel::FaultyChannel(std::size_t sites, const FaultSpec& spec, std::uint64_t seed)
    : site_specs_(sites, spec), rng_(seed) {
  stats_.bytes_per_site.assign(sites, 0);
}

void FaultyChannel::set_site_faults(std::size_t site, const FaultSpec& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (site >= site_specs_.size()) {
    throw ProtocolError("fault config for unregistered site " + std::to_string(site));
  }
  site_specs_[site] = spec;
}

void FaultyChannel::send(std::size_t from_site, std::vector<std::uint8_t> payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (from_site >= site_specs_.size()) {
    throw ProtocolError("send from unregistered site " + std::to_string(from_site) +
                        " (channel has " + std::to_string(site_specs_.size()) + " sites)");
  }
  // The attempt is charged whether or not the network eats it — a dropped
  // packet still crossed the sender's NIC.
  stats_.messages += 1;
  stats_.total_bytes += payload.size();
  if (payload.size() > stats_.max_message_bytes) stats_.max_message_bytes = payload.size();
  stats_.bytes_per_site[from_site] += payload.size();
  faults_.sends += 1;

  const FaultSpec& spec = site_specs_[from_site];
  if (rng_.bernoulli(spec.drop)) {
    faults_.dropped += 1;
    return;
  }
  const bool duplicate = rng_.bernoulli(spec.duplicate);
  if (duplicate) faults_.duplicated += 1;
  for (int copy = 0; copy < (duplicate ? 2 : 1); ++copy) {
    auto bytes = payload;  // each copy is corrupted independently
    if (!bytes.empty() && rng_.bernoulli(spec.truncate)) {
      faults_.truncated += 1;
      bytes.resize(rng_.below(bytes.size()));
    }
    if (!bytes.empty() && rng_.bernoulli(spec.bit_flip)) {
      faults_.bit_flipped += 1;
      const std::uint64_t flips = 1 + rng_.below(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        bytes[rng_.below(bytes.size())] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
      }
    }
    const bool reorder = rng_.bernoulli(spec.reorder);
    if (reorder) faults_.reordered += 1;
    deliver(std::move(bytes), reorder);
  }
}

void FaultyChannel::deliver(std::vector<std::uint8_t> payload, bool reordered) {
  faults_.delivered += 1;
  if (reordered && !mailbox_.empty()) {
    const std::size_t pos = rng_.below(mailbox_.size() + 1);
    mailbox_.insert(mailbox_.begin() + static_cast<std::ptrdiff_t>(pos), std::move(payload));
  } else {
    mailbox_.push_back(std::move(payload));
  }
}

std::vector<std::vector<std::uint8_t>> FaultyChannel::drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(mailbox_, {});
}

ChannelStats FaultyChannel::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultStats FaultyChannel::fault_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

}  // namespace ustream
