// SketchRegistry — the referee as a queryable service. The one-shot
// protocol answers "the union of everything"; real monitoring consoles
// also ask about arbitrary SUBSETS of sites ("distinct users across the
// EU links", "links 3 and 7 only"). Because sketches merge pairwise and
// associatively, the referee just keeps every site's sketch and folds the
// requested subset on demand — plus set expressions BETWEEN subsets,
// courtesy of coordination.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/frame.h"
#include "core/f0_estimator.h"
#include "core/set_ops.h"

namespace ustream {

class SketchRegistry {
 public:
  explicit SketchRegistry(const EstimatorParams& params) : params_(params) {}

  // Registers (or replaces) a site's sketch. The sketch must be mergeable
  // with the registry's parameters.
  void put(const std::string& site, F0Estimator sketch);
  // Raw estimator payload (trusted, e.g. produced in-process).
  void put_serialized(const std::string& site, std::span<const std::uint8_t> bytes);
  // A framed message as received off a transport: validates magic, version,
  // payload kind and CRC32C before any sketch parsing (common/frame.h).
  void put_framed(const std::string& site, std::span<const std::uint8_t> frame_bytes);

  bool contains(const std::string& site) const;
  std::size_t size() const noexcept { return sites_.size(); }
  std::vector<std::string> site_names() const;

  // F0 of the union of the named sites (throws on unknown names).
  double estimate_union(std::span<const std::string> sites) const;
  // F0 of the union of every registered site.
  double estimate_union_all() const;
  // Per-site estimate.
  double estimate_site(const std::string& site) const;

  // Set expressions between the unions of two site groups:
  // |U(A) ∩ U(B)|, |U(A) \ U(B)|, Jaccard — the cross-group comparisons
  // coordination enables.
  SetExpressionEstimate<PairwiseHash> compare_groups(std::span<const std::string> group_a,
                                                     std::span<const std::string> group_b) const;

  const EstimatorParams& params() const noexcept { return params_; }

 private:
  const F0Estimator& find(const std::string& site) const;
  F0Estimator fold(std::span<const std::string> sites) const;

  EstimatorParams params_;
  std::vector<std::pair<std::string, F0Estimator>> sites_;
};

}  // namespace ustream
