// Shared-memory parallel sketching. Mergeability doesn't just serve the
// distributed model — it also makes single-machine parallelism trivial and
// EXACT: shard the input across threads, sketch each shard with the same
// parameters, merge. The result is identical (not just statistically
// equivalent) to sequential processing, because merge == concat.
//
// Two perf properties are load-bearing here:
//   * each shard lives in its own cache-line-aligned slot (ShardSlot), so
//     threads mutating adjacent shards never false-share a line;
//   * workers receive their whole contiguous chunk as a span and feed it
//     through the sketches' batch API — no per-item std::function call.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/f0_estimator.h"
#include "core/merge_engine.h"
#include "core/params.h"
#include "stream/item.h"

namespace ustream {

// Sketches `items` with `threads` workers; returns the merged estimator.
// Deterministic: equal to feeding the items sequentially into one
// F0Estimator built from the same params.
F0Estimator sketch_in_parallel(std::span<const Item> items, const EstimatorParams& params,
                               std::size_t threads);

namespace detail {
// Two cache lines: one line prevents classic false sharing, the second
// keeps the adjacent-line (spatial) prefetcher on common x86 parts from
// coupling neighboring shards. Fixed rather than
// hardware_destructive_interference_size so the layout is ABI-stable
// across compilers (and free of -Winterference-size noise).
inline constexpr std::size_t kShardAlign = 128;

// One shard per cache line (or more): adjacent slots can never share a
// line, so concurrent shard mutation stays free of false sharing even for
// sketches smaller than a line.
template <typename Sketch>
struct alignas(kShardAlign) ShardSlot {
  Sketch sketch;
};
}  // namespace detail

// Generic version: shard `items` into `threads` contiguous index-local
// chunks, build one sketch per shard with `make`, hand each worker its
// whole chunk via `feed_chunk(sketch, chunk)` (feeders should forward to
// the sketch's add_batch), then tree-reduce the shards on the merge
// engine's pool — byte-identical to the former left-to-right fold
// (merge_engine.h), but the merge tail is parallel too instead of a
// serial chain after the workers join.
template <typename Sketch>
Sketch shard_and_merge(std::span<const Item> items, std::size_t threads,
                       const std::function<Sketch()>& make,
                       const std::function<void(Sketch&, std::span<const Item>)>& feed_chunk,
                       MergeEngine* engine = nullptr) {
  USTREAM_REQUIRE(threads >= 1, "need at least one thread");
  std::vector<detail::ShardSlot<Sketch>> shards;
  shards.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) shards.push_back({make()});
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (items.size() + threads - 1) / threads;
  for (std::size_t i = 0; i < threads; ++i) {
    const std::size_t begin = std::min(items.size(), i * chunk);
    const std::size_t end = std::min(items.size(), begin + chunk);
    workers.emplace_back([&feed_chunk, &shards, items, i, begin, end] {
      feed_chunk(shards[i].sketch, items.subspan(begin, end - begin));
    });
  }
  for (auto& w : workers) w.join();
  std::vector<Sketch> parts;
  parts.reserve(shards.size());
  for (auto& slot : shards) parts.push_back(std::move(slot.sketch));
  auto merged = (engine ? *engine : MergeEngine::shared()).reduce(std::move(parts));
  return std::move(*merged);  // threads >= 1, so the reduction is non-empty
}

}  // namespace ustream
