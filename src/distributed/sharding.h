// Shared-memory parallel sketching. Mergeability doesn't just serve the
// distributed model — it also makes single-machine parallelism trivial and
// EXACT: shard the input across threads, sketch each shard with the same
// parameters, merge. The result is identical (not just statistically
// equivalent) to sequential processing, because merge == concat.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/f0_estimator.h"
#include "core/params.h"
#include "stream/item.h"

namespace ustream {

// Sketches `items` with `threads` workers; returns the merged estimator.
// Deterministic: equal to feeding the items sequentially into one
// F0Estimator built from the same params.
F0Estimator sketch_in_parallel(std::span<const Item> items, const EstimatorParams& params,
                               std::size_t threads);

// Generic version: `sketch_shard(shard_index, item)` semantics via a
// factory + feeder, merged left to right.
template <typename Sketch>
Sketch shard_and_merge(std::span<const Item> items, std::size_t threads,
                       const std::function<Sketch()>& make,
                       const std::function<void(Sketch&, const Item&)>& feed) {
  USTREAM_REQUIRE(threads >= 1, "need at least one thread");
  std::vector<Sketch> shards;
  shards.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) shards.push_back(make());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (items.size() + threads - 1) / threads;
  for (std::size_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      const std::size_t begin = i * chunk;
      const std::size_t end = std::min(items.size(), begin + chunk);
      for (std::size_t j = begin; j < end; ++j) feed(shards[i], items[j]);
    });
  }
  for (auto& w : workers) w.join();
  Sketch merged = std::move(shards[0]);
  for (std::size_t i = 1; i < shards.size(); ++i) merged.merge(shards[i]);
  return merged;
}

}  // namespace ustream
