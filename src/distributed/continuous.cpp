#include "distributed/continuous.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"

namespace ustream {

// ---------------------------------------------------------------------------
// DeltaSiteSession

DeltaSiteSession::DeltaSiteSession(const EstimatorParams& params, double growth)
    : growth_(growth), sketch_(params) {
  USTREAM_REQUIRE(growth > 0.0, "growth threshold must be positive");
}

std::vector<std::pair<int, std::size_t>> DeltaSiteSession::signature() const {
  std::vector<std::pair<int, std::size_t>> sig;
  sig.reserve(sketch_.num_copies());
  for (std::size_t c = 0; c < sketch_.num_copies(); ++c) {
    const auto& copy = sketch_.copy(c);
    sig.emplace_back(copy.level(), copy.size());
  }
  return sig;
}

bool DeltaSiteSession::update_due() const {
  if (sent_sig_.empty()) {
    // Never transmitted: due as soon as any copy holds a sample.
    for (std::size_t c = 0; c < sketch_.num_copies(); ++c) {
      if (sketch_.copy(c).size() > 0) return true;
    }
    return false;
  }
  for (std::size_t c = 0; c < sketch_.num_copies(); ++c) {
    const auto& copy = sketch_.copy(c);
    const auto& [sent_level, sent_size] = sent_sig_[c];
    if (copy.level() > sent_level) return true;  // level-raise notification
    const double limit = static_cast<double>(sent_size) * (1.0 + growth_);
    if (sent_size == 0 ? copy.size() > 0
                       : static_cast<double>(copy.size()) > limit) {
      return true;  // (1+growth)-factor growth of the sampled set
    }
  }
  return false;
}

bool DeltaSiteSession::add(std::uint64_t label) {
  sketch_.add(label);
  ++items_;
  if (update_due()) return true;
  ++suppressed_;
  USTREAM_COUNTER_ADD("ustream_continuous_suppressed_total", 1);
  return false;
}

DeltaSiteSession::Outgoing DeltaSiteSession::next_update() {
  Outgoing out;
  out.epoch = ++epoch_;
  if (needs_full()) {
    out.payload = sketch_.serialize();
    out.is_delta = false;
    pending_full_ = true;
    ++fulls_sent_;
    USTREAM_COUNTER_ADD("ustream_continuous_full_frames_total", 1);
  } else {
    out.payload = sketch_.serialize_delta(*base_);
    out.is_delta = true;
    pending_full_ = false;
    ++deltas_sent_;
    USTREAM_COUNTER_ADD("ustream_continuous_deltas_total", 1);
  }
  pending_.emplace(sketch_);
  pending_items_count_ = items_;
  sent_sig_ = signature();
  return out;
}

DeltaSiteSession::Outgoing DeltaSiteSession::next_full() {
  need_full_ = true;
  return next_update();
}

DeltaSiteSession::Outgoing DeltaSiteSession::resend() {
  USTREAM_REQUIRE(pending_.has_value() && pending_full_,
                  "resend() only retransmits an in-flight full frame");
  Outgoing out;
  out.epoch = epoch_;
  out.payload = pending_->serialize();
  out.is_delta = false;
  return out;
}

void DeltaSiteSession::delivered() {
  if (!pending_) return;
  base_ = std::move(*pending_);
  pending_.reset();
  base_items_ = pending_items_count_;
  need_full_ = false;
}

void DeltaSiteSession::lost() {
  pending_.reset();
  need_full_ = true;
  ++resyncs_;
  USTREAM_COUNTER_ADD("ustream_continuous_resyncs_total", 1);
}

// ---------------------------------------------------------------------------
// ContinuousUnionMonitor

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params)
    : ContinuousUnionMonitor(sites, report_interval, params, nullptr) {}

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params,
                                               const ContinuousMonitorOptions& options)
    : ContinuousUnionMonitor(sites, report_interval, params, nullptr, RetryPolicy{}, options) {}

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params,
                                               std::unique_ptr<Transport> transport,
                                               const RetryPolicy& policy,
                                               const ContinuousMonitorOptions& options)
    : params_(params),
      report_interval_(report_interval),
      policy_(policy),
      options_(options),
      since_report_(sites, 0),
      observed_(sites, 0),
      epoch_(sites, 0),
      pending_items_(sites),
      acked_items_(sites, 0),
      referee_snapshots_(sites),
      referee_epoch_(sites, 0),
      cached_epoch_(sites, 0),
      transport_(transport ? std::move(transport) : std::make_unique<Channel>(sites)),
      state_(sites, PayloadKind::kF0Estimator, DedupMode::kLatestWins) {
  USTREAM_REQUIRE(sites >= 1, "need at least one site");
  USTREAM_REQUIRE(report_interval >= 1, "report interval must be >= 1");
  USTREAM_REQUIRE(transport_->num_sites() == sites,
                  "transport site count does not match the monitor");
  if (options_.delta_protocol) {
    state_.enable_deltas(PayloadKind::kF0Delta);
    sessions_.reserve(sites);
    for (std::size_t i = 0; i < sites; ++i) sessions_.emplace_back(params, options_.growth);
  } else {
    site_sketches_.reserve(sites);
    for (std::size_t i = 0; i < sites; ++i) site_sketches_.emplace_back(params);
  }
}

void ContinuousUnionMonitor::observe(std::size_t site, std::uint64_t label) {
  if (options_.delta_protocol) {
    const bool due = sessions_.at(site).add(label);
    ++observed_[site];
    if (due) push_delta(site, sessions_[site].next_update());
    return;
  }
  site_sketches_.at(site).add(label);
  ++observed_[site];
  if (++since_report_[site] >= report_interval_) push(site);
}

void ContinuousUnionMonitor::push(std::size_t site) {
  since_report_[site] = 0;
  const std::uint32_t epoch = ++epoch_[site];
  pending_items_[site].emplace_back(epoch, observed_[site]);
  state_.record_fresh_send(site);
  transport_->send(site,
                   frame_encode({PayloadKind::kF0Estimator, static_cast<std::uint32_t>(site),
                                 epoch},
                                site_sketches_[site].serialize()));
  drain_into_referee();
}

void ContinuousUnionMonitor::push_delta(std::size_t site, const DeltaSiteSession::Outgoing& out) {
  const PayloadKind kind = out.is_delta ? PayloadKind::kF0Delta : PayloadKind::kF0Estimator;
  pending_items_[site].emplace_back(out.epoch, observed_[site]);
  state_.record_fresh_send(site);
  transport_->send(site,
                   frame_encode({kind, static_cast<std::uint32_t>(site), out.epoch}, out.payload));
  drain_into_referee();
  settle_delta(site);
}

// In-process ack for the delta protocol: after the drain, the chain either
// advanced to the session's epoch (delivered) or the frame was lost,
// quarantined, or rejected (resync owed). A lossy transport may also deliver
// it LATE — after a resync already re-based the chain — in which case the
// late delta is stale/duplicate-dropped by the dedup state, which is exactly
// the never-overcount contract.
void ContinuousUnionMonitor::settle_delta(std::size_t site) {
  const SiteCollectStatus& status = state_.report().per_site[site];
  if (status.reported && status.accepted_epoch == sessions_[site].epoch()) {
    sessions_[site].delivered();
  } else {
    sessions_[site].lost();
  }
}

void ContinuousUnionMonitor::drain_into_referee() {
  for (const auto& message : transport_->drain()) {
    if (auto acc = state_.ingest(message)) {
      accept(acc->site, acc->epoch, acc->kind, std::span<const std::uint8_t>(acc->payload));
    }
  }
}

void ContinuousUnionMonitor::accept(std::size_t site, std::uint32_t epoch, PayloadKind kind,
                                    std::span<const std::uint8_t> payload) {
  if (kind == PayloadKind::kF0Delta) {
    // Apply transactionally: patch a copy of the mirror and swap on success,
    // so a payload that fails mid-apply (CRC collision on a corrupted frame)
    // leaves the mirror untouched and demotes the acceptance to a resync.
    if (!referee_snapshots_[site].has_value()) {
      state_.demote_delta(site, epoch - 1);
      return;
    }
    F0Estimator next = *referee_snapshots_[site];
    try {
      next.apply_delta(payload);
    } catch (const SerializationError&) {
      state_.demote_delta(site, epoch - 1);
      state_.report().frames_quarantined += 1;
      return;
    }
    referee_snapshots_[site] = std::move(next);
  } else {
    try {
      referee_snapshots_[site] = F0Estimator::deserialize(payload);
    } catch (const SerializationError&) {
      // CRC passed yet the payload would not parse — a 2^-32 collision on a
      // corrupted frame. Keep the previous snapshot; count the quarantine.
      state_.report().frames_quarantined += 1;
      return;
    }
  }
  referee_epoch_[site] = epoch;  // the query cache re-merges this site lazily
  ++snapshots_;
  // Attribute the ack to the prefix that snapshot covered.
  auto& pending = pending_items_[site];
  for (const auto& [e, items] : pending) {
    if (e == epoch) {
      acked_items_[site] = items;
      break;
    }
  }
  std::erase_if(pending, [epoch](const auto& entry) { return entry.first <= epoch; });
}

const CollectReport& ContinuousUnionMonitor::flush() {
  if (options_.delta_protocol) return flush_delta();
  for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
    if (since_report_[i] > 0 || !referee_snapshots_[i].has_value()) push(i);
  }
  // Ack/retry until every site's LATEST epoch is at the referee or the
  // per-site attempt budget is spent. Retransmissions reuse the site's
  // current epoch, so the latest-wins dedup merges each snapshot once.
  const auto converged = [this](std::size_t i) {
    return state_.report().per_site[i].reported &&
           state_.report().per_site[i].accepted_epoch == epoch_[i];
  };
  for (std::uint32_t round = 1; round < policy_.max_attempts_per_site; ++round) {
    bool missing = false;
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (!converged(i)) missing = true;
    }
    if (!missing) break;
    apply_backoff(policy_, round);
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (converged(i)) continue;
      state_.record_send(i);
      transport_->send(i, frame_encode({PayloadKind::kF0Estimator,
                                        static_cast<std::uint32_t>(i), epoch_[i]},
                                       site_sketches_[i].serialize()));
    }
    drain_into_referee();
  }
  state_.finalize(policy_.max_attempts_per_site);
  return state_.report();
}

// Delta-mode flush: every site whose acked base lags its live sketch sends a
// FULL frame at a fresh epoch (the unconditional resync — cheap relative to
// the stream, and it re-bases the chain no matter what state the lossy
// transport left it in), then retries that same frame per policy until acked.
const CollectReport& ContinuousUnionMonitor::flush_delta() {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].dirty() || !referee_snapshots_[i].has_value()) {
      push_delta(i, sessions_[i].next_full());
    }
  }
  const auto converged = [this](std::size_t i) {
    return state_.report().per_site[i].reported &&
           state_.report().per_site[i].accepted_epoch == sessions_[i].epoch();
  };
  for (std::uint32_t round = 1; round < policy_.max_attempts_per_site; ++round) {
    bool missing = false;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (!converged(i)) missing = true;
    }
    if (!missing) break;
    apply_backoff(policy_, round);
    // Each retry re-bases with a fresh-epoch full frame (the state it
    // carries is the same, so a late-delivered older retry is stale-dropped
    // by latest-wins, never wrong).
    std::vector<std::size_t> sent;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (converged(i)) continue;
      const auto out = sessions_[i].next_full();
      pending_items_[i].emplace_back(out.epoch, observed_[i]);
      state_.record_send(i);
      transport_->send(i,
                       frame_encode({PayloadKind::kF0Estimator, static_cast<std::uint32_t>(i),
                                     out.epoch},
                                    out.payload));
      sent.push_back(i);
    }
    drain_into_referee();
    for (std::size_t i : sent) settle_delta(i);
  }
  state_.finalize(policy_.max_attempts_per_site);
  return state_.report();
}

double ContinuousUnionMonitor::estimate() const {
  // Fold only the sites whose snapshot epoch moved since the last query.
  // Merging a site's newer snapshot over the older one already folded is
  // exact (prefix label-sets + duplicate insensitivity — continuous.h).
  bool changed = false;
  for (std::size_t i = 0; i < referee_snapshots_.size(); ++i) {
    if (!referee_snapshots_[i] || cached_epoch_[i] == referee_epoch_[i]) continue;
    if (!cached_union_) {
      cached_union_.emplace(*referee_snapshots_[i]);
    } else {
      cached_union_->merge(*referee_snapshots_[i]);
    }
    cached_epoch_[i] = referee_epoch_[i];
    changed = true;
  }
  if (changed) cached_estimate_ = cached_union_->estimate();
  return cached_estimate_;
}

double ContinuousUnionMonitor::estimate_full_remerge() const {
  std::optional<F0Estimator> merged;
  for (const auto& snap : referee_snapshots_) {
    if (!snap) continue;
    if (!merged) {
      merged = *snap;
    } else {
      merged->merge(*snap);
    }
  }
  return merged ? merged->estimate() : 0.0;
}

std::vector<std::uint64_t> ContinuousUnionMonitor::staleness() const {
  std::vector<std::uint64_t> lag(observed_.size(), 0);
  for (std::size_t i = 0; i < observed_.size(); ++i) {
    lag[i] = observed_[i] - acked_items_[i];
  }
  return lag;
}

std::uint64_t ContinuousUnionMonitor::deltas_sent() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.deltas_sent();
  return n;
}

std::uint64_t ContinuousUnionMonitor::fulls_sent() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.fulls_sent();
  return n;
}

std::uint64_t ContinuousUnionMonitor::delta_resyncs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.resyncs();
  return n;
}

std::uint64_t ContinuousUnionMonitor::suppressed_updates() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.suppressed();
  return n;
}

// ---------------------------------------------------------------------------
// ContinuousWindowedMonitor

ContinuousWindowedMonitor::ContinuousWindowedMonitor(std::size_t sites,
                                                     std::uint64_t ops_per_delta,
                                                     const EstimatorParams& params,
                                                     std::unique_ptr<Transport> transport,
                                                     const RetryPolicy& policy)
    : params_(params),
      ops_per_delta_(ops_per_delta),
      policy_(policy),
      op_log_(sites),
      acked_seq_(sites, 0),
      acked_ts_(sites, 0),
      need_full_(sites, false),
      based_(sites, false),
      epoch_(sites, 0),
      mirrors_(sites),
      transport_(transport ? std::move(transport) : std::make_unique<Channel>(sites)),
      state_(sites, PayloadKind::kWindowedF0, DedupMode::kLatestWins) {
  USTREAM_REQUIRE(sites >= 1, "need at least one site");
  USTREAM_REQUIRE(ops_per_delta >= 1, "ops_per_delta must be >= 1");
  USTREAM_REQUIRE(transport_->num_sites() == sites,
                  "transport site count does not match the monitor");
  state_.enable_deltas(PayloadKind::kWindowedDelta);
  site_sketches_.reserve(sites);
  for (std::size_t i = 0; i < sites; ++i) site_sketches_.emplace_back(params);
}

void ContinuousWindowedMonitor::observe(std::size_t site, std::uint64_t label,
                                        std::uint64_t timestamp) {
  site_sketches_.at(site).add(label, timestamp);
  op_log_[site].emplace_back(label, timestamp);
  if (op_log_[site].size() >= ops_per_delta_) push(site);
}

void ContinuousWindowedMonitor::push(std::size_t site) {
  const bool full = !based_[site] || need_full_[site];
  const std::uint32_t epoch = ++epoch_[site];
  std::vector<std::uint8_t> payload;
  PayloadKind kind;
  if (full) {
    payload = site_sketches_[site].serialize();
    kind = PayloadKind::kWindowedF0;
    ++fulls_sent_;
    USTREAM_COUNTER_ADD("ustream_continuous_full_frames_total", 1);
  } else {
    payload = WindowedF0Estimator::encode_delta(acked_seq_[site], acked_ts_[site],
                                                std::span<const WindowedF0Estimator::Op>(
                                                    op_log_[site]));
    kind = PayloadKind::kWindowedDelta;
    ++deltas_sent_;
    USTREAM_COUNTER_ADD("ustream_continuous_deltas_total", 1);
  }
  // Either way the ops are now represented in flight: a delivered frame
  // advances the base past them; a lost one forces a full resync that
  // carries the whole state anyway.
  op_log_[site].clear();
  state_.record_fresh_send(site);
  transport_->send(site, frame_encode({kind, static_cast<std::uint32_t>(site), epoch},
                                      std::move(payload)));
  drain_into_referee();
  const SiteCollectStatus& status = state_.report().per_site[site];
  if (status.reported && status.accepted_epoch == epoch) {
    acked_seq_[site] = site_sketches_[site].sequence();
    acked_ts_[site] = site_sketches_[site].last_timestamp();
    based_[site] = true;
    need_full_[site] = false;
  } else {
    need_full_[site] = true;
    USTREAM_COUNTER_ADD("ustream_continuous_resyncs_total", 1);
  }
}

void ContinuousWindowedMonitor::send_full(std::size_t site, bool fresh) {
  const std::uint32_t epoch = fresh ? ++epoch_[site] : epoch_[site];
  if (fresh) {
    ++fulls_sent_;
    USTREAM_COUNTER_ADD("ustream_continuous_full_frames_total", 1);
    state_.record_fresh_send(site);
  } else {
    state_.record_send(site);
  }
  op_log_[site].clear();
  transport_->send(site, frame_encode({PayloadKind::kWindowedF0,
                                       static_cast<std::uint32_t>(site), epoch},
                                      site_sketches_[site].serialize()));
}

const CollectReport& ContinuousWindowedMonitor::flush() {
  for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
    const bool dirty = !based_[i] || acked_seq_[i] != site_sketches_[i].sequence();
    if (dirty || !mirrors_[i].has_value()) send_full(i, /*fresh=*/true);
  }
  drain_into_referee();
  const auto converged = [this](std::size_t i) {
    return state_.report().per_site[i].reported &&
           state_.report().per_site[i].accepted_epoch == epoch_[i];
  };
  const auto settle = [this, &converged] {
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (!converged(i)) continue;
      acked_seq_[i] = site_sketches_[i].sequence();
      acked_ts_[i] = site_sketches_[i].last_timestamp();
      based_[i] = true;
      need_full_[i] = false;
    }
  };
  settle();
  for (std::uint32_t round = 1; round < policy_.max_attempts_per_site; ++round) {
    bool missing = false;
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (!converged(i)) missing = true;
    }
    if (!missing) break;
    apply_backoff(policy_, round);
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (!converged(i)) send_full(i, /*fresh=*/false);
    }
    drain_into_referee();
    settle();
  }
  state_.finalize(policy_.max_attempts_per_site);
  return state_.report();
}

void ContinuousWindowedMonitor::drain_into_referee() {
  for (const auto& message : transport_->drain()) {
    if (auto acc = state_.ingest(message)) {
      accept(acc->site, acc->epoch, acc->kind, std::span<const std::uint8_t>(acc->payload));
    }
  }
}

void ContinuousWindowedMonitor::accept(std::size_t site, std::uint32_t epoch, PayloadKind kind,
                                       std::span<const std::uint8_t> payload) {
  (void)epoch;
  if (kind == PayloadKind::kWindowedDelta) {
    if (!mirrors_[site].has_value()) {
      state_.demote_delta(site, epoch - 1);
      return;
    }
    try {
      // apply_delta validates everything (including the base match) before
      // mutating, so a failure leaves the mirror untouched.
      mirrors_[site]->apply_delta(payload);
    } catch (const SerializationError&) {
      state_.demote_delta(site, epoch - 1);
      state_.report().frames_quarantined += 1;
      return;
    }
  } else {
    try {
      mirrors_[site] = WindowedF0Estimator::deserialize(payload);
    } catch (const SerializationError&) {
      state_.report().frames_quarantined += 1;
      return;
    }
  }
}

double ContinuousWindowedMonitor::estimate(std::uint64_t window_start) const {
  std::vector<const WindowedF0Estimator*> parts;
  parts.reserve(mirrors_.size());
  for (const auto& m : mirrors_) {
    if (m.has_value()) parts.push_back(&*m);
  }
  return windowed_union_estimate(parts, window_start);
}

double ContinuousWindowedMonitor::site_estimate(std::uint64_t window_start) const {
  std::vector<const WindowedF0Estimator*> parts;
  parts.reserve(site_sketches_.size());
  for (const auto& s : site_sketches_) parts.push_back(&s);
  return windowed_union_estimate(parts, window_start);
}

}  // namespace ustream
