#include "distributed/continuous.h"

#include <algorithm>

#include "common/error.h"

namespace ustream {

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params)
    : ContinuousUnionMonitor(sites, report_interval, params, nullptr) {}

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params,
                                               std::unique_ptr<Transport> transport,
                                               const RetryPolicy& policy)
    : params_(params),
      report_interval_(report_interval),
      policy_(policy),
      since_report_(sites, 0),
      observed_(sites, 0),
      epoch_(sites, 0),
      pending_items_(sites),
      acked_items_(sites, 0),
      referee_snapshots_(sites),
      referee_epoch_(sites, 0),
      cached_epoch_(sites, 0),
      transport_(transport ? std::move(transport) : std::make_unique<Channel>(sites)),
      state_(sites, PayloadKind::kF0Estimator, DedupMode::kLatestWins) {
  USTREAM_REQUIRE(sites >= 1, "need at least one site");
  USTREAM_REQUIRE(report_interval >= 1, "report interval must be >= 1");
  USTREAM_REQUIRE(transport_->num_sites() == sites,
                  "transport site count does not match the monitor");
  site_sketches_.reserve(sites);
  for (std::size_t i = 0; i < sites; ++i) site_sketches_.emplace_back(params);
}

void ContinuousUnionMonitor::observe(std::size_t site, std::uint64_t label) {
  site_sketches_.at(site).add(label);
  ++observed_[site];
  if (++since_report_[site] >= report_interval_) push(site);
}

void ContinuousUnionMonitor::push(std::size_t site) {
  since_report_[site] = 0;
  const std::uint32_t epoch = ++epoch_[site];
  pending_items_[site].emplace_back(epoch, observed_[site]);
  state_.record_fresh_send(site);
  transport_->send(site,
                   frame_encode({PayloadKind::kF0Estimator, static_cast<std::uint32_t>(site),
                                 epoch},
                                site_sketches_[site].serialize()));
  drain_into_referee();
}

void ContinuousUnionMonitor::drain_into_referee() {
  for (const auto& message : transport_->drain()) {
    if (auto acc = state_.ingest(message)) {
      accept(acc->site, acc->epoch, std::span<const std::uint8_t>(acc->payload));
    }
  }
}

void ContinuousUnionMonitor::accept(std::size_t site, std::uint32_t epoch,
                                    std::span<const std::uint8_t> payload) {
  try {
    referee_snapshots_[site] = F0Estimator::deserialize(payload);
  } catch (const SerializationError&) {
    // CRC passed yet the payload would not parse — a 2^-32 collision on a
    // corrupted frame. Keep the previous snapshot; count the quarantine.
    state_.report().frames_quarantined += 1;
    return;
  }
  referee_epoch_[site] = epoch;  // the query cache re-merges this site lazily
  ++snapshots_;
  // Attribute the ack to the prefix that snapshot covered.
  auto& pending = pending_items_[site];
  for (const auto& [e, items] : pending) {
    if (e == epoch) {
      acked_items_[site] = items;
      break;
    }
  }
  std::erase_if(pending, [epoch](const auto& entry) { return entry.first <= epoch; });
}

const CollectReport& ContinuousUnionMonitor::flush() {
  for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
    if (since_report_[i] > 0 || !referee_snapshots_[i].has_value()) push(i);
  }
  // Ack/retry until every site's LATEST epoch is at the referee or the
  // per-site attempt budget is spent. Retransmissions reuse the site's
  // current epoch, so the latest-wins dedup merges each snapshot once.
  const auto converged = [this](std::size_t i) {
    return state_.report().per_site[i].reported &&
           state_.report().per_site[i].accepted_epoch == epoch_[i];
  };
  for (std::uint32_t round = 1; round < policy_.max_attempts_per_site; ++round) {
    bool missing = false;
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (!converged(i)) missing = true;
    }
    if (!missing) break;
    apply_backoff(policy_, round);
    for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
      if (converged(i)) continue;
      state_.record_send(i);
      transport_->send(i, frame_encode({PayloadKind::kF0Estimator,
                                        static_cast<std::uint32_t>(i), epoch_[i]},
                                       site_sketches_[i].serialize()));
    }
    drain_into_referee();
  }
  state_.finalize(policy_.max_attempts_per_site);
  return state_.report();
}

double ContinuousUnionMonitor::estimate() const {
  // Fold only the sites whose snapshot epoch moved since the last query.
  // Merging a site's newer snapshot over the older one already folded is
  // exact (prefix label-sets + duplicate insensitivity — continuous.h).
  bool changed = false;
  for (std::size_t i = 0; i < referee_snapshots_.size(); ++i) {
    if (!referee_snapshots_[i] || cached_epoch_[i] == referee_epoch_[i]) continue;
    if (!cached_union_) {
      cached_union_.emplace(*referee_snapshots_[i]);
    } else {
      cached_union_->merge(*referee_snapshots_[i]);
    }
    cached_epoch_[i] = referee_epoch_[i];
    changed = true;
  }
  if (changed) cached_estimate_ = cached_union_->estimate();
  return cached_estimate_;
}

double ContinuousUnionMonitor::estimate_full_remerge() const {
  std::optional<F0Estimator> merged;
  for (const auto& snap : referee_snapshots_) {
    if (!snap) continue;
    if (!merged) {
      merged = *snap;
    } else {
      merged->merge(*snap);
    }
  }
  return merged ? merged->estimate() : 0.0;
}

std::vector<std::uint64_t> ContinuousUnionMonitor::staleness() const {
  std::vector<std::uint64_t> lag(observed_.size(), 0);
  for (std::size_t i = 0; i < observed_.size(); ++i) {
    lag[i] = observed_[i] - acked_items_[i];
  }
  return lag;
}

}  // namespace ustream
